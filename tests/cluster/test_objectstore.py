"""Tests for the deep-store implementations."""

import pytest

from repro.cluster.objectstore import FileObjectStore, MemoryObjectStore
from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric
from repro.errors import ClusterError
from repro.segment.builder import SegmentBuilder


def make_segment(name="seg1", rows=50):
    schema = Schema("t", [dimension("d"), metric("m", DataType.LONG)])
    builder = SegmentBuilder(name, "t", schema)
    for i in range(rows):
        builder.add({"d": f"v{i % 5}", "m": i})
    return builder.build()


@pytest.fixture(params=["memory", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemoryObjectStore()
    return FileObjectStore(tmp_path / "deepstore")


class TestObjectStore:
    def test_put_get_roundtrip(self, store):
        segment = make_segment()
        store.put("tableA", segment)
        loaded = store.get("tableA", "seg1")
        assert loaded.num_docs == segment.num_docs
        assert loaded.record(3) == segment.record(3)

    def test_get_missing_raises(self, store):
        with pytest.raises(ClusterError):
            store.get("tableA", "ghost")

    def test_exists_and_list(self, store):
        store.put("tableA", make_segment("s1"))
        store.put("tableA", make_segment("s2"))
        store.put("tableB", make_segment("s3"))
        assert store.exists("tableA", "s1")
        assert not store.exists("tableA", "s3")
        assert store.list_segments("tableA") == ["s1", "s2"]
        assert store.list_segments("missing") == []

    def test_delete_idempotent(self, store):
        store.put("tableA", make_segment("s1"))
        store.delete("tableA", "s1")
        store.delete("tableA", "s1")
        assert not store.exists("tableA", "s1")

    def test_put_replaces(self, store):
        store.put("tableA", make_segment("s1", rows=10))
        store.put("tableA", make_segment("s1", rows=20))
        assert store.get("tableA", "s1").num_docs == 20

    def test_size_accounting(self, store):
        assert store.size_bytes("tableA") == 0
        store.put("tableA", make_segment("s1"))
        size_one = store.size_bytes("tableA")
        assert size_one > 0
        store.put("tableA", make_segment("s2"))
        assert store.size_bytes("tableA") > size_one

"""Engine selection end to end: OPTION(vectorized=...) and the
cluster-wide default, threaded broker -> server -> execute_segment."""

from unittest.mock import patch

import pytest

from repro.cluster.pinot import PinotCluster
from repro.cluster.table import TableConfig
from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric
from repro.engine.executor import execute_segment

RECORDS = [
    {"color": color, "size": size, "m": i}
    for i, (color, size) in enumerate(
        (c, s) for c in ("red", "green", "blue") for s in (1, 2, 3, 4)
    )
]

PQL = "SELECT sum(m), count(*) FROM items WHERE color != 'green' " \
      "GROUP BY size TOP 10"


def _schema():
    return Schema("items", [
        dimension("color"), dimension("size", DataType.LONG),
        metric("m", DataType.LONG),
    ])


def _make_cluster(**kwargs):
    cluster = PinotCluster(num_servers=2, **kwargs)
    cluster.create_table(TableConfig.offline("items", _schema()))
    cluster.upload_records("items", RECORDS, rows_per_segment=4)
    return cluster


def _captured_flags(cluster, pql, extra="skipCache=true"):
    """Run one query and record the vectorized= flag each segment
    execution actually received (skipping the broker result cache, or a
    repeat query would never reach the servers)."""
    flags = []
    real = execute_segment

    def spy(segment, query, **kwargs):
        flags.append(kwargs.get("vectorized", True))
        return real(segment, query, **kwargs)

    with patch("repro.cluster.server.execute_segment", side_effect=spy):
        response = cluster.execute(f"{pql} OPTION({extra})")
    assert not response.is_partial
    return flags, response


@pytest.fixture(scope="module")
def vectorized_cluster():
    return _make_cluster()


def test_default_is_vectorized(vectorized_cluster):
    flags, __ = _captured_flags(vectorized_cluster, PQL)
    assert flags and all(flags)


def test_query_option_forces_scalar(vectorized_cluster):
    flags, __ = _captured_flags(vectorized_cluster, PQL,
                                "vectorized=false, skipCache=true")
    assert flags and not any(flags)


def test_cluster_default_scalar_and_per_query_override():
    cluster = _make_cluster(default_vectorized=False)
    assert all(not s.default_vectorized for s in cluster.servers)

    flags, __ = _captured_flags(cluster, PQL)
    assert flags and not any(flags)

    # A per-query OPTION wins over the cluster default, both ways.
    flags, __ = _captured_flags(cluster, PQL,
                                "vectorized=true, skipCache=true")
    assert flags and all(flags)


def test_added_server_inherits_cluster_default():
    cluster = _make_cluster(default_vectorized=False)
    server = cluster.add_server()
    assert server.default_vectorized is False


def test_engines_agree_through_the_cluster(vectorized_cluster):
    scalar = _make_cluster(default_vectorized=False)
    queries = [
        PQL,
        "SELECT count(*) FROM items",
        "SELECT min(m), max(m), avg(m) FROM items WHERE size >= 2",
        "SELECT color, m FROM items WHERE size IN (1, 3) "
        "ORDER BY m DESC LIMIT 5",
    ]
    for pql in queries:
        fast = vectorized_cluster.execute(pql + " OPTION(skipCache=true)")
        slow = scalar.execute(pql + " OPTION(skipCache=true)")
        assert fast.table.rows == slow.table.rows, pql

"""Tests for source-controlled table-config synchronization (§5.2)."""

import json

import pytest

from repro.cluster.configsync import export_configs, sync_configs
from repro.cluster.pinot import PinotCluster
from repro.cluster.table import TableConfig
from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric


@pytest.fixture
def schema():
    return Schema("events", [dimension("c"),
                             metric("v", DataType.LONG)])


@pytest.fixture
def cluster(schema):
    cluster = PinotCluster(num_servers=1)
    cluster.create_table(TableConfig.offline("events", schema))
    return cluster


class TestExport:
    def test_export_writes_one_file_per_table(self, cluster, tmp_path):
        count = export_configs(cluster.leader_controller(), tmp_path)
        assert count == 1
        payload = json.loads((tmp_path / "events_OFFLINE.json").read_text())
        assert payload["logical_name"] == "events"

    def test_export_import_is_stable(self, cluster, tmp_path):
        controller = cluster.leader_controller()
        export_configs(controller, tmp_path)
        report = sync_configs(controller, tmp_path)
        assert not report.changed
        assert report.unchanged == ["events_OFFLINE"]


class TestSync:
    def test_new_file_creates_table(self, cluster, schema, tmp_path):
        controller = cluster.leader_controller()
        new_config = TableConfig.offline("metrics", schema)
        (tmp_path / "metrics_OFFLINE.json").write_text(
            json.dumps(new_config.to_dict())
        )
        export_configs(controller, tmp_path)  # keep existing too
        report = sync_configs(controller, tmp_path)
        assert report.created == ["metrics_OFFLINE"]
        assert "metrics_OFFLINE" in controller.list_tables()

    def test_changed_file_updates_config(self, cluster, tmp_path):
        controller = cluster.leader_controller()
        export_configs(controller, tmp_path)
        payload = json.loads((tmp_path / "events_OFFLINE.json").read_text())
        payload["retention"] = 90
        (tmp_path / "events_OFFLINE.json").write_text(json.dumps(payload))
        report = sync_configs(controller, tmp_path)
        assert report.updated == ["events_OFFLINE"]
        assert controller.table_config("events_OFFLINE").retention == 90

    def test_missing_file_deletes_when_opted_in(self, cluster, tmp_path):
        controller = cluster.leader_controller()
        report = sync_configs(controller, tmp_path)  # empty dir
        assert not report.deleted  # deletion is opt-in
        report = sync_configs(controller, tmp_path, delete_missing=True)
        assert report.deleted == ["events_OFFLINE"]
        assert controller.list_tables() == []

    def test_invalid_file_reported_not_applied(self, cluster, tmp_path):
        controller = cluster.leader_controller()
        (tmp_path / "broken_OFFLINE.json").write_text("{not json")
        report = sync_configs(controller, tmp_path)
        assert "broken_OFFLINE.json" in report.errors
        assert "broken_OFFLINE" not in controller.list_tables()

    def test_mismatched_file_name_rejected(self, cluster, schema,
                                           tmp_path):
        config = TableConfig.offline("other", schema)
        (tmp_path / "wrongname_OFFLINE.json").write_text(
            json.dumps(config.to_dict())
        )
        report = sync_configs(cluster.leader_controller(), tmp_path)
        assert "wrongname_OFFLINE.json" in report.errors

    def test_updated_config_applies_to_future_segments(self, cluster,
                                                       tmp_path):
        controller = cluster.leader_controller()
        export_configs(controller, tmp_path)
        payload = json.loads((tmp_path / "events_OFFLINE.json").read_text())
        payload["inverted_columns"] = ["c"]
        (tmp_path / "events_OFFLINE.json").write_text(json.dumps(payload))
        sync_configs(controller, tmp_path)

        cluster.upload_records("events", [{"c": "x", "v": 1}] * 10)
        [segment_name] = controller.list_segments("events_OFFLINE")
        segment = cluster.object_store.get("events_OFFLINE", segment_name)
        assert segment.column("c").inverted is not None

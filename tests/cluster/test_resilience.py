"""Resilient scatter/gather: replica failover, graceful degradation,
and broker metrics under injected faults (§3.3.3 step 7; §4.4)."""

import pytest

from repro.cluster.pinot import PinotCluster
from repro.cluster.table import TableConfig
from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column
from repro.net import HedgePolicy
from repro.routing.base import TableRoutingSnapshot
from repro.routing.balanced import BalancedRouting


@pytest.fixture
def schema():
    return Schema("events", [
        dimension("country"), metric("views", DataType.LONG),
        time_column("day", DataType.INT),
    ])


def records(days, per_day=10):
    return [{"country": "us", "views": 1, "day": day}
            for day in days for __ in range(per_day)]


def make_cluster(schema, replication, num_servers=3):
    cluster = PinotCluster(num_servers=num_servers)
    cluster.create_table(TableConfig.offline("events", schema,
                                             replication=replication))
    cluster.upload_records("events", records([17000, 17001, 17002]),
                           rows_per_segment=10)
    return cluster


class TestReplicaFailover:
    def test_crash_and_straggler_recovered_non_partial(self, schema):
        """The acceptance scenario: a 3-replica table with one server
        crash-injected and one slow-injected still returns a complete,
        correct, non-partial result via replica failover."""
        cluster = make_cluster(schema, replication=3)
        cluster.crash_server("server-0")
        cluster.server("server-1").faults.extra_latency_s = 5.0
        response = cluster.execute(
            "SELECT count(*) FROM events OPTION (timeoutMs = 2000)"
        )
        assert not response.partial
        assert response.exceptions == []
        assert response.rows[0][0] == 30
        # The failures happened and were repaired, and the broker
        # recorded the repair.
        assert response.num_retries > 0
        assert response.num_segments_failed_over > 0
        assert response.recovered_exceptions
        metrics = cluster.brokers[0].metrics
        assert metrics.count("retries") > 0
        assert metrics.count("failovers") > 0
        assert metrics.count("servers_unreachable") > 0

    def test_single_crash_recovered_without_timeout_option(self, schema):
        cluster = make_cluster(schema, replication=2)
        cluster.crash_server("server-2")
        response = cluster.execute("SELECT count(*) FROM events")
        assert not response.partial
        assert response.rows[0][0] == 30

    def test_flaky_server_recovered(self, schema):
        cluster = make_cluster(schema, replication=2)
        cluster.server("server-0").faults.fail_next = 5
        response = cluster.execute("SELECT count(*) FROM events")
        assert not response.partial
        assert response.rows[0][0] == 30

    def test_group_by_correct_after_failover(self, schema):
        """Failover must not double-count: each failed sub-request's
        segments are re-executed exactly once elsewhere."""
        cluster = PinotCluster(num_servers=3)
        cluster.create_table(TableConfig.offline("events", schema,
                                                 replication=3))
        rows = [{"country": country, "views": 1, "day": 17000}
                for country in ("us", "de") for __ in range(10)]
        cluster.upload_records("events", rows, rows_per_segment=5)
        cluster.crash_server("server-0")
        response = cluster.execute(
            "SELECT sum(views) FROM events GROUP BY country TOP 5"
        )
        assert not response.partial
        assert sorted(response.rows) == [("de", 10.0), ("us", 10.0)]


class TestGracefulDegradation:
    def test_all_replicas_down_returns_partial_with_detail(self, schema):
        """When no replica can serve some segments the query degrades:
        partial=True, per-server error detail, surviving data intact."""
        cluster = make_cluster(schema, replication=1)
        cluster.crash_server("server-0")
        response = cluster.execute("SELECT count(*) FROM events")
        assert response.partial
        assert any("server-0" in e and "unreachable" in e
                   for e in response.exceptions)
        # Each remaining server holds one 10-row segment.
        assert response.rows[0][0] == 20
        metrics = cluster.brokers[0].metrics
        assert metrics.count("segments_unroutable") > 0
        assert metrics.count("partial_responses") >= 1

    def test_every_server_down_still_returns_a_response(self, schema):
        cluster = make_cluster(schema, replication=2)
        for instance in ("server-0", "server-1", "server-2"):
            cluster.crash_server(instance)
        response = cluster.execute("SELECT count(*) FROM events")
        assert response.partial
        assert response.rows[0][0] == 0
        assert response.exceptions

    def test_retry_attempts_are_bounded(self, schema):
        cluster = make_cluster(schema, replication=3)
        for instance in ("server-0", "server-1", "server-2"):
            cluster.crash_server(instance)
        cluster.execute("SELECT count(*) FROM events")
        broker = cluster.brokers[0]
        # Each primary sub-request may retry at most
        # MAX_SUBREQUEST_ATTEMPTS - 1 times.
        assert broker.metrics.count("scatter_requests") <= (
            3 * broker.MAX_SUBREQUEST_ATTEMPTS
        )


class TestDeadlines:
    def test_timeout_fires_on_real_elapsed_work(self, schema):
        """OPTION(timeoutMs=...) is honored against measured execution
        time, not only against injected latency."""
        cluster = PinotCluster(num_servers=1)
        cluster.create_table(TableConfig.offline("events", schema))
        cluster.upload_records("events", records([17000]))
        cluster.server("server-0").faults.busy_work_s = 0.05
        response = cluster.execute(
            "SELECT count(*) FROM events OPTION (timeoutMs = 10)"
        )
        assert response.partial
        assert any("timed out" in e for e in response.exceptions)

    def test_no_timeout_waits_for_slow_work(self, schema):
        cluster = PinotCluster(num_servers=1)
        cluster.create_table(TableConfig.offline("events", schema))
        cluster.upload_records("events", records([17000]))
        cluster.server("server-0").faults.busy_work_s = 0.02
        response = cluster.execute("SELECT count(*) FROM events")
        assert not response.partial
        assert response.rows[0][0] == 10


class TestBrokerMetrics:
    def test_stage_timings_recorded(self, schema):
        cluster = make_cluster(schema, replication=1)
        response = cluster.execute("SELECT count(*) FROM events")
        metrics = cluster.brokers[0].metrics
        for stage in ("route", "scatter", "gather", "merge"):
            assert stage in metrics.stages
            assert metrics.stages[stage].count >= 1
            assert stage in response.stage_times_ms
        assert metrics.count("queries") == 1
        assert metrics.count("scatter_requests") >= 1

    def test_snapshot_shape(self, schema):
        cluster = make_cluster(schema, replication=1)
        cluster.execute("SELECT count(*) FROM events")
        snapshot = cluster.brokers[0].metrics.snapshot()
        assert snapshot["counters"]["queries"] == 1
        assert snapshot["stages"]["merge"]["count"] == 1
        assert snapshot["stages"]["route"]["total_ms"] >= 0.0

    def test_healthy_queries_record_no_retries(self, schema):
        cluster = make_cluster(schema, replication=2)
        response = cluster.execute("SELECT count(*) FROM events")
        assert response.num_retries == 0
        assert response.recovered_exceptions == []
        assert cluster.brokers[0].metrics.count("retries") == 0


class TestHedgeLoserExclusion:
    """Regression: a sub-request whose hedge also failed used to be
    enqueued with ``tried={primary}`` only, so the gather reselect
    could immediately re-pick the replica whose hedge just failed."""

    def one_segment_cluster(self, schema, seed=0):
        cluster = PinotCluster(num_servers=3, seed=seed,
                              hedging=HedgePolicy())
        cluster.create_table(TableConfig.offline("events", schema,
                                                 replication=3))
        cluster.upload_records("events",
                               records([17000, 17001, 17002]),
                               rows_per_segment=30)
        return cluster

    def calls(self, cluster):
        return {f"server-{i}": cluster.net.endpoint(f"server-{i}")
                .stats.calls for i in range(3)}

    QUERY = "SELECT count(*) FROM events OPTION (skipCache = true)"

    def query_calls(self, cluster):
        """Per-server transport calls made by one query (excluding
        upload/management traffic)."""
        before = self.calls(cluster)
        response = cluster.execute(self.QUERY)
        after = self.calls(cluster)
        return response, {server: after[server] - before[server]
                          for server in after}

    def test_gather_reselect_excludes_failed_hedge_replica(self, schema):
        # Learn the deterministic routing: primary replica first, then
        # the replica a failed primary's hedge re-routes to.
        probe = self.one_segment_cluster(schema)
        __, calls = self.query_calls(probe)
        primary = max(calls, key=calls.get)

        probe2 = self.one_segment_cluster(schema)
        probe2.server(primary).faults.error_rate = 1.0
        response = probe2.execute(self.QUERY)
        assert not response.partial
        recovered = [e for e in response.recovered_exceptions
                     if "via hedge" in e]
        assert recovered, "hedge-on-failure did not fire"
        loser = recovered[0].split("recovered on ")[1].split(" ")[0]
        assert loser != primary

        # Now fail the hedge target too: the gather loop must go to
        # the third replica, never back to the loser.
        cluster = self.one_segment_cluster(schema)
        cluster.server(primary).faults.error_rate = 1.0
        cluster.server(loser).faults.error_rate = 1.0
        response, calls = self.query_calls(cluster)
        broker = cluster.brokers[0]
        assert broker.metrics.count("hedges") >= 1
        assert broker.metrics.count("hedge_wins") == 0
        assert not response.partial
        assert response.rows[0][0] == 30
        # One call each: primary scatter, its hedge, and the gather
        # failover to the survivor. A second call on the loser means
        # reselect re-picked the replica that just failed.
        assert calls[primary] == 1
        assert calls[loser] == 1, (
            f"hedge loser {loser} was re-picked: {calls}")
        assert sum(calls.values()) == 3


class TestGiveUpAttribution:
    """Regression: give-up and unroutable errors blamed the original
    primary even when a different replica produced the last failure or
    only a subset of segments was stuck."""

    def test_retry_exhaustion_lists_all_tried_replicas(self, schema):
        cluster = make_cluster(schema, replication=3)
        for instance in ("server-0", "server-1", "server-2"):
            cluster.crash_server(instance)
        response = cluster.execute("SELECT count(*) FROM events")
        assert response.partial
        give_ups = [e for e in response.exceptions if "gave up" in e]
        assert give_ups
        for error in give_ups:
            assert "retry attempts exhausted" in error
            assert ("tried ['server-0', 'server-1', 'server-2']"
                    in error)

    def test_give_up_attributed_to_last_failing_server(self, schema):
        """The exception line leads with the server that produced the
        final error, not a blanket blame on the primary."""
        cluster = make_cluster(schema, replication=3)
        for instance in ("server-0", "server-1", "server-2"):
            cluster.crash_server(instance)
        response = cluster.execute("SELECT count(*) FROM events")
        for error in response.exceptions:
            if "gave up" not in error:
                continue
            blamed = error.split(":")[0]
            # The blamed server must be among the tried replicas and
            # its own failure text precedes the give-up annotation.
            assert blamed in ("server-0", "server-1", "server-2")
            assert error.index("unreachable") < error.index("gave up")

    def test_unroutable_names_stuck_segments_and_tried(self, schema):
        cluster = make_cluster(schema, replication=1)
        cluster.crash_server("server-0")
        response = cluster.execute("SELECT count(*) FROM events")
        assert response.partial
        unroutable = [e for e in response.exceptions
                      if "no untried replica" in e]
        assert unroutable
        for error in unroutable:
            assert "segments [" in error
            assert "tried ['server-0']" in error
            assert "last error:" in error

    def test_deadline_exhaustion_attributed(self, schema):
        """Slow servers burn the deadline before retries can exhaust:
        the give-up says so and still lists what was tried."""
        cluster = make_cluster(schema, replication=3)
        for instance in ("server-0", "server-1", "server-2"):
            cluster.server(instance).faults.busy_work_s = 0.5
        response = cluster.execute(
            "SELECT count(*) FROM events OPTION (timeoutMs = 300)")
        assert response.partial
        assert any("gave up: deadline exhausted" in e and "tried" in e
                   for e in response.exceptions)


class TestReselect:
    def snapshot(self):
        return TableRoutingSnapshot(segment_to_instances={
            "seg-0": ["s0", "s1"],
            "seg-1": ["s0", "s2"],
            "seg-2": ["s0"],
        })

    def test_reselect_avoids_excluded_instances(self):
        strategy = BalancedRouting()
        strategy.rebuild(self.snapshot())
        table, unroutable = strategy.reselect(["seg-0", "seg-1"], {"s0"})
        assert unroutable == []
        assigned = {segment: instance
                    for instance, segments in table.items()
                    for segment in segments}
        assert assigned == {"seg-0": "s1", "seg-1": "s2"}

    def test_reselect_reports_unroutable_segments(self):
        strategy = BalancedRouting()
        strategy.rebuild(self.snapshot())
        table, unroutable = strategy.reselect(["seg-2"], {"s0"})
        assert table == {}
        assert unroutable == ["seg-2"]

    def test_snapshot_retained_by_all_strategies(self):
        strategy = BalancedRouting()
        snapshot = self.snapshot()
        strategy.rebuild(snapshot)
        assert strategy.snapshot is snapshot

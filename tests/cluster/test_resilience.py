"""Resilient scatter/gather: replica failover, graceful degradation,
and broker metrics under injected faults (§3.3.3 step 7; §4.4)."""

import pytest

from repro.cluster.pinot import PinotCluster
from repro.cluster.table import TableConfig
from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column
from repro.routing.base import TableRoutingSnapshot
from repro.routing.balanced import BalancedRouting


@pytest.fixture
def schema():
    return Schema("events", [
        dimension("country"), metric("views", DataType.LONG),
        time_column("day", DataType.INT),
    ])


def records(days, per_day=10):
    return [{"country": "us", "views": 1, "day": day}
            for day in days for __ in range(per_day)]


def make_cluster(schema, replication, num_servers=3):
    cluster = PinotCluster(num_servers=num_servers)
    cluster.create_table(TableConfig.offline("events", schema,
                                             replication=replication))
    cluster.upload_records("events", records([17000, 17001, 17002]),
                           rows_per_segment=10)
    return cluster


class TestReplicaFailover:
    def test_crash_and_straggler_recovered_non_partial(self, schema):
        """The acceptance scenario: a 3-replica table with one server
        crash-injected and one slow-injected still returns a complete,
        correct, non-partial result via replica failover."""
        cluster = make_cluster(schema, replication=3)
        cluster.crash_server("server-0")
        cluster.server("server-1").faults.extra_latency_s = 5.0
        response = cluster.execute(
            "SELECT count(*) FROM events OPTION (timeoutMs = 2000)"
        )
        assert not response.partial
        assert response.exceptions == []
        assert response.rows[0][0] == 30
        # The failures happened and were repaired, and the broker
        # recorded the repair.
        assert response.num_retries > 0
        assert response.num_segments_failed_over > 0
        assert response.recovered_exceptions
        metrics = cluster.brokers[0].metrics
        assert metrics.count("retries") > 0
        assert metrics.count("failovers") > 0
        assert metrics.count("servers_unreachable") > 0

    def test_single_crash_recovered_without_timeout_option(self, schema):
        cluster = make_cluster(schema, replication=2)
        cluster.crash_server("server-2")
        response = cluster.execute("SELECT count(*) FROM events")
        assert not response.partial
        assert response.rows[0][0] == 30

    def test_flaky_server_recovered(self, schema):
        cluster = make_cluster(schema, replication=2)
        cluster.server("server-0").faults.fail_next = 5
        response = cluster.execute("SELECT count(*) FROM events")
        assert not response.partial
        assert response.rows[0][0] == 30

    def test_group_by_correct_after_failover(self, schema):
        """Failover must not double-count: each failed sub-request's
        segments are re-executed exactly once elsewhere."""
        cluster = PinotCluster(num_servers=3)
        cluster.create_table(TableConfig.offline("events", schema,
                                                 replication=3))
        rows = [{"country": country, "views": 1, "day": 17000}
                for country in ("us", "de") for __ in range(10)]
        cluster.upload_records("events", rows, rows_per_segment=5)
        cluster.crash_server("server-0")
        response = cluster.execute(
            "SELECT sum(views) FROM events GROUP BY country TOP 5"
        )
        assert not response.partial
        assert sorted(response.rows) == [("de", 10.0), ("us", 10.0)]


class TestGracefulDegradation:
    def test_all_replicas_down_returns_partial_with_detail(self, schema):
        """When no replica can serve some segments the query degrades:
        partial=True, per-server error detail, surviving data intact."""
        cluster = make_cluster(schema, replication=1)
        cluster.crash_server("server-0")
        response = cluster.execute("SELECT count(*) FROM events")
        assert response.partial
        assert any("server-0" in e and "unreachable" in e
                   for e in response.exceptions)
        # Each remaining server holds one 10-row segment.
        assert response.rows[0][0] == 20
        metrics = cluster.brokers[0].metrics
        assert metrics.count("segments_unroutable") > 0
        assert metrics.count("partial_responses") >= 1

    def test_every_server_down_still_returns_a_response(self, schema):
        cluster = make_cluster(schema, replication=2)
        for instance in ("server-0", "server-1", "server-2"):
            cluster.crash_server(instance)
        response = cluster.execute("SELECT count(*) FROM events")
        assert response.partial
        assert response.rows[0][0] == 0
        assert response.exceptions

    def test_retry_attempts_are_bounded(self, schema):
        cluster = make_cluster(schema, replication=3)
        for instance in ("server-0", "server-1", "server-2"):
            cluster.crash_server(instance)
        cluster.execute("SELECT count(*) FROM events")
        broker = cluster.brokers[0]
        # Each primary sub-request may retry at most
        # MAX_SUBREQUEST_ATTEMPTS - 1 times.
        assert broker.metrics.count("scatter_requests") <= (
            3 * broker.MAX_SUBREQUEST_ATTEMPTS
        )


class TestDeadlines:
    def test_timeout_fires_on_real_elapsed_work(self, schema):
        """OPTION(timeoutMs=...) is honored against measured execution
        time, not only against injected latency."""
        cluster = PinotCluster(num_servers=1)
        cluster.create_table(TableConfig.offline("events", schema))
        cluster.upload_records("events", records([17000]))
        cluster.server("server-0").faults.busy_work_s = 0.05
        response = cluster.execute(
            "SELECT count(*) FROM events OPTION (timeoutMs = 10)"
        )
        assert response.partial
        assert any("timed out" in e for e in response.exceptions)

    def test_no_timeout_waits_for_slow_work(self, schema):
        cluster = PinotCluster(num_servers=1)
        cluster.create_table(TableConfig.offline("events", schema))
        cluster.upload_records("events", records([17000]))
        cluster.server("server-0").faults.busy_work_s = 0.02
        response = cluster.execute("SELECT count(*) FROM events")
        assert not response.partial
        assert response.rows[0][0] == 10


class TestBrokerMetrics:
    def test_stage_timings_recorded(self, schema):
        cluster = make_cluster(schema, replication=1)
        response = cluster.execute("SELECT count(*) FROM events")
        metrics = cluster.brokers[0].metrics
        for stage in ("route", "scatter", "gather", "merge"):
            assert stage in metrics.stages
            assert metrics.stages[stage].count >= 1
            assert stage in response.stage_times_ms
        assert metrics.count("queries") == 1
        assert metrics.count("scatter_requests") >= 1

    def test_snapshot_shape(self, schema):
        cluster = make_cluster(schema, replication=1)
        cluster.execute("SELECT count(*) FROM events")
        snapshot = cluster.brokers[0].metrics.snapshot()
        assert snapshot["counters"]["queries"] == 1
        assert snapshot["stages"]["merge"]["count"] == 1
        assert snapshot["stages"]["route"]["total_ms"] >= 0.0

    def test_healthy_queries_record_no_retries(self, schema):
        cluster = make_cluster(schema, replication=2)
        response = cluster.execute("SELECT count(*) FROM events")
        assert response.num_retries == 0
        assert response.recovered_exceptions == []
        assert cluster.brokers[0].metrics.count("retries") == 0


class TestReselect:
    def snapshot(self):
        return TableRoutingSnapshot(segment_to_instances={
            "seg-0": ["s0", "s1"],
            "seg-1": ["s0", "s2"],
            "seg-2": ["s0"],
        })

    def test_reselect_avoids_excluded_instances(self):
        strategy = BalancedRouting()
        strategy.rebuild(self.snapshot())
        table, unroutable = strategy.reselect(["seg-0", "seg-1"], {"s0"})
        assert unroutable == []
        assigned = {segment: instance
                    for instance, segments in table.items()
                    for segment in segments}
        assert assigned == {"seg-0": "s1", "seg-1": "s2"}

    def test_reselect_reports_unroutable_segments(self):
        strategy = BalancedRouting()
        strategy.rebuild(self.snapshot())
        table, unroutable = strategy.reselect(["seg-2"], {"s0"})
        assert table == {}
        assert unroutable == ["seg-2"]

    def test_snapshot_retained_by_all_strategies(self):
        strategy = BalancedRouting()
        snapshot = self.snapshot()
        strategy.rebuild(snapshot)
        assert strategy.snapshot is snapshot

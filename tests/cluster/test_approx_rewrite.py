"""Tests for the broker's smart-approximation rewrite.

When ``use_approximate_function`` (broker config, off by default) or the
``OPTION(useApproximateFunction=...)`` per-query override enables it,
the broker swaps exact DISTINCTCOUNT/PERCENTILE aggregations for their
sketch variants — but only when segment-metadata estimates cross
``approx_threshold`` — records the rewrite in response metadata, and
keys the result cache on the rewritten plan so exact and approximate
answers never collide.
"""

import random

import pytest

from repro.cluster.pinot import PinotCluster
from repro.cluster.table import TableConfig
from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column


@pytest.fixture
def schema():
    return Schema("events", [
        dimension("country"), metric("views", DataType.LONG),
        metric("memberId", DataType.LONG),
        time_column("day", DataType.INT),
    ])


def make_records(n, distinct_members):
    rng = random.Random(2)
    return [{"country": rng.choice(["us", "ca"]),
             "views": rng.randint(0, 99),
             "memberId": rng.randrange(distinct_members),
             "day": 17000 + i % 7}
            for i in range(n)]


def make_cluster(schema, records, **kwargs):
    cluster = PinotCluster(num_servers=2, **kwargs)
    cluster.create_table(TableConfig.offline("events", schema))
    cluster.upload_records("events", records)
    return cluster


EXACT_DISTINCT = "SELECT distinctcount(memberId) FROM events"
EXACT_PERCENTILE = "SELECT percentile95(views) FROM events"


class TestEnablement:
    def test_default_off(self, schema):
        records = make_records(300, 200)
        cluster = make_cluster(schema, records)
        response = cluster.execute(EXACT_DISTINCT)
        assert response.rewrites == ()
        # exact answer, untouched
        assert response.rows[0][0] == len({r["memberId"] for r in records})

    def test_broker_config_enables(self, schema):
        cluster = make_cluster(schema, make_records(300, 200),
                               use_approximate_function=True,
                               approx_threshold=0)
        response = cluster.execute(EXACT_DISTINCT)
        assert len(response.rewrites) == 1
        assert "distinctcounthll" in response.rewrites[0]
        assert cluster.brokers[0].metrics.count("approx_rewrites") == 1

    def test_option_overrides_off_config(self, schema):
        cluster = make_cluster(schema, make_records(300, 200),
                               approx_threshold=0)
        response = cluster.execute(
            EXACT_DISTINCT + " OPTION(useApproximateFunction=true)")
        assert len(response.rewrites) == 1

    def test_option_overrides_on_config(self, schema):
        records = make_records(300, 200)
        cluster = make_cluster(schema, records,
                               use_approximate_function=True,
                               approx_threshold=0)
        response = cluster.execute(
            EXACT_DISTINCT + " OPTION(useApproximateFunction=false)")
        assert response.rewrites == ()
        assert response.rows[0][0] == len({r["memberId"] for r in records})

    def test_untargeted_query_untouched(self, schema):
        cluster = make_cluster(schema, make_records(300, 200),
                               use_approximate_function=True,
                               approx_threshold=0)
        response = cluster.execute("SELECT count(*) FROM events")
        assert response.rewrites == ()
        assert cluster.brokers[0].metrics.count("approx_rewrites") == 0


class TestThresholdGating:
    def test_distinctcount_gates_on_cardinality(self, schema):
        # 2000 rows but only 50 distinct members: the cardinality-gated
        # DISTINCTCOUNT stays exact under a threshold of 100, while the
        # row-count-gated percentile rewrites.
        cluster = make_cluster(schema, make_records(2000, 50),
                               use_approximate_function=True,
                               approx_threshold=100)
        distinct = cluster.execute(EXACT_DISTINCT)
        assert distinct.rewrites == ()
        assert distinct.rows[0][0] == 50
        percentile = cluster.execute(EXACT_PERCENTILE)
        assert len(percentile.rewrites) == 1
        assert "percentileest95" in percentile.rewrites[0]

    def test_high_threshold_blocks_all(self, schema):
        cluster = make_cluster(schema, make_records(2000, 50),
                               use_approximate_function=True,
                               approx_threshold=10_000_000)
        assert cluster.execute(EXACT_DISTINCT).rewrites == ()
        assert cluster.execute(EXACT_PERCENTILE).rewrites == ()

    def test_rewritten_answer_near_exact(self, schema):
        records = make_records(5000, 3000)
        cluster = make_cluster(schema, records,
                               use_approximate_function=True,
                               approx_threshold=0)
        exact = len({r["memberId"] for r in records})
        approx = cluster.execute(EXACT_DISTINCT).rows[0][0]
        assert abs(approx - exact) / exact < 0.08


class TestCacheInteraction:
    def test_exact_and_approx_never_collide(self, schema):
        records = make_records(1500, 1000)
        cluster = make_cluster(schema, records,
                               approx_threshold=0)
        exact = cluster.execute(EXACT_DISTINCT)
        approx = cluster.execute(
            EXACT_DISTINCT + " OPTION(useApproximateFunction=true)")
        # Same base text, different physical plan: the second run must
        # NOT hit the first run's cache entry.
        assert exact.rows[0][0] == len({r["memberId"] for r in records})
        assert len(approx.rewrites) == 1
        exact_again = cluster.execute(EXACT_DISTINCT)
        assert exact_again.rows == exact.rows

    def test_cache_hit_keeps_rewrite_metadata(self, schema):
        cluster = make_cluster(schema, make_records(1500, 1000),
                               use_approximate_function=True,
                               approx_threshold=0)
        first = cluster.execute(EXACT_DISTINCT)
        second = cluster.execute(EXACT_DISTINCT)
        assert len(first.rewrites) == 1
        assert second.rewrites == first.rewrites
        assert second.rows == first.rows
        assert cluster.brokers[0].metrics.count("cache_hits") >= 1


class TestEmptyStates:
    def test_percentile_of_no_rows_is_null(self, schema):
        cluster = make_cluster(schema, make_records(300, 200))
        for pql in (EXACT_PERCENTILE + " WHERE views > 1000000",
                    "SELECT percentileest95(views) FROM events "
                    "WHERE views > 1000000"):
            response = cluster.execute(pql)
            assert response.rows[0][0] is None, pql

    def test_grouped_percentile_empty_groups_via_having(self, schema):
        # HAVING must tolerate the None that empty sketch states
        # finalize to, rather than comparing None against a number.
        cluster = make_cluster(schema, make_records(300, 200))
        response = cluster.execute(
            "SELECT percentileest50(views) FROM events "
            "WHERE views > 1000000 GROUP BY country "
            "HAVING percentileest50(views) > 10 TOP 5")
        assert list(response.rows) == []

"""Segment-completion protocol under injected server failure (§3.3.6).

The happy path is covered by test_completion.py; these tests exercise
the failure paths that the fault layer makes reachable: a committer
that dies mid-commit, and replica deaths during offset collection.
"""

import pytest

from repro.cluster.completion import (
    Instruction,
    SegmentCompletionManager,
)
from repro.cluster.pinot import PinotCluster
from repro.cluster.table import StreamConfig, TableConfig
from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column


@pytest.fixture
def schema():
    return Schema("events", [
        dimension("country"), metric("views", DataType.LONG),
        time_column("day", DataType.INT),
    ])


def make_realtime_cluster(schema, num_servers=3, replication=2):
    cluster = PinotCluster(num_servers=num_servers)
    cluster.create_kafka_topic("events-topic", 1)
    cluster.create_table(TableConfig.realtime(
        "events", schema,
        StreamConfig("events-topic", flush_threshold_rows=10),
        replication=replication,
    ))
    return cluster


def ingest_rows(cluster, n):
    cluster.ingest("events-topic",
                   [{"country": "us", "views": 1, "day": 17000}
                    for __ in range(n)])


class TestCommitterDeathMidCommit:
    def test_surviving_replica_commits_after_death(self, schema):
        cluster = make_realtime_cluster(schema)
        ingest_rows(cluster, 10)
        # Replicas are assigned least-loaded: server-0 and server-1
        # consume; with equal offsets the deterministic committer pick
        # is the lexicographically first replica, server-0.
        committer = cluster.server("server-0")
        committer.faults.fail_commit_next = 1
        cluster.drain_realtime()
        # The committer died mid-commit; nothing is committed yet.
        assert committer.faults.crashed
        assert cluster.helix.get_property(
            "realtime/events_REALTIME/events_REALTIME__0__0"
        )["status"] == "IN_PROGRESS"

        # Queries keep working through replica failover meanwhile.
        response = cluster.execute("SELECT count(*) FROM events")
        assert not response.partial
        assert response.rows[0][0] == 10

        # The death is observed; a surviving replica is elected
        # committer and the protocol completes.
        cluster.kill_server("server-0")
        cluster.drain_realtime()
        meta = cluster.helix.get_property(
            "realtime/events_REALTIME/events_REALTIME__0__0"
        )
        assert meta["status"] == "DONE"
        assert meta["end_offset"] == 10
        response = cluster.execute("SELECT count(*) FROM events")
        assert not response.partial
        assert response.rows[0][0] == 10

    def test_commit_fault_only_fires_once(self, schema):
        cluster = make_realtime_cluster(schema)
        server = cluster.server("server-0")
        server.faults.fail_commit_next = 1
        ingest_rows(cluster, 10)
        cluster.drain_realtime()
        cluster.kill_server("server-0")
        cluster.drain_realtime()
        # A later segment on the survivors commits normally.
        ingest_rows(cluster, 10)
        cluster.drain_realtime()
        response = cluster.execute("SELECT count(*) FROM events")
        assert response.rows[0][0] == 20


class TestCompletionManagerFailover:
    def test_committer_death_reelects_among_survivors(self):
        manager = SegmentCompletionManager(expected_replicas=2)
        assert manager.segment_consumed("seg", "s0", 100).instruction \
            is Instruction.HOLD
        response = manager.segment_consumed("seg", "s1", 100)
        # s0 (lexicographically first at the target offset) is the
        # committer, so s1 holds.
        assert response.instruction is Instruction.HOLD
        manager.fail_server("s0")
        response = manager.segment_consumed("seg", "s1", 100)
        assert response.instruction is Instruction.COMMIT
        assert manager.segment_commit("seg", "s1", 100)
        assert manager.is_committed("seg")

    def test_collector_death_stops_waiting_for_it(self):
        manager = SegmentCompletionManager(expected_replicas=3,
                                           max_hold_polls=100)
        assert manager.segment_consumed("seg", "s0", 50).instruction \
            is Instruction.HOLD
        assert manager.segment_consumed("seg", "s1", 60).instruction \
            is Instruction.HOLD
        # s1 dies before s2 ever reports; without death handling the
        # survivors would be held for the whole poll budget.
        manager.fail_server("s1")
        response = manager.segment_consumed("seg", "s2", 60)
        assert response.instruction in (Instruction.COMMIT,
                                        Instruction.CATCHUP,
                                        Instruction.HOLD)
        # The target no longer includes the dead replica's offset
        # requirement: two live replicas suffice to finish.
        response = manager.segment_consumed("seg", "s0", 60)
        final = manager.segment_consumed("seg", "s2", 60)
        assert Instruction.COMMIT in (response.instruction,
                                      final.instruction)

    def test_fail_server_ignores_committed_segments(self):
        manager = SegmentCompletionManager(expected_replicas=1)
        assert manager.segment_consumed("seg", "s0", 10).instruction \
            is Instruction.COMMIT
        assert manager.segment_commit("seg", "s0", 10)
        manager.fail_server("s0")
        assert manager.is_committed("seg")
        assert manager.committed_offset("seg") == 10

    def test_fail_server_unknown_server_is_a_noop(self):
        manager = SegmentCompletionManager(expected_replicas=2)
        manager.segment_consumed("seg", "s0", 10)
        manager.fail_server("never-seen")
        assert manager.segment_consumed("seg", "s1", 10).instruction \
            is Instruction.HOLD  # still collecting normally

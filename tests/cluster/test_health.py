"""Tests for the broker-side failure detector: health scoring,
ejection, probe-back, and the broker integration (ejected servers get
only probe traffic; healed servers return to rotation)."""

import pytest

from repro.cluster.health import (
    EVENT_EJECTED,
    EVENT_HEALED,
    FailureDetector,
    HealthPolicy,
    QueuePressure,
)
from repro.cluster.pinot import PinotCluster
from repro.cluster.table import TableConfig
from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column

POLICY = HealthPolicy(min_samples=4, probe_interval_s=1.0,
                      probe_successes_to_heal=2)


def feed_failures(detector, instance, n, now=0.0):
    event = None
    for __ in range(n):
        event = detector.observe_failure(instance, now=now) or event
    return event


def seed_peers(detector, peers=("s1", "s2", "s3"), n=10, latency_s=0.01):
    """Give the detector healthy peers so the fleet-fraction cap
    (at most half the known fleet ejected) permits ejections."""
    for index in range(n):
        for peer in peers:
            detector.observe_success(peer, latency_s=latency_s,
                                     now=float(index))


class TestHealthScoring:
    def test_error_ewma_ejects_after_min_samples(self):
        detector = FailureDetector(POLICY)
        seed_peers(detector)
        for index in range(POLICY.min_samples - 1):
            assert detector.observe_failure("s0", now=float(index)) is None
        assert detector.observe_failure("s0", now=5.0) == EVENT_EJECTED
        assert detector.is_ejected("s0")
        assert detector.counters["ejections"] == 1

    def test_successes_keep_server_healthy(self):
        detector = FailureDetector(POLICY)
        for index in range(50):
            detector.observe_success("s0", latency_s=0.01,
                                     now=float(index))
        assert not detector.is_ejected("s0")
        assert detector.score("s0")["error_ewma"] < 0.01

    def test_mixed_traffic_below_threshold_stays_in(self):
        """A 20% error rate keeps the EWMA under the 50% bar."""
        detector = FailureDetector(POLICY)
        seed_peers(detector)
        for index in range(50):
            if index % 5 == 0:
                detector.observe_failure("s0", now=float(index))
            else:
                detector.observe_success("s0", latency_s=0.01,
                                         now=float(index))
        assert not detector.is_ejected("s0")

    def test_latency_outlier_ejected_against_peer_median(self):
        """A server 4x slower than the healthy-peer median is ejected
        even though it never errors."""
        detector = FailureDetector(POLICY)
        event = None
        for index in range(12):
            for peer in ("s1", "s2", "s3"):
                detector.observe_success(peer, latency_s=0.05,
                                         now=float(index))
            event = detector.observe_success("s0", latency_s=0.50,
                                             now=float(index))
            if event is not None:
                break
        assert event == EVENT_EJECTED
        assert detector.is_ejected("s0")
        assert "latency ewma" in detector.score("s0")["eject_reason"]

    def test_latency_floor_suppresses_microsecond_outliers(self):
        """4x of a sub-floor median is still fast — no ejection."""
        detector = FailureDetector(POLICY)
        for index in range(12):
            for peer in ("s1", "s2", "s3"):
                detector.observe_success(peer, latency_s=0.001,
                                         now=float(index))
            detector.observe_success("s0", latency_s=0.008,
                                     now=float(index))
        assert not detector.is_ejected("s0")

    def test_fleet_fraction_cap(self):
        """With max_ejected_fraction=0.5 and two servers, the second
        breach is not ejected — someone must serve traffic."""
        detector = FailureDetector(POLICY)
        for index in range(10):
            detector.observe_success("s0", latency_s=0.01,
                                     now=float(index))
            detector.observe_success("s1", latency_s=0.01,
                                     now=float(index))
        feed_failures(detector, "s0", 10, now=20.0)
        assert detector.is_ejected("s0")
        feed_failures(detector, "s1", 10, now=20.0)
        assert not detector.is_ejected("s1")


class TestProbeBack:
    def eject(self, detector, instance="s0", now=0.0):
        seed_peers(detector)
        feed_failures(detector, instance, 10, now=now)
        assert detector.is_ejected(instance)

    def test_probe_cadence_gated(self):
        detector = FailureDetector(POLICY)
        self.eject(detector, now=0.0)
        # The post-ejection probe failures above re-armed the timer at
        # t=0, so the next probe is due one full interval later.
        assert not detector.try_probe("s0", now=0.5)
        assert detector.try_probe("s0", now=1.5)
        assert not detector.try_probe("s0", now=2.0)  # within interval
        assert detector.try_probe("s0", now=2.6)

    def test_forced_probe_ignores_cadence(self):
        detector = FailureDetector(POLICY)
        self.eject(detector, now=0.0)
        assert detector.try_probe("s0", now=1.5)
        assert detector.try_probe("s0", now=1.6, force=True)
        assert detector.counters["forced_probes"] == 1

    def test_heals_after_consecutive_probe_successes(self):
        detector = FailureDetector(POLICY)
        self.eject(detector, now=0.0)
        assert detector.observe_success("s0", 0.01, now=1.0) is None
        assert detector.observe_success("s0", 0.01,
                                        now=2.0) == EVENT_HEALED
        assert not detector.is_ejected("s0")
        assert detector.counters["heals"] == 1
        # Healed state is fresh: old EWMAs don't linger.
        assert detector.score("s0")["error_ewma"] == 0.0
        assert detector.score("s0")["samples"] == 0

    def test_probe_failure_resets_heal_progress(self):
        detector = FailureDetector(POLICY)
        self.eject(detector, now=0.0)
        detector.observe_success("s0", 0.01, now=1.0)
        detector.observe_failure("s0", now=2.0)
        assert detector.observe_success("s0", 0.01, now=3.0) is None
        assert detector.observe_success("s0", 0.01,
                                        now=4.0) == EVENT_HEALED

    def test_no_flap_under_flaky_probes(self):
        """A server whose probes alternate success/failure never heals
        (and never double-ejects)."""
        detector = FailureDetector(POLICY)
        self.eject(detector, now=0.0)
        for index in range(20):
            if index % 2 == 0:
                detector.observe_success("s0", 0.01, now=float(index + 1))
            else:
                detector.observe_failure("s0", now=float(index + 1))
        assert detector.is_ejected("s0")
        assert detector.counters["ejections"] == 1
        assert detector.counters["heals"] == 0

    def test_discipline_counter_flags_non_probe_dispatch(self):
        detector = FailureDetector(POLICY)
        self.eject(detector, now=0.0)
        detector.record_dispatch("s0", now=1.0, probe=True)
        assert detector.counters["discipline_violations"] == 0
        detector.record_dispatch("s0", now=1.1, probe=False)
        assert detector.counters["discipline_violations"] == 1

    def test_events_log_transitions(self):
        detector = FailureDetector(POLICY)
        self.eject(detector, now=0.0)
        detector.observe_success("s0", 0.01, now=1.0)
        detector.observe_success("s0", 0.01, now=2.0)
        kinds = [(instance, kind) for __, instance, kind
                 in detector.events]
        assert kinds == [("s0", EVENT_EJECTED), ("s0", EVENT_HEALED)]


class TestPolicyValidation:
    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            HealthPolicy(ewma_alpha=0.0)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            HealthPolicy(error_threshold=1.5)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            HealthPolicy(max_ejected_fraction=-0.1)


class TestQueuePressure:
    def test_starts_at_zero(self):
        assert QueuePressure().value == 0.0

    def test_tracks_utilization(self):
        pressure = QueuePressure(alpha=0.5)
        for __ in range(20):
            pressure.observe(0.8)
        assert pressure.value == pytest.approx(0.8, abs=0.01)

    def test_clips_out_of_range(self):
        pressure = QueuePressure(alpha=1.0)
        pressure.observe(7.0)
        assert pressure.value == 1.0
        pressure.observe(-3.0)
        assert pressure.value == 0.0


# -- broker integration -------------------------------------------------------


@pytest.fixture
def schema():
    return Schema("events", [
        dimension("country"), metric("views", DataType.LONG),
        time_column("day", DataType.INT),
    ])


def make_cluster(schema, policy=POLICY, num_servers=3, replication=3):
    cluster = PinotCluster(num_servers=num_servers,
                          failure_detector=policy)
    cluster.create_table(TableConfig.offline("events", schema,
                                             replication=replication))
    rows = [{"country": "us", "views": 1, "day": day}
            for day in (17000, 17001, 17002) for __ in range(10)]
    cluster.upload_records("events", rows, rows_per_segment=10)
    return cluster


def endpoint_calls(cluster, instance):
    return cluster.net.endpoint(instance).stats.calls


class TestBrokerIntegration:
    def eject_server_zero(self, cluster):
        """Drive queries until the broker's detector ejects server-0."""
        broker = cluster.brokers[0]
        cluster.server("server-0").faults.error_rate = 1.0
        for index in range(20):
            cluster.execute(
                "SELECT count(*) FROM events OPTION (skipCache = true)")
            if broker.health.is_ejected("server-0"):
                return index + 1
        raise AssertionError("server-0 never ejected")

    def test_sick_server_ejected_and_queries_stay_whole(self, schema):
        cluster = make_cluster(schema)
        self.eject_server_zero(cluster)
        broker = cluster.brokers[0]
        assert broker.metrics.count("health_ejections") == 1
        response = cluster.execute(
            "SELECT count(*) FROM events OPTION (skipCache = true)")
        assert not response.partial
        assert response.rows[0][0] == 30

    def test_ejected_server_receives_only_probe_traffic(self, schema):
        cluster = make_cluster(schema)
        self.eject_server_zero(cluster)
        broker = cluster.brokers[0]
        baseline = endpoint_calls(cluster, "server-0")
        for __ in range(30):
            cluster.execute(
                "SELECT count(*) FROM events OPTION (skipCache = true)")
            cluster.clock.advance(0.01)
        probed = endpoint_calls(cluster, "server-0") - baseline
        # Only cadence-gated probes reached the ejected server; the
        # detector observed no non-probe dispatches at all.
        assert probed <= broker.health.counters["probes"]
        assert broker.health.counters["discipline_violations"] == 0
        assert broker.metrics.count("health_reroutes") > 0

    def test_healed_server_returns_to_rotation(self, schema):
        cluster = make_cluster(schema)
        self.eject_server_zero(cluster)
        broker = cluster.brokers[0]
        cluster.server("server-0").faults.recover()
        for __ in range(40):
            cluster.clock.advance(POLICY.probe_interval_s)
            cluster.execute(
                "SELECT count(*) FROM events OPTION (skipCache = true)")
            if not broker.health.is_ejected("server-0"):
                break
        assert not broker.health.is_ejected("server-0")
        assert broker.metrics.count("health_heals") == 1
        baseline = endpoint_calls(cluster, "server-0")
        for __ in range(10):
            cluster.execute(
                "SELECT count(*) FROM events OPTION (skipCache = true)")
        assert endpoint_calls(cluster, "server-0") > baseline

    def test_last_replica_forces_probe_instead_of_unroutable(self, schema):
        """When the ejected server is the only replica, correctness
        beats ejection hygiene: the broker probes it out-of-cadence
        rather than reporting the segments unroutable."""
        cluster = make_cluster(schema, num_servers=1, replication=1,
                               policy=HealthPolicy(
                                   min_samples=4,
                                   max_ejected_fraction=1.0))
        broker = cluster.brokers[0]
        cluster.server("server-0").faults.error_rate = 1.0
        for __ in range(10):
            cluster.execute(
                "SELECT count(*) FROM events OPTION (skipCache = true)")
        assert broker.health.is_ejected("server-0")
        cluster.server("server-0").faults.recover()
        response = cluster.execute(
            "SELECT count(*) FROM events OPTION (skipCache = true)")
        assert not response.partial
        assert response.rows[0][0] == 30
        assert broker.health.counters["forced_probes"] > 0
        assert broker.health.counters["discipline_violations"] == 0

    def test_detector_off_by_default(self, schema):
        cluster = PinotCluster(num_servers=2)
        assert all(b.health is None for b in cluster.brokers)

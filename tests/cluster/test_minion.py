"""Tests for the minion task framework (purge, index backfill)."""

import pytest

from repro.cluster.pinot import PinotCluster
from repro.cluster.table import TableConfig
from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column


@pytest.fixture
def schema():
    return Schema("events", [
        dimension("memberId", DataType.LONG), dimension("country"),
        metric("views", DataType.LONG), time_column("day", DataType.INT),
    ])


@pytest.fixture
def cluster(schema):
    cluster = PinotCluster(num_servers=2, num_minions=1)
    cluster.create_table(TableConfig.offline("events", schema))
    records = [{"memberId": i % 10, "country": "us", "views": 1,
                "day": 17000} for i in range(100)]
    cluster.upload_records("events", records, rows_per_segment=25)
    return cluster


class TestPurge:
    def test_purge_removes_member_data(self, cluster):
        """The paper's GDPR-style purge: download, expunge, rewrite,
        reindex, re-upload (§3.2)."""
        controller = cluster.leader_controller()
        task_id = controller.schedule_task(
            "purge", "events_OFFLINE",
            {"column": "memberId", "values": [3, 7]},
        )
        assert controller.task_status(task_id) == "PENDING"
        assert cluster.run_minions() == 1
        assert controller.task_status(task_id) == "COMPLETED"

        response = cluster.execute(
            "SELECT count(*) FROM events WHERE memberId IN (3, 7)"
        )
        assert response.rows[0][0] == 0
        response = cluster.execute("SELECT count(*) FROM events")
        assert response.rows[0][0] == 80

    def test_purge_preserves_segment_count_and_names(self, cluster):
        controller = cluster.leader_controller()
        before = controller.list_segments("events_OFFLINE")
        controller.schedule_task("purge", "events_OFFLINE",
                                 {"column": "memberId", "values": [0]})
        cluster.run_minions()
        assert controller.list_segments("events_OFFLINE") == before

    def test_purge_everything_deletes_segments(self, cluster):
        controller = cluster.leader_controller()
        controller.schedule_task(
            "purge", "events_OFFLINE",
            {"column": "memberId", "values": list(range(10))},
        )
        cluster.run_minions()
        assert controller.list_segments("events_OFFLINE") == []


class TestIndexBackfill:
    def test_add_inverted_index(self, cluster):
        """§5.2: inverted indexes added automatically from query logs."""
        controller = cluster.leader_controller()
        store = cluster.object_store
        before = store.get("events_OFFLINE",
                           store.list_segments("events_OFFLINE")[0])
        assert before.column("country").inverted is None

        controller.schedule_task("add_inverted_index", "events_OFFLINE",
                                 {"column": "country"})
        cluster.run_minions()
        after = store.get("events_OFFLINE",
                          store.list_segments("events_OFFLINE")[0])
        assert after.column("country").inverted is not None
        response = cluster.execute(
            "SELECT count(*) FROM events WHERE country = 'us'"
        )
        assert response.rows[0][0] == 100


class TestMergeRollup:
    def test_merge_reduces_segment_count(self, cluster):
        controller = cluster.leader_controller()
        assert len(controller.list_segments("events_OFFLINE")) == 4
        before = cluster.execute(
            "SELECT sum(views) FROM events"
        ).rows[0][0]
        controller.schedule_task("merge_rollup", "events_OFFLINE",
                                 {"rollup": False})
        cluster.run_minions()
        assert len(controller.list_segments("events_OFFLINE")) == 1
        after = cluster.execute("SELECT sum(views) FROM events")
        assert after.rows[0][0] == before
        assert after.rows[0][0] == 100.0

    def test_rollup_collapses_duplicate_dimensions(self, cluster):
        controller = cluster.leader_controller()
        controller.schedule_task("merge_rollup", "events_OFFLINE",
                                 {"rollup": True})
        cluster.run_minions()
        [name] = controller.list_segments("events_OFFLINE")
        merged = cluster.object_store.get("events_OFFLINE", name)
        # 10 members x 1 country x 1 day = 10 unique combinations.
        assert merged.num_docs == 10
        response = cluster.execute(
            "SELECT sum(views) FROM events GROUP BY memberId TOP 20"
        )
        assert all(row[1] == 10.0 for row in response.rows)

    def test_batched_merge(self, cluster):
        controller = cluster.leader_controller()
        controller.schedule_task(
            "merge_rollup", "events_OFFLINE",
            {"rollup": False, "max_segments_per_merge": 2},
        )
        cluster.run_minions()
        assert len(controller.list_segments("events_OFFLINE")) == 2
        assert cluster.execute(
            "SELECT count(*) FROM events"
        ).rows[0][0] == 100

    def test_single_segment_is_noop(self, cluster):
        controller = cluster.leader_controller()
        controller.schedule_task("merge_rollup", "events_OFFLINE", {})
        cluster.run_minions()
        controller.schedule_task("merge_rollup", "events_OFFLINE", {})
        cluster.run_minions()
        assert len(controller.list_segments("events_OFFLINE")) == 1


class TestTaskFramework:
    def test_unknown_task_type_fails(self, cluster):
        controller = cluster.leader_controller()
        task_id = controller.schedule_task("teleport", "events_OFFLINE")
        cluster.run_minions()
        assert controller.task_status(task_id) == "FAILED"

    def test_custom_task_type_registered(self, cluster):
        ran = []
        cluster.minions[0].register_task_type(
            "custom", lambda minion, task: ran.append(task["id"])
        )
        controller = cluster.leader_controller()
        task_id = controller.schedule_task("custom", "events_OFFLINE")
        cluster.run_minions()
        assert ran == [task_id]
        assert controller.task_status(task_id) == "COMPLETED"

    def test_tasks_run_once(self, cluster):
        controller = cluster.leader_controller()
        controller.schedule_task("purge", "events_OFFLINE",
                                 {"column": "memberId", "values": []})
        assert cluster.run_minions() == 1
        assert cluster.run_minions() == 0

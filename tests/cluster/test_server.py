"""Tests for server instances: transitions, queries, fault injection."""

import pytest

from repro.cluster.pinot import PinotCluster
from repro.cluster.server import (
    parse_realtime_segment_name,
    realtime_segment_name,
)
from repro.cluster.table import TableConfig
from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column
from repro.pql.parser import parse
from repro.pql.rewriter import optimize


@pytest.fixture
def schema():
    return Schema("events", [
        dimension("country"), metric("views", DataType.LONG),
        time_column("day", DataType.INT),
    ])


@pytest.fixture
def cluster(schema):
    cluster = PinotCluster(num_servers=2, num_brokers=1)
    cluster.create_table(TableConfig.offline("events", schema,
                                             replication=2))
    records = [{"country": c, "views": i, "day": 17000 + i % 3}
               for i, c in enumerate(["us", "ca"] * 20)]
    cluster.upload_records("events", records)
    return cluster


class TestSegmentNames:
    def test_realtime_name_roundtrip(self):
        name = realtime_segment_name("t_REALTIME", 3, 7)
        assert parse_realtime_segment_name(name) == ("t_REALTIME", 3, 7)


class TestHosting:
    def test_replicas_host_all_segments(self, cluster):
        for server in cluster.servers:
            assert server.hosted_segments("events_OFFLINE")
            assert server.num_docs("events_OFFLINE") == 40

    def test_unload_on_offline_transition(self, cluster):
        from repro.helix.statemachine import SegmentState

        server = cluster.servers[0]
        [segment_name] = server.hosted_segments("events_OFFLINE")
        server.process_transition("events_OFFLINE", segment_name,
                                  SegmentState.ONLINE,
                                  SegmentState.OFFLINE)
        assert server.hosted_segments("events_OFFLINE") == []

    def test_unknown_segment_query_fails_gracefully(self, cluster):
        server = cluster.servers[0]
        query = optimize(parse("SELECT count(*) FROM events_OFFLINE"))
        result = server.execute(query, "events_OFFLINE", ["ghost"])
        assert result.error is not None


class TestQueryExecution:
    def test_execute_on_subset(self, cluster):
        server = cluster.servers[0]
        segments = server.hosted_segments("events_OFFLINE")
        query = optimize(parse(
            "SELECT count(*) FROM events_OFFLINE WHERE country = 'us'"
        ))
        result = server.execute(query, "events_OFFLINE", segments)
        assert result.error is None
        assert result.aggregation.states[0] == 20

    def test_fault_injection(self, cluster):
        server = cluster.servers[0]
        server.faults.fail_next = 1
        query = optimize(parse("SELECT count(*) FROM events_OFFLINE"))
        result = server.execute(query, "events_OFFLINE", [])
        assert result.error == "injected failure"
        result = server.execute(query, "events_OFFLINE", [])
        assert result.error is None

    def test_query_counter(self, cluster):
        server = cluster.servers[0]
        before = server.queries_executed
        query = optimize(parse("SELECT count(*) FROM events_OFFLINE"))
        server.execute(query, "events_OFFLINE", [])
        assert server.queries_executed == before + 1


class TestBlankNodeRecovery:
    def test_new_server_serves_from_object_store(self, cluster):
        """§3.4: any node can be replaced by a blank one."""
        new_server = cluster.add_server("server-fresh")
        controller = cluster.leader_controller()
        # Rebalance one segment onto the fresh server via ideal state.
        mapping = cluster.helix.ideal_state("events_OFFLINE")
        segment_name = next(iter(mapping))
        mapping[segment_name]["server-fresh"] = "ONLINE"
        cluster.helix.set_ideal_state("events_OFFLINE", mapping)
        assert new_server.hosted_segments("events_OFFLINE") == [
            segment_name
        ]
        response = cluster.execute("SELECT count(*) FROM events")
        assert response.rows[0][0] == 40

"""Tests for the controller: leadership, uploads, quota, retention."""

import pytest

from repro.cluster.pinot import PinotCluster
from repro.cluster.table import TableConfig
from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column
from repro.errors import ClusterError, NotLeaderError, QuotaExceededError
from repro.segment.builder import SegmentBuilder


@pytest.fixture
def schema():
    return Schema("events", [
        dimension("country"), metric("views", DataType.LONG),
        time_column("day", DataType.INT),
    ])


@pytest.fixture
def cluster(schema):
    cluster = PinotCluster(num_servers=3, num_brokers=1)
    cluster.create_table(TableConfig.offline("events", schema,
                                             replication=2))
    return cluster


def make_segment(schema, name, days, rows_per_day=10):
    builder = SegmentBuilder(name, "events_OFFLINE", schema)
    for day in days:
        for i in range(rows_per_day):
            builder.add({"country": "us", "views": i, "day": day})
    return builder.build()


class TestLeadership:
    def test_single_leader(self):
        cluster = PinotCluster(num_servers=1, num_controllers=3)
        leaders = [c for c in cluster.controllers if c.is_leader]
        assert len(leaders) == 1

    def test_non_leader_rejects_admin_ops(self, cluster, schema):
        follower = next(c for c in cluster.controllers if not c.is_leader)
        with pytest.raises(NotLeaderError):
            follower.create_table(TableConfig.offline("x", schema))

    def test_failover_elects_new_leader(self, cluster):
        old = cluster.leader_controller()
        cluster.kill_controller(old.instance_id)
        new = cluster.leader_controller()
        assert new.instance_id != old.instance_id
        assert new.is_leader


class TestTables:
    def test_create_duplicate_rejected(self, cluster, schema):
        with pytest.raises(ClusterError, match="already exists"):
            cluster.create_table(TableConfig.offline("events", schema))

    def test_list_tables(self, cluster):
        assert cluster.leader_controller().list_tables() == [
            "events_OFFLINE"
        ]

    def test_delete_table(self, cluster, schema):
        controller = cluster.leader_controller()
        segment = make_segment(schema, "s1", [17000])
        controller.upload_segment("events_OFFLINE", segment)
        controller.delete_table("events_OFFLINE")
        assert controller.list_tables() == []
        assert cluster.object_store.list_segments("events_OFFLINE") == []


class TestUpload:
    def test_upload_assigns_replicas(self, cluster, schema):
        controller = cluster.leader_controller()
        segment = make_segment(schema, "s1", [17000])
        controller.upload_segment("events_OFFLINE", segment)
        view = cluster.helix.external_view("events_OFFLINE")
        assert len(view["s1"]) == 2
        assert all(state == "ONLINE" for state in view["s1"].values())

    def test_upload_balances_load(self, cluster, schema):
        controller = cluster.leader_controller()
        for i in range(6):
            controller.upload_segment(
                "events_OFFLINE", make_segment(schema, f"s{i}", [17000])
            )
        counts = {s.instance_id: len(s.hosted_segments("events_OFFLINE"))
                  for s in cluster.servers}
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_empty_segment_rejected(self, cluster, schema):
        controller = cluster.leader_controller()
        segment = make_segment(schema, "s1", [17000])
        segment.metadata.num_docs = 0
        with pytest.raises(ClusterError, match="empty"):
            controller.upload_segment("events_OFFLINE", segment)

    def test_quota_enforced(self, schema):
        cluster = PinotCluster(num_servers=2)
        cluster.create_table(
            TableConfig.offline("events", schema, quota_bytes=100)
        )
        controller = cluster.leader_controller()
        segment = make_segment(schema, "big", [17000], rows_per_day=500)
        with pytest.raises(QuotaExceededError):
            controller.upload_segment("events_OFFLINE", segment)

    def test_insufficient_servers_rejected(self, schema):
        cluster = PinotCluster(num_servers=1)
        cluster.create_table(TableConfig.offline("events", schema,
                                                 replication=3))
        controller = cluster.leader_controller()
        with pytest.raises(ClusterError, match="servers"):
            controller.upload_segment(
                "events_OFFLINE", make_segment(schema, "s1", [17000])
            )

    def test_replace_segment(self, cluster, schema):
        controller = cluster.leader_controller()
        controller.upload_segment("events_OFFLINE",
                                  make_segment(schema, "s1", [17000]))
        before = cluster.execute("SELECT count(*) FROM events").rows[0][0]
        replacement = make_segment(schema, "s1", [17000], rows_per_day=3)
        controller.replace_segment("events_OFFLINE", replacement)
        after = cluster.execute("SELECT count(*) FROM events").rows[0][0]
        assert before == 10
        assert after == 3

    def test_replace_missing_segment_rejected(self, cluster, schema):
        controller = cluster.leader_controller()
        with pytest.raises(ClusterError):
            controller.replace_segment(
                "events_OFFLINE", make_segment(schema, "ghost", [17000])
            )


class TestRetention:
    def test_old_segments_collected(self, schema):
        cluster = PinotCluster(num_servers=2)
        cluster.create_table(
            TableConfig.offline("events", schema, retention=30)
        )
        controller = cluster.leader_controller()
        controller.upload_segment("events_OFFLINE",
                                  make_segment(schema, "old", [17000]))
        controller.upload_segment("events_OFFLINE",
                                  make_segment(schema, "new", [17050]))
        deleted = cluster.run_retention(now=17060)
        assert deleted == ["old"]
        assert controller.list_segments("events_OFFLINE") == ["new"]
        response = cluster.execute("SELECT count(*) FROM events")
        assert response.rows[0][0] == 10

    def test_no_retention_keeps_everything(self, cluster, schema):
        controller = cluster.leader_controller()
        controller.upload_segment("events_OFFLINE",
                                  make_segment(schema, "ancient", [1]))
        assert cluster.run_retention(now=100_000) == []


class TestSchemaEvolution:
    def test_add_column_visible_without_reload(self, cluster, schema):
        controller = cluster.leader_controller()
        controller.upload_segment("events_OFFLINE",
                                  make_segment(schema, "s1", [17000]))
        controller.add_column("events_OFFLINE",
                              dimension("platform"))
        response = cluster.execute(
            "SELECT count(*) FROM events WHERE platform = 'null'"
        )
        assert response.rows[0][0] == 10
        response = cluster.execute(
            "SELECT count(*) FROM events WHERE platform = 'ios'"
        )
        assert response.rows[0][0] == 0

"""Tests for broker-side time pruning, explain, and response counters."""

import pytest

from repro.cluster.pinot import PinotCluster
from repro.cluster.table import TableConfig
from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column


@pytest.fixture
def cluster():
    schema = Schema("events", [
        dimension("country"), metric("views", DataType.LONG),
        time_column("day", DataType.INT),
    ])
    cluster = PinotCluster(num_servers=3)
    cluster.create_table(TableConfig.offline("events", schema,
                                             replication=1))
    # One segment per day: days 17000..17005, half us / half ca.
    for day in range(17000, 17006):
        records = [
            {"country": "us" if i % 2 else "ca", "views": 1, "day": day}
            for i in range(100)
        ]
        cluster.upload_records("events", records, rows_per_segment=100)
    return cluster


class TestBrokerTimePruning:
    def test_point_day_query_prunes_other_segments(self, cluster):
        response = cluster.execute(
            "SELECT count(*) FROM events WHERE day = 17002"
        )
        assert response.rows[0][0] == 100
        assert response.num_segments_pruned_by_broker == 5
        assert response.stats.num_segments_queried == 1

    def test_range_query_prunes_partially(self, cluster):
        response = cluster.execute(
            "SELECT count(*) FROM events "
            "WHERE day BETWEEN 17001 AND 17003"
        )
        assert response.rows[0][0] == 300
        assert response.num_segments_pruned_by_broker == 3

    def test_unbounded_query_prunes_nothing(self, cluster):
        response = cluster.execute(
            "SELECT count(*) FROM events WHERE country = 'us'"
        )
        assert response.rows[0][0] == 300
        assert response.num_segments_pruned_by_broker == 0

    def test_pruning_can_reduce_server_fanout(self, cluster):
        full = cluster.execute("SELECT count(*) FROM events")
        narrow = cluster.execute(
            "SELECT count(*) FROM events WHERE day = 17000"
        )
        assert narrow.num_servers_queried <= full.num_servers_queried
        assert narrow.num_servers_queried == 1

    def test_or_predicate_not_pruned(self, cluster):
        """An OR gives no usable bound; results must stay correct."""
        response = cluster.execute(
            "SELECT count(*) FROM events "
            "WHERE day = 17000 OR country = 'us'"
        )
        # 100 rows on day 17000 plus 250 'us' rows on the other days.
        assert response.rows[0][0] == 350
        assert response.num_segments_pruned_by_broker == 0


class TestResponseCounters:
    def test_servers_queried_and_responded(self, cluster):
        response = cluster.execute("SELECT count(*) FROM events")
        assert response.num_servers_queried == 3
        assert response.num_servers_responded == 3

    def test_failed_server_counted(self, cluster):
        cluster.servers[0].faults.fail_next = 1
        response = cluster.execute("SELECT count(*) FROM events")
        assert response.num_servers_queried == 3
        assert response.num_servers_responded == 2
        assert response.is_partial


class TestExplain:
    def test_explain_covers_all_segments(self, cluster):
        plans = cluster.explain(
            "SELECT count(*) FROM events WHERE country = 'us'"
        )
        segments = [s for server in plans.values() for s in server]
        assert len(segments) == 6
        assert all("Scan(country" in description
                   for server in plans.values()
                   for description in server.values())

    def test_explain_shows_metadata_plans(self, cluster):
        plans = cluster.explain("SELECT count(*) FROM events")
        descriptions = [d for server in plans.values()
                        for d in server.values()]
        assert all(d.startswith("METADATA") for d in descriptions)

    def test_explain_does_not_execute(self, cluster):
        before = sum(s.queries_executed for s in cluster.servers)
        cluster.explain("SELECT count(*) FROM events")
        after = sum(s.queries_executed for s in cluster.servers)
        assert after == before

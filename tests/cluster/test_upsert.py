"""Primary-key upsert & stream dedup across the cluster (repro.upsert).

The regression catalogue for the completion/failover windows the
version-map design must survive:

* consuming rows shadow committed rows of the same key;
* the seal/commit handoff keeps the mask aligned (docIds are stable
  through seal, so the consuming-time bitmap stays authoritative);
* replica failover, restart and rebalance rebuild the PK index to
  identical state on every replica;
* dedup drops duplicate-key rows at ingestion and still drains;
* broker result caches never serve stale answers after already
  committed segments get masked (the upsert-state epoch).
"""

import numpy as np
import pytest

from repro.cluster.pinot import PinotCluster
from repro.cluster.server import parse_realtime_segment_name
from repro.cluster.table import StreamConfig, TableConfig
from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column
from repro.errors import ClusterError
from repro.segment.builder import SegmentConfig
from repro.startree.builder import StarTreeConfig
from repro.upsert import TableUpsertManager, UpsertConfig

TOPIC = "profiles-topic"
TABLE = "profiles_REALTIME"


def schema():
    return Schema("profiles", [
        dimension("memberId", DataType.LONG),
        dimension("country"),
        metric("views", DataType.LONG),
        time_column("day", DataType.INT),
    ])


def row(member, views, country="us", day=17000):
    return {"memberId": member, "country": country, "views": views,
            "day": day}


def make_cluster(mode="upsert", comparison=None, num_servers=3,
                 replication=2, partitions=1, flush_rows=6,
                 flush_ticks=None):
    cluster = PinotCluster(num_servers=num_servers)
    cluster.create_kafka_topic(TOPIC, partitions)
    cluster.create_table(TableConfig.realtime(
        "profiles", schema(),
        StreamConfig(TOPIC, flush_threshold_rows=flush_rows,
                     flush_threshold_ticks=flush_ticks,
                     records_per_poll=8),
        replication=replication,
        upsert=UpsertConfig(mode=mode, key_columns=("memberId",),
                            comparison_column=comparison),
    ))
    return cluster


def query_rows(cluster, pql):
    response = cluster.execute(pql + " OPTION(skipCache=true)")
    assert not response.is_partial, pql
    return response.rows


def latest_views(cluster):
    """{memberId: views} as the cluster currently answers it."""
    rows = query_rows(
        cluster, "SELECT sum(views) FROM profiles GROUP BY memberId "
                 "TOP 1000")
    return {member: views for member, views in rows}


def hosting_managers(cluster):
    """(server, manager) for every server hosting the upsert table."""
    out = []
    for server in cluster.servers:
        manager = server.upsert_manager(TABLE)
        if manager is not None and manager.keys_tracked:
            out.append((server, manager))
    return out


def committed_segments(cluster):
    helix = cluster.helix
    names = []
    for name in helix.list_properties(f"realtime/{TABLE}"):
        meta = helix.get_property(f"realtime/{TABLE}/{name}") or {}
        if meta.get("status") == "DONE":
            names.append(name)
    return sorted(names)


def assert_replicas_identical(cluster):
    """Every pair of replicas of a partition agrees on every mask —
    the convergence property the join-semilattice winner order buys."""
    ideal = cluster.helix.ideal_state(TABLE)
    for segment, replicas in ideal.items():
        masks = []
        for instance in replicas:
            server = cluster.server(instance)
            manager = server.upsert_manager(TABLE)
            try:
                num_docs = server.segment(TABLE, segment).num_docs
            except ClusterError:
                continue  # consuming here, committed elsewhere
            selection = manager.selection_for(segment, num_docs)
            mask = (selection.mask(num_docs) if selection is not None
                    else np.ones(num_docs, dtype=bool))
            masks.append((instance, mask))
        for (a, mask_a), (b, mask_b) in zip(masks, masks[1:]):
            assert np.array_equal(mask_a, mask_b), (segment, a, b)


class TestConfigValidation:
    def test_mode_and_key_required(self):
        with pytest.raises(ClusterError):
            UpsertConfig(mode="bogus", key_columns=("memberId",))
        with pytest.raises(ClusterError):
            UpsertConfig(mode="upsert", key_columns=())

    def test_offline_table_rejected(self):
        with pytest.raises(ClusterError):
            TableConfig.offline(
                "profiles", schema(),
                upsert=UpsertConfig(mode="upsert",
                                    key_columns=("memberId",)))

    def test_sorted_column_rejected(self):
        # Seal would reorder docIds under the consuming-time bitmap.
        with pytest.raises(ClusterError):
            TableConfig.realtime(
                "profiles", schema(), StreamConfig(TOPIC),
                segment_config=SegmentConfig(sorted_column="memberId"),
                upsert=UpsertConfig(mode="upsert",
                                    key_columns=("memberId",)))

    def test_star_tree_rejected(self):
        # Pre-aggregated star-tree nodes cannot honour a doc mask.
        with pytest.raises(ClusterError):
            TableConfig.realtime(
                "profiles", schema(), StreamConfig(TOPIC),
                segment_config=SegmentConfig(
                    star_tree=StarTreeConfig(dimensions=("country",))),
                upsert=UpsertConfig(mode="upsert",
                                    key_columns=("memberId",)))

    def test_multi_value_key_rejected(self):
        mv_schema = Schema("profiles", [
            dimension("tags", multi_value=True),
            metric("views", DataType.LONG),
            time_column("day", DataType.INT),
        ])
        with pytest.raises(ClusterError):
            TableConfig.realtime(
                "profiles", mv_schema, StreamConfig(TOPIC),
                upsert=UpsertConfig(mode="upsert", key_columns=("tags",)))

    def test_roundtrip_through_dict(self):
        config = TableConfig.realtime(
            "profiles", schema(), StreamConfig(TOPIC),
            upsert=UpsertConfig(mode="dedup", key_columns=("memberId",)))
        restored = TableConfig.from_dict(config.to_dict())
        assert restored.upsert == config.upsert
        assert TableConfig.from_dict(
            TableConfig.realtime("profiles", schema(),
                                 StreamConfig(TOPIC)).to_dict()
        ).upsert is None


class TestUpsertIndex:
    """Unit-level semilattice properties of TableUpsertManager."""

    CONFIG = UpsertConfig(mode="upsert", key_columns=("memberId",))

    def test_reapplication_is_idempotent(self):
        manager = TableUpsertManager(TABLE, self.CONFIG)
        name = f"{TABLE}__0__0"
        assert manager.apply(name, 0, row(1, 10)) is False
        epoch = manager.state_epoch
        for __ in range(3):
            assert manager.apply(name, 0, row(1, 10)) is False
        assert manager.state_epoch == epoch
        assert manager.winner((1,)) == (name, 0)

    def test_cross_segment_supersede_bumps_epoch(self):
        manager = TableUpsertManager(TABLE, self.CONFIG)
        old = f"{TABLE}__0__0"
        new = f"{TABLE}__0__1"
        manager.apply(old, 0, row(1, 10))
        epoch = manager.state_epoch
        # A later sequence wins; the flip is in the *committed* segment,
        # which is exactly what cached results must be invalidated for.
        assert manager.apply(new, 0, row(1, 99)) is True
        assert manager.state_epoch > epoch
        assert manager.winner((1,)) == (new, 0)
        assert manager.selection_for(old, 1).count == 0

    def test_comparison_column_beats_arrival_order(self):
        config = UpsertConfig(mode="upsert", key_columns=("memberId",),
                              comparison_column="day")
        manager = TableUpsertManager(TABLE, config)
        name = f"{TABLE}__0__0"
        manager.apply(name, 0, row(1, 10, day=17005))
        manager.apply(name, 1, row(1, 99, day=17001))  # stale arrives late
        assert manager.winner((1,)) == (name, 0)
        selection = manager.selection_for(name, 2)
        assert list(selection.mask(2)) == [True, False]


class TestUpsertLatestValue:
    def test_latest_value_within_consuming_segment(self):
        cluster = make_cluster(flush_rows=100)
        cluster.ingest(TOPIC, [row(1, 10), row(2, 20), row(1, 11)],
                       key_column="memberId")
        cluster.drain_realtime()
        assert latest_views(cluster) == {1: 11.0, 2: 20.0}
        [[count]] = query_rows(cluster, "SELECT count(*) FROM profiles")
        assert count == 2

    def test_consuming_shadows_committed(self):
        # Segment 0 commits holding key 1's first version; the *still
        # consuming* segment 1 then receives a newer version, which must
        # mask the committed row immediately (no flush required).
        cluster = make_cluster(flush_rows=4)
        cluster.ingest(TOPIC, [row(m, m * 10) for m in (1, 2, 3, 4)],
                       key_column="memberId")
        cluster.drain_realtime()
        assert committed_segments(cluster)
        cluster.ingest(TOPIC, [row(1, 999)], key_column="memberId")
        cluster.drain_realtime()
        views = latest_views(cluster)
        assert views[1] == 999.0
        assert views[2] == 20.0
        [[count]] = query_rows(cluster, "SELECT count(*) FROM profiles")
        assert count == 4
        masked = sum(server.metrics.count("upsert_rows_masked")
                     for server in cluster.servers)
        assert masked > 0

    def test_latest_value_across_committed_chain(self):
        # Many generations of the same keys spread over several sealed
        # segments; only the last generation survives queries.
        cluster = make_cluster(flush_rows=5)
        for generation in range(4):
            cluster.ingest(
                TOPIC,
                [row(m, generation * 100 + m) for m in (1, 2, 3)],
                key_column="memberId")
            cluster.drain_realtime()
        assert len(committed_segments(cluster)) >= 2
        assert latest_views(cluster) == {1: 301.0, 2: 302.0, 3: 303.0}
        assert_replicas_identical(cluster)

    def test_seal_handoff_preserves_winner_identity(self):
        # DocIds are stable through seal (sorted_column is banned), so
        # the consuming-time winner entry stays valid verbatim after
        # the segment commits — no re-keying at the handoff.
        cluster = make_cluster(flush_rows=4)
        cluster.ingest(TOPIC, [row(1, 10), row(2, 20), row(1, 30),
                               row(3, 40)], key_column="memberId")
        cluster.drain_realtime()
        [sealed] = committed_segments(cluster)
        for server, manager in hosting_managers(cluster):
            assert manager.winner((1,)) == (sealed, 2)
            selection = manager.selection_for(
                sealed, server.segment(TABLE, sealed).num_docs)
            assert list(selection.mask(4)) == [False, True, True, True]
        assert latest_views(cluster) == {1: 30.0, 2: 20.0, 3: 40.0}


class TestDedup:
    def test_duplicates_dropped_at_ingestion(self):
        cluster = make_cluster(mode="dedup", flush_rows=4)
        cluster.ingest(TOPIC,
                       [row(1, 10), row(1, 11), row(2, 20), row(1, 12),
                        row(2, 21), row(3, 30)],
                       key_column="memberId")
        cluster.drain_realtime()
        # First occurrence per key wins; later duplicates never stored.
        assert latest_views(cluster) == {1: 10.0, 2: 20.0, 3: 30.0}
        [[count]] = query_rows(cluster, "SELECT count(*) FROM profiles")
        assert count == 3
        dropped = sum(server.metrics.count("dedup_rows_dropped")
                      for server in cluster.servers)
        # replication=2: each replica consumes (and drops) independently.
        assert dropped == 3 * 2

    def test_drain_completes_when_every_row_is_dropped(self):
        # Stored doc counts stall once the key space saturates; the
        # drain must keep going on consumer-offset progress alone.
        cluster = make_cluster(mode="dedup", flush_rows=50)
        cluster.ingest(TOPIC, [row(1, v) for v in range(30)],
                       key_column="memberId")
        cluster.drain_realtime()
        assert latest_views(cluster) == {1: 0.0}
        for server in cluster.servers:
            for (table, __), consuming in server._consuming.items():
                if table == TABLE:
                    assert consuming.offset == 30


class TestFailoverAndRebuild:
    def test_crashed_replica_fails_over_correctly(self):
        cluster = make_cluster(flush_rows=5)
        for generation in range(3):
            cluster.ingest(TOPIC,
                           [row(m, generation * 10 + m) for m in (1, 2)],
                           key_column="memberId")
            cluster.drain_realtime()
        hosting = [server for server, __ in hosting_managers(cluster)]
        cluster.crash_server(hosting[0].instance_id)
        assert latest_views(cluster) == {1: 21.0, 2: 22.0}

    def test_restarted_replica_rebuilds_identical_state(self):
        # A server losing and re-gaining a partition chain (rebalance to
        # a fresh server) rebuilds the PK index to the same masks the
        # incumbent replicas hold.
        cluster = make_cluster(num_servers=2, flush_rows=5)
        for generation in range(3):
            cluster.ingest(TOPIC,
                           [row(m, generation * 10 + m)
                            for m in (1, 2, 3)],
                           key_column="memberId")
            cluster.drain_realtime()
        before = latest_views(cluster)
        cluster.add_server()
        moves = cluster.leader_controller().rebalance_table(TABLE)
        assert any(segments for segments in moves.values())
        cluster.helix.converge(TABLE)
        assert_replicas_identical(cluster)
        assert latest_views(cluster) == before

    def test_explicit_rebuild_is_idempotent(self):
        cluster = make_cluster(flush_rows=5)
        for generation in range(2):
            cluster.ingest(TOPIC,
                           [row(m, generation * 10 + m) for m in (1, 2)],
                           key_column="memberId")
            cluster.drain_realtime()
        server, manager = hosting_managers(cluster)[0]
        snapshot = {
            name: list(manager.selection_for(
                name, server.segment(TABLE, name).num_docs).mask(
                    server.segment(TABLE, name).num_docs))
            for name in committed_segments(cluster)
            if manager.selection_for(
                name, server.segment(TABLE, name).num_docs) is not None
        }
        rebuilds = server.metrics.count("upsert_index_rebuilds")
        server._rebuild_upsert_index(TABLE)
        assert server.metrics.count("upsert_index_rebuilds") == rebuilds + 1
        for name, mask in snapshot.items():
            num_docs = server.segment(TABLE, name).num_docs
            assert list(manager.selection_for(name, num_docs)
                        .mask(num_docs)) == mask

    def test_upsert_partitions_are_colocated(self):
        # The complete-replica invariant: a server hosting any segment
        # of a partition hosts all of them, so its masks are complete.
        cluster = make_cluster(flush_rows=4, partitions=2,
                               num_servers=4)
        for generation in range(3):
            cluster.ingest(TOPIC,
                           [row(m, generation + m) for m in range(8)],
                           key_column="memberId")
            cluster.drain_realtime()
        ideal = cluster.helix.ideal_state(TABLE)
        by_partition = {}
        for segment, replicas in ideal.items():
            __, partition, __seq = parse_realtime_segment_name(segment)
            by_partition.setdefault(partition, []).append(
                (segment, set(replicas)))
        for partition, entries in by_partition.items():
            hosts = set().union(*(replicas for __, replicas in entries))
            for segment, replicas in entries:
                assert replicas == hosts, (partition, segment)


class TestCacheFreshness:
    def test_masking_committed_rows_invalidates_cached_results(self):
        cluster = make_cluster(flush_rows=4)
        cluster.ingest(TOPIC, [row(m, m * 10) for m in (1, 2, 3, 4)],
                       key_column="memberId")
        cluster.drain_realtime()
        pql = "SELECT sum(views) FROM profiles"
        first = cluster.execute(pql)
        again = cluster.execute(pql)
        assert again.cache_hit
        assert first.rows == again.rows == [(100.0,)]
        # A newer version of key 1 arrives and masks a row inside the
        # *already committed* segment the cached entry was computed
        # over; the upsert-state epoch must fence that entry off.
        cluster.ingest(TOPIC, [row(1, 1000)], key_column="memberId")
        cluster.drain_realtime()
        fresh = cluster.execute(pql)
        assert fresh.rows == [(1090.0,)]
        assert cluster.execute(pql + " OPTION(skipCache=true)").rows == \
            [(1090.0,)]
        published = sum(server.metrics.count("upsert_invalidations")
                        for server in cluster.servers)
        assert published > 0

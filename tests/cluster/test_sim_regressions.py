"""Regression tests for latent bugs found by the simulation harness
(repro.sim). Each test is the minimized form of a failing schedule the
harness shrank; the originating seed is noted so the full repro can be
regenerated with ``scripts/sim_repro.py --seed N``.
"""

import pytest

from repro.cluster.completion import (Instruction,
                                      SegmentCompletionManager)
from repro.cluster.pinot import PinotCluster
from repro.cluster.table import StreamConfig, TableConfig
from repro.errors import ClusterError
from repro.segment.builder import SegmentBuilder
from repro.sim.workload import schema


def offline_records(days, per_day=10):
    return [{"country": "us", "platform": "ios", "memberId": 1,
             "views": 1, "day": day} for day in days for __ in range(per_day)]


def realtime_records(days, per_day=10):
    return [{"country": "de", "platform": "android", "memberId": member,
             "views": 2, "day": day}
            for day in days for member in range(per_day)]


class TestReplaceSegmentRefreshesMetadata:
    """Sim seed 30 (shrunk to one op): ``replace_segment`` stored the
    new data but left the old copy's routing metadata — min/max_time,
    blooms, num_docs — in place, so brokers pruned by time ranges and
    placed the hybrid time boundary against data that no longer
    existed."""

    def make_hybrid(self):
        cluster = PinotCluster(num_servers=2)
        cluster.create_kafka_topic("events-topic", 1)
        cluster.create_table(TableConfig.offline("events", schema()))
        cluster.create_table(TableConfig.realtime(
            "events", schema(),
            StreamConfig("events-topic", flush_threshold_rows=10_000),
        ))
        return cluster

    def test_replace_updates_segment_property(self):
        cluster = self.make_hybrid()
        names = cluster.upload_records(
            "events", offline_records([17000, 17001, 17002]))
        controller = cluster.leader_controller()
        config = controller.table_config("events_OFFLINE")
        builder = SegmentBuilder(names[0], "events_OFFLINE", config.schema,
                                 config.segment_config)
        builder.add_all(offline_records([17003, 17004]))
        controller.replace_segment("events_OFFLINE", builder.build())

        meta = cluster.helix.get_property(
            f"segments/events_OFFLINE/{names[0]}")
        assert meta["min_time"] == 17003
        assert meta["max_time"] == 17004
        assert meta["num_docs"] == 20

    def test_hybrid_boundary_follows_replaced_data(self):
        cluster = self.make_hybrid()
        names = cluster.upload_records("events", offline_records([17000]))
        cluster.ingest("events-topic",
                       realtime_records([17000, 17001, 17002]))
        cluster.drain_realtime()
        # Replace the only offline segment with one covering 17000-02:
        # the time boundary must move from 16999 to 17001.
        controller = cluster.leader_controller()
        config = controller.table_config("events_OFFLINE")
        builder = SegmentBuilder(names[0], "events_OFFLINE", config.schema,
                                 config.segment_config)
        builder.add_all(offline_records([17000, 17001, 17002]))
        controller.replace_segment("events_OFFLINE", builder.build())

        response = cluster.execute("SELECT count(*) FROM events")
        assert not response.is_partial
        # Offline serves days <= 17001 (20 rows), realtime day 17002
        # (10 rows). With stale metadata the boundary stays at 16999:
        # offline contributes nothing and realtime double-serves.
        assert response.rows[0][0] == 30


class TestAddServerAfterKill:
    """Sim seeds 5/14/20: ``add_server()`` derived its default id from
    ``len(self.servers)``, which shrinks after a ``kill_server`` — the
    next auto-named server collided with a live registered instance."""

    def test_default_id_does_not_collide(self):
        cluster = PinotCluster(num_servers=4)
        cluster.kill_server("server-1")
        server = cluster.add_server()  # raised ClusterError before
        assert server.instance_id not in {"server-0", "server-2",
                                          "server-3"}
        assert server.instance_id in {
            s.instance_id for s in cluster.servers
        }

    def test_explicit_id_still_honoured(self):
        cluster = PinotCluster(num_servers=2)
        assert cluster.add_server("server-x").instance_id == "server-x"
        with pytest.raises(ClusterError):
            cluster.add_server("server-x")


class TestCompletionReplicaRemoved:
    """Sim seed 23 (shrunk to kill + rebalance): a rebalance moved a
    CONSUMING replica — the elected committer — to another server. The
    FSM kept waiting for a committer that would never poll again and
    the partition stopped committing forever."""

    def committing_fsm(self):
        manager = SegmentCompletionManager(expected_replicas=2)
        assert manager.segment_consumed(
            "seg", "s0", 100).instruction is Instruction.HOLD
        response = manager.segment_consumed("seg", "s1", 100)
        # Both polled at the same offset: s0 (lexicographic) commits.
        assert response.instruction is Instruction.HOLD
        assert manager.segment_consumed(
            "seg", "s0", 100).instruction is Instruction.COMMIT
        return manager

    def test_replica_removed_reelects_committer(self):
        manager = self.committing_fsm()
        manager.replica_removed("seg", "s0")  # rebalance moved s0 away
        response = manager.segment_consumed("seg", "s1", 100)
        assert response.instruction is Instruction.COMMIT
        assert manager.segment_commit("seg", "s1", 100)

    def test_silent_committer_deadline_reelects(self):
        """Safety net: even with no removal notification, survivors are
        not HOLD-ed forever once the committer goes silent."""
        manager = self.committing_fsm()
        instructions = [
            manager.segment_consumed("seg", "s1", 100).instruction
            for __ in range(manager._max_hold_polls * 2 + 2)
        ]
        assert instructions[-1] is Instruction.COMMIT
        assert manager.segment_commit("seg", "s1", 100)

    def test_stale_commit_from_old_committer_rejected(self):
        manager = self.committing_fsm()
        manager.replica_removed("seg", "s0")
        manager.segment_consumed("seg", "s1", 100)
        assert not manager.segment_commit("seg", "s0", 100)
        assert manager.segment_commit("seg", "s1", 100)


class TestDeathBeforeFirstPoll:
    """Sim seeds 17/95: a replica died before it ever polled the
    completion protocol. ``fail_server`` only corrects the expected
    count for servers it has *seen*, so the survivor was held for the
    whole poll budget — and the controller didn't even have a
    completion manager yet if the death preceded every poll."""

    def test_replica_removed_counts_unseen_server(self):
        manager = SegmentCompletionManager(expected_replicas=2)
        manager.replica_removed("seg", "s0")  # never polled
        response = manager.segment_consumed("seg", "s1", 80)
        assert response.instruction is Instruction.COMMIT

    def test_double_removal_does_not_double_decrement(self):
        manager = SegmentCompletionManager(expected_replicas=3)
        manager.replica_removed("seg", "s0")
        manager.replica_removed("seg", "s0")  # death then rebalance
        fsm = manager._fsm("seg")
        assert fsm.expected_replicas == 2

    def test_kill_before_any_poll_still_drains(self):
        cluster = PinotCluster(num_servers=3)
        cluster.create_kafka_topic("events-topic", 1)
        cluster.create_table(TableConfig.realtime(
            "events", schema(),
            StreamConfig("events-topic", flush_threshold_rows=100,
                         records_per_poll=50),
            replication=2,
        ))
        cluster.ingest("events-topic", realtime_records(
            [17000, 17001, 17002, 17003], per_day=40),
            key_column="memberId")
        ideal = cluster.helix.ideal_state("events_REALTIME")
        victim = next(iter(ideal["events_REALTIME__0__0"]))
        cluster.kill_server(victim)  # dies before any completion poll
        cluster.drain_realtime()
        response = cluster.execute("SELECT count(*) FROM events")
        assert not response.is_partial
        assert response.rows[0][0] == 160


class TestDeadReplicaReassignment:
    """Sim seed 171 (shrunk to two kills + query): nothing reassigned a
    dead server's committed replicas, so a second death stranded a
    segment with no live replica — which brokers silently skipped,
    returning a wrong but *non-partial* answer."""

    def test_two_deaths_do_not_lose_committed_segments(self):
        cluster = PinotCluster(num_servers=4)
        cluster.create_kafka_topic("events-topic", 1)
        cluster.create_table(TableConfig.realtime(
            "events", schema(),
            StreamConfig("events-topic", flush_threshold_rows=100,
                         records_per_poll=50),
            replication=2,
        ))
        cluster.ingest("events-topic",
                       realtime_records([17000, 17001, 17002], per_day=40),
                       key_column="memberId")
        cluster.drain_realtime()
        segment = "events_REALTIME__0__0"
        ideal = cluster.helix.ideal_state("events_REALTIME")
        originals = sorted(ideal[segment])
        cluster.kill_server(originals[0])
        # The fix re-seats the replica from the object store at death.
        reassigned = cluster.helix.ideal_state("events_REALTIME")[segment]
        assert originals[0] not in reassigned
        assert len(reassigned) == 2
        cluster.kill_server(originals[1])
        response = cluster.execute("SELECT count(*) FROM events")
        assert not response.is_partial
        assert response.rows[0][0] == 120


class TestRebalanceConvergenceWindow:
    """The ISSUE-named bug (controller.rebalance_table): the two-phase
    grow-then-shrink applied the shrink without checking the external
    view, so with a crashed/slow server the old replicas were dropped
    while the new ones sat in ERROR — the segment was served by nobody
    and queries silently skipped it mid-rebalance."""

    def offline_cluster(self):
        cluster = PinotCluster(num_servers=3)
        cluster.create_table(TableConfig.offline(
            "events", schema(), replication=1))
        cluster.upload_records("events",
                               offline_records([17000, 17001, 17002]),
                               rows_per_segment=10)
        return cluster

    def test_table_stays_queryable_with_crashed_server(self):
        cluster = self.offline_cluster()
        # A joining blank server that immediately crashes: transitions
        # to it fail, so rebalance must keep the old replicas.
        joined = cluster.add_server()
        cluster.crash_server(joined.instance_id)
        cluster.leader_controller().rebalance_table("events_OFFLINE")
        response = cluster.execute("SELECT count(*) FROM events")
        assert not response.is_partial
        assert response.rows[0][0] == 30

    def test_unconverged_segments_keep_old_replicas_in_ideal(self):
        cluster = self.offline_cluster()
        before = cluster.helix.ideal_state("events_OFFLINE")
        joined = cluster.add_server()
        cluster.crash_server(joined.instance_id)
        cluster.leader_controller().rebalance_table("events_OFFLINE")
        after = cluster.helix.ideal_state("events_OFFLINE")
        for segment, replicas in after.items():
            if joined.instance_id in replicas:
                # The new replica failed to come up, so at least one
                # old replica must still be present.
                survivors = set(replicas) & set(before[segment])
                assert survivors, (
                    f"{segment} lost all old replicas mid-rebalance"
                )

    def test_recovered_server_converges_on_next_rebalance(self):
        cluster = self.offline_cluster()
        joined = cluster.add_server()
        cluster.crash_server(joined.instance_id)
        cluster.leader_controller().rebalance_table("events_OFFLINE")
        joined.faults.recover()
        cluster.leader_controller().rebalance_table("events_OFFLINE")
        assert cluster.execute(
            "SELECT count(*) FROM events").rows[0][0] == 30


class TestAllConsumingReplicasKilled:
    """Sim seed 23 under the memory-budget sweep (shrunk to two kills +
    rebalance): with every CONSUMING replica of a partition dead, the
    segment sat replica-less in the ideal state — and rebalance
    defaulted it to ONLINE, so fresh servers tried to pull a
    never-committed segment from the deep store, failed, parked in
    ERROR, and the next convergence crashed parsing the ERROR view
    entry."""

    def make_cluster(self):
        cluster = PinotCluster(num_servers=4)
        cluster.create_kafka_topic("events-topic", 1)
        cluster.create_table(TableConfig.realtime(
            "events", schema(),
            StreamConfig("events-topic", flush_threshold_rows=100,
                         records_per_poll=50),
            replication=2,
        ))
        # 120 rows: sequence 0 commits at the 100-row flush threshold,
        # sequence 1 stays consuming with a 20-row tail.
        cluster.ingest("events-topic",
                       realtime_records([17000, 17001, 17002], per_day=40),
                       key_column="memberId")
        cluster.drain_realtime()
        return cluster

    def kill_consuming_holders(self, cluster, segment):
        ideal = cluster.helix.ideal_state("events_REALTIME")
        holders = sorted(server for server, state in ideal[segment].items()
                         if state == "CONSUMING")
        assert holders
        for server in holders:
            cluster.kill_server(server)
        assert not cluster.helix.ideal_state("events_REALTIME")[segment]

    def test_rebalance_reseats_consuming_not_online(self):
        cluster = self.make_cluster()
        segment = "events_REALTIME__0__1"
        self.kill_consuming_holders(cluster, segment)
        # Crashed before the fix (ValueError parsing 'ERROR').
        cluster.leader_controller().rebalance_table("events_REALTIME")
        after = cluster.helix.ideal_state("events_REALTIME")[segment]
        assert after
        # The segment was never committed: it must come back CONSUMING
        # (re-consume from its start offset), never ONLINE.
        assert set(after.values()) == {"CONSUMING"}

    def test_tail_rows_recovered_after_reseat(self):
        cluster = self.make_cluster()
        self.kill_consuming_holders(cluster, "events_REALTIME__0__1")
        cluster.leader_controller().rebalance_table("events_REALTIME")
        # The re-seated consumers replay the stream tail from the
        # segment's start offset.
        cluster.drain_realtime()
        response = cluster.execute("SELECT count(*) FROM events")
        assert not response.is_partial
        assert response.rows[0][0] == 120

"""Tests for token-bucket multitenancy."""

import pytest

from repro.cluster.tenant import TenantQuotaManager, TokenBucket
from repro.errors import ThrottledError


class TestTokenBucket:
    def test_starts_full(self):
        bucket = TokenBucket(capacity=10, refill_rate=1)
        assert bucket.try_consume(10, now=0.0)
        assert not bucket.try_consume(0.1, now=0.0)

    def test_refills_over_time(self):
        bucket = TokenBucket(capacity=10, refill_rate=2)
        bucket.try_consume(10, now=0.0)
        assert not bucket.try_consume(4, now=1.0)  # only 2 back
        assert bucket.try_consume(4, now=2.0)      # 4 tokens at t=2

    def test_capacity_capped(self):
        bucket = TokenBucket(capacity=5, refill_rate=100)
        bucket.try_consume(1, now=0.0)
        bucket.try_consume(0, now=100.0)
        assert bucket.tokens == 5

    def test_debt_allowed(self):
        bucket = TokenBucket(capacity=5, refill_rate=1)
        bucket.consume_debt(20, now=0.0)
        assert bucket.tokens == -15
        assert not bucket.try_consume(1, now=0.0)

    def test_seconds_until(self):
        bucket = TokenBucket(capacity=10, refill_rate=2)
        bucket.try_consume(10, now=0.0)
        assert bucket.seconds_until(4, now=0.0) == pytest.approx(2.0)
        assert bucket.seconds_until(0, now=0.0) == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(capacity=0, refill_rate=1)


class TestQuotaManager:
    def test_admit_within_quota(self):
        quotas = TenantQuotaManager(default_capacity=2,
                                    default_refill_rate=1)
        quotas.admit("tenantA", now=0.0)
        quotas.admit("tenantA", now=0.0)

    def test_throttles_when_empty(self):
        quotas = TenantQuotaManager(default_capacity=1,
                                    default_refill_rate=0.5)
        quotas.admit("tenantA", now=0.0)
        with pytest.raises(ThrottledError) as excinfo:
            quotas.admit("tenantA", now=0.0)
        assert excinfo.value.retry_after_s == pytest.approx(2.0)

    def test_tenants_isolated(self):
        """A misbehaving tenant cannot exhaust another tenant's tokens
        (the §4.5 guarantee)."""
        quotas = TenantQuotaManager(default_capacity=1,
                                    default_refill_rate=0.1)
        quotas.admit("noisy", now=0.0)
        with pytest.raises(ThrottledError):
            quotas.admit("noisy", now=0.0)
        quotas.admit("quiet", now=0.0)  # unaffected

    def test_charge_by_execution_time(self):
        quotas = TenantQuotaManager(default_capacity=100,
                                    default_refill_rate=1)
        quotas.charge("tenantA", execution_seconds=5.0, now=0.0,
                      tokens_per_second=10.0)
        assert quotas.bucket("tenantA").tokens == pytest.approx(50.0)

    def test_configure_overrides_defaults(self):
        quotas = TenantQuotaManager()
        quotas.configure("vip", capacity=1000, refill_rate=100)
        assert quotas.bucket("vip").capacity == 1000

    def test_burst_then_recover(self):
        """Short spikes pass; sustained load throttles; time heals."""
        quotas = TenantQuotaManager(default_capacity=5,
                                    default_refill_rate=1)
        for __ in range(5):
            quotas.admit("bursty", now=0.0)
        with pytest.raises(ThrottledError):
            quotas.admit("bursty", now=0.0)
        quotas.admit("bursty", now=1.5)  # refilled

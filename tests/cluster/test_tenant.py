"""Tests for token-bucket multitenancy and adaptive admission."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.pinot import PinotCluster
from repro.cluster.table import TableConfig
from repro.cluster.tenant import TenantClass, TenantQuotaManager, TokenBucket
from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column
from repro.errors import ThrottledError


class TestTokenBucket:
    def test_starts_full(self):
        bucket = TokenBucket(capacity=10, refill_rate=1)
        assert bucket.try_consume(10, now=0.0)
        assert not bucket.try_consume(0.1, now=0.0)

    def test_refills_over_time(self):
        bucket = TokenBucket(capacity=10, refill_rate=2)
        bucket.try_consume(10, now=0.0)
        assert not bucket.try_consume(4, now=1.0)  # only 2 back
        assert bucket.try_consume(4, now=2.0)      # 4 tokens at t=2

    def test_capacity_capped(self):
        bucket = TokenBucket(capacity=5, refill_rate=100)
        bucket.try_consume(1, now=0.0)
        bucket.try_consume(0, now=100.0)
        assert bucket.tokens == 5

    def test_debt_allowed(self):
        bucket = TokenBucket(capacity=5, refill_rate=1)
        bucket.consume_debt(20, now=0.0)
        assert bucket.tokens == -15
        assert not bucket.try_consume(1, now=0.0)

    def test_seconds_until(self):
        bucket = TokenBucket(capacity=10, refill_rate=2)
        bucket.try_consume(10, now=0.0)
        assert bucket.seconds_until(4, now=0.0) == pytest.approx(2.0)
        assert bucket.seconds_until(0, now=0.0) == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(capacity=0, refill_rate=1)


class TestQuotaManager:
    def test_admit_within_quota(self):
        quotas = TenantQuotaManager(default_capacity=2,
                                    default_refill_rate=1)
        quotas.admit("tenantA", now=0.0)
        quotas.admit("tenantA", now=0.0)

    def test_throttles_when_empty(self):
        quotas = TenantQuotaManager(default_capacity=1,
                                    default_refill_rate=0.5)
        quotas.admit("tenantA", now=0.0)
        with pytest.raises(ThrottledError) as excinfo:
            quotas.admit("tenantA", now=0.0)
        assert excinfo.value.retry_after_s == pytest.approx(2.0)

    def test_tenants_isolated(self):
        """A misbehaving tenant cannot exhaust another tenant's tokens
        (the §4.5 guarantee)."""
        quotas = TenantQuotaManager(default_capacity=1,
                                    default_refill_rate=0.1)
        quotas.admit("noisy", now=0.0)
        with pytest.raises(ThrottledError):
            quotas.admit("noisy", now=0.0)
        quotas.admit("quiet", now=0.0)  # unaffected

    def test_charge_by_execution_time(self):
        quotas = TenantQuotaManager(default_capacity=100,
                                    default_refill_rate=1)
        quotas.charge("tenantA", execution_seconds=5.0, now=0.0,
                      tokens_per_second=10.0)
        assert quotas.bucket("tenantA").tokens == pytest.approx(50.0)

    def test_configure_overrides_defaults(self):
        quotas = TenantQuotaManager()
        quotas.configure("vip", capacity=1000, refill_rate=100)
        assert quotas.bucket("vip").capacity == 1000

    def test_burst_then_recover(self):
        """Short spikes pass; sustained load throttles; time heals."""
        quotas = TenantQuotaManager(default_capacity=5,
                                    default_refill_rate=1)
        for __ in range(5):
            quotas.admit("bursty", now=0.0)
        with pytest.raises(ThrottledError):
            quotas.admit("bursty", now=0.0)
        quotas.admit("bursty", now=1.5)  # refilled


class TestRetryAfterBound:
    """`seconds_until` must be underestimate-free: the bucket never
    refuses a retry at exactly its own advertised retry-after (absent
    further consumption)."""

    @settings(max_examples=300, deadline=None)
    @given(
        capacity=st.floats(min_value=0.1, max_value=1e6),
        refill_rate=st.floats(min_value=1e-3, max_value=1e6),
        drains=st.lists(st.floats(min_value=0.0, max_value=1e5),
                        max_size=8),
        amount=st.floats(min_value=1e-6, max_value=1e5),
        now=st.floats(min_value=0.0, max_value=1e7),
    )
    def test_bucket_admits_at_advertised_retry_after(
            self, capacity, refill_rate, drains, amount, now):
        bucket = TokenBucket(capacity=capacity, refill_rate=refill_rate)
        for drain in drains:
            bucket.consume_debt(drain, now=now)
        amount = min(amount, capacity)  # larger can never be admitted
        wait = bucket.seconds_until(amount, now=now)
        assert wait >= 0.0
        assert bucket.try_consume(amount, now=now + wait)

    @settings(max_examples=200, deadline=None)
    @given(
        capacity=st.floats(min_value=1.0, max_value=1e4),
        refill_rate=st.floats(min_value=1e-2, max_value=1e4),
        debt=st.floats(min_value=0.0, max_value=1e5),
    )
    def test_throttled_error_retry_after_is_sufficient(
            self, capacity, refill_rate, debt):
        quotas = TenantQuotaManager(default_capacity=capacity,
                                    default_refill_rate=refill_rate)
        quotas.bucket("t").consume_debt(capacity + debt, now=0.0)
        with pytest.raises(ThrottledError) as excinfo:
            quotas.admit("t", now=0.0)
        quotas.admit("t", now=excinfo.value.retry_after_s)


class TestAdaptiveAdmission:
    def manager(self, shed_start=0.5):
        quotas = TenantQuotaManager(shed_start=shed_start)
        quotas.configure("vip", capacity=100, refill_rate=50,
                         priority=0.9)
        quotas.configure("batch", capacity=100, refill_rate=50,
                         priority=0.1)
        return quotas

    def test_shed_bar_rises_linearly(self):
        quotas = self.manager()
        assert quotas.shed_bar(0.0) == 0.0
        assert quotas.shed_bar(0.5) == 0.0
        assert quotas.shed_bar(0.75) == pytest.approx(0.5)
        assert quotas.shed_bar(1.0) == 1.0

    def test_no_pressure_sheds_nobody(self):
        quotas = self.manager()
        quotas.admit("batch", now=0.0, pressure=0.4)
        quotas.admit("vip", now=0.0, pressure=0.4)

    def test_low_priority_shed_first(self):
        quotas = self.manager()
        with pytest.raises(ThrottledError) as excinfo:
            quotas.admit("batch", now=0.0, pressure=0.8)
        assert excinfo.value.reason == "overload"
        quotas.admit("vip", now=0.0, pressure=0.8)  # above the bar

    def test_full_pressure_sheds_everyone_below_one(self):
        quotas = self.manager()
        for tenant in ("batch", "vip"):
            with pytest.raises(ThrottledError):
                quotas.admit(tenant, now=0.0, pressure=1.0)

    def test_shed_does_not_consume_tokens(self):
        """Shedding is upstream of the bucket: the tenant's burst
        budget survives the overload episode."""
        quotas = self.manager()
        before = quotas.bucket("batch").tokens
        with pytest.raises(ThrottledError):
            quotas.admit("batch", now=0.0, pressure=1.0)
        assert quotas.bucket("batch").tokens == before
        assert quotas.shed_counts["batch"] == 1

    def test_priority_validated(self):
        quotas = TenantQuotaManager()
        with pytest.raises(ValueError):
            quotas.configure("bad", capacity=1, refill_rate=1,
                             priority=1.5)
        with pytest.raises(ValueError):
            TenantQuotaManager(shed_start=1.0)

    def test_tenant_class_carries_priority(self):
        tier = TenantClass(capacity=10, refill_rate=5, priority=0.8)
        assert tier.priority == 0.8


class TestBrokerAdmission:
    """The broker wires queue pressure into admit() and tags the
    rejection metric by reason."""

    def make_cluster(self):
        schema = Schema("events", [
            dimension("country"), metric("views", DataType.LONG),
            time_column("day", DataType.INT),
        ])
        cluster = PinotCluster(num_servers=2)
        cluster.create_table(TableConfig.offline("events", schema))
        cluster.upload_records("events", [
            {"country": "us", "views": 1, "day": 17000}
            for __ in range(10)
        ])
        cluster.quotas.configure("vip", capacity=1000, refill_rate=1000,
                                 priority=0.9)
        cluster.quotas.configure("batch", capacity=1000,
                                 refill_rate=1000, priority=0.1)
        return cluster

    def test_pressure_sheds_low_priority_tenant(self):
        cluster = self.make_cluster()
        broker = cluster.brokers[0]
        # Pressure ~0.8 puts the shed bar at ~0.6: above batch's 0.1,
        # below vip's 0.9.
        for __ in range(60):
            broker.pressure.observe(0.8)
        with pytest.raises(ThrottledError) as excinfo:
            broker.execute("SELECT count(*) FROM events",
                           tenant="batch")
        assert excinfo.value.reason == "overload"
        assert broker.metrics.count("admission_shed") == 1
        response = broker.execute("SELECT count(*) FROM events",
                                  tenant="vip")
        assert response.rows[0][0] == 10

    def test_quota_exhaustion_still_reason_quota(self):
        cluster = self.make_cluster()
        broker = cluster.brokers[0]
        cluster.quotas.bucket("batch").consume_debt(10_000, now=0.0)
        with pytest.raises(ThrottledError) as excinfo:
            broker.execute("SELECT count(*) FROM events",
                           tenant="batch")
        assert excinfo.value.reason == "quota"
        assert broker.metrics.count("throttled") == 1
        assert broker.metrics.count("admission_shed") == 0

"""Tests for the segment-completion consensus protocol (§3.3.6)."""

import pytest

from repro.cluster.completion import Instruction, SegmentCompletionManager


@pytest.fixture
def manager():
    return SegmentCompletionManager(expected_replicas=3)


class TestHappyPath:
    def test_holds_until_all_replicas_report(self, manager):
        assert manager.segment_consumed("seg", "s1", 100).instruction is \
            Instruction.HOLD
        assert manager.segment_consumed("seg", "s2", 100).instruction is \
            Instruction.HOLD

    def test_aligned_replicas_single_commit(self, manager):
        manager.segment_consumed("seg", "s1", 100)
        manager.segment_consumed("seg", "s2", 100)
        response = manager.segment_consumed("seg", "s3", 100)
        # All aligned: the third poll decides; committer is deterministic.
        assert response.instruction in (Instruction.COMMIT,
                                        Instruction.HOLD)
        # Re-polls now give the committer COMMIT and others HOLD.
        commit_count = 0
        for server in ("s1", "s2", "s3"):
            response = manager.segment_consumed("seg", server, 100)
            if response.instruction is Instruction.COMMIT:
                commit_count += 1
                assert response.offset == 100
        assert commit_count == 1

    def test_commit_then_keep_for_aligned_replicas(self, manager):
        for server in ("s1", "s2", "s3"):
            manager.segment_consumed("seg", server, 100)
        committer = next(
            server for server in ("s1", "s2", "s3")
            if manager.segment_consumed(
                "seg", server, 100
            ).instruction is Instruction.COMMIT
        )
        assert manager.segment_commit("seg", committer, 100)
        assert manager.is_committed("seg")
        assert manager.committed_offset("seg") == 100
        for server in ("s1", "s2", "s3"):
            if server == committer:
                continue
            response = manager.segment_consumed("seg", server, 100)
            assert response.instruction is Instruction.KEEP


class TestDivergentOffsets:
    def test_catchup_to_largest_offset(self, manager):
        manager.segment_consumed("seg", "s1", 100)
        manager.segment_consumed("seg", "s2", 150)
        response = manager.segment_consumed("seg", "s3", 120)
        # Decision made: s2 has the largest offset.
        assert response.instruction is Instruction.CATCHUP
        assert response.offset == 150
        response = manager.segment_consumed("seg", "s1", 100)
        assert response.instruction is Instruction.CATCHUP
        assert response.offset == 150

    def test_committer_is_replica_at_largest_offset(self, manager):
        manager.segment_consumed("seg", "s1", 100)
        manager.segment_consumed("seg", "s2", 150)
        manager.segment_consumed("seg", "s3", 120)
        response = manager.segment_consumed("seg", "s2", 150)
        assert response.instruction is Instruction.COMMIT

    def test_laggard_discards_if_it_cannot_catch_up(self, manager):
        manager.segment_consumed("seg", "s1", 100)
        manager.segment_consumed("seg", "s2", 150)
        manager.segment_consumed("seg", "s3", 120)
        manager.segment_consumed("seg", "s2", 150)
        assert manager.segment_commit("seg", "s2", 150)
        # s1 re-polls still at offset 100 (e.g. Kafka data expired).
        response = manager.segment_consumed("seg", "s1", 100)
        assert response.instruction is Instruction.DISCARD
        # s3 caught up to exactly 150: KEEP.
        response = manager.segment_consumed("seg", "s3", 150)
        assert response.instruction is Instruction.KEEP


class TestCommitValidation:
    def test_wrong_server_cannot_commit(self, manager):
        for server, offset in (("s1", 100), ("s2", 150), ("s3", 120)):
            manager.segment_consumed("seg", server, offset)
        assert not manager.segment_commit("seg", "s1", 100)
        assert not manager.is_committed("seg")

    def test_wrong_offset_cannot_commit(self, manager):
        for server in ("s1", "s2", "s3"):
            manager.segment_consumed("seg", server, 100)
        committer = next(
            s for s in ("s1", "s2", "s3")
            if manager.segment_consumed("seg", s, 100).instruction
            is Instruction.COMMIT
        )
        assert not manager.segment_commit("seg", committer, 99)

    def test_double_commit_rejected(self, manager):
        for server in ("s1", "s2", "s3"):
            manager.segment_consumed("seg", server, 100)
        committer = next(
            s for s in ("s1", "s2", "s3")
            if manager.segment_consumed("seg", s, 100).instruction
            is Instruction.COMMIT
        )
        assert manager.segment_commit("seg", committer, 100)
        assert not manager.segment_commit("seg", committer, 100)


class TestFailures:
    def test_decision_with_missing_replica_after_budget(self):
        manager = SegmentCompletionManager(expected_replicas=3,
                                           max_hold_polls=2)
        # Only two replicas ever report; they poll repeatedly.
        for __ in range(3):
            manager.segment_consumed("seg", "s1", 100)
            manager.segment_consumed("seg", "s2", 100)
        # Poll budget exhausted: a committer is eventually chosen.
        response = manager.segment_consumed("seg", "s1", 100)
        assert response.instruction is Instruction.COMMIT

    def test_committer_failure_picks_new_committer(self, manager):
        manager.segment_consumed("seg", "s1", 100)
        manager.segment_consumed("seg", "s2", 150)
        manager.segment_consumed("seg", "s3", 150)
        committer = next(
            s for s in ("s2", "s3")
            if manager.segment_consumed("seg", s, 150).instruction
            is Instruction.COMMIT
        )
        manager.committer_failed("seg", committer)
        other = "s3" if committer == "s2" else "s2"
        response = manager.segment_consumed("seg", other, 150)
        assert response.instruction is Instruction.COMMIT
        assert manager.segment_commit("seg", other, 150)

    def test_forget_resets_state(self, manager):
        """A new leader controller starts a blank state machine; the
        protocol just restarts (§3.3.6: delays commit, still correct)."""
        for server in ("s1", "s2", "s3"):
            manager.segment_consumed("seg", server, 100)
        manager.forget("seg")
        response = manager.segment_consumed("seg", "s1", 100)
        assert response.instruction is Instruction.HOLD

    def test_segments_independent(self, manager):
        manager.segment_consumed("segA", "s1", 10)
        response = manager.segment_consumed("segB", "s1", 99)
        assert response.instruction is Instruction.HOLD
        assert not manager.is_committed("segA")

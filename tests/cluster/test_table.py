"""Tests for table configuration."""

import pytest

from repro.cluster.table import (
    PartitionConfig,
    StreamConfig,
    TableConfig,
    TableType,
)
from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column
from repro.errors import ClusterError
from repro.segment.builder import SegmentConfig


@pytest.fixture
def schema():
    return Schema("events", [
        dimension("memberId", DataType.LONG), dimension("country"),
        metric("views", DataType.LONG), time_column("day", DataType.INT),
    ])


class TestValidation:
    def test_physical_name_carries_type(self, schema):
        config = TableConfig.offline("events", schema)
        assert config.name == "events_OFFLINE"
        realtime = TableConfig.realtime("events", schema,
                                        StreamConfig("events-topic"))
        assert realtime.name == "events_REALTIME"

    def test_realtime_requires_stream(self, schema):
        with pytest.raises(ClusterError, match="stream"):
            TableConfig(logical_name="events",
                        table_type=TableType.REALTIME, schema=schema)

    def test_offline_rejects_stream(self, schema):
        with pytest.raises(ClusterError):
            TableConfig.offline("events", schema,
                                stream=StreamConfig("t"))

    def test_replication_positive(self, schema):
        with pytest.raises(ClusterError):
            TableConfig.offline("events", schema, replication=0)

    def test_partition_aware_requires_partition(self, schema):
        with pytest.raises(ClusterError):
            TableConfig.offline("events", schema,
                                routing_strategy="partition_aware")

    def test_partition_config_propagates_to_segments(self, schema):
        config = TableConfig.offline(
            "events", schema,
            partition=PartitionConfig("memberId", 8),
        )
        assert config.segment_config.partition_column == "memberId"
        assert config.segment_config.num_partitions == 8

    def test_time_column_exposed(self, schema):
        assert TableConfig.offline("events", schema).time_column == "day"


class TestSerialization:
    def test_roundtrip_offline(self, schema):
        config = TableConfig.offline(
            "events", schema, replication=2, retention=30,
            quota_bytes=10_000_000, tenant="analytics",
            segment_config=SegmentConfig(sorted_column="memberId",
                                         inverted_columns=("country",)),
            partition=PartitionConfig("memberId", 4),
            routing_strategy="partition_aware",
        )
        clone = TableConfig.from_dict(config.to_dict())
        assert clone.name == config.name
        assert clone.replication == 2
        assert clone.retention == 30
        assert clone.quota_bytes == 10_000_000
        assert clone.tenant == "analytics"
        assert clone.segment_config.sorted_column == "memberId"
        assert clone.segment_config.inverted_columns == ("country",)
        assert clone.partition.num_partitions == 4
        assert clone.routing_strategy == "partition_aware"

    def test_roundtrip_realtime(self, schema):
        config = TableConfig.realtime(
            "events", schema,
            StreamConfig("events-topic", flush_threshold_rows=123,
                         flush_threshold_ticks=9, records_per_poll=45),
        )
        clone = TableConfig.from_dict(config.to_dict())
        assert clone.stream.topic == "events-topic"
        assert clone.stream.flush_threshold_rows == 123
        assert clone.stream.flush_threshold_ticks == 9
        assert clone.stream.records_per_poll == 45
        assert clone.schema == schema


class TestTimestampIndex:
    def test_roundtrip_timestamp_index(self, schema):
        config = TableConfig.offline(
            "events", schema,
            segment_config=SegmentConfig(timestamp_index=(1, 5, 30)),
        )
        clone = TableConfig.from_dict(config.to_dict())
        assert clone.segment_config.timestamp_index == (1, 5, 30)

    def test_default_has_no_timestamp_index(self, schema):
        config = TableConfig.offline("events", schema)
        clone = TableConfig.from_dict(config.to_dict())
        assert clone.segment_config.timestamp_index == ()

    def test_upsert_rejects_timestamp_index(self, schema):
        from repro.upsert import UpsertConfig

        with pytest.raises(ClusterError, match="timestamp index"):
            TableConfig.realtime(
                "events", schema, StreamConfig("events-topic"),
                upsert=UpsertConfig(mode="upsert",
                                    key_columns=("memberId",)),
                segment_config=SegmentConfig(timestamp_index=(1,)),
            )

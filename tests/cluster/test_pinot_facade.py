"""Edge cases of the PinotCluster facade."""

import pytest

from repro.cluster.pinot import PinotCluster
from repro.cluster.table import TableConfig
from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric
from repro.errors import ClusterError


@pytest.fixture
def schema():
    return Schema("events", [dimension("c"),
                             metric("v", DataType.LONG)])


class TestConstruction:
    def test_requires_components(self):
        with pytest.raises(ClusterError):
            PinotCluster(num_servers=0)
        with pytest.raises(ClusterError):
            PinotCluster(num_brokers=0)

    def test_unknown_server_lookup(self):
        cluster = PinotCluster(num_servers=1)
        with pytest.raises(ClusterError):
            cluster.server("server-99")


class TestLeaderResolution:
    def test_all_controllers_dead_raises(self, schema):
        cluster = PinotCluster(num_servers=1, num_controllers=1)
        cluster.kill_controller("controller-0")
        with pytest.raises(ClusterError, match="no live controller"):
            cluster.leader_controller()

    def test_leader_stable_across_calls(self):
        cluster = PinotCluster(num_servers=1)
        assert (cluster.leader_controller().instance_id
                == cluster.leader_controller().instance_id)


class TestUploadPaths:
    def test_upload_by_logical_and_physical_name(self, schema):
        cluster = PinotCluster(num_servers=1)
        cluster.create_table(TableConfig.offline("events", schema))
        cluster.upload_records("events", [{"c": "a", "v": 1}])
        cluster.upload_records("events_OFFLINE", [{"c": "b", "v": 2}])
        assert cluster.execute(
            "SELECT count(*) FROM events"
        ).rows[0][0] == 2

    def test_build_segments_without_upload(self, schema):
        cluster = PinotCluster(num_servers=1)
        cluster.create_table(TableConfig.offline("events", schema))
        segments = cluster.build_segments(
            "events_OFFLINE", [{"c": "a", "v": 1}] * 250,
            rows_per_segment=100,
        )
        assert [s.num_docs for s in segments] == [100, 100, 50]
        # Nothing was uploaded.
        assert cluster.execute(
            "SELECT count(*) FROM events"
        ).rows[0][0] == 0

    def test_segment_names_unique_across_uploads(self, schema):
        cluster = PinotCluster(num_servers=1)
        cluster.create_table(TableConfig.offline("events", schema))
        first = cluster.upload_records("events", [{"c": "a", "v": 1}])
        second = cluster.upload_records("events", [{"c": "a", "v": 1}])
        assert set(first).isdisjoint(second)


class TestRealtimeGuards:
    def test_realtime_table_requires_existing_topic(self, schema):
        from repro.cluster.table import StreamConfig
        from repro.errors import IngestionError

        cluster = PinotCluster(num_servers=1)
        with pytest.raises(IngestionError):
            cluster.create_table(TableConfig.realtime(
                "events", schema, StreamConfig("missing-topic"),
            ))
        # A failed create leaves nothing behind.
        assert cluster.leader_controller().list_tables() == []

    def test_duplicate_topic_rejected(self):
        cluster = PinotCluster(num_servers=1)
        cluster.create_kafka_topic("t", 1)
        from repro.errors import IngestionError

        with pytest.raises(IngestionError):
            cluster.create_kafka_topic("t", 1)

"""Tests for broker behaviour: routing upkeep, hybrid split, partials."""

import pytest

from repro.cluster.pinot import PinotCluster
from repro.cluster.table import StreamConfig, TableConfig
from repro.common.schema import Schema
from repro.common.timeutils import TimeGranularity, TimeUnit
from repro.common.types import DataType, dimension, metric, time_column
from repro.errors import ClusterError


@pytest.fixture
def schema():
    return Schema("events", [
        dimension("country"), metric("views", DataType.LONG),
        time_column("day", DataType.INT),
    ])


def offline_records(days, per_day=10):
    return [{"country": "us", "views": 1, "day": day}
            for day in days for __ in range(per_day)]


class TestBasics:
    def test_unknown_table_rejected(self, schema):
        cluster = PinotCluster(num_servers=1)
        with pytest.raises(ClusterError, match="no such table"):
            cluster.execute("SELECT count(*) FROM mystery")

    def test_physical_table_name_accepted(self, schema):
        cluster = PinotCluster(num_servers=1)
        cluster.create_table(TableConfig.offline("events", schema))
        cluster.upload_records("events", offline_records([17000]))
        response = cluster.execute("SELECT count(*) FROM events_OFFLINE")
        assert response.rows[0][0] == 10

    def test_round_robin_brokers(self, schema):
        cluster = PinotCluster(num_servers=1, num_brokers=3)
        cluster.create_table(TableConfig.offline("events", schema))
        cluster.upload_records("events", offline_records([17000]))
        for __ in range(6):
            cluster.execute("SELECT count(*) FROM events")
        assert all(b.queries_served == 2 for b in cluster.brokers)


class TestRoutingUpkeep:
    def test_routing_follows_new_segments(self, schema):
        cluster = PinotCluster(num_servers=2)
        cluster.create_table(TableConfig.offline("events", schema))
        cluster.upload_records("events", offline_records([17000]))
        assert cluster.execute("SELECT count(*) FROM events").rows[0][0] \
            == 10
        cluster.upload_records("events", offline_records([17001]))
        assert cluster.execute("SELECT count(*) FROM events").rows[0][0] \
            == 20

    def test_dead_server_not_routed_to(self, schema):
        cluster = PinotCluster(num_servers=3)
        cluster.create_table(TableConfig.offline("events", schema,
                                                 replication=2))
        cluster.upload_records("events", offline_records([17000, 17001]),
                               rows_per_segment=5)
        cluster.kill_server("server-1")
        response = cluster.execute("SELECT count(*) FROM events")
        assert not response.is_partial
        assert response.rows[0][0] == 20


class TestPartialResults:
    def test_server_error_marks_partial(self, schema):
        cluster = PinotCluster(num_servers=2)
        cluster.create_table(TableConfig.offline("events", schema))
        cluster.upload_records("events", offline_records([17000, 17001]),
                               rows_per_segment=10)
        for server in cluster.servers:
            server.faults.fail_next = 1
        response = cluster.execute("SELECT count(*) FROM events")
        assert response.is_partial
        assert response.exceptions

    def test_straggler_timeout_marks_partial(self, schema):
        """A server slower than the query's timeoutMs is treated as
        timed out; the rest of the data still comes back (§3.3.3)."""
        cluster = PinotCluster(num_servers=2)
        cluster.create_table(TableConfig.offline("events", schema,
                                                 replication=1))
        cluster.upload_records("events", offline_records([17000, 17001]),
                               rows_per_segment=10)
        cluster.servers[0].faults.extra_latency_s = 5.0  # straggler
        response = cluster.execute(
            "SELECT count(*) FROM events OPTION (timeoutMs = 100)"
        )
        assert response.is_partial
        assert any("timed out" in e for e in response.exceptions)
        assert 0 <= response.rows[0][0] <= 20
        # Without a timeout option the straggler is simply waited for.
        response = cluster.execute("SELECT count(*) FROM events")
        assert not response.is_partial
        assert response.rows[0][0] == 20

    def test_client_sees_remaining_data(self, schema):
        cluster = PinotCluster(num_servers=2)
        cluster.create_table(TableConfig.offline("events", schema,
                                                 replication=1))
        cluster.upload_records("events", offline_records([17000, 17001]),
                               rows_per_segment=10)
        cluster.servers[0].faults.fail_next = 1
        response = cluster.execute("SELECT count(*) FROM events")
        assert response.is_partial
        assert 0 <= response.rows[0][0] <= 20


class TestHybridTables:
    def make_hybrid(self, schema):
        cluster = PinotCluster(num_servers=2)
        cluster.create_kafka_topic("events-topic", 2)
        cluster.create_table(TableConfig.offline("events", schema))
        cluster.create_table(TableConfig.realtime(
            "events", schema,
            StreamConfig("events-topic", flush_threshold_rows=10_000),
        ))
        return cluster

    def test_hybrid_merges_offline_and_realtime(self, schema):
        cluster = self.make_hybrid(schema)
        # Offline has days 17000-17002; realtime has 17002-17004
        # (overlap on 17002, the lambda-architecture overlap of Fig 6).
        cluster.upload_records("events",
                               offline_records([17000, 17001, 17002]))
        realtime = [{"country": "us", "views": 1, "day": day}
                    for day in (17002, 17003, 17004) for __ in range(10)]
        cluster.ingest("events-topic", realtime)
        cluster.drain_realtime()

        response = cluster.execute("SELECT count(*) FROM events")
        # Time boundary = offline max (17002) - 1 = 17001: offline serves
        # days <= 17001 (20 rows), realtime serves days >= 17002 (30).
        assert response.rows[0][0] == 50

    def test_hybrid_no_double_counting_on_overlap(self, schema):
        cluster = self.make_hybrid(schema)
        cluster.upload_records("events",
                               offline_records([17000, 17001, 17002]))
        realtime = [{"country": "us", "views": 1, "day": 17002}
                    for __ in range(10)]
        cluster.ingest("events-topic", realtime)
        cluster.drain_realtime()
        response = cluster.execute(
            "SELECT count(*) FROM events WHERE day = 17002"
        )
        assert response.rows[0][0] == 10  # realtime side only

    def test_hybrid_filters_apply_to_both_sides(self, schema):
        cluster = self.make_hybrid(schema)
        cluster.upload_records("events",
                               offline_records([17000, 17001, 17002]))
        cluster.ingest("events-topic",
                       [{"country": "ca", "views": 2, "day": 17003}
                        for __ in range(5)])
        cluster.drain_realtime()
        response = cluster.execute(
            "SELECT sum(views) FROM events WHERE country = 'ca'"
        )
        assert response.rows[0][0] == 10.0

    def test_realtime_only_before_offline_push(self, schema):
        cluster = self.make_hybrid(schema)
        cluster.ingest("events-topic",
                       [{"country": "us", "views": 1, "day": 17000}
                        for __ in range(7)])
        cluster.drain_realtime()
        response = cluster.execute("SELECT count(*) FROM events")
        assert response.rows[0][0] == 7

    def test_hybrid_wide_granularity_no_data_loss(self, schema):
        """Regression: the broker used to drop the configured
        granularity *size* when computing the time boundary, backing
        off only one time unit instead of one bucket. With weekly
        (DAYS, 7) buckets and a partially-pushed trailing bucket, the
        offline side then served the incomplete bucket and the rows
        present only in realtime were silently lost."""
        granularity = TimeGranularity(TimeUnit.DAYS, 7)
        cluster = PinotCluster(num_servers=2)
        cluster.create_kafka_topic("events-topic", 2)
        cluster.create_table(TableConfig.offline(
            "events", schema, retention_granularity=granularity))
        cluster.create_table(TableConfig.realtime(
            "events", schema,
            StreamConfig("events-topic", flush_threshold_rows=10_000),
            retention_granularity=granularity,
        ))
        # Weekly buckets: [17003, 17009] complete in offline; the next
        # bucket was pushed mid-week and incompletely — offline has only
        # half of day 17010's rows (max_time = 17011).
        cluster.upload_records(
            "events",
            offline_records(range(17003, 17010))
            + offline_records([17010, 17011], per_day=5),
        )
        # Realtime retains everything from day 17005 on, including the
        # full day 17010 that offline only partially has.
        cluster.ingest("events-topic",
                       offline_records(range(17005, 17014)))
        cluster.drain_realtime()

        response = cluster.execute("SELECT count(*) FROM events")
        # Boundary = 17011 - 7 = 17004: offline serves 17003-17004
        # (20 rows), realtime serves 17005-17013 (90 rows). The buggy
        # boundary (17010) returned 105: offline's incomplete day 17010
        # (5 rows) instead of realtime's complete one (10 rows).
        assert response.rows[0][0] == 110
        per_day = cluster.execute(
            "SELECT count(*) FROM events WHERE day = 17010")
        assert per_day.rows[0][0] == 10

    def test_fanout_instrumentation(self, schema):
        cluster = PinotCluster(num_servers=3)
        cluster.create_table(TableConfig.offline("events", schema))
        cluster.upload_records("events",
                               offline_records([17000, 17001, 17002]),
                               rows_per_segment=10)
        broker = cluster.brokers[0]
        assert 1 <= broker.fanout_for("SELECT count(*) FROM events") <= 3

"""Shared brute-force reference evaluators used by multiple test
modules. The implementation moved to :mod:`repro.sim.reference` so the
simulation harness's query oracle can reuse it; this module remains as
the import point for tests."""

from repro.sim.reference import evaluate

__all__ = ["evaluate"]

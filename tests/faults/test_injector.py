"""Tests for the fault-injection subsystem (src/repro/faults/)."""

import pytest

from repro.engine.results import ServerResult
from repro.errors import ServerUnreachableError
from repro.faults import FaultInjector, FaultyServer, run_with_faults
from repro.pql.parser import parse


def decide(injector, n):
    return [injector.before_query() for __ in range(n)]


class TestFaultInjector:
    def test_healthy_by_default(self):
        decision = FaultInjector().before_query()
        assert not decision.crash
        assert decision.error is None
        assert decision.latency_s == 0.0

    def test_crash_and_recover(self):
        injector = FaultInjector()
        injector.crash()
        assert injector.before_query().crash
        assert injector.stats.crashes == 1
        injector.recover()
        assert not injector.before_query().crash

    def test_fail_next_counts_down(self):
        injector = FaultInjector(fail_next=2)
        errors = [d.error for d in decide(injector, 3)]
        assert errors == ["injected failure", "injected failure", None]
        assert injector.stats.errors == 2

    def test_error_rate_is_deterministic_for_a_seed(self):
        a = [d.error is not None
             for d in decide(FaultInjector(seed=42, error_rate=0.5), 50)]
        b = [d.error is not None
             for d in decide(FaultInjector(seed=42, error_rate=0.5), 50)]
        assert a == b
        assert any(a) and not all(a)  # flaky, not dead or healthy

    def test_latency_jitter_is_deterministic_for_a_seed(self):
        a = [d.latency_s
             for d in decide(FaultInjector(seed=7, jitter_latency_s=1.0), 20)]
        b = [d.latency_s
             for d in decide(FaultInjector(seed=7, jitter_latency_s=1.0), 20)]
        assert a == b
        assert all(0.0 <= latency <= 1.0 for latency in a)
        assert len(set(a)) > 1

    def test_commit_fault_crashes_the_server(self):
        injector = FaultInjector(fail_commit_next=1)
        assert injector.before_commit()
        assert injector.crashed  # died mid-commit
        assert injector.stats.commit_failures == 1
        injector.recover()
        assert not injector.before_commit()


class _DummyServer:
    instance_id = "dummy-0"

    def execute(self, query, table, segment_names):
        return ServerResult(server=self.instance_id)

    def hosted_segments(self, table):
        return ["seg-0"]


class TestRunWithFaults:
    def query(self, pql="SELECT count(*) FROM t"):
        return parse(pql)

    def test_crash_raises_unreachable(self):
        injector = FaultInjector()
        injector.crash()
        with pytest.raises(ServerUnreachableError):
            run_with_faults(injector, "s0", self.query(), lambda d: None)

    def test_injected_latency_beyond_timeout_times_out(self):
        injector = FaultInjector(extra_latency_s=5.0)
        query = self.query("SELECT count(*) FROM t OPTION (timeoutMs = 100)")
        result = run_with_faults(injector, "s0", query,
                                 lambda d: ServerResult(server="s0"))
        assert result.error is not None and "timed out" in result.error

    def test_real_elapsed_work_beyond_timeout_times_out(self):
        """The timeout fires on *measured* execution time, not only on
        injected latency (the old QueryFaults-era bug)."""
        injector = FaultInjector(busy_work_s=0.05)
        query = self.query("SELECT count(*) FROM t OPTION (timeoutMs = 10)")
        result = run_with_faults(injector, "s0", query,
                                 lambda d: ServerResult(server="s0"))
        assert result.error is not None and "timed out" in result.error
        assert result.elapsed_ms >= 50.0 * 0.9

    def test_deadline_is_passed_to_the_runner(self):
        injector = FaultInjector()
        query = self.query("SELECT count(*) FROM t OPTION (timeoutMs = 500)")
        seen = []
        run_with_faults(injector, "s0", query,
                        lambda d: (seen.append(d),
                                   ServerResult(server="s0"))[1])
        assert seen[0] is not None  # an absolute perf_counter deadline

    def test_elapsed_includes_injected_latency(self):
        injector = FaultInjector(extra_latency_s=0.2)
        result = run_with_faults(injector, "s0", self.query(),
                                 lambda d: ServerResult(server="s0"))
        assert result.error is None
        assert result.elapsed_ms >= 200.0


class TestFaultyServer:
    def test_wraps_any_server_like_object(self):
        wrapped = FaultyServer(_DummyServer())
        query = parse("SELECT count(*) FROM t")
        assert wrapped.execute(query, "t", ["seg-0"]).error is None
        wrapped.faults.fail_next = 1
        assert wrapped.execute(query, "t", ["seg-0"]).error is not None

    def test_delegates_unknown_attributes(self):
        wrapped = FaultyServer(_DummyServer())
        assert wrapped.instance_id == "dummy-0"
        assert wrapped.hosted_segments("t") == ["seg-0"]

"""Nested RPCs (Transport.subcall): a handler that calls another
endpoint mid-request must bill the nested round trip into its own
service time on the virtual timeline — the mechanism behind cold
segment loads extending a query's visible latency."""

import pytest

from repro.errors import ServerUnreachableError
from repro.net import LinkModel, SimClock, Transport

pytestmark = pytest.mark.net


class Store:
    def fetch(self, name):
        return {"payload": name}


class Server:
    """Handler that performs a nested fetch while serving a request."""

    def __init__(self, transport):
        self._transport = transport
        self.nested = []

    def serve(self, name):
        result = self._transport.subcall("server", "store", "fetch", name)
        self.nested.append(result)
        return result.unwrap()

    def serve_twice(self, name):
        first = self._transport.subcall("server", "store", "fetch", name)
        second = self._transport.subcall("server", "store", "fetch", name)
        self.nested.extend([first, second])
        return [first.unwrap(), second.unwrap()]


@pytest.fixture
def clock():
    return SimClock(auto_advance=False)


@pytest.fixture
def transport(clock):
    t = Transport(clock, seed=3)
    t.register("store", Store())
    t.register("server", Server(t))
    return t


class TestSubcallInsideHandler:
    def test_nested_round_trip_extends_outer_service(self, transport):
        transport.set_link(None, "store", LinkModel(latency_s=0.040))
        outer = transport.request("client", "server", "serve", "seg-1")
        assert outer.unwrap() == {"payload": "seg-1"}
        (nested,) = transport.endpoint("server").handler.nested
        # The nested call departs when the outer handler starts, not at
        # the current (unadvanced) clock.
        assert nested.departed >= outer.started
        assert nested.duration_s >= 0.080  # two 40ms crossings
        # The outer completion includes the nested round trip.
        assert outer.completed >= nested.completed

    def test_sequential_subcalls_accumulate(self, transport):
        transport.set_link(None, "store", LinkModel(latency_s=0.025))
        outer = transport.request("client", "server", "serve_twice", "s")
        assert outer.unwrap() == [{"payload": "s"}, {"payload": "s"}]
        first, second = transport.endpoint("server").handler.nested
        # The second nested call departs only after the first completes.
        assert second.departed >= first.completed
        assert outer.completed >= second.completed
        assert outer.duration_s >= 0.100  # four 25ms crossings

    def test_nested_failure_propagates_as_result_error(self, transport):
        transport.set_link(None, "store", LinkModel(drop_rate=1.0))
        outer = transport.request("client", "server", "serve", "seg-1")
        # The handler called unwrap() on the failed nested result; the
        # error surfaces as the outer request's error.
        assert isinstance(outer.error, ServerUnreachableError)


class TestSubcallOutsideHandler:
    def test_acts_like_call_and_advances_clock(self, transport, clock):
        transport.set_link(None, "store", LinkModel(latency_s=0.030))
        result = transport.subcall("client", "store", "fetch", "x")
        assert result.unwrap() == {"payload": "x"}
        assert clock.now() == pytest.approx(result.completed)

"""SimClock: the simulation's one source of time."""

import time

import pytest

from repro.net import SimClock

pytestmark = pytest.mark.net


class TestManualClock:
    def test_starts_at_origin_and_only_moves_on_advance(self):
        clock = SimClock(auto_advance=False)
        assert clock.now() == 0.0
        time.sleep(0.01)  # real time must not leak in
        assert clock.now() == 0.0

    def test_advance_moves_forward(self):
        clock = SimClock(auto_advance=False)
        assert clock.advance(1.5) == 1.5
        assert clock.advance(0.5) == 2.0

    def test_advance_ignores_negative(self):
        clock = SimClock(auto_advance=False)
        clock.advance(3.0)
        clock.advance(-2.0)
        assert clock.now() == 3.0

    def test_advance_to_never_goes_backward(self):
        clock = SimClock(auto_advance=False)
        clock.advance_to(5.0)
        assert clock.now() == 5.0
        # A completion instant that already passed costs nothing extra.
        clock.advance_to(2.0)
        assert clock.now() == 5.0

    def test_sleep_advances_without_blocking(self):
        clock = SimClock(auto_advance=False)
        started = time.perf_counter()
        clock.sleep(30.0)
        assert time.perf_counter() - started < 1.0
        assert clock.now() == 30.0

    def test_origin(self):
        clock = SimClock(origin=100.0, auto_advance=False)
        assert clock.now() == 100.0


class TestAutoClock:
    def test_tracks_real_elapsed_time(self):
        clock = SimClock()
        assert clock.auto_advance
        first = clock.now()
        time.sleep(0.01)
        assert clock.now() >= first + 0.01

    def test_virtual_advance_stacks_on_real_time(self):
        clock = SimClock()
        before = clock.now()
        clock.advance(10.0)
        assert clock.now() >= before + 10.0

"""Hedge budget math: the percentile tracker behind speculative retry."""

import pytest

from repro.net import HedgePolicy, LatencyTracker

pytestmark = pytest.mark.net


class TestLatencyTracker:
    def test_initial_budget_before_min_samples(self):
        tracker = LatencyTracker(HedgePolicy(min_samples=4,
                                             initial_budget_ms=25.0))
        assert tracker.percentile("t") is None
        assert tracker.budget_s("t") == pytest.approx(0.025)
        for _ in range(3):
            tracker.observe("t", 0.010)
        assert tracker.percentile("t") is None  # still warming up

    def test_nearest_rank_percentile(self):
        tracker = LatencyTracker(HedgePolicy(min_samples=4,
                                             percentile=95.0))
        for sample in [0.01, 0.01, 0.02, 0.02, 0.5]:
            tracker.observe("t", sample)
        # ceil(0.95 * 5) = 5 -> the 5th ordered sample.
        assert tracker.percentile("t") == pytest.approx(0.5)

    def test_budget_is_percentile_times_multiplier(self):
        tracker = LatencyTracker(HedgePolicy(min_samples=4,
                                             multiplier=1.5))
        for sample in [0.01, 0.01, 0.02, 0.02, 0.5]:
            tracker.observe("t", sample)
        assert tracker.budget_s("t") == pytest.approx(0.75)

    def test_budget_floor(self):
        tracker = LatencyTracker(HedgePolicy(min_samples=2, floor_ms=1.0))
        for _ in range(4):
            tracker.observe("t", 0.0001)
        assert tracker.budget_s("t") == pytest.approx(0.001)

    def test_windows_are_per_table(self):
        tracker = LatencyTracker(HedgePolicy(min_samples=2))
        for _ in range(4):
            tracker.observe("fast", 0.001)
            tracker.observe("slow", 1.0)
        assert tracker.budget_s("fast") < 0.01
        assert tracker.budget_s("slow") >= 1.0

    def test_sliding_window_forgets_old_samples(self):
        tracker = LatencyTracker(HedgePolicy(min_samples=2), window=8)
        for _ in range(8):
            tracker.observe("t", 1.0)
        for _ in range(8):  # a full window of fast samples evicts them
            tracker.observe("t", 0.01)
        assert tracker.percentile("t") == pytest.approx(0.01)

"""Transport: links, bounded queues, backpressure, virtual timings."""

import pytest

from repro.errors import (ClusterError, PinotError, ServerBusyError,
                          ServerUnreachableError)
from repro.net import LinkModel, ServiceModel, SimClock, Transport

pytestmark = pytest.mark.net


class Echo:
    """A handler with a few representative methods."""

    def ping(self, value):
        return {"pong": value}

    def boom(self):
        raise PinotError("handler exploded")

    def crash(self):
        raise ValueError("not a PinotError")


@pytest.fixture
def clock():
    return SimClock(auto_advance=False)


@pytest.fixture
def transport(clock):
    t = Transport(clock, seed=1)
    t.register("svc", Echo())
    return t


class TestTopology:
    def test_duplicate_registration_rejected(self, transport):
        with pytest.raises(ClusterError, match="already registered"):
            transport.register("svc", Echo())

    def test_deregister_makes_endpoint_unreachable(self, transport):
        transport.deregister("svc")
        result = transport.request("a", "svc", "ping", 1)
        assert isinstance(result.error, ServerUnreachableError)
        assert str(result.error) == "server unreachable"

    def test_link_lookup_precedence(self, transport):
        specific = LinkModel(latency_s=1.0)
        inbound_default = LinkModel(latency_s=2.0)
        transport.set_link("a", "svc", specific)
        transport.set_link(None, "svc", inbound_default)
        assert transport.link_between("a", "svc") is specific
        assert transport.link_between("b", "svc") is inbound_default


class TestCalls:
    def test_call_returns_value_and_advances_clock(self, transport, clock):
        transport.set_link("a", "svc", LinkModel(latency_s=0.1))
        value = transport.call("a", "svc", "ping", 7)
        assert value == {"pong": 7}
        assert clock.now() >= 0.2  # both directions of the link

    def test_request_does_not_advance_clock(self, transport, clock):
        transport.set_link("a", "svc", LinkModel(latency_s=0.5))
        result = transport.request("a", "svc", "ping", 7)
        assert clock.now() == 0.0  # caller decides when time passes
        assert result.completed >= 1.0

    def test_handler_pinot_error_lands_in_result(self, transport):
        result = transport.request("a", "svc", "boom")
        assert isinstance(result.error, PinotError)
        assert "handler exploded" in str(result.error)
        with pytest.raises(PinotError):
            result.unwrap()

    def test_non_pinot_error_propagates_raw(self, transport):
        # Programming errors are bugs, not modelled failures: they
        # must surface loudly, not ride the error channel.
        with pytest.raises(ValueError):
            transport.request("a", "svc", "crash")

    def test_payload_crosses_serialization_boundary(self, transport):
        marker = {"rows": [(1, "a")], "tags": {"x"}}
        received = transport.call("a", "svc", "ping", marker)["pong"]
        assert received == marker
        assert received is not marker
        assert received["rows"][0] == (1, "a")  # tuples survive

    def test_codec_false_passes_references_through(self, clock):
        transport = Transport(clock, codec=False)
        transport.register("svc", Echo())
        marker = {"rows": [object()]}
        assert transport.call("a", "svc", "ping", marker)["pong"] is marker


class TestLinkModels:
    def test_fixed_latency_breakdown(self, transport):
        transport.set_link("a", "svc", LinkModel(latency_s=0.25))
        result = transport.request("a", "svc", "ping", 1, depart_at=10.0)
        assert result.departed == 10.0
        assert result.arrived == pytest.approx(10.25)
        assert result.link_s == pytest.approx(0.5)
        assert result.completed == pytest.approx(
            10.5 + result.service_s)
        assert result.duration_s == pytest.approx(
            0.5 + result.service_s)

    def test_jitter_varies_but_stays_bounded(self, transport):
        transport.set_link("a", "svc", LinkModel(latency_s=0.1,
                                                 jitter_s=0.05))
        latencies = set()
        for i in range(16):
            result = transport.request("a", "svc", "ping", i,
                                       depart_at=float(i))
            assert 0.2 <= result.link_s <= 0.3
            latencies.add(round(result.link_s, 9))
        assert len(latencies) > 1

    def test_bandwidth_charges_payload_size(self, transport):
        transport.set_link("a", "svc",
                           LinkModel(bandwidth_bytes_per_s=1000.0))
        small = transport.request("a", "svc", "ping", "x", depart_at=0.0)
        big = transport.request("a", "svc", "ping", "y" * 5000,
                                depart_at=0.0)
        assert big.request_bytes > small.request_bytes
        assert big.link_s > small.link_s

    def test_lossy_link_drops_as_unreachable(self, clock):
        transport = Transport(clock, seed=3)
        transport.register("svc", Echo())
        transport.set_link("a", "svc", LinkModel(drop_rate=0.5))
        outcomes = [transport.request("a", "svc", "ping", i,
                                      depart_at=float(i))
                    for i in range(40)]
        dropped = [r for r in outcomes if r.error is not None]
        delivered = [r for r in outcomes if r.error is None]
        assert dropped and delivered
        assert all(isinstance(r.error, ServerUnreachableError)
                   for r in dropped)


class TestBoundedQueue:
    def test_burst_queues_then_rejects(self, clock):
        transport = Transport(clock)
        transport.register("svc", Echo(), queue_capacity=2,
                           service=ServiceModel(base_s=1.0))
        r1 = transport.request("a", "svc", "ping", 1, depart_at=0.0)
        r2 = transport.request("a", "svc", "ping", 2, depart_at=0.0)
        r3 = transport.request("a", "svc", "ping", 3, depart_at=0.0)
        assert r1.error is None and r1.queue_s == 0.0
        assert r2.error is None and r2.queue_s >= 1.0  # waited for r1
        assert isinstance(r3.error, ServerBusyError)
        assert r3.rejected
        assert "inbound queue full" in str(r3.error)
        # Rejection costs no service work.
        assert r3.service_s == 0.0

    def test_queue_drains_with_virtual_time(self, clock):
        transport = Transport(clock)
        transport.register("svc", Echo(), queue_capacity=2,
                           service=ServiceModel(base_s=1.0))
        for i in range(2):
            transport.request("a", "svc", "ping", i, depart_at=0.0)
        late = transport.request("a", "svc", "ping", 9, depart_at=10.0)
        assert late.error is None
        assert late.queue_s == 0.0  # backlog completed long before

    def test_stats_reflect_traffic(self, clock):
        transport = Transport(clock)
        transport.register("svc", Echo(), queue_capacity=1,
                           service=ServiceModel(base_s=1.0))
        transport.request("a", "svc", "ping", 1, depart_at=0.0)
        transport.request("a", "svc", "ping", 2, depart_at=0.0)
        stats = transport.stats()["svc"]
        assert stats["calls"] == 1
        assert stats["rejections"] == 1
        assert stats["max_queue_depth"] == 1


class TestServiceModel:
    def test_modelled_service_time_stacks_on_measured(self, clock):
        transport = Transport(clock)
        transport.register("svc", Echo(),
                           service=ServiceModel(base_s=0.2))
        result = transport.request("a", "svc", "ping", 1)
        assert result.service_s >= 0.2
        assert result.completed >= 0.2

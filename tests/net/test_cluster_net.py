"""The cluster over the transport: serialization boundary, overload
rejection, direct-call parity, and the clock-discipline rule."""

import json
import re
from pathlib import Path

import pytest

from repro.cluster.pinot import PinotCluster
from repro.cluster.table import TableConfig
from repro.cluster.tenant import TenantQuotaManager
from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric
from repro.net import ServiceModel, SimClock, Transport
from repro.workloads import impressions, wvmp

pytestmark = pytest.mark.net


@pytest.fixture
def schema():
    return Schema("events", [dimension("c"), metric("v", DataType.LONG)])


class _RetainingServer:
    """Wraps a server, keeping a reference to every result it returns —
    the 'server reuses its buffers' scenario the codec must isolate."""

    def __init__(self, server):
        self._server = server
        self.returned = []

    def __getattr__(self, name):
        return getattr(self._server, name)

    def execute(self, *args, **kwargs):
        result = self._server.execute(*args, **kwargs)
        self.returned.append(result)
        return result


class TestSerializationBoundary:
    def test_server_mutation_cannot_corrupt_broker_results(self, schema):
        """Regression: before the transport, broker and server shared
        object references; a server mutating a result it had already
        returned would silently corrupt the broker's merged (and
        cached) response."""
        cluster = PinotCluster(num_servers=1)
        cluster.create_table(TableConfig.offline("events", schema))
        cluster.upload_records(
            "events", [{"c": f"c{i % 4}", "v": i} for i in range(40)]
        )
        wrapper = _RetainingServer(cluster.server("server-0"))
        cluster.net.deregister("server-0")
        cluster.net.register("server-0", wrapper)

        pql = "SELECT c, sum(v) FROM events GROUP BY c"
        first = cluster.execute(pql)
        baseline = json.dumps(first.rows, default=str)
        assert wrapper.returned

        # The server trashes every result object it ever returned.
        for result in wrapper.returned:
            if result.group_by is not None:
                for states in result.group_by.groups.values():
                    states[:] = [10 ** 9 for _ in states]
                result.group_by.groups[("poison",)] = [10 ** 9]
            result.server = "poisoned"

        # Neither the already-returned response nor a cache hit nor a
        # fresh scatter sees the mutation.
        assert json.dumps(first.rows, default=str) == baseline
        cached = cluster.execute(pql)
        assert json.dumps(cached.rows, default=str) == baseline
        fresh = cluster.execute(pql + " OPTION(skipCache=true)")
        assert json.dumps(fresh.rows, default=str) == baseline

    def test_broker_mutation_cannot_corrupt_server_state(self, schema):
        """The boundary cuts both ways: the query object a server
        receives is a fresh copy, so whatever the server does to it
        cannot leak back into broker state."""
        cluster = PinotCluster(num_servers=1)
        cluster.create_table(TableConfig.offline("events", schema))
        cluster.upload_records("events", [{"c": "x", "v": 1}] * 10)
        first = cluster.execute("SELECT count(*) FROM events")
        assert first.rows[0][0] == 10
        again = cluster.execute("SELECT count(*) FROM events")
        assert again.rows == first.rows


class TestOverloadRejection:
    def _burst_cluster(self, schema, queue_capacity=1):
        quotas = TenantQuotaManager(default_capacity=100.0,
                                    default_refill_rate=0.001)
        cluster = PinotCluster(num_servers=1, quotas=quotas,
                               clock=SimClock(auto_advance=False))
        cluster.create_table(TableConfig.offline("events", schema,
                                                 tenant="burst"))
        cluster.upload_records(
            "events", [{"c": "x", "v": i} for i in range(50)]
        )
        server = cluster.server("server-0")
        cluster.net.deregister("server-0")
        cluster.net.register("server-0", server,
                             queue_capacity=queue_capacity,
                             service=ServiceModel(base_s=0.2))
        return cluster

    def test_burst_overflow_becomes_partial_with_detail(self, schema):
        cluster = self._burst_cluster(schema, queue_capacity=1)
        t0 = cluster.clock.now()
        responses = [
            cluster.execute("SELECT count(*) FROM events"
                            " OPTION(skipCache=true)", at=t0, now=t0)
            for _ in range(4)
        ]
        complete = [r for r in responses if not r.partial]
        rejected = [r for r in responses if r.partial]
        # capacity=1: exactly one query fit the inbound queue.
        assert len(complete) == 1
        assert len(rejected) == 3
        assert complete[0].rows[0][0] == 50
        for response in rejected:
            detail = " ".join(response.exceptions)
            assert "server-0" in detail or "'server-0'" in detail
            assert "inbound queue full" in detail
        metrics = cluster.brokers[0].metrics
        assert metrics.count("server_busy_rejections") >= 3
        # One server, so there was no replica to fail over to.
        assert metrics.count("segments_unroutable") > 0

    def test_rejected_queries_charge_admission_only(self, schema):
        """§4.5 + backpressure: a query the server refused did no work,
        so the tenant pays the admission token and nothing else; the
        executed query is also charged for its 0.2s of service time."""
        cluster = self._burst_cluster(schema, queue_capacity=1)
        t0 = cluster.clock.now()
        for _ in range(4):
            cluster.execute("SELECT count(*) FROM events"
                            " OPTION(skipCache=true)", at=t0, now=t0)
        bucket = cluster.quotas.bucket("burst")
        spent = 100.0 - bucket.tokens
        # 4 admission tokens + ~2 tokens (0.2s x 10/s) for the one
        # executed query. Were rejected queries charged for the
        # winner's virtual time too, this would be ~12.
        assert 5.5 <= spent <= 8.0


class TestDirectCallParity:
    def _run(self, workload, table, transport=None, queries=25):
        cluster = PinotCluster(num_servers=2, seed=11,
                               clock=None if transport else
                               SimClock(auto_advance=False),
                               transport=transport)
        cluster.create_table(TableConfig.offline(
            table, workload.schema(), replication=2))
        cluster.upload_records(table,
                               workload.generate_records(4000, seed=2),
                               rows_per_segment=500)
        out = []
        for pql in workload.generate_queries(queries, seed=9):
            response = cluster.execute(pql + " OPTION(skipCache=true)")
            assert not response.partial
            out.append(json.dumps(response.rows, default=str))
        return out

    @pytest.mark.parametrize("workload,table", [
        (wvmp, "wvmp"), (impressions, "impressions"),
    ])
    def test_codec_transport_matches_direct_calls(self, workload, table):
        """The acceptance bar: the full serialization boundary changes
        no query result, byte for byte."""
        direct = Transport(SimClock(auto_advance=False), seed=11,
                           codec=False)
        assert (self._run(workload, table) ==
                self._run(workload, table, transport=direct))


class TestClockDiscipline:
    FORBIDDEN = re.compile(r"\btime\.(monotonic|time)\(")

    def test_only_the_sim_clock_touches_wall_time(self):
        """The CI grep, enforced from inside the suite too: nothing in
        src/repro reads wall-clock time except repro/net/clock.py.
        (time.perf_counter for *measuring* real work is allowed.)"""
        root = Path(__file__).resolve().parents[2] / "src" / "repro"
        assert root.is_dir()
        offenders = []
        for path in sorted(root.rglob("*.py")):
            if path.relative_to(root).as_posix() == "net/clock.py":
                continue
            for lineno, line in enumerate(
                    path.read_text().splitlines(), start=1):
                if self.FORBIDDEN.search(line):
                    offenders.append(f"{path}:{lineno}: {line.strip()}")
        assert not offenders, "\n".join(offenders)

"""The tagged JSON codec: every payload type the cluster ships.

Every round-trip here goes through :func:`json_roundtrip` — actual
JSON text — so a type that merely *looks* JSON-safe (tuple, numpy
scalar) cannot pass by accident.
"""

import numpy as np
import pytest

from repro.common.types import DataType
from repro.engine.results import ExecutionStats, ServerResult
from repro.engine.sketches import HyperLogLog
from repro.errors import PinotError, SegmentError, ThrottledError
from repro.net import decode, encode, json_roundtrip
from repro.net.codec import decode_error, encode_error, payload_bytes
from repro.obs.metrics import runtime_metrics

pytestmark = pytest.mark.net


def roundtrip(obj, blobs=None):
    out_blobs = [] if blobs is None else blobs
    tree = encode(obj, out_blobs)
    return decode(json_roundtrip(tree), out_blobs)


class TestPrimitives:
    @pytest.mark.parametrize("obj", [
        None, True, False, 0, -7, 3.25, "hello", "", [1, 2, 3], [],
        {"a": 1, "b": [2.5, None]},
    ])
    def test_json_native_values_pass_through(self, obj):
        assert roundtrip(obj) == obj

    def test_tuple_stays_a_tuple(self):
        assert roundtrip((1, "a", (2, 3))) == (1, "a", (2, 3))

    def test_non_string_dict_keys(self):
        obj = {("us", 3): 10, 7: "x"}
        assert roundtrip(obj) == obj

    def test_string_dict_with_tilde_key_is_escaped(self):
        # A user dict containing the tag key must not be mistaken for
        # a codec node.
        obj = {"~": "gotcha", "x": 1}
        assert roundtrip(obj) == obj

    def test_sets(self):
        assert roundtrip({1, 2, 3}) == {1, 2, 3}
        out = roundtrip(frozenset({"a", "b"}))
        assert out == frozenset({"a", "b"})
        assert isinstance(out, frozenset)


class TestNumpyAndSketches:
    def test_numpy_scalar_keeps_dtype(self):
        out = roundtrip(np.int64(42))
        assert out == 42
        assert out.dtype == np.int64
        assert roundtrip(np.float32(1.5)) == np.float32(1.5)

    def test_numpy_array_keeps_dtype_and_values(self):
        arr = np.array([1, 5, 9], dtype=np.int32)
        out = roundtrip(arr)
        assert out.dtype == np.int32
        np.testing.assert_array_equal(out, arr)

    def test_hyperloglog_estimate_survives(self):
        hll = HyperLogLog(precision=10)
        for i in range(5000):
            hll.add(f"user-{i}")
        out = roundtrip(hll)
        assert out is not hll
        assert out.cardinality() == hll.cardinality()


class TestStructured:
    def test_enum(self):
        assert roundtrip(DataType.LONG) is DataType.LONG

    def test_dataclass_is_a_fresh_object(self):
        stats = ExecutionStats(num_docs_scanned=99)
        out = roundtrip(stats)
        assert out == stats
        assert out is not stats

    def test_nested_server_result(self):
        result = ServerResult(server="server-1", error=None,
                              stats=ExecutionStats(num_segments_queried=4),
                              elapsed_ms=12.5)
        out = roundtrip(result)
        assert out == result
        assert out.stats is not result.stats

    def test_refuses_non_repro_classes(self):
        class Rogue:
            pass

        with pytest.raises(PinotError, match="cannot encode"):
            encode(Rogue())

    def test_decode_refuses_non_repro_class_path(self):
        with pytest.raises(PinotError, match="refuses non-repro"):
            decode({"~": "dc", "c": "os:system", "v": {}})


class TestErrors:
    def test_error_roundtrip_keeps_class_and_message(self):
        out = decode_error(json_roundtrip(
            encode_error(SegmentError("segment seg_3 missing"))
        ))
        assert isinstance(out, SegmentError)
        assert "seg_3 missing" in str(out)

    def test_unreconstructable_error_degrades_to_pinot_error(self):
        # ThrottledError's __init__ takes (tenant, retry_after_s); its
        # args don't round-trip into the constructor, so the decode
        # degrades instead of crashing the transport.
        tree = json_roundtrip(encode_error(ThrottledError("gold", 2.0)))
        out = decode_error(tree)
        assert type(out) is PinotError
        assert "out of query tokens" in str(out)

    def test_expected_fallbacks_are_counted_not_swallowed_silently(self):
        before = runtime_metrics.count("codec_decode_error_fallbacks")
        for tree in (
            {"~": "exc", "c": "os:system", "v": ["x"]},  # non-repro path
            {"~": "exc", "c": "repro.gone:Missing", "v": []},  # no module
            {"~": "exc",
             "c": "repro.errors:ThrottledError", "v": ["only-one-arg"]},
        ):
            out = decode_error(json_roundtrip(tree))
            assert type(out) is PinotError
        after = runtime_metrics.count("codec_decode_error_fallbacks")
        assert after == before + 3

    def test_unexpected_constructor_failures_propagate(self, monkeypatch):
        """Only *expected* reconstruction failures may degrade; a class
        whose constructor raises something else is a genuine bug and
        must surface, not be silently replaced with a PinotError."""
        class Exploding(PinotError):
            def __init__(self, *args):
                raise RuntimeError("constructor bug")

        monkeypatch.setattr("repro.errors.Exploding", Exploding,
                            raising=False)
        tree = json_roundtrip(
            {"~": "exc", "c": "repro.errors:Exploding", "v": []}
        )
        with pytest.raises(RuntimeError, match="constructor bug"):
            decode_error(tree)


class TestBlobs:
    def test_blob_rides_side_channel_uncopied(self, tiny_segment):
        blobs = []
        tree = json_roundtrip(encode({"seg": tiny_segment}, blobs))
        assert blobs == [tiny_segment]
        out = decode(tree, blobs)
        assert out["seg"] is tiny_segment  # by reference, not by value

    def test_blob_without_channel_raises(self, tiny_segment):
        with pytest.raises(PinotError, match="side channel"):
            encode(tiny_segment, None)

    def test_payload_bytes_counts_blob_estimate(self, tiny_segment):
        blobs = []
        tree = encode({"seg": tiny_segment}, blobs)
        assert payload_bytes(tree, blobs) > payload_bytes(tree, [])


@pytest.fixture
def tiny_segment():
    from repro.common.schema import Schema
    from repro.common.types import DataType, dimension, metric
    from repro.segment.builder import SegmentBuilder

    schema = Schema("t", [dimension("d"), metric("m", DataType.LONG)])
    builder = SegmentBuilder("t_0", "t", schema)
    for i in range(4):
        builder.add({"d": f"v{i}", "m": i})
    return builder.build()

"""Tests for the Helix-style cluster manager and state machine."""

import pytest

from repro.errors import ClusterError
from repro.helix.manager import HelixManager
from repro.helix.statemachine import (
    SegmentState,
    is_valid_transition,
    transition_path,
)
from repro.zk.store import ZkStore


class TestStateMachine:
    def test_valid_edges(self):
        assert is_valid_transition(SegmentState.OFFLINE, SegmentState.ONLINE)
        assert is_valid_transition(SegmentState.OFFLINE,
                                   SegmentState.CONSUMING)
        assert is_valid_transition(SegmentState.CONSUMING,
                                   SegmentState.ONLINE)
        assert not is_valid_transition(SegmentState.ONLINE,
                                       SegmentState.CONSUMING)
        assert not is_valid_transition(SegmentState.DROPPED,
                                       SegmentState.ONLINE)

    def test_path_direct(self):
        path = transition_path(SegmentState.OFFLINE, SegmentState.ONLINE)
        assert path == [(SegmentState.OFFLINE, SegmentState.ONLINE)]

    def test_path_via_offline(self):
        path = transition_path(SegmentState.ONLINE, SegmentState.DROPPED)
        assert path == [
            (SegmentState.ONLINE, SegmentState.OFFLINE),
            (SegmentState.OFFLINE, SegmentState.DROPPED),
        ]

    def test_identity_path_is_empty(self):
        assert transition_path(SegmentState.ONLINE,
                               SegmentState.ONLINE) == []

    def test_impossible_path_rejected(self):
        with pytest.raises(ClusterError):
            transition_path(SegmentState.DROPPED, SegmentState.ONLINE)


class RecordingParticipant:
    """Minimal participant logging its transitions."""

    def __init__(self, instance_id, fail=False):
        self.instance_id = instance_id
        self.transitions = []
        self.fail = fail

    def process_transition(self, resource, segment, from_state, to_state):
        if self.fail:
            raise ClusterError("boom")
        self.transitions.append((resource, segment, from_state.value,
                                 to_state.value))


@pytest.fixture
def helix():
    return HelixManager(ZkStore(), "test")


class TestMembership:
    def test_register_and_live(self, helix):
        participant = RecordingParticipant("s1")
        helix.register_participant(participant, tags=["server"])
        assert helix.live_instances() == ["s1"]
        assert helix.instance_tags("s1") == ["server"]
        assert helix.instances_with_tag("server") == ["s1"]

    def test_double_register_rejected(self, helix):
        helix.register_participant(RecordingParticipant("s1"))
        with pytest.raises(ClusterError):
            helix.register_participant(RecordingParticipant("s1"))

    def test_deregister_removes_liveness(self, helix):
        helix.register_participant(RecordingParticipant("s1"))
        helix.deregister_participant("s1")
        assert helix.live_instances() == []


class TestConvergence:
    def test_ideal_state_drives_transitions(self, helix):
        participant = RecordingParticipant("s1")
        helix.register_participant(participant)
        helix.set_ideal_state("tableA", {"seg1": {"s1": "ONLINE"}})
        assert participant.transitions == [
            ("tableA", "seg1", "OFFLINE", "ONLINE")
        ]
        assert helix.external_view("tableA") == {"seg1": {"s1": "ONLINE"}}

    def test_converge_is_idempotent(self, helix):
        participant = RecordingParticipant("s1")
        helix.register_participant(participant)
        helix.set_ideal_state("tableA", {"seg1": {"s1": "ONLINE"}})
        helix.converge("tableA")
        assert len(participant.transitions) == 1

    def test_removal_from_ideal_state_drops_replica(self, helix):
        participant = RecordingParticipant("s1")
        helix.register_participant(participant)
        helix.set_ideal_state("tableA", {"seg1": {"s1": "ONLINE"}})
        helix.set_ideal_state("tableA", {})
        assert helix.external_view("tableA") == {}
        assert participant.transitions[-1][3] == "DROPPED"

    def test_failed_transition_marks_error(self, helix):
        participant = RecordingParticipant("s1", fail=True)
        helix.register_participant(participant)
        helix.set_ideal_state("tableA", {"seg1": {"s1": "ONLINE"}})
        assert helix.external_view("tableA")["seg1"]["s1"] == "ERROR"

    def test_error_replica_retries_from_offline(self, helix):
        # A replica parked in ERROR must not crash later convergence
        # (the seed-23 sim crash); once the participant heals, the
        # retry restarts its lifecycle from OFFLINE.
        participant = RecordingParticipant("s1", fail=True)
        helix.register_participant(participant)
        helix.set_ideal_state("tableA", {"seg1": {"s1": "ONLINE"}})
        assert helix.external_view("tableA")["seg1"]["s1"] == "ERROR"
        helix.converge("tableA")  # still failing: parked, no crash
        assert helix.external_view("tableA")["seg1"]["s1"] == "ERROR"
        participant.fail = False
        helix.converge("tableA")
        assert helix.external_view("tableA") == {"seg1": {"s1": "ONLINE"}}
        assert participant.transitions == [
            ("tableA", "seg1", "OFFLINE", "ONLINE")
        ]

    def test_error_replica_dropped_when_leaving_ideal(self, helix):
        participant = RecordingParticipant("s1", fail=True)
        helix.register_participant(participant)
        helix.set_ideal_state("tableA", {"seg1": {"s1": "ONLINE"}})
        participant.fail = False
        helix.set_ideal_state("tableA", {})
        assert helix.external_view("tableA") == {}
        assert participant.transitions[-1][3] == "DROPPED"

    def test_dead_instance_skipped(self, helix):
        helix.set_ideal_state("tableA", {"seg1": {"ghost": "ONLINE"}})
        assert helix.external_view("tableA") == {}

    def test_consuming_transition(self, helix):
        participant = RecordingParticipant("s1")
        helix.register_participant(participant)
        helix.set_ideal_state("tableA", {"seg1": {"s1": "CONSUMING"}})
        assert participant.transitions == [
            ("tableA", "seg1", "OFFLINE", "CONSUMING")
        ]
        helix.set_ideal_state("tableA", {"seg1": {"s1": "ONLINE"}})
        assert participant.transitions[-1] == (
            "tableA", "seg1", "CONSUMING", "ONLINE"
        )

    def test_instance_death_purges_views(self, helix):
        participant = RecordingParticipant("s1")
        helix.register_participant(participant)
        helix.set_ideal_state("tableA", {"seg1": {"s1": "ONLINE"}})
        helix.deregister_participant("s1")
        helix.handle_instance_death("s1")
        assert helix.external_view("tableA") == {}

    def test_view_watch_fires(self, helix):
        events = []
        helix.watch_external_view(lambda event, path: events.append(path))
        participant = RecordingParticipant("s1")
        helix.register_participant(participant)
        helix.set_ideal_state("tableA", {"seg1": {"s1": "ONLINE"}})
        assert any("tableA" in path for path in events)


class TestPropertyStore:
    def test_properties(self, helix):
        helix.set_property("segments/t/s1", {"docs": 5})
        assert helix.get_property("segments/t/s1") == {"docs": 5}
        assert helix.get_property("segments/t/none") is None
        assert helix.list_properties("segments/t") == ["s1"]
        helix.delete_property("segments/t/s1")
        assert helix.get_property("segments/t/s1") is None

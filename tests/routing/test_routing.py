"""Tests for the routing strategies, including Algorithms 1 and 2."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RoutingError
from repro.pql.parser import parse
from repro.routing.balanced import BalancedRouting
from repro.routing.base import TableRoutingSnapshot, coverage_is_exact
from repro.routing.large_cluster import (
    LargeClusterRouting,
    filter_routing_tables,
    generate_routing_table,
    routing_table_metric,
)
from repro.routing.partition_aware import (
    PartitionAwareRouting,
    partitions_for_query,
)


def make_snapshot(num_segments=30, num_servers=10, replication=3, seed=0):
    rng = random.Random(seed)
    servers = [f"server-{i}" for i in range(num_servers)]
    mapping = {
        f"seg-{i}": rng.sample(servers, replication)
        for i in range(num_segments)
    }
    return TableRoutingSnapshot(segment_to_instances=mapping)


QUERY = parse("SELECT count(*) FROM t")


class TestBalanced:
    def test_coverage_exact(self):
        snapshot = make_snapshot()
        routing = BalancedRouting(rng=random.Random(1))
        routing.rebuild(snapshot)
        table = routing.route(QUERY)
        assert coverage_is_exact(table,
                                 set(snapshot.segment_to_instances))

    def test_load_balanced(self):
        snapshot = make_snapshot(num_segments=100, num_servers=5,
                                 replication=3)
        routing = BalancedRouting(rng=random.Random(1))
        routing.rebuild(snapshot)
        table = routing.route(QUERY)
        counts = [len(v) for v in table.values()]
        assert max(counts) - min(counts) <= 5

    def test_route_before_rebuild_rejected(self):
        with pytest.raises(RoutingError):
            BalancedRouting().route(QUERY)

    def test_segment_without_replica_rejected(self):
        snapshot = TableRoutingSnapshot({"seg-0": []})
        with pytest.raises(RoutingError):
            BalancedRouting().rebuild(snapshot)


class TestAlgorithm1:
    def test_coverage_exact(self):
        snapshot = make_snapshot(num_segments=50, num_servers=20,
                                 replication=3)
        table = generate_routing_table(snapshot, target=6,
                                       rng=random.Random(2))
        assert coverage_is_exact(table,
                                 set(snapshot.segment_to_instances))

    def test_server_count_near_target(self):
        snapshot = make_snapshot(num_segments=50, num_servers=20,
                                 replication=3)
        tables = [
            generate_routing_table(snapshot, target=6,
                                   rng=random.Random(seed))
            for seed in range(10)
        ]
        sizes = [len(t) for t in tables]
        # Approximately minimal: at or above the target (it is a lower
        # bound), and clearly below "every server" — the point of the
        # strategy is bounding per-query fan-out, not exact set cover.
        assert min(sizes) >= 6
        assert max(sizes) < 20
        assert sum(sizes) / len(sizes) <= 15

    def test_fewer_servers_than_target_uses_all(self):
        snapshot = make_snapshot(num_segments=20, num_servers=4,
                                 replication=2)
        table = generate_routing_table(snapshot, target=8,
                                       rng=random.Random(0))
        assert coverage_is_exact(table,
                                 set(snapshot.segment_to_instances))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_coverage_property(self, seed):
        snapshot = make_snapshot(
            num_segments=25, num_servers=12, replication=2,
            seed=seed % 7,
        )
        table = generate_routing_table(snapshot, target=5,
                                       rng=random.Random(seed))
        assert coverage_is_exact(table,
                                 set(snapshot.segment_to_instances))


class TestAlgorithm2:
    def test_keeps_requested_count(self):
        snapshot = make_snapshot(num_segments=60, num_servers=20,
                                 replication=3)
        tables = filter_routing_tables(snapshot, target=6, keep=5,
                                       generate=50, rng=random.Random(3))
        assert len(tables) == 5
        for table in tables:
            assert coverage_is_exact(table,
                                     set(snapshot.segment_to_instances))

    def test_selection_improves_metric(self):
        snapshot = make_snapshot(num_segments=60, num_servers=20,
                                 replication=3)
        rng = random.Random(3)
        all_metrics = [
            routing_table_metric(generate_routing_table(snapshot, 6, rng))
            for __ in range(50)
        ]
        kept = filter_routing_tables(snapshot, target=6, keep=5,
                                     generate=50, rng=random.Random(3))
        kept_worst = max(routing_table_metric(t) for t in kept)
        # The kept tables' worst metric must beat the average candidate.
        assert kept_worst <= sum(all_metrics) / len(all_metrics)

    def test_invalid_parameters(self):
        snapshot = make_snapshot()
        with pytest.raises(RoutingError):
            filter_routing_tables(snapshot, 5, keep=10, generate=5,
                                  rng=random.Random(0))

    def test_strategy_wrapper(self):
        snapshot = make_snapshot(num_segments=40, num_servers=15,
                                 replication=3)
        routing = LargeClusterRouting(target_servers=5, keep_tables=4,
                                      generate_tables=20,
                                      rng=random.Random(1))
        routing.rebuild(snapshot)
        table = routing.route(QUERY)
        assert coverage_is_exact(table,
                                 set(snapshot.segment_to_instances))
        assert len(table) < 15


class TestPartitionAware:
    def make_partitioned_snapshot(self):
        from repro.kafka.partitioner import kafka_partition

        servers = [f"server-{i}" for i in range(8)]
        mapping, partitions = {}, {}
        for p in range(8):
            for seq in range(3):
                name = f"t__{p}__{seq}"
                mapping[name] = [servers[p], servers[(p + 1) % 8]]
                partitions[name] = p
        return TableRoutingSnapshot(
            segment_to_instances=mapping,
            segment_partitions=partitions,
            partition_column="memberId",
            num_partitions=8,
        )

    def test_partitions_for_query_eq(self):
        query = parse("SELECT count(*) FROM t WHERE memberId = 42")
        partitions = partitions_for_query(query, "memberId", 8)
        from repro.kafka.partitioner import kafka_partition

        assert partitions == {kafka_partition(42, 8)}

    def test_partitions_for_query_in(self):
        query = parse(
            "SELECT count(*) FROM t WHERE memberId IN (1, 2, 3)"
        )
        assert len(partitions_for_query(query, "memberId", 8)) <= 3

    def test_no_constraint_returns_none(self):
        query = parse("SELECT count(*) FROM t WHERE other = 5")
        assert partitions_for_query(query, "memberId", 8) is None

    def test_or_on_partition_column_returns_none(self):
        query = parse(
            "SELECT count(*) FROM t WHERE memberId = 1 OR other = 2"
        )
        assert partitions_for_query(query, "memberId", 8) is None

    def test_routes_only_relevant_partition(self):
        from repro.kafka.partitioner import kafka_partition

        snapshot = self.make_partitioned_snapshot()
        routing = PartitionAwareRouting(rng=random.Random(5))
        routing.rebuild(snapshot)
        query = parse("SELECT count(*) FROM t WHERE memberId = 77")
        table = routing.route(query)
        partition = kafka_partition(77, 8)
        expected = {f"t__{partition}__{seq}" for seq in range(3)}
        routed = {seg for segs in table.values() for seg in segs}
        assert routed == expected
        assert len(table) <= 2

    def test_falls_back_to_balanced_without_constraint(self):
        snapshot = self.make_partitioned_snapshot()
        routing = PartitionAwareRouting(rng=random.Random(5))
        routing.rebuild(snapshot)
        query = parse("SELECT count(*) FROM t WHERE day > 5")
        table = routing.route(query)
        assert coverage_is_exact(table,
                                 set(snapshot.segment_to_instances))

    def test_requires_partition_config(self):
        routing = PartitionAwareRouting()
        with pytest.raises(RoutingError):
            routing.rebuild(make_snapshot())

"""Tests for the three forward-index layouts."""

import numpy as np
import pytest

from repro.errors import SegmentError
from repro.segment.forward import (
    MultiValueForwardIndex,
    SingleValueForwardIndex,
    SortedForwardIndex,
)


class TestSingleValue:
    def test_roundtrip(self):
        ids = np.array([3, 1, 4, 1, 5], dtype=np.uint32)
        forward = SingleValueForwardIndex.from_dict_ids(ids)
        assert forward.num_docs == 5
        assert np.array_equal(forward.dict_ids(), ids)
        assert forward.dict_id(2) == 4

    def test_bit_packed_storage(self):
        ids = np.arange(1000, dtype=np.uint32) % 8  # 3 bits each
        forward = SingleValueForwardIndex.from_dict_ids(ids)
        assert forward.nbytes == 375  # 3 * 1000 / 8


class TestSorted:
    def test_from_sorted_ids(self):
        ids = np.array([0, 0, 1, 1, 1, 3], dtype=np.uint32)
        forward = SortedForwardIndex.from_sorted_dict_ids(ids, 4)
        assert forward.num_docs == 6
        assert forward.doc_range(0) == (0, 2)
        assert forward.doc_range(1) == (2, 5)
        assert forward.doc_range(2) == (5, 5)  # absent id: empty range
        assert forward.doc_range(3) == (5, 6)

    def test_unsorted_rejected(self):
        with pytest.raises(SegmentError):
            SortedForwardIndex.from_sorted_dict_ids(
                np.array([1, 0], dtype=np.uint32), 2
            )

    def test_doc_range_for_ids(self):
        ids = np.array([0, 0, 1, 2, 2, 2], dtype=np.uint32)
        forward = SortedForwardIndex.from_sorted_dict_ids(ids, 3)
        assert forward.doc_range_for_ids(0, 2) == (0, 3)
        assert forward.doc_range_for_ids(1, 3) == (2, 6)
        assert forward.doc_range_for_ids(5, 9) == (6, 6)  # clamped

    def test_dict_ids_reconstruction(self):
        ids = np.array([0, 1, 1, 2], dtype=np.uint32)
        forward = SortedForwardIndex.from_sorted_dict_ids(ids, 3)
        assert np.array_equal(forward.dict_ids(), ids)
        assert forward.dict_id(0) == 0
        assert forward.dict_id(2) == 1
        assert forward.dict_id(3) == 2


class TestMultiValue:
    def test_roundtrip(self):
        lists = [np.array([0, 2], dtype=np.uint32),
                 np.array([], dtype=np.uint32),
                 np.array([1], dtype=np.uint32)]
        forward = MultiValueForwardIndex.from_id_lists(lists)
        assert forward.num_docs == 3
        assert forward.total_entries == 3
        assert forward.dict_ids_of(0).tolist() == [0, 2]
        assert forward.dict_ids_of(1).tolist() == []
        assert forward.dict_ids_of(2).tolist() == [1]

    def test_max_entries(self):
        lists = [np.array([0] * 5, dtype=np.uint32),
                 np.array([1], dtype=np.uint32)]
        forward = MultiValueForwardIndex.from_id_lists(lists)
        assert forward.max_entries_per_doc() == 5

    def test_empty_doc_list(self):
        forward = MultiValueForwardIndex.from_id_lists([])
        assert forward.num_docs == 0
        assert forward.max_entries_per_doc() == 0

"""Tests for bloom filters and bloom-based broker pruning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.segment.bloom import BloomFilter


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter.for_capacity(1000)
        values = [f"v{i}" for i in range(1000)]
        bloom.add_many(values)
        assert all(bloom.might_contain(v) for v in values)

    def test_false_positive_rate_reasonable(self):
        bloom = BloomFilter.for_capacity(1000, fpp=0.01)
        bloom.add_many(f"v{i}" for i in range(1000))
        false_positives = sum(
            bloom.might_contain(f"absent{i}") for i in range(10_000)
        )
        assert false_positives / 10_000 < 0.05

    def test_empty_contains_nothing(self):
        bloom = BloomFilter.for_capacity(100)
        assert not bloom.might_contain("anything")

    def test_sizing(self):
        small = BloomFilter.for_capacity(10)
        large = BloomFilter.for_capacity(100_000)
        assert large.num_bits > small.num_bits
        assert large.nbytes < 200_000  # ~120 KB at 1% for 100k values

    def test_payload_roundtrip(self):
        bloom = BloomFilter.for_capacity(50)
        bloom.add_many(range(50))
        clone = BloomFilter.from_payload(bloom.to_payload())
        assert clone.num_bits == bloom.num_bits
        assert all(clone.might_contain(v) for v in range(50))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BloomFilter(4, 1)
        with pytest.raises(ValueError):
            BloomFilter.for_capacity(10, fpp=1.5)

    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.integers(0, 100_000), min_size=1, max_size=200))
    def test_membership_property(self, values):
        bloom = BloomFilter.for_capacity(len(values))
        bloom.add_many(values)
        assert all(bloom.might_contain(v) for v in values)


class TestBrokerBloomPruning:
    @pytest.fixture
    def cluster(self):
        from repro.cluster.pinot import PinotCluster
        from repro.cluster.table import TableConfig
        from repro.common.schema import Schema
        from repro.common.types import DataType, dimension, metric
        from repro.segment.builder import SegmentConfig

        schema = Schema("events", [
            dimension("itemId", DataType.LONG), dimension("kind"),
            metric("v", DataType.LONG),
        ])
        cluster = PinotCluster(num_servers=2)
        cluster.create_table(TableConfig.offline(
            "events", schema, replication=1,
            segment_config=SegmentConfig(bloom_columns=("itemId",)),
        ))
        # Three segments with disjoint itemId ranges.
        for base in (0, 1000, 2000):
            cluster.upload_records(
                "events",
                [{"itemId": base + i, "kind": "k", "v": 1}
                 for i in range(100)],
                rows_per_segment=100,
            )
        return cluster

    def test_eq_query_prunes_foreign_segments(self, cluster):
        response = cluster.execute(
            "SELECT count(*) FROM events WHERE itemId = 1050"
        )
        assert response.rows[0][0] == 1
        assert response.num_segments_pruned_by_broker >= 2
        assert response.stats.num_segments_queried == 1

    def test_in_query_keeps_all_matching_segments(self, cluster):
        response = cluster.execute(
            "SELECT count(*) FROM events WHERE itemId IN (5, 2005)"
        )
        assert response.rows[0][0] == 2
        assert response.stats.num_segments_queried == 2

    def test_absent_value_prunes_everything(self, cluster):
        response = cluster.execute(
            "SELECT count(*) FROM events WHERE itemId = 999999"
        )
        assert response.rows[0][0] == 0
        assert response.num_segments_pruned_by_broker == 3

    def test_range_query_not_bloom_pruned(self, cluster):
        response = cluster.execute(
            "SELECT count(*) FROM events WHERE itemId < 50"
        )
        assert response.rows[0][0] == 50
        assert response.num_segments_pruned_by_broker == 0

    def test_column_without_bloom_unaffected(self, cluster):
        response = cluster.execute(
            "SELECT count(*) FROM events WHERE kind = 'nope'"
        )
        assert response.rows[0][0] == 0
        assert response.num_segments_pruned_by_broker == 0

    def test_float_literal_never_prunes(self, cluster):
        # 5.0 equals itemId 5 under engine coercion; bloom pruning must
        # not drop the segment just because floats hash differently.
        response = cluster.execute(
            "SELECT count(*) FROM events WHERE itemId = 5.0"
        )
        assert response.rows[0][0] == 1
        assert response.num_segments_pruned_by_broker == 0

"""Tests for fixed-width bit packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SegmentError
from repro.segment.bitpack import PackedIntArray, bits_required, pack, unpack


class TestBitsRequired:
    def test_zero_needs_one_bit(self):
        assert bits_required(0) == 1

    def test_powers_of_two(self):
        assert bits_required(1) == 1
        assert bits_required(2) == 2
        assert bits_required(255) == 8
        assert bits_required(256) == 9

    def test_negative_rejected(self):
        with pytest.raises(SegmentError):
            bits_required(-1)


class TestPackUnpack:
    def test_roundtrip_simple(self):
        values = np.array([0, 1, 2, 3, 7, 5], dtype=np.uint32)
        packed = pack(values, 3)
        assert np.array_equal(unpack(packed, 3, len(values)), values)

    def test_packed_size_is_minimal(self):
        values = np.zeros(64, dtype=np.uint32)
        assert len(pack(values, 1)) == 8  # 64 bits

    def test_empty(self):
        assert pack(np.array([], dtype=np.uint32), 4) == b""
        assert len(unpack(b"", 4, 0)) == 0

    def test_value_too_wide_rejected(self):
        with pytest.raises(SegmentError):
            pack(np.array([8]), 3)

    def test_negative_rejected(self):
        with pytest.raises(SegmentError):
            pack(np.array([-1]), 4)

    def test_bad_width_rejected(self):
        with pytest.raises(SegmentError):
            pack(np.array([1]), 0)
        with pytest.raises(SegmentError):
            pack(np.array([1]), 33)

    def test_truncated_buffer_rejected(self):
        packed = pack(np.arange(100, dtype=np.uint32), 7)
        with pytest.raises(SegmentError):
            unpack(packed[:-5], 7, 100)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=2**20 - 1), min_size=1,
                 max_size=500),
        st.integers(min_value=0, max_value=10),
    )
    def test_roundtrip_property(self, values, extra_bits):
        array = np.asarray(values, dtype=np.uint32)
        width = min(32, bits_required(int(array.max())) + extra_bits)
        packed = pack(array, width)
        assert np.array_equal(unpack(packed, width, len(array)), array)


class TestPackedIntArray:
    def test_from_values_autowidth(self):
        packed = PackedIntArray.from_values(np.array([0, 5, 9]))
        assert packed.bit_width == 4
        assert len(packed) == 3
        assert packed[1] == 5

    def test_to_numpy_cached(self):
        packed = PackedIntArray.from_values(np.arange(10))
        assert packed.to_numpy() is packed.to_numpy()

    def test_nbytes_smaller_than_raw(self):
        values = np.arange(1000) % 4
        packed = PackedIntArray.from_values(values)
        assert packed.nbytes == 250  # 2 bits x 1000 / 8

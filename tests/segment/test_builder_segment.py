"""Tests for the segment builder and the ImmutableSegment API."""

import pytest

from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column
from repro.errors import SegmentError
from repro.segment.builder import SegmentBuilder, SegmentConfig
from repro.segment.forward import SortedForwardIndex


@pytest.fixture
def schema():
    return Schema(
        "events",
        [
            dimension("country"),
            dimension("tags", DataType.STRING, multi_value=True),
            metric("clicks", DataType.LONG),
            time_column("day", DataType.INT),
        ],
    )


RECORDS = [
    {"country": "us", "tags": ["a", "b"], "clicks": 3, "day": 17001},
    {"country": "ca", "tags": ["b"], "clicks": 1, "day": 17002},
    {"country": "us", "tags": [], "clicks": 2, "day": 17000},
    {"country": "mx", "tags": ["c"], "clicks": 5, "day": 17001},
]


def build(schema, config=None, records=RECORDS):
    builder = SegmentBuilder("seg1", "events", schema,
                             config or SegmentConfig())
    builder.add_all(records)
    return builder.build()


class TestBuild:
    def test_empty_build_rejected(self, schema):
        with pytest.raises(SegmentError):
            SegmentBuilder("s", "t", schema).build()

    def test_basic_metadata(self, schema):
        segment = build(schema)
        assert segment.num_docs == 4
        assert segment.metadata.min_time == 17000
        assert segment.metadata.max_time == 17002
        assert segment.metadata.time_column == "day"
        assert set(segment.column_names) == {"country", "tags", "clicks",
                                             "day"}

    def test_column_statistics(self, schema):
        segment = build(schema)
        meta = segment.metadata.column("country")
        assert meta.cardinality == 3
        assert meta.min_value == "ca"
        assert meta.max_value == "us"
        assert meta.total_docs == 4

    def test_sorted_column_reorders_physically(self, schema):
        segment = build(schema, SegmentConfig(sorted_column="country"))
        column = segment.column("country")
        assert isinstance(column.forward, SortedForwardIndex)
        values = [segment.record(i)["country"] for i in range(4)]
        assert values == sorted(values)
        assert segment.metadata.sorted_column == "country"
        assert segment.metadata.column("country").is_sorted

    def test_sorted_multi_value_rejected(self, schema):
        with pytest.raises(SegmentError):
            SegmentBuilder("s", "t", schema,
                           SegmentConfig(sorted_column="tags"))

    def test_unknown_inverted_column_rejected(self, schema):
        from repro.errors import PinotError

        with pytest.raises(PinotError):
            SegmentBuilder("s", "t", schema,
                           SegmentConfig(inverted_columns=("missing",)))

    def test_inverted_built_on_request(self, schema):
        segment = build(schema, SegmentConfig(inverted_columns=("country",)))
        assert segment.column("country").inverted is not None
        assert segment.metadata.column("country").has_inverted_index
        assert segment.column("clicks").inverted is None

    def test_multi_value_stats(self, schema):
        segment = build(schema)
        meta = segment.metadata.column("tags")
        assert meta.multi_value
        assert meta.total_entries == 4  # a,b + b + (none) + c
        assert meta.cardinality == 3

    def test_partition_metadata(self, schema):
        from repro.kafka.partitioner import kafka_partition

        config = SegmentConfig(partition_column="country", num_partitions=4)
        us_only = [r for r in RECORDS if r["country"] == "us"]
        segment = build(schema, config, us_only)
        assert segment.metadata.partition_column == "country"
        assert segment.metadata.partition_id == kafka_partition("us", 4)

    def test_mixed_partition_rejected(self, schema):
        config = SegmentConfig(partition_column="country", num_partitions=4)
        with pytest.raises(SegmentError, match="spans partitions"):
            build(schema, config)

    def test_partition_config_must_be_complete(self):
        with pytest.raises(SegmentError):
            SegmentConfig(partition_column="c")


class TestSegmentApi:
    def test_record_roundtrip(self, schema):
        segment = build(schema)
        assert segment.record(0) == {
            "country": "us", "tags": ["a", "b"], "clicks": 3, "day": 17001
        }
        assert len(list(segment.iter_records())) == 4

    def test_unknown_column_raises(self, schema):
        segment = build(schema)
        with pytest.raises(SegmentError):
            segment.column("nope")

    def test_values_decoded(self, schema):
        segment = build(schema)
        assert segment.column("clicks").values().tolist() == [3, 1, 2, 5]

    def test_multi_value_dict_ids_rejected(self, schema):
        segment = build(schema)
        with pytest.raises(SegmentError):
            segment.column("tags").dict_ids()

    def test_ensure_inverted_on_demand(self, schema):
        segment = build(schema)
        assert segment.column("country").inverted is None
        inverted = segment.ensure_inverted_index("country")
        assert inverted is segment.column("country").inverted
        assert segment.metadata.column("country").has_inverted_index

    def test_time_range(self, schema):
        assert build(schema).time_range() == (17000, 17002)

    def test_column_count_mismatch_rejected(self, schema):
        segment = build(schema)
        other = build(schema, records=RECORDS[:2])
        with pytest.raises(SegmentError):
            segment.add_virtual_column(other.column("country"))

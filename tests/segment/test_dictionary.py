"""Tests for sorted dictionary encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import DataType
from repro.errors import SegmentError
from repro.segment.dictionary import Dictionary


class TestBuild:
    def test_build_sorts_and_dedupes(self):
        dictionary = Dictionary.build(DataType.STRING, ["b", "a", "b", "c"])
        assert dictionary.to_list() == ["a", "b", "c"]
        assert dictionary.cardinality == 3

    def test_empty_rejected(self):
        with pytest.raises(SegmentError):
            Dictionary.build(DataType.INT, [])

    def test_unsorted_values_rejected(self):
        with pytest.raises(SegmentError):
            Dictionary(DataType.INT, [3, 1])

    def test_duplicate_values_rejected(self):
        with pytest.raises(SegmentError):
            Dictionary(DataType.INT, [1, 1])

    def test_min_max(self):
        dictionary = Dictionary.build(DataType.LONG, [9, 2, 5])
        assert dictionary.min_value == 2
        assert dictionary.max_value == 9


class TestLookups:
    def test_id_of_present(self):
        dictionary = Dictionary.build(DataType.STRING, ["a", "c", "e"])
        assert dictionary.id_of("c") == 1

    def test_id_of_absent(self):
        dictionary = Dictionary.build(DataType.STRING, ["a", "c"])
        assert dictionary.id_of("b") is None
        assert dictionary.id_of("z") is None

    def test_value_of(self):
        dictionary = Dictionary.build(DataType.INT, [10, 20])
        assert dictionary.value_of(1) == 20

    def test_encode_roundtrip(self):
        raw = [5, 1, 5, 3, 1]
        dictionary = Dictionary.build(DataType.INT, raw)
        ids = dictionary.encode(raw)
        assert [dictionary.value_of(i) for i in ids] == raw

    def test_encode_unknown_value_rejected(self):
        dictionary = Dictionary.build(DataType.INT, [1, 2])
        with pytest.raises(SegmentError):
            dictionary.encode([3])


class TestIdRanges:
    @pytest.fixture
    def dictionary(self):
        return Dictionary.build(DataType.INT, [10, 20, 30, 40])

    def test_inclusive_range(self, dictionary):
        assert dictionary.id_range_for(20, 30) == (1, 3)

    def test_exclusive_bounds(self, dictionary):
        assert dictionary.id_range_for(20, 30, low_inclusive=False) == (2, 3)
        assert dictionary.id_range_for(20, 30, high_inclusive=False) == (1, 2)

    def test_unbounded(self, dictionary):
        assert dictionary.id_range_for(None, None) == (0, 4)
        assert dictionary.id_range_for(25, None) == (2, 4)
        assert dictionary.id_range_for(None, 25) == (0, 2)

    def test_empty_range(self, dictionary):
        assert dictionary.id_range_for(41, None) == (4, 4)
        lo, hi = dictionary.id_range_for(22, 28)
        assert lo == hi  # nothing between 20 and 30 exclusive

    @settings(max_examples=50, deadline=None)
    @given(st.sets(st.integers(-1000, 1000), min_size=1, max_size=100),
           st.integers(-1100, 1100), st.integers(-1100, 1100))
    def test_range_matches_filter_semantics(self, values, low, high):
        """id_range_for must match brute-force value filtering."""
        dictionary = Dictionary.build(DataType.INT, values)
        lo, hi = dictionary.id_range_for(low, high)
        matched = {dictionary.value_of(i) for i in range(lo, hi)}
        expected = {v for v in values if low <= v <= high}
        assert matched == expected

"""Tests for bitmap inverted indexes over each forward layout."""

import numpy as np

from repro.segment.forward import (
    MultiValueForwardIndex,
    SingleValueForwardIndex,
    SortedForwardIndex,
)
from repro.segment.inverted import InvertedIndex


def _single(ids, cardinality):
    forward = SingleValueForwardIndex.from_dict_ids(
        np.asarray(ids, dtype=np.uint32)
    )
    return InvertedIndex.build(forward, cardinality)


class TestBuildFromSingleValue:
    def test_docs_per_id(self):
        inverted = _single([2, 0, 2, 1, 0], 3)
        assert list(inverted.docs_for(0)) == [1, 4]
        assert list(inverted.docs_for(1)) == [3]
        assert list(inverted.docs_for(2)) == [0, 2]

    def test_cardinality_and_docs(self):
        inverted = _single([0, 1], 2)
        assert inverted.cardinality == 2
        assert inverted.num_docs == 2

    def test_absent_id_is_empty(self):
        inverted = _single([0, 0], 2)
        assert len(inverted.docs_for(1)) == 0

    def test_docs_for_ids_union(self):
        inverted = _single([0, 1, 2, 1], 3)
        assert list(inverted.docs_for_ids([0, 2])) == [0, 2]

    def test_docs_for_id_range(self):
        inverted = _single([0, 1, 2, 3], 4)
        assert list(inverted.docs_for_id_range(1, 3)) == [1, 2]

    def test_union_doc_array_disjoint_sorted(self):
        inverted = _single([3, 1, 0, 2, 1], 4)
        docs = inverted.union_doc_array([(0, 2), (3, 4)])
        assert docs.tolist() == [0, 1, 2, 4]
        assert docs.dtype == np.int64


class TestBuildFromSorted:
    def test_ranges_become_full_bitmaps(self):
        forward = SortedForwardIndex.from_sorted_dict_ids(
            np.array([0, 0, 1, 2, 2], dtype=np.uint32), 3
        )
        inverted = InvertedIndex.build(forward, 3)
        assert list(inverted.docs_for(0)) == [0, 1]
        assert list(inverted.docs_for(1)) == [2]
        assert list(inverted.docs_for(2)) == [3, 4]


class TestBuildFromMultiValue:
    def test_doc_in_many_postings(self):
        forward = MultiValueForwardIndex.from_id_lists(
            [np.array([0, 1], dtype=np.uint32),
             np.array([1], dtype=np.uint32),
             np.array([], dtype=np.uint32)]
        )
        inverted = InvertedIndex.build(forward, 2)
        assert list(inverted.docs_for(0)) == [0]
        assert list(inverted.docs_for(1)) == [0, 1]

    def test_union_doc_array_dedupes_overlap(self):
        forward = MultiValueForwardIndex.from_id_lists(
            [np.array([0, 1], dtype=np.uint32),
             np.array([0], dtype=np.uint32)]
        )
        inverted = InvertedIndex.build(forward, 2)
        docs = inverted.union_doc_array([(0, 2)])
        assert docs.tolist() == [0, 1]  # doc 0 appears once

    def test_duplicate_ids_within_doc(self):
        forward = MultiValueForwardIndex.from_id_lists(
            [np.array([1, 1, 1], dtype=np.uint32)]
        )
        inverted = InvertedIndex.build(forward, 2)
        assert list(inverted.docs_for(1)) == [0]

"""Tests for the per-segment timestamp index (pre-aggregated rollups)."""

import random

import numpy as np
import pytest

from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column
from repro.segment.builder import SegmentBuilder, SegmentConfig
from repro.segment.io import load_segment, write_segment
from repro.segment.timeindex import (
    TimeIndex,
    build_time_index,
    time_index_from_bytes,
    time_index_to_bytes,
)


@pytest.fixture
def schema():
    return Schema(
        "events",
        [
            dimension("country"),
            dimension("tags", DataType.STRING, multi_value=True),
            metric("views", DataType.LONG),
            metric("score", DataType.DOUBLE),
            time_column("day", DataType.INT),
        ],
    )


@pytest.fixture
def records(schema):
    rng = random.Random(3)
    return [
        {
            "country": rng.choice(["us", "ca"]),
            "tags": [],
            "views": rng.randint(0, 100),
            "score": round(rng.random(), 4),
            "day": 17000 + rng.randrange(30),
        }
        for __ in range(500)
    ]


class TestBuild:
    def test_rollup_matches_manual_groupby(self, schema, records):
        index = build_time_index(schema, records, (1, 5))
        assert index is not None
        assert index.time_column == "day"
        assert index.granularities == (1, 5)
        # String and multi-value columns never get rollup arrays.
        assert set(index.metric_columns) == {"views", "score", "day"}

        for granularity in (1, 5):
            rollup = index.rollups[granularity]
            expected = {}
            for record in records:
                bucket = (record["day"] // granularity) * granularity
                expected.setdefault(bucket, []).append(record)
            assert rollup.buckets.tolist() == sorted(expected)
            for i, bucket in enumerate(rollup.buckets.tolist()):
                rows = expected[bucket]
                assert rollup.counts[i] == len(rows)
                views = [r["views"] for r in rows]
                assert rollup.sums["views"][i] == pytest.approx(sum(views))
                assert rollup.mins["views"][i] == min(views)
                assert rollup.maxs["views"][i] == max(views)
                scores = [r["score"] for r in rows]
                assert rollup.sums["score"][i] == pytest.approx(sum(scores))

    def test_no_time_column_returns_none(self, records):
        schema = Schema("t", [dimension("country"),
                              metric("views", DataType.LONG)])
        assert build_time_index(schema, records, (1,)) is None

    def test_no_granularities_returns_none(self, schema, records):
        assert build_time_index(schema, records, ()) is None
        assert build_time_index(schema, records, (0, -3)) is None


class TestRollupFor:
    @pytest.fixture
    def index(self, schema, records):
        return build_time_index(schema, records, (1, 5))

    def test_prefers_coarsest_divisor(self, index):
        assert index.rollup_for(10, None, None).granularity == 5
        assert index.rollup_for(5, None, None).granularity == 5
        assert index.rollup_for(3, None, None).granularity == 1
        assert index.rollup_for(7, None, None).granularity == 1

    def test_none_bucket_size_waives_divisibility(self, index):
        assert index.rollup_for(None, None, None).granularity == 5

    def test_unaligned_bounds_fall_back_or_fail(self, index):
        # low=17000 is a multiple of 5; high=17004 means high+1=17005
        # is too — the 5-rollup serves it.
        assert index.rollup_for(5, 17000, 17004).granularity == 5
        # low=17001 breaks 5-alignment, so the coarse rollup is out, but
        # the 1-rollup still serves: its buckets re-aggregate into
        # 5-buckets exactly and every bound sits on a 1-bucket edge.
        assert index.rollup_for(5, 17001, 17004).granularity == 1
        assert index.rollup_for(None, 17001, 17004).granularity == 1
        # A fractional-bucket bound with only a coarse rollup has no
        # server: partial buckets need the raw rows.
        coarse_only = TimeIndex(index.time_column, index.metric_columns,
                                {5: index.rollups[5]})
        assert coarse_only.rollup_for(5, 17001, 17004) is None

    def test_slice_range(self, index):
        rollup = index.rollups[1]
        buckets = rollup.buckets.tolist()
        sliced = rollup.slice_range(buckets[2], buckets[5])
        assert rollup.buckets[sliced].tolist() == buckets[2:6]
        assert rollup.slice_range(None, None) == slice(0, len(buckets))
        # Bounds outside the segment's range clamp to empty/full.
        assert rollup.slice_range(buckets[-1] + 100, None).start == \
            len(buckets)


class TestSerialization:
    def test_bytes_round_trip(self, schema, records):
        index = build_time_index(schema, records, (1, 5))
        restored = time_index_from_bytes(time_index_to_bytes(index))
        assert restored == index
        assert isinstance(restored, TimeIndex)
        rollup = restored.rollups[5]
        assert rollup.buckets.dtype == np.int64
        assert rollup.counts.dtype == np.int64

    def test_segment_io_round_trip(self, schema, records, tmp_path):
        builder = SegmentBuilder(
            "seg-ti", "events", schema,
            SegmentConfig(timestamp_index=(1, 5)),
        )
        for record in records:
            builder.add(record)
        segment = builder.build()
        assert segment.time_index is not None
        assert segment.metadata.has_time_index
        assert segment.metadata.time_index_bytes > 0

        write_segment(segment, tmp_path)
        loaded = load_segment(tmp_path)
        assert loaded.time_index == segment.time_index
        assert loaded.metadata.has_time_index

    def test_segment_without_index_loads_without_one(self, schema,
                                                     records, tmp_path):
        builder = SegmentBuilder("seg-plain", "events", schema)
        for record in records:
            builder.add(record)
        segment = builder.build()
        assert segment.time_index is None
        write_segment(segment, tmp_path)
        assert load_segment(tmp_path).time_index is None

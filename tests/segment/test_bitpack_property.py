"""Property-based round-trip tests for fixed-width bit packing.

The forward index stores every dictionary id through ``pack``/``unpack``
at an arbitrary width in [1, 32]; any asymmetry silently corrupts query
results. Hypothesis drives random widths and value streams — including
the cardinality-1 case, where every value packs to the same bit pattern
and off-by-one shift bugs hide best.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.segment.bitpack import PackedIntArray, bits_required, pack, unpack


@st.composite
def width_and_values(draw):
    width = draw(st.integers(min_value=1, max_value=32))
    values = draw(st.lists(st.integers(0, 2**width - 1), max_size=200))
    return width, values


class TestPackRoundTrip:
    @given(width_and_values())
    @settings(max_examples=150, deadline=None)
    def test_round_trip_exact(self, case):
        width, values = case
        array = np.asarray(values, dtype=np.uint32)
        restored = unpack(pack(array, width), width, len(array))
        assert restored.dtype == np.uint32
        np.testing.assert_array_equal(restored, array)

    @given(st.integers(min_value=1, max_value=32),
           st.integers(min_value=0, max_value=200))
    @settings(max_examples=80, deadline=None)
    def test_cardinality_one_round_trips(self, width, count):
        """A column with a single distinct value: bits_required gives
        width 1 for value 0 and the packed stream is maximally regular —
        the classic trap for bit-shift arithmetic."""
        value = 2**width - 1  # all width bits set
        array = np.full(count, value, dtype=np.uint32)
        restored = unpack(pack(array, width), width, count)
        np.testing.assert_array_equal(restored, array)

    @given(width_and_values())
    @settings(max_examples=80, deadline=None)
    def test_packed_size_is_minimal(self, case):
        width, values = case
        packed = pack(np.asarray(values, dtype=np.uint32), width)
        assert len(packed) == (len(values) * width + 7) // 8

    @given(width_and_values())
    @settings(max_examples=80, deadline=None)
    def test_packed_array_random_access(self, case):
        width, values = case
        array = np.asarray(values, dtype=np.uint32)
        packed = PackedIntArray.from_values(array, width)
        assert len(packed) == len(values)
        for index in range(0, len(values), max(1, len(values) // 7)):
            assert packed[index] == values[index]

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=80, deadline=None)
    def test_bits_required_is_tight(self, value):
        width = bits_required(value)
        assert 1 <= width <= 32
        assert value < 2**width
        if width > 1:
            assert value >= 2 ** (width - 1)

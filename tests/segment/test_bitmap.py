"""Unit and property-based tests for the roaring-style bitmap."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.segment.bitmap import ARRAY_MAX, RoaringBitmap, union_many

value_sets = st.sets(st.integers(min_value=0, max_value=1 << 20),
                     max_size=300)


class TestBasics:
    def test_empty(self):
        bitmap = RoaringBitmap()
        assert len(bitmap) == 0
        assert not bitmap
        assert 5 not in bitmap
        assert list(bitmap) == []

    def test_duplicates_collapse(self):
        bitmap = RoaringBitmap([3, 3, 3, 1])
        assert len(bitmap) == 2
        assert list(bitmap) == [1, 3]

    def test_membership_across_containers(self):
        values = [0, 1, 65535, 65536, 200_000]
        bitmap = RoaringBitmap(values)
        for value in values:
            assert value in bitmap
        assert 2 not in bitmap
        assert 131_072 not in bitmap

    def test_min_max(self):
        bitmap = RoaringBitmap([70000, 3, 12])
        assert bitmap.min == 3
        assert bitmap.max == 70000

    def test_min_of_empty_raises(self):
        with pytest.raises(ValueError):
            RoaringBitmap().min

    def test_from_sorted_matches_constructor(self):
        values = np.arange(0, 100_000, 7, dtype=np.uint32)
        assert RoaringBitmap.from_sorted(values) == RoaringBitmap(values)

    def test_full_range(self):
        bitmap = RoaringBitmap.full_range(10, 15)
        assert list(bitmap) == [10, 11, 12, 13, 14]
        assert len(RoaringBitmap.full_range(5, 5)) == 0

    def test_dense_container_promotion(self):
        # More than ARRAY_MAX values in one chunk forces a bitset.
        values = np.arange(ARRAY_MAX + 10, dtype=np.uint32)
        bitmap = RoaringBitmap(values)
        assert len(bitmap) == ARRAY_MAX + 10
        assert 17 in bitmap
        assert int(values[-1]) in bitmap

    def test_to_array_cached_and_correct(self):
        bitmap = RoaringBitmap([9, 1, 70001])
        first = bitmap.to_array()
        assert first.tolist() == [1, 9, 70001]
        assert bitmap.to_array() is first  # cached

    def test_repr_is_compact(self):
        text = repr(RoaringBitmap(range(100)))
        assert "len=100" in text


class TestSetAlgebra:
    def test_and(self):
        a = RoaringBitmap([1, 2, 3, 70_000])
        b = RoaringBitmap([2, 70_000, 99])
        assert list(a & b) == [2, 70_000]

    def test_or(self):
        a = RoaringBitmap([1, 5])
        b = RoaringBitmap([5, 70_000])
        assert list(a | b) == [1, 5, 70_000]

    def test_sub(self):
        a = RoaringBitmap([1, 2, 3])
        b = RoaringBitmap([2])
        assert list(a - b) == [1, 3]

    def test_xor(self):
        a = RoaringBitmap([1, 2])
        b = RoaringBitmap([2, 3])
        assert list(a ^ b) == [1, 3]

    def test_and_disjoint_chunks_is_empty(self):
        a = RoaringBitmap([1])
        b = RoaringBitmap([70_000])
        assert len(a & b) == 0

    def test_flip(self):
        bitmap = RoaringBitmap([1, 3])
        assert list(bitmap.flip(0, 5)) == [0, 2, 4]

    def test_union_many(self):
        bitmaps = [RoaringBitmap([i, i + 10]) for i in range(5)]
        assert len(union_many(bitmaps)) == 10
        assert len(union_many([])) == 0


class TestRunOptimize:
    def test_run_optimize_preserves_contents(self):
        values = np.arange(1000, 9000, dtype=np.uint32)
        bitmap = RoaringBitmap(values).run_optimize()
        assert np.array_equal(bitmap.to_array(), values)
        assert 1000 in bitmap
        assert 8999 in bitmap
        assert 9000 not in bitmap

    def test_run_encoding_shrinks_dense_runs(self):
        values = np.arange(0, 60_000, dtype=np.uint32)
        plain = RoaringBitmap(values)
        optimized = plain.run_optimize()
        assert optimized.memory_bytes() < plain.memory_bytes()

    def test_run_container_membership_boundaries(self):
        bitmap = RoaringBitmap(
            np.concatenate([np.arange(100, 8000), np.arange(9000, 9100)])
            .astype(np.uint32)
        ).run_optimize()
        assert 99 not in bitmap
        assert 100 in bitmap
        assert 7999 in bitmap
        assert 8000 not in bitmap
        assert 9099 in bitmap


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(value_sets)
    def test_roundtrip(self, values):
        bitmap = RoaringBitmap(values)
        assert set(bitmap.to_array().tolist()) == values
        assert len(bitmap) == len(values)

    @settings(max_examples=60, deadline=None)
    @given(value_sets, value_sets)
    def test_algebra_matches_python_sets(self, a, b):
        bitmap_a, bitmap_b = RoaringBitmap(a), RoaringBitmap(b)
        assert set((bitmap_a & bitmap_b).to_array().tolist()) == a & b
        assert set((bitmap_a | bitmap_b).to_array().tolist()) == a | b
        assert set((bitmap_a - bitmap_b).to_array().tolist()) == a - b
        assert set((bitmap_a ^ bitmap_b).to_array().tolist()) == a ^ b

    @settings(max_examples=60, deadline=None)
    @given(value_sets)
    def test_run_optimize_is_identity_on_contents(self, values):
        bitmap = RoaringBitmap(values)
        assert bitmap.run_optimize() == bitmap

    @settings(max_examples=60, deadline=None)
    @given(value_sets)
    def test_membership_matches_set(self, values):
        bitmap = RoaringBitmap(values)
        probes = list(values)[:20] + [0, 1, 65536, 1 << 20]
        for probe in probes:
            assert (probe in bitmap) == (probe in values)

"""Property-based round-trip test of the on-disk segment format:
random schemas and records must survive write + load exactly."""

import shutil
import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.schema import Schema
from repro.common.types import DataType, FieldRole, FieldSpec
from repro.segment.builder import SegmentBuilder, SegmentConfig
from repro.segment.io import load_segment, write_segment

scalar_dtypes = st.sampled_from([
    DataType.INT, DataType.LONG, DataType.FLOAT, DataType.DOUBLE,
    DataType.STRING, DataType.BOOLEAN,
])


def value_for(dtype, rng_draw):
    if dtype is DataType.STRING:
        return rng_draw(st.text(alphabet="abcxyz", min_size=0, max_size=6))
    if dtype is DataType.BOOLEAN:
        return rng_draw(st.booleans())
    if dtype in (DataType.INT, DataType.LONG):
        return rng_draw(st.integers(-1000, 1000))
    # FLOAT columns round-trip through float32; stick to values exactly
    # representable there.
    return float(rng_draw(st.integers(-1000, 1000))) / 4.0


@st.composite
def schema_and_records(draw):
    num_dims = draw(st.integers(1, 3))
    specs = []
    for i in range(num_dims):
        dtype = draw(scalar_dtypes)
        multi = dtype is DataType.STRING and draw(st.booleans())
        specs.append(FieldSpec(f"d{i}", dtype, FieldRole.DIMENSION,
                               multi_value=multi))
    if draw(st.booleans()):
        specs.append(FieldSpec("m0", DataType.LONG, FieldRole.METRIC))
    schema = Schema("t", specs)

    num_rows = draw(st.integers(1, 30))
    records = []
    for __ in range(num_rows):
        record = {}
        for spec in specs:
            if spec.multi_value:
                record[spec.name] = draw(st.lists(
                    st.text(alphabet="pqr", min_size=0, max_size=3),
                    max_size=3,
                ))
            else:
                record[spec.name] = value_for(spec.dtype, draw)
        records.append(record)
    sortable = [s.name for s in specs if not s.multi_value]
    sorted_column = draw(st.sampled_from([None] + sortable))
    return schema, records, sorted_column


class TestIoRoundTripProperty:
    @settings(max_examples=40, deadline=None)
    @given(schema_and_records())
    def test_roundtrip(self, case):
        schema, records, sorted_column = case
        config = SegmentConfig(
            sorted_column=sorted_column,
            inverted_columns=(schema.fields[0].name,),
        )
        builder = SegmentBuilder("prop", "t", schema, config)
        builder.add_all(records)
        segment = builder.build()

        directory = Path(tempfile.mkdtemp(prefix="segio_"))
        try:
            write_segment(segment, directory)
            loaded = load_segment(directory)
            assert loaded.num_docs == segment.num_docs
            original_rows = sorted(map(repr, segment.iter_records()))
            loaded_rows = sorted(map(repr, loaded.iter_records()))
            assert original_rows == loaded_rows
            assert loaded.metadata.sorted_column == sorted_column
        finally:
            shutil.rmtree(directory, ignore_errors=True)

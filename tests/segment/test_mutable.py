"""Tests for mutable (consuming) realtime segments."""

import pytest

from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric
from repro.errors import SegmentError
from repro.segment.builder import SegmentConfig
from repro.segment.mutable import MutableSegment


@pytest.fixture
def schema():
    return Schema("rt", [dimension("user"), metric("n", DataType.LONG)])


@pytest.fixture
def mutable(schema):
    return MutableSegment("rt__0__0", "rt", schema)


class TestIngestion:
    def test_index_and_count(self, mutable):
        mutable.index({"user": "a", "n": 1})
        mutable.index({"user": "b", "n": 2})
        assert mutable.num_docs == 2

    def test_records_are_normalized(self, mutable):
        mutable.index({"user": "a"})
        assert mutable.records() == [{"user": "a", "n": 0}]

    def test_bad_record_rejected(self, mutable):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            mutable.index({"user": "a", "bogus": 1})


class TestSnapshot:
    def test_empty_snapshot_is_none(self, mutable):
        assert mutable.snapshot() is None

    def test_snapshot_reflects_rows(self, mutable):
        mutable.index({"user": "a", "n": 5})
        snapshot = mutable.snapshot()
        assert snapshot.num_docs == 1
        assert snapshot.record(0) == {"user": "a", "n": 5}

    def test_snapshot_cached_until_new_rows(self, mutable):
        mutable.index({"user": "a", "n": 1})
        first = mutable.snapshot()
        assert mutable.snapshot() is first
        mutable.index({"user": "b", "n": 2})
        second = mutable.snapshot()
        assert second is not first
        assert second.num_docs == 2

    def test_invalidate_snapshot(self, mutable):
        mutable.index({"user": "a", "n": 1})
        first = mutable.snapshot()
        mutable.invalidate_snapshot()
        assert mutable.snapshot() is not first


class TestSeal:
    def test_seal_empty_rejected(self, mutable):
        with pytest.raises(SegmentError):
            mutable.seal()

    def test_seal_applies_full_config(self, schema):
        mutable = MutableSegment(
            "rt__0__0", "rt", schema,
            SegmentConfig(sorted_column="user"),
        )
        mutable.index({"user": "z", "n": 1})
        mutable.index({"user": "a", "n": 2})
        sealed = mutable.seal()
        assert sealed.column("user").is_sorted
        assert sealed.record(0)["user"] == "a"

    def test_sealed_segment_rejects_more_rows(self, mutable):
        mutable.index({"user": "a", "n": 1})
        mutable.seal()
        assert mutable.is_sealed
        with pytest.raises(SegmentError):
            mutable.index({"user": "b", "n": 1})


class TestDiscard:
    def test_discard_and_replace(self, mutable):
        mutable.index({"user": "local", "n": 1})
        mutable.discard_and_replace(
            [{"user": "authoritative", "n": 9}]
        )
        assert mutable.records() == [{"user": "authoritative", "n": 9}]
        assert mutable.snapshot().num_docs == 1

    def test_discard_after_seal_rejected(self, mutable):
        mutable.index({"user": "a", "n": 1})
        mutable.seal()
        with pytest.raises(SegmentError):
            mutable.discard_and_replace([])

"""Tests for the on-disk segment format."""

import json

import numpy as np
import pytest

from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column
from repro.errors import SegmentFormatError
from repro.segment.builder import SegmentBuilder, SegmentConfig
from repro.segment.io import (
    INDEX_FILE,
    METADATA_FILE,
    append_inverted_index,
    load_segment,
    write_segment,
)
from repro.startree.builder import StarTreeConfig


@pytest.fixture
def schema():
    return Schema(
        "events",
        [
            dimension("country"),
            dimension("score", DataType.DOUBLE),
            dimension("tags", DataType.STRING, multi_value=True),
            metric("clicks", DataType.LONG),
            time_column("day", DataType.INT),
        ],
    )


@pytest.fixture
def segment(schema):
    import random

    rng = random.Random(5)
    builder = SegmentBuilder(
        "seg-io", "events", schema,
        SegmentConfig(sorted_column="country",
                      inverted_columns=("day",),
                      star_tree=StarTreeConfig(
                          dimensions=("country", "day"),
                          max_leaf_records=4)),
    )
    for i in range(200):
        builder.add({
            "country": rng.choice(["us", "ca", "mx"]),
            "score": round(rng.random(), 4),
            "tags": rng.sample(["x", "y", "z"], k=rng.randint(0, 2)),
            "clicks": rng.randint(0, 9),
            "day": 17000 + i % 5,
        })
    return builder.build()


class TestRoundTrip:
    def test_full_roundtrip(self, tmp_path, segment):
        write_segment(segment, tmp_path / "seg")
        loaded = load_segment(tmp_path / "seg")
        assert loaded.num_docs == segment.num_docs
        assert loaded.schema == segment.schema
        assert loaded.metadata.sorted_column == "country"
        for name in segment.column_names:
            original, copy = segment.column(name), loaded.column(name)
            assert copy.dictionary.to_list() == original.dictionary.to_list()
        for doc_id in (0, 57, 199):
            assert loaded.record(doc_id) == segment.record(doc_id)

    def test_inverted_index_preserved(self, tmp_path, segment):
        write_segment(segment, tmp_path / "seg")
        loaded = load_segment(tmp_path / "seg")
        assert loaded.column("day").inverted is not None
        original = segment.column("day").inverted
        copy = loaded.column("day").inverted
        for dict_id in range(original.cardinality):
            assert np.array_equal(
                original.docs_for(dict_id).to_array(),
                copy.docs_for(dict_id).to_array(),
            )

    def test_star_tree_preserved(self, tmp_path, segment):
        write_segment(segment, tmp_path / "seg")
        loaded = load_segment(tmp_path / "seg")
        assert loaded.star_tree is not None
        assert loaded.star_tree.dimensions == segment.star_tree.dimensions
        assert loaded.star_tree.num_records == segment.star_tree.num_records
        assert np.array_equal(loaded.star_tree.counts,
                              segment.star_tree.counts)

    def test_two_files_only(self, tmp_path, segment):
        path = write_segment(segment, tmp_path / "seg")
        names = sorted(p.name for p in path.iterdir())
        assert names == [INDEX_FILE, METADATA_FILE]


class TestAppendOnly:
    def test_append_inverted_index(self, tmp_path, segment):
        path = write_segment(segment, tmp_path / "seg")
        index_size_before = (path / INDEX_FILE).stat().st_size
        append_inverted_index(path, "country")
        assert (path / INDEX_FILE).stat().st_size > index_size_before
        loaded = load_segment(path)
        assert loaded.column("country").inverted is not None

    def test_append_is_idempotent(self, tmp_path, segment):
        path = write_segment(segment, tmp_path / "seg")
        append_inverted_index(path, "country")
        size = (path / INDEX_FILE).stat().st_size
        append_inverted_index(path, "country")
        assert (path / INDEX_FILE).stat().st_size == size

    def test_existing_blocks_unchanged_by_append(self, tmp_path, segment):
        path = write_segment(segment, tmp_path / "seg")
        before = (path / INDEX_FILE).read_bytes()
        append_inverted_index(path, "country")
        after = (path / INDEX_FILE).read_bytes()
        assert after[:len(before)] == before  # strictly appended


class TestCorruption:
    def test_missing_metadata(self, tmp_path):
        with pytest.raises(SegmentFormatError):
            load_segment(tmp_path)

    def test_bad_version(self, tmp_path, segment):
        path = write_segment(segment, tmp_path / "seg")
        doc = json.loads((path / METADATA_FILE).read_text())
        doc["version"] = 99
        (path / METADATA_FILE).write_text(json.dumps(doc))
        with pytest.raises(SegmentFormatError, match="version"):
            load_segment(path)

    def test_crc_mismatch_detected(self, tmp_path, segment):
        path = write_segment(segment, tmp_path / "seg")
        payload = bytearray((path / INDEX_FILE).read_bytes())
        payload[100] ^= 0xFF
        (path / INDEX_FILE).write_bytes(bytes(payload))
        with pytest.raises(SegmentFormatError, match="CRC"):
            load_segment(path)

    def test_truncated_index_detected(self, tmp_path, segment):
        path = write_segment(segment, tmp_path / "seg")
        payload = (path / INDEX_FILE).read_bytes()
        (path / INDEX_FILE).write_bytes(payload[:len(payload) // 2])
        with pytest.raises(SegmentFormatError):
            load_segment(path)

"""Upsert/dedup observability through the unified metrics surface.

The ISSUE-level contract: keys tracked (gauge), rows masked, duplicates
dropped, index rebuilds and upsert-state invalidations all flow through
the per-server :class:`~repro.obs.metrics.Metrics` into the registry's
Prometheus-style text export.
"""

from repro.obs.metrics import Metrics, MetricsRegistry
from repro.upsert import TableUpsertManager, UpsertConfig


def make_manager(mode="upsert", metrics=None):
    config = UpsertConfig(mode=mode, key_columns=("memberId",))
    return TableUpsertManager("t_REALTIME", config, metrics=metrics)


class TestGaugePrimitive:
    def test_gauge_set_and_snapshot(self):
        metrics = Metrics()
        metrics.gauge("upsert_keys_tracked", 7)
        metrics.gauge("upsert_keys_tracked", 5)  # last write wins
        assert metrics.gauge_value("upsert_keys_tracked") == 5
        assert metrics.snapshot()["gauges"] == {"upsert_keys_tracked": 5}

    def test_export_text_emits_gauge_lines(self):
        registry = MetricsRegistry()
        metrics = registry.register("server", "server-0", Metrics())
        metrics.gauge("upsert_keys_tracked", 12)
        line = ('repro_gauge{component="server",instance="server-0",'
                'name="upsert_keys_tracked"} 12')
        assert line in registry.export_text().splitlines()


class TestManagerCounters:
    def test_upsert_counters_flow_through_metrics(self):
        metrics = Metrics()
        manager = make_manager(metrics=metrics)
        name = "t_REALTIME__0__0"
        manager.apply(name, 0, {"memberId": 1, "views": 10})
        manager.apply(name, 1, {"memberId": 1, "views": 11})
        assert metrics.count("upsert_rows_masked") == 1
        assert metrics.gauge_value("upsert_keys_tracked") == 1
        manager.rebuild([], [(name, [{"memberId": 1, "views": 11}])])
        assert metrics.count("upsert_index_rebuilds") == 1

    def test_dedup_drop_counter_site(self):
        # The drop counter is incremented by the *server* when admit()
        # refuses a row; the manager only tracks admitted keys.
        metrics = Metrics()
        manager = make_manager(mode="dedup", metrics=metrics)
        assert manager.admit(0, {"memberId": 1}) is True
        if not manager.admit(0, {"memberId": 1}):
            metrics.incr("dedup_rows_dropped")
        assert metrics.count("dedup_rows_dropped") == 1
        assert metrics.gauge_value("upsert_keys_tracked") == 1

    def test_gauge_hook_sums_across_tables(self):
        # One server, two upsert tables, one shared metrics object: the
        # hook keeps the gauge at the sum instead of last-writer-wins.
        metrics = Metrics()
        a = make_manager(metrics=metrics)
        b = make_manager(metrics=metrics)
        def hook():
            metrics.gauge("upsert_keys_tracked",
                          a.keys_tracked + b.keys_tracked)

        a.gauge_hook = hook
        b.gauge_hook = hook
        a.apply("t_REALTIME__0__0", 0, {"memberId": 1})
        b.apply("t_REALTIME__0__0", 0, {"memberId": 1})
        b.apply("t_REALTIME__0__0", 1, {"memberId": 2})
        assert metrics.gauge_value("upsert_keys_tracked") == 3

"""End-to-end trace propagation, including under adversity.

The trace of a healthy hybrid query must show the full broker →
transport → server → engine waterfall; traces of unhealthy queries must
show *why* — error spans for fault-injected sub-requests, retry spans
under gather for failover, a cancelled sibling for a hedged straggler,
a rejected queue span for backpressure, and a scatter-free tree for
cache hits.
"""

import pytest

from repro.cluster.pinot import PinotCluster
from repro.cluster.table import StreamConfig, TableConfig
from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column
from repro.net import HedgePolicy, LinkModel, ServiceModel, SimClock
from repro.obs.export import to_chrome_json, validate_chrome_trace
from repro.obs.trace import STATUS_CANCELLED, STATUS_ERROR

TRACED = " OPTION(trace=true)"


@pytest.fixture
def schema():
    return Schema("events", [
        dimension("country"), metric("views", DataType.LONG),
        time_column("day", DataType.INT),
    ])


def records(days, per_day=10):
    return [{"country": "us", "views": 1, "day": day}
            for day in days for __ in range(per_day)]


def spans_named(tree, name):
    """All nodes named ``name`` anywhere in a span tree."""
    found = [tree] if tree["name"] == name else []
    for child in tree["children"]:
        found.extend(spans_named(child, name))
    return found


class TestHealthyTrace:
    def test_hybrid_query_produces_one_full_span_tree(self, schema):
        cluster = PinotCluster(num_servers=2)
        cluster.create_kafka_topic("events-topic", 2)
        cluster.create_table(TableConfig.offline("events", schema))
        cluster.create_table(TableConfig.realtime(
            "events", schema,
            StreamConfig("events-topic", flush_threshold_rows=10_000),
        ))
        # Offline through day 17002; realtime overlaps at the boundary
        # (17002) and extends beyond — the standard hybrid layout.
        cluster.upload_records("events", records([17000, 17001, 17002]))
        cluster.ingest("events-topic", records([17002, 17003, 17004]))
        cluster.drain_realtime()

        response = cluster.execute(
            "SELECT count(*) FROM events" + TRACED)
        assert response.rows[0][0] == 50
        tree = response.trace
        assert tree is not None and tree["name"] == "query"
        # Both physical queries' stages hang off the one root.
        for stage in ("cache", "route", "scatter", "merge"):
            assert spans_named(tree, stage), f"missing {stage} span"
        assert len(spans_named(tree, "route")) == 2  # offline + realtime
        # Every rpc span carries the network/queue/execute legs, and the
        # server-side execute span parents per-segment engine spans.
        rpcs = spans_named(tree, "rpc")
        assert rpcs
        for rpc in rpcs:
            children = {c["name"] for c in rpc["children"]}
            assert {"network", "queue", "execute"} <= children
        segments = spans_named(tree, "segment")
        assert segments
        assert all(s["component"].startswith("server-") for s in segments)
        assert {s["attributes"]["segment"] for s in segments} >= {
            "events_OFFLINE_00000"
        }

    def test_untraced_query_has_no_trace(self, schema):
        cluster = PinotCluster(num_servers=1)
        cluster.create_table(TableConfig.offline("events", schema))
        cluster.upload_records("events", records([17000]))
        response = cluster.execute("SELECT count(*) FROM events")
        assert response.trace is None
        assert cluster.brokers[0].tracer.traces_sampled_out == 1

    def test_sampled_tracing_via_cluster_rate(self, schema):
        cluster = PinotCluster(num_servers=1, trace_sample_rate=1.0)
        cluster.create_table(TableConfig.offline("events", schema))
        cluster.upload_records("events", records([17000]))
        response = cluster.execute("SELECT count(*) FROM events")
        assert response.trace is not None

    def test_trace_exports_valid_chrome_json(self, schema):
        cluster = PinotCluster(num_servers=2)
        cluster.create_table(TableConfig.offline("events", schema))
        cluster.upload_records("events", records([17000, 17001]),
                               rows_per_segment=10)
        cluster.execute("SELECT count(*) FROM events" + TRACED)
        trace = cluster.brokers[0].tracer.finished[-1]
        payload = validate_chrome_trace(to_chrome_json(trace))
        names = {e["name"] for e in payload["traceEvents"]
                 if e["ph"] == "X"}
        assert {"query", "route", "scatter", "rpc", "execute",
                "merge"} <= names


class TestCacheHitTrace:
    def test_hit_trace_shows_cache_span_and_no_scatter(self, schema):
        cluster = PinotCluster(num_servers=1)
        cluster.create_table(TableConfig.offline("events", schema))
        cluster.upload_records("events", records([17000]))
        first = cluster.execute("SELECT count(*) FROM events" + TRACED)
        assert spans_named(first.trace, "scatter")

        second = cluster.execute("SELECT count(*) FROM events" + TRACED)
        assert second.cache_hit
        tree = second.trace
        (cache,) = spans_named(tree, "cache")
        assert cache["attributes"]["outcome"] == "hit"
        assert tree["attributes"]["cache_hit"] is True
        assert not spans_named(tree, "scatter")
        assert not spans_named(tree, "rpc")

    def test_cached_entries_stay_trace_free(self, schema):
        """The cache stores responses by reference; attaching the trace
        must not leak one query's trace into later hits."""
        cluster = PinotCluster(num_servers=1)
        cluster.create_table(TableConfig.offline("events", schema))
        cluster.upload_records("events", records([17000]))
        cluster.execute("SELECT count(*) FROM events" + TRACED)
        # An untraced query hitting the traced query's cache entry must
        # not inherit its span tree.
        hit = cluster.execute("SELECT count(*) FROM events")
        assert hit.cache_hit
        assert hit.trace is None


class TestAdversity:
    def test_fault_injection_yields_error_spans(self, schema):
        cluster = PinotCluster(num_servers=2)
        cluster.create_table(TableConfig.offline("events", schema,
                                                 replication=1))
        cluster.upload_records("events", records([17000, 17001]),
                               rows_per_segment=10)
        for server in cluster.servers:
            server.faults.fail_next = 1
        response = cluster.execute("SELECT count(*) FROM events" + TRACED)
        assert response.is_partial
        tree = response.trace
        assert tree["status"] == STATUS_ERROR  # partial => error root
        errors = [r for r in spans_named(tree, "rpc")
                  if r["status"] == STATUS_ERROR]
        assert errors
        assert all("error" in r["attributes"] for r in errors)
        # Per-server detail survives in the span attributes.
        assert {r["attributes"]["server"] for r in errors} <= {
            "server-0", "server-1"
        }

    def test_failover_retry_appears_under_gather(self, schema):
        cluster = PinotCluster(num_servers=2)
        cluster.create_table(TableConfig.offline("events", schema,
                                                 replication=2))
        cluster.upload_records("events", records([17000, 17001]),
                               rows_per_segment=10)
        cluster.crash_server("server-0")
        response = cluster.execute("SELECT count(*) FROM events" + TRACED)
        assert not response.is_partial
        assert response.rows[0][0] == 20
        tree = response.trace
        (gather,) = spans_named(tree, "gather")
        retries = spans_named(gather, "rpc")
        assert retries
        assert all(r["attributes"]["retry_attempt"] >= 1 for r in retries)
        assert all(r["attributes"]["server"] == "server-1"
                   for r in retries)
        # The failed primary is still in the tree, as an error span.
        primaries = [r for r in spans_named(tree, "scatter")[0]["children"]
                     if r["name"] == "rpc"
                     and r["status"] == STATUS_ERROR]
        assert primaries

    def test_hedged_loser_is_cancelled_winner_marked(self, schema):
        cluster = PinotCluster(num_servers=2, seed=7,
                               clock=SimClock(auto_advance=False),
                               hedging=HedgePolicy())
        cluster.create_table(TableConfig.offline("events", schema,
                                                 replication=2))
        cluster.upload_records("events", records([17000, 17001]),
                               rows_per_segment=10)
        cluster.net.set_link("broker-0", "server-0",
                             LinkModel(latency_s=0.25))
        traced = None
        for __ in range(40):
            response = cluster.execute(
                "SELECT count(*) FROM events"
                " OPTION(trace=true, skipCache=true)")
            assert not response.is_partial
            cancelled = [r for r in spans_named(response.trace, "rpc")
                         if r["status"] == STATUS_CANCELLED]
            if cancelled:
                traced = response.trace
                break
        assert traced is not None, "no hedge won within the query budget"
        cancelled = [r for r in spans_named(traced, "rpc")
                     if r["status"] == STATUS_CANCELLED]
        winners = [r for r in spans_named(traced, "rpc")
                   if r["attributes"].get("hedge_winner")]
        assert all(r["attributes"]["hedge_loser"] for r in cancelled)
        assert winners and all(r["attributes"]["hedge"] for r in winners)
        # Losers stay visible but the response is whole: one rpc pair
        # per hedged sub-request, winner ok, loser cancelled.
        assert len(cancelled) >= 1

    def test_queue_rejection_appears_as_rejected_span(self, schema):
        cluster = PinotCluster(num_servers=1,
                               clock=SimClock(auto_advance=False))
        cluster.create_table(TableConfig.offline("events", schema))
        cluster.upload_records("events", records([17000]))
        server = cluster.server("server-0")
        cluster.net.deregister("server-0")
        cluster.net.register("server-0", server, queue_capacity=1,
                             service=ServiceModel(base_s=0.2))
        t0 = cluster.clock.now()
        responses = [
            cluster.execute("SELECT count(*) FROM events"
                            " OPTION(trace=true, skipCache=true)",
                            at=t0, now=t0)
            for __ in range(3)
        ]
        rejected = [r for r in responses if r.is_partial]
        assert rejected
        for response in rejected:
            tree = response.trace
            error_rpcs = [r for r in spans_named(tree, "rpc")
                          if r["status"] == STATUS_ERROR]
            assert error_rpcs
            assert any(r["attributes"].get("rejected")
                       for r in error_rpcs)
            queue_spans = [q for r in error_rpcs
                           for q in spans_named(r, "queue")]
            assert any(q["attributes"].get("rejected")
                       and q["status"] == STATUS_ERROR
                       for q in queue_spans)

    def test_hedging_feedback_uses_winner_flight_time_only(self, schema):
        """Tracing must not perturb the hedging feedback loop: the
        latency window sees exactly the winners' own flight times."""
        cluster = PinotCluster(num_servers=2, seed=7,
                               clock=SimClock(auto_advance=False),
                               hedging=HedgePolicy())
        cluster.create_table(TableConfig.offline("events", schema,
                                                 replication=2))
        cluster.upload_records("events", records([17000, 17001]),
                               rows_per_segment=10)
        cluster.net.set_link("broker-0", "server-0",
                             LinkModel(latency_s=0.25))
        for __ in range(30):
            cluster.execute("SELECT count(*) FROM events"
                            " OPTION(trace=true, skipCache=true)")
        broker = cluster.brokers[0]
        assert broker.metrics.count("hedge_wins") > 0
        # Had the straggler's 500ms round trip been fed back, the
        # budget would balloon past the slow link's RTT and hedging
        # would stop winning; the percentile staying far below the slow
        # RTT proves only winners feed the window.
        assert broker._latency.percentile("events_OFFLINE") < 0.25

"""Unit tests for the repro.obs trace model, exporter, and metrics."""

import json

import pytest

from repro.net import SimClock
from repro.obs.export import (
    to_chrome_json,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.metrics import Metrics, MetricsRegistry
from repro.obs.propagation import activate, current, deactivate
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import (
    STATUS_CANCELLED,
    STATUS_ERROR,
    STATUS_OK,
    Span,
    SpanContext,
    Trace,
    Tracer,
)


class TestTrace:
    def test_tree_nests_by_parent(self):
        trace = Trace("t-1", "query", 0.0)
        scatter = trace.add_span("scatter", trace.root, 0.1, 0.5)
        trace.add_span("rpc", scatter, 0.1, 0.4)
        trace.finish(1.0)
        tree = trace.to_dict()
        assert tree["name"] == "query"
        assert [c["name"] for c in tree["children"]] == ["scatter"]
        assert tree["children"][0]["children"][0]["name"] == "rpc"

    def test_orphan_spans_attach_to_root(self):
        trace = Trace("t-1", "query", 0.0)
        trace.add_span("lost", "no-such-parent", 0.1, 0.2)
        tree = trace.to_dict()
        assert [c["name"] for c in tree["children"]] == ["lost"]

    def test_allocate_id_reserves_before_timing(self):
        trace = Trace("t-1", "query", 0.0)
        reserved = trace.allocate_id()
        span = trace.add_span("execute", trace.root, 0.1, 0.2,
                              span_id=reserved)
        assert span.span_id == reserved
        assert trace.allocate_id() != reserved

    def test_extend_grafts_remote_spans(self):
        trace = Trace("t-1", "query", 0.0)
        execute = trace.add_span("execute", trace.root, 0.1, 0.5)
        remote = Span(name="segment", span_id=f"{execute.span_id}.r1",
                      parent_id=execute.span_id, trace_id="other",
                      start_s=0.2, end_s=0.3)
        trace.extend([remote])
        assert remote.trace_id == "t-1"
        assert trace.children_of(execute) == [remote]

    def test_set_error(self):
        span = Span("rpc", "t.1", None, "t", 0.0, 0.1)
        span.set_error("boom", error_type="ValueError")
        assert span.status == STATUS_ERROR
        assert span.attributes["error"] == "boom"
        assert span.attributes["error_type"] == "ValueError"

    def test_duration_of_open_span_is_zero(self):
        span = Span("rpc", "t.1", None, "t", 5.0)
        assert span.duration_ms == 0.0


class TestTracer:
    def test_sampling_off_returns_none(self):
        tracer = Tracer(sample_rate=0.0)
        assert tracer.start_trace("query") is None
        assert tracer.traces_sampled_out == 1

    def test_force_overrides_sampling(self):
        tracer = Tracer(sample_rate=0.0)
        trace = tracer.start_trace("query", force=True)
        assert trace is not None

    def test_sample_rate_one_always_traces(self):
        tracer = Tracer(sample_rate=1.0)
        assert all(tracer.start_trace("query") is not None
                   for _ in range(10))

    def test_seeded_sampling_is_reproducible(self):
        def decisions(seed):
            tracer = Tracer(sample_rate=0.3, seed=seed)
            return [tracer.start_trace("q") is not None
                    for _ in range(50)]

        assert decisions(7) == decisions(7)
        assert decisions(7) != decisions(8)

    def test_finish_records_to_ring_and_slow_log(self):
        clock = SimClock(auto_advance=False)
        tracer = Tracer(clock=clock, component="broker-0")
        trace = tracer.start_trace("query", force=True)
        clock.advance(0.25)
        tracer.finish_trace(trace)
        assert trace.root.end_s == pytest.approx(0.25)
        assert list(tracer.finished) == [trace]
        assert tracer.slow_log.top() == [trace]

    def test_trace_ids_are_component_scoped(self):
        tracer = Tracer(component="broker-3")
        first = tracer.start_trace("q", force=True)
        second = tracer.start_trace("q", force=True)
        assert first.trace_id == "broker-3-000001"
        assert second.trace_id == "broker-3-000002"


class TestSlowQueryLog:
    def _trace(self, trace_id, duration):
        trace = Trace(trace_id, "query", 0.0)
        trace.finish(duration)
        return trace

    def test_top_ranks_by_duration(self):
        log = SlowQueryLog()
        for i, duration in enumerate([0.1, 0.5, 0.2]):
            log.record(self._trace(f"t-{i}", duration))
        assert [t.trace_id for t in log.top(2)] == ["t-1", "t-2"]

    def test_ring_evicts_oldest(self):
        log = SlowQueryLog(capacity=2)
        for i in range(3):
            log.record(self._trace(f"t-{i}", 1.0))
        assert len(log) == 2
        assert {t.trace_id for t in log.top(10)} == {"t-1", "t-2"}

    def test_summaries_keep_scalar_root_attrs(self):
        log = SlowQueryLog()
        trace = Trace("t-0", "query", 0.0, table="events",
                      plan={"not": "scalar"})
        trace.finish(0.3)
        log.record(trace)
        (summary,) = log.summaries()
        assert summary["table"] == "events"
        assert "plan" not in summary
        assert summary["duration_ms"] == pytest.approx(300.0)


class TestChromeExport:
    def _trace(self):
        trace = Trace("t-1", "query", 1.0, component="broker-0")
        scatter = trace.add_span("scatter", trace.root, 1.1, 1.5,
                                 component="broker-0")
        trace.add_span("execute", scatter, 1.2, 1.4,
                       component="server-0", docs=12)
        trace.finish(2.0)
        return trace

    def test_round_trips_through_json(self):
        payload = validate_chrome_trace(to_chrome_json(self._trace()))
        events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in events} == {"query", "scatter",
                                               "execute"}

    def test_timestamps_are_microseconds(self):
        payload = to_chrome_trace(self._trace())
        query = next(e for e in payload["traceEvents"]
                     if e.get("name") == "query" and e["ph"] == "X")
        assert query["ts"] == pytest.approx(1.0 * 1e6)
        assert query["dur"] == pytest.approx(1.0 * 1e6)

    def test_components_get_thread_metadata(self):
        payload = to_chrome_trace(self._trace())
        named = {e["args"]["name"] for e in payload["traceEvents"]
                 if e["ph"] == "M"}
        assert {"broker-0", "server-0"} <= named

    def test_validate_rejects_missing_fields(self):
        payload = to_chrome_trace(self._trace())
        del payload["traceEvents"][-1]["ts"]
        with pytest.raises(ValueError):
            validate_chrome_trace(json.dumps(payload))

    def test_validate_rejects_non_json(self):
        with pytest.raises(ValueError):
            validate_chrome_trace("{not json")


class TestPropagation:
    def _context(self):
        return SpanContext(trace_id="t-1", span_id="t-1.4")

    def test_spans_parent_under_context(self):
        recorder = activate(self._context(), anchor_s=10.0,
                            component="server-0")
        try:
            with recorder.span("segment", segment="s1"):
                pass
        finally:
            spans = deactivate()
        (span,) = spans
        assert span.parent_id == "t-1.4"
        assert span.trace_id == "t-1"
        assert span.component == "server-0"
        assert span.start_s >= 10.0
        assert span.end_s >= span.start_s

    def test_nested_spans_parent_under_open_span(self):
        recorder = activate(self._context(), anchor_s=0.0)
        try:
            with recorder.span("outer") as outer:
                with recorder.span("inner") as inner:
                    pass
        finally:
            deactivate()
        assert inner.parent_id == outer.span_id

    def test_raise_marks_span_error_and_close_sweeps(self):
        recorder = activate(self._context(), anchor_s=0.0)
        leftover = recorder.start("leftover")
        with pytest.raises(ValueError):
            with recorder.span("failing"):
                raise ValueError("boom")
        spans = deactivate()
        failing = next(s for s in spans if s.name == "failing")
        assert failing.status == STATUS_ERROR
        assert leftover.status == STATUS_ERROR  # closed by the sweep
        assert leftover.end_s is not None

    def test_current_is_none_outside_activation(self):
        assert current() is None

    def test_cancelled_status_survives_end(self):
        recorder = activate(self._context(), anchor_s=0.0)
        span = recorder.start("rpc")
        span.status = STATUS_CANCELLED
        recorder.end(span)
        deactivate()
        assert span.status == STATUS_CANCELLED


class TestMetricsRegistry:
    def test_export_json_nests_by_component(self):
        registry = MetricsRegistry()
        broker = registry.register("broker", "broker-0", Metrics())
        broker.incr("queries", 3)
        broker.record_stage("merge", 1.5)
        exported = registry.export_json()
        snapshot = exported["broker"]["broker-0"]
        assert snapshot["counters"]["queries"] == 3
        assert snapshot["stages"]["merge"]["count"] == 1

    def test_export_text_is_labeled_lines(self):
        registry = MetricsRegistry()
        registry.register("server", "server-1", Metrics()).incr("scans", 2)
        text = registry.export_text()
        assert ('repro_counter{component="server",instance="server-1",'
                'name="scans"} 2') in text

    def test_sources_sorted_and_gettable(self):
        registry = MetricsRegistry()
        registry.register("server", "server-1", Metrics())
        registry.register("broker", "broker-0", Metrics())
        labels = [(c, i) for c, i, _ in registry.sources()]
        assert labels == [("broker", "broker-0"), ("server", "server-1")]
        assert registry.get("server", "server-1") is not None
        assert registry.get("server", "nope") is None

    def test_status_constants(self):
        assert {STATUS_OK, STATUS_ERROR, STATUS_CANCELLED} == {
            "ok", "error", "cancelled"
        }

"""Server-side segment pruning: correctness (identical results pruning
on vs off) over the paper's fig 15/16 workloads, plus unit coverage of
the conservative cases."""

import pytest

from repro.cache.pruner import equality_constraints, prune_reason
from repro.cluster.pinot import PinotCluster
from repro.cluster.table import TableConfig
from repro.pql.parser import parse
from repro.segment.builder import SegmentBuilder, SegmentConfig
from repro.workloads import impressions, wvmp

SKIP_ALL = " OPTION(skipCache=true)"  # ground truth: no cache, no prune


def run_pair(cluster, pql):
    """(pruned response, unpruned ground-truth response)."""
    pruned = cluster.execute(pql)
    truth = cluster.execute(pql + SKIP_ALL)
    return pruned, truth


@pytest.fixture(scope="module")
def wvmp_cluster():
    cluster = PinotCluster(num_servers=2)
    # No table-level blooms: broker-side bloom pruning would otherwise
    # drop segments before the server pruner ever sees them, and these
    # tests exercise the server-side zone maps.
    cluster.create_table(TableConfig.offline(
        "wvmp", wvmp.schema(),
        segment_config=SegmentConfig(sorted_column="vieweeId"),
    ))
    # Globally sorted upload gives segments disjoint vieweeId ranges,
    # the setting where zone maps shine (§4.2 physical ordering).
    records = sorted(wvmp.generate_records(16_000, seed=7),
                     key=lambda r: r["vieweeId"])
    cluster.upload_records("wvmp", records, rows_per_segment=2_000)
    return cluster


@pytest.fixture(scope="module")
def impressions_cluster():
    cluster = PinotCluster(num_servers=2)
    config = impressions.segment_config()
    config.partition_column = "memberId"
    config.num_partitions = impressions.NUM_PARTITIONS
    cluster.create_table(TableConfig.offline(
        "impressions", impressions.schema(),
        segment_config=config,
        partition=impressions.partition_config(),
    ))
    cluster.upload_records(
        "impressions", impressions.generate_records(12_000, seed=9),
        rows_per_segment=1_500,
    )
    return cluster


class TestWvmpWorkload:
    def test_workload_queries_identical_pruning_on_vs_off(
            self, wvmp_cluster):
        total_pruned = 0
        for pql in wvmp.generate_queries(30, seed=11):
            pruned, truth = run_pair(wvmp_cluster, pql)
            assert pruned.rows == truth.rows, pql
            assert truth.stats.num_segments_pruned_by_server == 0
            total_pruned += pruned.stats.num_segments_pruned_by_server
        assert total_pruned > 0  # the pruner actually fired

    def test_point_query_prunes_most_segments(self, wvmp_cluster):
        pruned, truth = run_pair(
            wvmp_cluster, "SELECT sum(views) FROM wvmp WHERE vieweeId = 0"
        )
        assert pruned.rows == truth.rows
        assert pruned.stats.num_segments_pruned_by_server >= 5
        assert (pruned.stats.num_segments_queried
                == truth.stats.num_segments_queried)

    def test_in_query_identical(self, wvmp_cluster):
        pruned, truth = run_pair(
            wvmp_cluster,
            "SELECT count(*) FROM wvmp WHERE vieweeId IN (0, 1, 2400)",
        )
        assert pruned.rows == truth.rows
        assert pruned.stats.num_segments_pruned_by_server > 0

    def test_range_query_identical(self, wvmp_cluster):
        pruned, truth = run_pair(
            wvmp_cluster,
            "SELECT count(*) FROM wvmp "
            "WHERE vieweeId BETWEEN 100 AND 200",
        )
        assert pruned.rows == truth.rows

    def test_server_metrics_report_prune_ratio(self, wvmp_cluster):
        scanned = sum(s.metrics.count("segments_scanned")
                      for s in wvmp_cluster.servers)
        pruned = sum(s.metrics.count("segments_pruned")
                     for s in wvmp_cluster.servers)
        assert scanned > 0 and pruned > 0


class TestImpressionsWorkload:
    def test_workload_queries_identical_pruning_on_vs_off(
            self, impressions_cluster):
        total_pruned = 0
        for pql in impressions.generate_queries(30, seed=13):
            pruned, truth = run_pair(impressions_cluster, pql)
            assert pruned.rows == truth.rows, pql
            total_pruned += pruned.stats.num_segments_pruned_by_server
        assert total_pruned > 0

    def test_partition_pruning_fires_for_point_member(
            self, impressions_cluster):
        pruned, truth = run_pair(
            impressions_cluster,
            "SELECT count(*) FROM impressions WHERE memberId = 17",
        )
        assert pruned.rows == truth.rows
        assert pruned.stats.num_segments_pruned_by_server > 0


class TestConservativeCases:
    """Shapes the pruner must refuse to reason about."""

    @pytest.fixture(scope="class")
    def metadata(self):
        builder = SegmentBuilder(
            "seg", "t", wvmp.schema(),
            SegmentConfig(bloom_columns=("vieweeId",)),
        )
        builder.add_all([
            {"vieweeId": v, "viewerId": 1, "viewerCompany": "c",
             "viewerRegion": "r", "viewerOccupation": "o",
             "views": 1, "day": 17200}
            for v in (10, 20, 30)
        ])
        return builder.build().metadata

    def q(self, where):
        return parse(f"SELECT count(*) FROM t WHERE {where}")

    def test_zone_map_prunes_out_of_range(self, metadata):
        assert prune_reason(metadata, self.q("vieweeId > 30")) == "zone_map"
        assert prune_reason(metadata, self.q("vieweeId < 10")) == "zone_map"
        assert prune_reason(metadata,
                            self.q("vieweeId BETWEEN 31 AND 99")) == "zone_map"

    def test_bloom_prunes_absent_value(self, metadata):
        assert prune_reason(metadata, self.q("vieweeId = 15")) == "bloom"

    def test_in_range_not_pruned(self, metadata):
        assert prune_reason(metadata, self.q("vieweeId = 20")) is None
        assert prune_reason(metadata, self.q("vieweeId >= 30")) is None

    def test_or_and_negations_never_prune(self, metadata):
        assert prune_reason(
            metadata, self.q("vieweeId > 99 OR views = 1")) is None
        assert prune_reason(metadata, self.q("vieweeId != 99")) is None
        assert prune_reason(
            metadata, self.q("vieweeId NOT IN (10, 20, 30)")) is None

    def test_no_where_never_prunes(self, metadata):
        assert prune_reason(
            metadata, parse("SELECT count(*) FROM t")) is None

    def test_incomparable_types_never_prune(self, metadata):
        assert prune_reason(metadata, self.q("vieweeId = 'abc'")) in (
            None, "bloom"  # the bloom may still prove absence
        )

    def test_equality_constraints_drop_floats(self):
        constraints = equality_constraints(
            self.q("vieweeId = 5.5 AND viewerCompany = 'acme'").where
        )
        assert constraints == {"viewerCompany": ["acme"]}

    def test_equality_constraints_drop_partial_in_lists(self):
        constraints = equality_constraints(
            self.q("vieweeId IN (1, 2.5)").where
        )
        assert constraints == {}

"""Unit tests for the invalidation bus and per-table epochs."""

from repro.cache.bus import InvalidationBus, InvalidationEvent, TableEpochs


class TestBus:
    def test_publish_reaches_all_subscribers(self):
        bus = InvalidationBus()
        seen = []
        bus.subscribe(seen.append)
        bus.subscribe(seen.append)
        event = bus.publish("t_OFFLINE", "segment_uploaded", segment="s1")
        assert seen == [event, event]
        assert event == InvalidationEvent("t_OFFLINE", "segment_uploaded",
                                          "s1")
        assert bus.events_published == 1

    def test_publish_without_subscribers_is_fine(self):
        bus = InvalidationBus()
        bus.publish("t", "segment_deleted")
        assert bus.events_published == 1


class TestEpochs:
    def test_epoch_starts_at_zero_and_bumps(self):
        epochs = TableEpochs()
        assert epochs.epoch("t") == 0
        assert epochs.bump("t") == 1
        assert epochs.epoch("t") == 1
        assert epochs.epoch("other") == 0

    def test_subscribed_epochs_bump_per_event(self):
        bus = InvalidationBus()
        epochs = TableEpochs(bus=bus)
        bus.publish("a", "segment_completed")
        bus.publish("a", "state_transition")
        bus.publish("b", "instance_death")
        assert epochs.epoch("a") == 2
        assert epochs.epoch("b") == 1
        assert epochs.events_seen == 3

    def test_independent_subscribers(self):
        """Each broker has its own epochs; all see the same stream."""
        bus = InvalidationBus()
        first, second = TableEpochs(bus=bus), TableEpochs(bus=bus)
        bus.publish("t", "segment_replaced")
        assert first.epoch("t") == second.epoch("t") == 1

"""End-to-end cache invalidation: every data-changing path must bump
the table epoch (or change the consuming fingerprint) so no stale
result can ever be served from the broker cache."""

import pytest

from repro.cluster.pinot import PinotCluster
from repro.cluster.table import StreamConfig, TableConfig
from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column


@pytest.fixture
def schema():
    return Schema("events", [
        dimension("memberId", DataType.LONG), dimension("country"),
        metric("views", DataType.LONG), time_column("day", DataType.INT),
    ])


def offline_cluster(schema, replication=1, num_servers=2, num_minions=1):
    cluster = PinotCluster(num_servers=num_servers,
                           num_minions=num_minions)
    cluster.create_table(TableConfig.offline("events", schema,
                                             replication=replication))
    records = [{"memberId": i % 10, "country": "us", "views": 1,
                "day": 17000} for i in range(100)]
    cluster.upload_records("events", records, rows_per_segment=25)
    return cluster


def ground_truth(cluster, pql):
    """The uncached, unpruned answer."""
    return cluster.execute(pql + " OPTION(skipCache=true)").rows


class TestRealtimeFreshness:
    def test_new_events_invalidate_by_offset_fingerprint(self, schema):
        """Consuming offsets are part of the key: any newly consumed
        event makes the old entry unreachable — zero staleness even
        without a completion."""
        cluster = PinotCluster(num_servers=2)
        cluster.create_kafka_topic("events-rt", 1)
        cluster.create_table(TableConfig.realtime(
            "events", schema,
            StreamConfig("events-rt", flush_threshold_rows=100_000),
        ))
        broker = cluster.brokers[0]
        pql = "SELECT count(*) FROM events WHERE country = 'us'"

        cluster.ingest("events-rt", [
            {"memberId": i, "country": "us", "views": 1, "day": 17000}
            for i in range(100)
        ])
        cluster.drain_realtime()
        first = broker.execute(pql)
        hit = broker.execute(pql)
        assert hit.cache_hit and hit.rows == first.rows

        cluster.ingest("events-rt", [
            {"memberId": 1, "country": "us", "views": 1, "day": 17000}
            for __ in range(50)
        ])
        cluster.drain_realtime()
        fresh = broker.execute(pql)
        assert not fresh.cache_hit
        assert fresh.rows[0][0] == 150
        assert fresh.rows == ground_truth(cluster, pql)

    def test_segment_completion_bumps_epoch(self, schema):
        cluster = PinotCluster(num_servers=2)
        cluster.create_kafka_topic("events-rt", 1)
        cluster.create_table(TableConfig.realtime(
            "events", schema,
            StreamConfig("events-rt", flush_threshold_rows=60,
                         records_per_poll=30),
        ))
        broker = cluster.brokers[0]
        epoch_before = broker._epochs.epoch("events_REALTIME")
        cluster.ingest("events-rt", [
            {"memberId": i, "country": "us", "views": 1, "day": 17000}
            for i in range(100)
        ])
        cluster.drain_realtime()  # completes at least one segment
        assert broker._epochs.epoch("events_REALTIME") > epoch_before

        pql = "SELECT count(*) FROM events WHERE country = 'us'"
        response = broker.execute(pql)
        assert response.rows[0][0] == 100
        assert response.rows == ground_truth(cluster, pql)


class TestMinionReplacement:
    PQL = "SELECT count(*) FROM events WHERE memberId IN (3, 7)"

    def test_purge_prevents_stale_hit(self, schema):
        cluster = offline_cluster(schema)
        broker = cluster.brokers[0]
        stale = broker.execute(self.PQL)
        assert stale.rows[0][0] == 20
        assert broker.execute(self.PQL).cache_hit  # entry is live

        epoch_before = broker._epochs.epoch("events_OFFLINE")
        cluster.leader_controller().schedule_task(
            "purge", "events_OFFLINE",
            {"column": "memberId", "values": [3, 7]},
        )
        cluster.run_minions()
        assert broker._epochs.epoch("events_OFFLINE") > epoch_before

        hits_before = broker.metrics.count("cache_hits")
        fresh = broker.execute(self.PQL)
        assert not fresh.cache_hit
        assert fresh.rows[0][0] == 0
        assert fresh.rows == ground_truth(cluster, self.PQL)
        assert broker.metrics.count("cache_hits") == hits_before

    def test_add_inverted_index_invalidates(self, schema):
        """Index backfill replaces segments; results are identical, but
        correctness requires the epoch to move anyway."""
        cluster = offline_cluster(schema)
        broker = cluster.brokers[0]
        broker.execute(self.PQL)
        epoch_before = broker._epochs.epoch("events_OFFLINE")
        cluster.leader_controller().schedule_task(
            "add_inverted_index", "events_OFFLINE",
            {"column": "memberId"},
        )
        cluster.run_minions()
        assert broker._epochs.epoch("events_OFFLINE") > epoch_before
        fresh = broker.execute(self.PQL)
        assert not fresh.cache_hit
        assert fresh.rows[0][0] == 20


class TestServerDeathAndFailover:
    def test_server_death_prevents_stale_hit(self, schema):
        cluster = offline_cluster(schema, replication=2, num_servers=2)
        broker = cluster.brokers[0]
        pql = "SELECT count(*) FROM events"
        broker.execute(pql)
        assert broker.execute(pql).cache_hit

        epoch_before = broker._epochs.epoch("events_OFFLINE")
        cluster.kill_server("server-0")
        assert broker._epochs.epoch("events_OFFLINE") > epoch_before

        fresh = broker.execute(pql)
        assert not fresh.cache_hit
        assert not fresh.is_partial  # surviving replica serves all
        assert fresh.rows[0][0] == 100
        assert fresh.rows == ground_truth(cluster, pql)

    def test_failover_response_cacheable_and_correct(self, schema):
        """A crashed (but not deregistered) server forces replica
        failover; the recovered response is complete, so it may be
        cached — and repeating it must stay correct."""
        cluster = offline_cluster(schema, replication=2, num_servers=2)
        broker = cluster.brokers[0]
        cluster.crash_server("server-0")
        pql = "SELECT count(*) FROM events"
        recovered = broker.execute(pql)
        assert not recovered.is_partial
        assert recovered.rows[0][0] == 100
        again = broker.execute(pql)
        assert again.rows[0][0] == 100

    def test_upload_invalidates(self, schema):
        cluster = offline_cluster(schema)
        broker = cluster.brokers[0]
        pql = "SELECT count(*) FROM events"
        assert broker.execute(pql).rows[0][0] == 100
        cluster.upload_records("events", [
            {"memberId": 99, "country": "ca", "views": 1, "day": 17001}
        ])
        fresh = broker.execute(pql)
        assert not fresh.cache_hit
        assert fresh.rows[0][0] == 101

    def test_retention_delete_invalidates(self, schema):
        cluster = PinotCluster(num_servers=1)
        cluster.create_table(TableConfig.offline("events", schema,
                                                 retention=10))
        cluster.upload_records("events", [
            {"memberId": 1, "country": "us", "views": 1, "day": 17000}
            for __ in range(50)
        ])
        cluster.upload_records("events", [
            {"memberId": 2, "country": "us", "views": 1, "day": 17099}
            for __ in range(50)
        ])
        broker = cluster.brokers[0]
        pql = "SELECT count(*) FROM events"
        assert broker.execute(pql).rows[0][0] == 100
        deleted = cluster.run_retention(now=17100)
        assert deleted  # the day-17000 segment is past retention
        fresh = broker.execute(pql)
        assert not fresh.cache_hit
        assert fresh.rows[0][0] == 50

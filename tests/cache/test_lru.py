"""Unit tests for the shared LRU cache and its stats."""

import pytest

from repro.cache.lru import LruCache


class TestBasics:
    def test_get_put_roundtrip(self):
        cache = LruCache(max_entries=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_peek_does_not_count(self):
        cache = LruCache(max_entries=4)
        cache.put("a", 1)
        assert cache.peek("a") == 1
        assert cache.peek("b", default=7) == 7
        assert cache.stats.hits == 0
        assert cache.stats.misses == 0

    def test_replace_updates_bytes(self):
        cache = LruCache(max_bytes=100)
        cache.put("a", 1, nbytes=60)
        cache.put("a", 2, nbytes=30)
        assert cache.stats.bytes == 30
        assert len(cache) == 1

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValueError):
            LruCache(max_entries=0)
        with pytest.raises(ValueError):
            LruCache(max_bytes=-1)


class TestEviction:
    def test_entry_budget_evicts_lru(self):
        cache = LruCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a so b is now LRU
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.stats.evictions == 1

    def test_byte_budget_evicts_until_under(self):
        cache = LruCache(max_bytes=100)
        cache.put("a", 1, nbytes=40)
        cache.put("b", 2, nbytes=40)
        cache.put("c", 3, nbytes=40)
        assert "a" not in cache
        assert cache.stats.bytes == 80

    def test_oversized_entry_not_admitted(self):
        cache = LruCache(max_bytes=100)
        cache.put("small", 1, nbytes=10)
        cache.put("huge", 2, nbytes=1000)
        assert "huge" not in cache
        assert "small" in cache  # nothing was evicted for the reject

    def test_on_evict_fires_for_evictions_and_invalidations(self):
        released = []
        cache = LruCache(max_entries=1,
                         on_evict=lambda k, v: released.append(k))
        cache.put("a", 1)
        cache.put("b", 2)  # evicts a
        cache.invalidate("b")
        assert released == ["a", "b"]


class TestInvalidation:
    def test_invalidate_where(self):
        cache = LruCache()
        cache.put(("t1", "s1"), 1)
        cache.put(("t1", "s2"), 2)
        cache.put(("t2", "s1"), 3)
        dropped = cache.invalidate_where(lambda key: key[0] == "t1")
        assert dropped == 2
        assert len(cache) == 1
        assert cache.stats.invalidations == 2

    def test_clear(self):
        cache = LruCache()
        cache.put("a", 1, nbytes=5)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.bytes == 0

    def test_hit_ratio(self):
        cache = LruCache()
        assert cache.stats.hit_ratio == 0.0
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.stats.hit_ratio == 0.5
        assert cache.stats.snapshot()["hit_ratio"] == 0.5

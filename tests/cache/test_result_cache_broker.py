"""Broker result-cache behavior: hits, bypass, and the never-cache
rules (partial responses, exhausted deadlines)."""

import pytest

from repro.cache.result_cache import (
    BrokerResultCache,
    estimate_response_bytes,
)
from repro.cluster.pinot import PinotCluster
from repro.cluster.table import TableConfig
from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column


@pytest.fixture
def schema():
    return Schema("events", [
        dimension("country"), metric("views", DataType.LONG),
        time_column("day", DataType.INT),
    ])


@pytest.fixture
def cluster(schema):
    cluster = PinotCluster(num_servers=2)
    cluster.create_table(TableConfig.offline("events", schema))
    records = [
        {"country": "us" if i % 2 else "ca", "views": 1,
         "day": 17000 + i % 3}
        for i in range(300)
    ]
    cluster.upload_records("events", records, rows_per_segment=100)
    return cluster


QUERY = "SELECT count(*) FROM events WHERE country = 'us'"


class TestHits:
    def test_repeat_query_hits_and_matches(self, cluster):
        broker = cluster.brokers[0]
        first = broker.execute(QUERY)
        second = broker.execute(QUERY)
        assert not first.cache_hit
        assert second.cache_hit
        assert second.rows == first.rows
        assert broker.metrics.count("cache_misses") == 1
        assert broker.metrics.count("cache_hits") == 1
        assert broker.result_cache.stats.entries == 1

    def test_cache_stage_recorded(self, cluster):
        broker = cluster.brokers[0]
        miss = broker.execute(QUERY)
        hit = broker.execute(QUERY)
        assert "cache" in miss.stage_times_ms
        assert "cache" in hit.stage_times_ms
        # A hit never reaches scatter/gather.
        assert "scatter" not in hit.stage_times_ms

    def test_hit_skips_servers_entirely(self, cluster):
        broker = cluster.brokers[0]
        broker.execute(QUERY)
        before = sum(s.queries_executed for s in cluster.servers)
        broker.execute(QUERY)
        assert sum(s.queries_executed for s in cluster.servers) == before

    def test_hit_counts_as_served_query(self, cluster):
        broker = cluster.brokers[0]
        broker.execute(QUERY)
        broker.execute(QUERY)
        assert broker.queries_served == 2

    def test_hit_replays_query_log(self, cluster):
        """Cache hits must not starve auto-index mining (§5.2)."""
        broker = cluster.brokers[0]
        broker.execute(QUERY)
        logged = len(broker.query_log)
        broker.execute(QUERY)
        assert len(broker.query_log) == logged * 2
        assert broker.query_log[-1].filter_columns == {"country"}

    def test_different_queries_do_not_collide(self, cluster):
        broker = cluster.brokers[0]
        us = broker.execute(QUERY)
        ca = broker.execute("SELECT count(*) FROM events "
                            "WHERE country = 'ca'")
        assert not ca.cache_hit
        assert us.rows[0][0] == ca.rows[0][0] == 150


class TestBypass:
    def test_skip_cache_option(self, cluster):
        broker = cluster.brokers[0]
        first = broker.execute(QUERY + " OPTION(skipCache=true)")
        second = broker.execute(QUERY + " OPTION(skipCache=true)")
        assert not first.cache_hit and not second.cache_hit
        assert broker.metrics.count("cache_bypass") == 2
        assert len(broker.result_cache) == 0

    def test_skip_cache_does_not_read_existing_entries(self, cluster):
        broker = cluster.brokers[0]
        broker.execute(QUERY)  # populate
        bypassed = broker.execute(QUERY + " OPTION(skipCache=true)")
        assert not bypassed.cache_hit
        assert broker.metrics.count("cache_hits") == 0


class TestNeverCacheRules:
    def test_partial_response_not_cached(self, cluster):
        broker = cluster.brokers[0]
        for server in cluster.servers:
            server.faults.crash()
        partial = broker.execute(QUERY)
        assert partial.is_partial
        assert len(broker.result_cache) == 0
        again = broker.execute(QUERY)
        assert not again.cache_hit

    def test_healed_cluster_serves_fresh_after_partial(self, cluster):
        broker = cluster.brokers[0]
        for server in cluster.servers:
            server.faults.crash()
        partial = broker.execute(QUERY)
        assert partial.is_partial
        for server in cluster.servers:
            server.faults.recover()
        healed = broker.execute(QUERY)
        assert not healed.is_partial
        assert healed.rows[0][0] == 150

    def test_deadline_exhausted_not_cached(self, cluster):
        broker = cluster.brokers[0]
        response = broker.execute(QUERY + " OPTION(timeoutMs=0)")
        assert response.is_partial
        assert broker.metrics.count("deadline_exhausted") > 0
        assert len(broker.result_cache) == 0


class TestHotStructureCache:
    def test_second_query_on_same_column_hits_hot_cache(self, cluster):
        # Distinct literals so the broker result cache cannot hit; the
        # decoded country column stays resident server-side.
        cluster.execute("SELECT count(*) FROM events WHERE country = 'us'")
        assert sum(s.metrics.count("hot_misses")
                   for s in cluster.servers) > 0
        assert sum(s.metrics.count("hot_hits")
                   for s in cluster.servers) == 0
        cluster.execute("SELECT count(*) FROM events WHERE country = 'ca'")
        assert sum(s.metrics.count("hot_hits")
                   for s in cluster.servers) > 0

    def test_skip_cache_disables_hot_cache(self, schema):
        cluster = PinotCluster(num_servers=1)
        cluster.create_table(TableConfig.offline("events", schema))
        cluster.upload_records(
            "events",
            [{"country": "us", "views": 1, "day": 17000}] * 50,
        )
        cluster.execute("SELECT count(*) FROM events WHERE country = 'us' "
                        "OPTION(skipCache=true)")
        server = cluster.servers[0]
        assert len(server.hot_cache) == 0
        assert server.metrics.count("hot_misses") == 0


class TestEstimator:
    def test_estimate_scales_with_rows(self, cluster):
        small = cluster.execute("SELECT count(*) FROM events")
        big = cluster.execute("SELECT country, count(*) FROM events "
                              "GROUP BY country TOP 10")
        assert estimate_response_bytes(big) > 0
        assert estimate_response_bytes(small) > 0

    def test_byte_budget_bounds_entries(self, cluster):
        tiny = BrokerResultCache(max_bytes=1)
        response = cluster.execute("SELECT count(*) FROM events")
        tiny.put(("k",), response)
        assert len(tiny) == 0  # larger than the whole budget

"""Star-tree serialization roundtrip tests."""

import random

import numpy as np
import pytest

from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric
from repro.errors import SegmentFormatError
from repro.startree.builder import StarTreeConfig, build_star_tree
from repro.startree.serialize import star_tree_from_bytes, star_tree_to_bytes


@pytest.fixture(scope="module")
def tree():
    schema = Schema("t", [dimension("a"), dimension("b"),
                          metric("m", DataType.LONG)])
    rng = random.Random(4)
    records = [
        {"a": rng.choice("xyz"), "b": rng.choice("pq"),
         "m": rng.randint(0, 9)}
        for __ in range(300)
    ]
    return build_star_tree(schema, records,
                           StarTreeConfig(dimensions=("a", "b"),
                                          max_leaf_records=5))


class TestRoundTrip:
    def test_roundtrip_metadata(self, tree):
        clone = star_tree_from_bytes(star_tree_to_bytes(tree))
        assert clone.dimensions == tree.dimensions
        assert clone.metric_columns == tree.metric_columns
        assert clone.dictionaries == tree.dictionaries
        assert clone.num_raw_docs == tree.num_raw_docs
        assert clone.max_leaf_records == tree.max_leaf_records

    def test_roundtrip_arrays(self, tree):
        clone = star_tree_from_bytes(star_tree_to_bytes(tree))
        assert np.array_equal(clone.dim_ids, tree.dim_ids)
        assert np.array_equal(clone.counts, tree.counts)
        assert np.array_equal(clone.metrics["m"].sums,
                              tree.metrics["m"].sums)

    def test_roundtrip_tree_structure(self, tree):
        clone = star_tree_from_bytes(star_tree_to_bytes(tree))

        def structure(node):
            return (
                node.depth, node.start, node.end,
                {k: structure(v) for k, v in node.children.items()},
                structure(node.star_child) if node.star_child else None,
            )

        assert structure(clone.root) == structure(tree.root)

    def test_truncated_blob_rejected(self, tree):
        with pytest.raises(SegmentFormatError):
            star_tree_from_bytes(b"abc")

    def test_corrupt_header_rejected(self, tree):
        payload = bytearray(star_tree_to_bytes(tree))
        payload[10] ^= 0xFF
        with pytest.raises(SegmentFormatError):
            star_tree_from_bytes(bytes(payload))

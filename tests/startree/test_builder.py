"""Tests for star-tree construction invariants."""

import random

import pytest

from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric
from repro.errors import SegmentError
from repro.startree.builder import StarTreeConfig, build_star_tree
from repro.startree.node import STAR_ID


@pytest.fixture(scope="module")
def schema():
    return Schema("t", [
        dimension("a"), dimension("b"), dimension("c"),
        metric("m", DataType.LONG),
    ])


@pytest.fixture(scope="module")
def records(schema):
    rng = random.Random(9)
    return [
        {"a": rng.choice("xy"), "b": rng.choice("pqr"),
         "c": rng.choice("12345"), "m": rng.randint(1, 10)}
        for __ in range(500)
    ]


@pytest.fixture(scope="module")
def tree(schema, records):
    return build_star_tree(
        schema, records,
        StarTreeConfig(dimensions=("a", "b", "c"), max_leaf_records=10),
    )


class TestConstruction:
    def test_empty_records_rejected(self, schema):
        with pytest.raises(SegmentError):
            build_star_tree(schema, [], StarTreeConfig())

    def test_invalid_max_leaf_records(self):
        with pytest.raises(SegmentError):
            StarTreeConfig(max_leaf_records=0)

    def test_non_metric_rejected_as_metric(self, schema, records):
        with pytest.raises(SegmentError):
            build_star_tree(schema, records,
                            StarTreeConfig(metrics=("a",)))

    def test_default_dimension_order_by_cardinality(self, schema, records):
        tree = build_star_tree(schema, records, StarTreeConfig())
        # c has 5 values, b has 3, a has 2.
        assert tree.dimensions == ("c", "b", "a")

    def test_raw_doc_count_preserved(self, tree, records):
        assert tree.num_raw_docs == len(records)


class TestInvariants:
    def test_total_count_conserved_at_full_star_path(self, tree, records):
        """Following star children to the bottom yields the global total."""
        node = tree.root
        while not node.is_leaf:
            node = node.star_child
        counts = tree.counts[node.start:node.end]
        assert counts.sum() == len(records)

    def test_leaf_ranges_partition_the_table(self, tree):
        ranges = []

        def collect(node):
            if node.is_leaf:
                ranges.append((node.start, node.end))
                return
            for child in node.children.values():
                collect(child)
            if node.star_child is not None:
                collect(node.star_child)

        collect(tree.root)
        ranges.sort()
        # Ranges must be disjoint and cover [0, num_records).
        assert ranges[0][0] == 0
        for (s1, e1), (s2, e2) in zip(ranges, ranges[1:]):
            assert e1 == s2
        assert ranges[-1][1] == tree.num_records

    def test_star_records_marked(self, tree):
        node = tree.root
        star = node.star_child
        if star.is_leaf:
            rows = tree.dim_ids[star.start:star.end]
        else:
            # Find any leaf under the star child.
            while not star.is_leaf:
                star = star.star_child
            rows = tree.dim_ids[star.start:star.end]
        assert (rows[:, 0] == STAR_ID).all()

    def test_value_children_sorted_and_valid(self, tree):
        ids = sorted(tree.root.children)
        assert ids == list(range(len(tree.dictionaries[0])))

    def test_sum_conserved_across_star_aggregation(self, tree, records):
        node = tree.root
        while not node.is_leaf:
            node = node.star_child
        sums = tree.metrics["m"].sums[node.start:node.end]
        assert sums.sum() == pytest.approx(sum(r["m"] for r in records))

    def test_max_leaf_respected_above_leaf_level(self, tree):
        def check(node):
            if node.is_leaf:
                size = node.end - node.start
                # A leaf either fits the threshold or has exhausted all
                # dimensions (depth == num dims).
                assert (size <= tree.max_leaf_records
                        or node.depth == len(tree.dimensions))
                return
            for child in node.children.values():
                check(child)
            check(node.star_child)

        check(tree.root)

    def test_lookup_helpers(self, tree):
        assert tree.id_of(0, "x") == tree.dictionaries[0].index("x")
        assert tree.id_of(0, "zz") is None
        assert tree.value_of(0, STAR_ID) == "*"

"""Star-tree query execution: support detection and equivalence with raw
execution on randomized queries."""

import random

import pytest

from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column
from repro.engine.executor import execute_segment
from repro.engine.merge import combine_segment_results, reduce_server_results
from repro.pql.parser import parse
from repro.pql.rewriter import optimize
from repro.segment.builder import SegmentBuilder, SegmentConfig
from repro.startree.builder import StarTreeConfig
from repro.startree.query import supports_query


@pytest.fixture(scope="module")
def segment():
    schema = Schema("t", [
        dimension("a"), dimension("b"), dimension("n", DataType.LONG),
        metric("m", DataType.LONG), metric("f", DataType.DOUBLE),
        time_column("day", DataType.INT),
    ])
    rng = random.Random(17)
    builder = SegmentBuilder(
        "seg", "t", schema,
        SegmentConfig(star_tree=StarTreeConfig(
            dimensions=("a", "b", "n", "day"), max_leaf_records=12)),
    )
    for __ in range(3000):
        builder.add({
            "a": rng.choice("uvw"), "b": rng.choice("pqrst"),
            "n": rng.randint(0, 6), "m": rng.randint(0, 50),
            "f": round(rng.random(), 3),
            "day": 17000 + rng.randint(0, 5),
        })
    return builder.build()


def q(text):
    return optimize(parse(text))


def run(segment, text, allow_star_tree=True):
    query = q(text)
    result = execute_segment(segment, query,
                             allow_star_tree=allow_star_tree)
    server = combine_segment_results(query, [result])
    return reduce_server_results(query, [server]), result.stats


class TestSupports:
    def test_supported_shapes(self, segment):
        tree = segment.star_tree
        for text in [
            "SELECT sum(m) FROM t WHERE a = 'u'",
            "SELECT count(*) FROM t WHERE b IN ('p', 'q')",
            "SELECT min(m), max(m), avg(m) FROM t WHERE n = 3 GROUP BY a",
            "SELECT sum(m) FROM t WHERE day BETWEEN 17001 AND 17003",
            "SELECT sum(m) FROM t WHERE n >= 4 AND a = 'v' GROUP BY b",
            "SELECT sum(m) FROM t",
        ]:
            assert supports_query(tree, q(text)), text

    def test_unsupported_shapes(self, segment):
        tree = segment.star_tree
        for text in [
            "SELECT a FROM t WHERE a = 'u'",              # selection
            "SELECT distinctcount(b) FROM t",              # exact distinct
            "SELECT percentile50(m) FROM t",               # percentile
            "SELECT sum(f) FROM t WHERE a = 'u'",          # wait: f IS a metric
        ][:3]:
            assert not supports_query(tree, q(text)), text

    def test_or_across_dimensions_unsupported(self, segment):
        assert not supports_query(
            segment.star_tree,
            q("SELECT sum(m) FROM t WHERE a = 'u' OR b = 'p'"),
        )

    def test_or_within_dimension_supported(self, segment):
        # The rewriter fuses it into an IN (Fig 10's shape).
        assert supports_query(
            segment.star_tree,
            q("SELECT sum(m) FROM t WHERE a = 'u' OR a = 'v'"),
        )

    def test_negation_unsupported(self, segment):
        assert not supports_query(
            segment.star_tree,
            q("SELECT sum(m) FROM t WHERE a != 'u'"),
        )

    def test_group_by_non_dimension_unsupported(self, segment):
        from repro.pql.ast_nodes import AggFunc, Aggregation, Query

        query = Query("t", (Aggregation(AggFunc.SUM, "m"),),
                      group_by=("m",))
        assert not supports_query(segment.star_tree, query)


QUERIES = [
    "SELECT sum(m) FROM t WHERE a = 'u'",
    "SELECT count(*), sum(m) FROM t WHERE b = 'q' AND n = 2",
    "SELECT sum(m), avg(m) FROM t WHERE a IN ('u', 'w') GROUP BY b TOP 50",
    "SELECT count(*) FROM t WHERE day BETWEEN 17001 AND 17002 GROUP BY a "
    "TOP 50",
    "SELECT min(m), max(m) FROM t WHERE n <= 2 AND a = 'v'",
    "SELECT sum(f) FROM t WHERE b = 'p' OR b = 't' GROUP BY n TOP 50",
    "SELECT sum(m) FROM t WHERE n > 4 GROUP BY a, b TOP 100",
    "SELECT count(*) FROM t WHERE a = 'u' AND b = 'p' AND n = 0 "
    "AND day = 17000",
    "SELECT sum(m) FROM t GROUP BY day TOP 10",
]


class TestEquivalence:
    @pytest.mark.parametrize("text", QUERIES)
    def test_star_tree_matches_raw_execution(self, segment, text):
        star_response, star_stats = run(segment, text)
        raw_response, raw_stats = run(segment, text, allow_star_tree=False)
        assert star_stats.startree_used
        assert not raw_stats.startree_used

        def canon(rows):
            return sorted(
                tuple(round(c, 6) if isinstance(c, float) else c
                      for c in row)
                for row in rows
            )

        assert canon(star_response.rows) == canon(raw_response.rows)

    @pytest.mark.parametrize("text", QUERIES[:5])
    def test_star_tree_scans_fewer_records(self, segment, text):
        __, star_stats = run(segment, text)
        __, raw_stats = run(segment, text, allow_star_tree=False)
        if raw_stats.num_docs_scanned > 100:
            assert (star_stats.startree_docs_scanned
                    < raw_stats.num_docs_scanned)

    def test_absent_constraint_value_yields_empty(self, segment):
        response, stats = run(segment,
                              "SELECT sum(m) FROM t WHERE a = 'zzz'")
        assert stats.startree_used
        assert response.rows[0][0] == 0.0

"""Tests for the simulated Zookeeper store."""

import pytest

from repro.zk.store import ZkError, ZkStore


@pytest.fixture
def zk():
    return ZkStore()


class TestCrud:
    def test_create_and_get(self, zk):
        zk.create("/a", {"x": 1})
        assert zk.get("/a") == {"x": 1}
        assert zk.exists("/a")

    def test_create_duplicate_rejected(self, zk):
        zk.create("/a")
        with pytest.raises(ZkError, match="already exists"):
            zk.create("/a")

    def test_missing_parent_rejected(self, zk):
        with pytest.raises(ZkError, match="parent"):
            zk.create("/a/b/c")

    def test_make_parents(self, zk):
        zk.create("/a/b/c", 7, make_parents=True)
        assert zk.get("/a/b/c") == 7
        assert zk.children("/a") == ["b"]

    def test_relative_path_rejected(self, zk):
        with pytest.raises(ZkError, match="absolute"):
            zk.create("a")

    def test_get_missing_raises(self, zk):
        with pytest.raises(ZkError):
            zk.get("/nope")
        assert zk.get_or_default("/nope", 42) == 42

    def test_delete(self, zk):
        zk.create("/a", 1)
        zk.delete("/a")
        assert not zk.exists("/a")
        zk.delete("/a")  # idempotent

    def test_delete_with_children_requires_recursive(self, zk):
        zk.create("/a/b", make_parents=True)
        with pytest.raises(ZkError, match="children"):
            zk.delete("/a")
        zk.delete("/a", recursive=True)
        assert not zk.exists("/a")

    def test_children_sorted(self, zk):
        for name in ("c", "a", "b"):
            zk.create(f"/p/{name}", make_parents=True)
        assert zk.children("/p") == ["a", "b", "c"]
        assert zk.children("/missing") == []

    def test_upsert(self, zk):
        zk.upsert("/deep/path", 1)
        zk.upsert("/deep/path", 2)
        assert zk.get("/deep/path") == 2


class TestVersions:
    def test_version_increments(self, zk):
        zk.create("/a", 0)
        assert zk.version("/a") == 0
        zk.set("/a", 1)
        assert zk.version("/a") == 1

    def test_cas_write(self, zk):
        zk.create("/a", 0)
        zk.set("/a", 1, expected_version=0)
        with pytest.raises(ZkError, match="bad version"):
            zk.set("/a", 2, expected_version=0)
        assert zk.get("/a") == 1


class TestEphemeral:
    def test_ephemeral_vanishes_on_session_close(self, zk):
        session = zk.connect()
        zk.create("/live", "me", session=session, ephemeral=True)
        assert zk.exists("/live")
        session.close()
        assert not zk.exists("/live")

    def test_ephemeral_requires_session(self, zk):
        with pytest.raises(ZkError):
            zk.create("/live", ephemeral=True)

    def test_other_sessions_unaffected(self, zk):
        s1, s2 = zk.connect(), zk.connect()
        zk.create("/n1", session=s1, ephemeral=True)
        zk.create("/n2", session=s2, ephemeral=True)
        s1.close()
        assert not zk.exists("/n1")
        assert zk.exists("/n2")

    def test_close_idempotent(self, zk):
        session = zk.connect()
        session.close()
        session.close()


class TestSequential:
    def test_sequential_names(self, zk):
        zk.create("/q", make_parents=True)
        first = zk.create("/q/n-", sequential=True)
        second = zk.create("/q/n-", sequential=True)
        assert first == "/q/n-0000000000"
        assert second == "/q/n-0000000001"


class TestWatches:
    def test_data_watch_fires_on_set(self, zk):
        events = []
        zk.create("/w", 0)
        zk.watch_data("/w", lambda event, path: events.append((event, path)))
        zk.set("/w", 1)
        assert ("changed", "/w") in events

    def test_data_watch_fires_on_delete(self, zk):
        events = []
        zk.create("/w", 0)
        zk.watch_data("/w", lambda event, path: events.append(event))
        zk.delete("/w")
        assert "deleted" in events

    def test_child_watch_fires_on_create(self, zk):
        events = []
        zk.create("/p")
        zk.watch_children("/p", lambda event, path: events.append(path))
        zk.create("/p/c1")
        assert events == ["/p"]

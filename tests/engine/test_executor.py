"""Per-segment execution correctness against brute-force references."""

import math
import random

import numpy as np
import pytest

from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column
from repro.engine.executor import execute_segment
from repro.engine.merge import combine_segment_results, reduce_server_results
from repro.pql.parser import parse
from repro.pql.rewriter import optimize
from repro.segment.builder import SegmentBuilder, SegmentConfig


@pytest.fixture(scope="module")
def dataset():
    rng = random.Random(11)
    rows = []
    for __ in range(2000):
        rows.append({
            "s": rng.choice("abcde"),
            "n": rng.randint(0, 9),
            "tags": rng.sample(["x", "y", "z", "w"], k=rng.randint(0, 3)),
            "m": rng.randint(0, 100),
            "f": round(rng.random() * 10, 3),
            "day": 17000 + rng.randint(0, 9),
        })
    return rows


@pytest.fixture(scope="module")
def segment(dataset):
    schema = Schema("t", [
        dimension("s"), dimension("n", DataType.LONG),
        dimension("tags", DataType.STRING, multi_value=True),
        metric("m", DataType.LONG), metric("f", DataType.DOUBLE),
        time_column("day", DataType.INT),
    ])
    builder = SegmentBuilder(
        "seg", "t", schema,
        SegmentConfig(sorted_column="s", inverted_columns=("n",)),
    )
    builder.add_all(dataset)
    return builder.build()


def run(segment, pql):
    query = optimize(parse(pql))
    result = execute_segment(segment, query)
    server = combine_segment_results(query, [result])
    return reduce_server_results(query, [server])


def matched(dataset, predicate):
    return [r for r in dataset if predicate(r)]


class TestAggregations:
    def test_count_sum(self, segment, dataset):
        response = run(segment, "SELECT count(*), sum(m) FROM t "
                                "WHERE s = 'b'")
        rows = matched(dataset, lambda r: r["s"] == "b")
        assert response.rows[0] == (len(rows), sum(r["m"] for r in rows))

    def test_min_max_avg(self, segment, dataset):
        response = run(segment, "SELECT min(f), max(f), avg(f) FROM t "
                                "WHERE n < 3")
        rows = matched(dataset, lambda r: r["n"] < 3)
        values = [r["f"] for r in rows]
        got = response.rows[0]
        assert got[0] == pytest.approx(min(values))
        assert got[1] == pytest.approx(max(values))
        assert got[2] == pytest.approx(sum(values) / len(values))

    def test_distinctcount(self, segment, dataset):
        response = run(segment, "SELECT distinctcount(s) FROM t "
                                "WHERE m > 50")
        rows = matched(dataset, lambda r: r["m"] > 50)
        assert response.rows[0][0] == len({r["s"] for r in rows})

    def test_minmaxrange(self, segment, dataset):
        response = run(segment, "SELECT minmaxrange(m) FROM t")
        values = [r["m"] for r in dataset]
        assert response.rows[0][0] == max(values) - min(values)

    def test_percentiles(self, segment, dataset):
        response = run(
            segment,
            "SELECT percentile50(m), percentile99(m) FROM t WHERE s = 'a'"
        )
        values = [r["m"] for r in dataset if r["s"] == "a"]
        assert response.rows[0][0] == pytest.approx(
            np.percentile(values, 50))
        assert response.rows[0][1] == pytest.approx(
            np.percentile(values, 99))

    def test_aggregation_on_empty_match(self, segment):
        response = run(segment, "SELECT count(*), sum(m), min(m) FROM t "
                                "WHERE s = 'zzz'")
        count, total, minimum = response.rows[0]
        assert count == 0
        assert total == 0.0
        assert math.isinf(minimum)

    def test_filter_on_multi_value_column(self, segment, dataset):
        response = run(segment, "SELECT count(*) FROM t WHERE tags = 'x'")
        expected = len(matched(dataset, lambda r: "x" in r["tags"]))
        assert response.rows[0][0] == expected

    def test_multi_value_aggregation_rejected(self, segment):
        from repro.errors import ExecutionError
        from repro.pql.ast_nodes import AggFunc, Aggregation, Query

        query = Query("t", (Aggregation(AggFunc.SUM, "tags"),))
        with pytest.raises(ExecutionError, match="multi-value"):
            execute_segment(segment, query)


class TestGroupBy:
    def test_single_column(self, segment, dataset):
        response = run(segment, "SELECT sum(m) FROM t WHERE n >= 5 "
                                "GROUP BY s TOP 50")
        expected = {}
        for r in matched(dataset, lambda r: r["n"] >= 5):
            expected[r["s"]] = expected.get(r["s"], 0) + r["m"]
        assert {row[0]: row[1] for row in response.rows} == expected

    def test_multi_column(self, segment, dataset):
        response = run(segment, "SELECT count(*) FROM t GROUP BY s, n "
                                "TOP 1000")
        expected = {}
        for r in dataset:
            key = (r["s"], r["n"])
            expected[key] = expected.get(key, 0) + 1
        assert {(row[0], row[1]): row[2]
                for row in response.rows} == expected

    def test_top_n_orders_by_first_aggregation_desc(self, segment):
        response = run(segment, "SELECT sum(m) FROM t GROUP BY s TOP 2")
        assert len(response.rows) == 2
        assert response.rows[0][1] >= response.rows[1][1]

    def test_order_by_aggregation_asc(self, segment):
        response = run(segment, "SELECT sum(m) FROM t GROUP BY s "
                                "ORDER BY sum(m) TOP 5")
        sums = [row[1] for row in response.rows]
        assert sums == sorted(sums)

    def test_order_by_group_key(self, segment):
        response = run(segment, "SELECT count(*) FROM t GROUP BY s "
                                "ORDER BY s TOP 5")
        keys = [row[0] for row in response.rows]
        assert keys == sorted(keys)

    def test_group_by_multi_value_column(self, segment, dataset):
        response = run(segment, "SELECT count(*) FROM t GROUP BY tags "
                                "TOP 10")
        expected = {}
        for r in dataset:
            for tag in r["tags"]:
                expected[tag] = expected.get(tag, 0) + 1
        assert {row[0]: row[1] for row in response.rows} == expected

    def test_group_key_projected(self, segment):
        response = run(segment, "SELECT s, count(*) FROM t GROUP BY s "
                                "TOP 5")
        assert response.table.columns == ("s", "count(*)")


class TestSelection:
    def test_projection_with_limit(self, segment):
        response = run(segment, "SELECT s, m FROM t WHERE n = 4 LIMIT 7")
        assert len(response.rows) <= 7
        assert response.table.columns == ("s", "m")

    def test_select_star(self, segment):
        response = run(segment, "SELECT * FROM t LIMIT 3")
        assert len(response.rows) == 3
        assert len(response.table.columns) == 6

    def test_order_by_desc(self, segment, dataset):
        response = run(segment, "SELECT m FROM t WHERE s = 'c' "
                                "ORDER BY m DESC LIMIT 5")
        values = sorted((r["m"] for r in dataset if r["s"] == "c"),
                        reverse=True)
        assert [row[0] for row in response.rows] == values[:5]

    def test_offset_pagination(self, segment, dataset):
        page1 = run(segment, "SELECT m FROM t WHERE s = 'c' "
                             "ORDER BY m LIMIT 5")
        page2 = run(segment, "SELECT m FROM t WHERE s = 'c' "
                             "ORDER BY m LIMIT 5, 5")
        values = sorted(r["m"] for r in dataset if r["s"] == "c")
        assert [row[0] for row in page1.rows] == values[:5]
        assert [row[0] for row in page2.rows] == values[5:10]

    def test_rows_match_filter(self, segment, dataset):
        response = run(segment, "SELECT s, n FROM t WHERE n > 7 LIMIT 500")
        assert all(row[1] > 7 for row in response.rows)
        expected = len(matched(dataset, lambda r: r["n"] > 7))
        assert len(response.rows) == expected

    def test_multi_value_projection(self, segment):
        response = run(segment, "SELECT tags FROM t LIMIT 4")
        assert all(isinstance(row[0], tuple) for row in response.rows)


class TestStats:
    def test_docs_scanned(self, segment, dataset):
        query = optimize(parse("SELECT sum(m) FROM t WHERE s = 'a'"))
        result = execute_segment(segment, query)
        expected = len(matched(dataset, lambda r: r["s"] == "a"))
        assert result.stats.num_docs_scanned == expected

    def test_metadata_only_scans_nothing(self, segment):
        query = optimize(parse("SELECT count(*) FROM t"))
        result = execute_segment(segment, query)
        assert result.stats.metadata_only
        assert result.stats.num_docs_scanned == 0

"""Algebraic properties of the aggregation functions.

Distributed correctness rests on these: merging partial states must be
associative and commutative with the identity ``init_empty``, and
splitting any value array across segments must give the same final
result as aggregating it whole.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.aggregates import _FUNCTIONS, function_for
from repro.errors import ExecutionError
from repro.pql.ast_nodes import AggFunc

value_lists = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
              width=32),
    min_size=0, max_size=60,
)

ALL_FUNCS = sorted(_FUNCTIONS, key=lambda f: f.value)


def finalize_of(func, values):
    f = _FUNCTIONS[func]
    return f.finalize(f.aggregate(np.asarray(values)))


class TestSplitInvariance:
    @settings(max_examples=60, deadline=None)
    @given(value_lists, st.integers(0, 60))
    def test_split_equals_whole(self, values, split):
        split = min(split, len(values))
        for func in ALL_FUNCS:
            f = _FUNCTIONS[func]
            whole = f.aggregate(np.asarray(values))
            left = f.aggregate(np.asarray(values[:split]))
            right = f.aggregate(np.asarray(values[split:]))
            merged = f.merge(left, right)
            a, b = f.finalize(whole), f.finalize(merged)
            if isinstance(a, float) and isinstance(b, float):
                assert a == pytest.approx(b, rel=1e-6, abs=1e-6), func
            else:
                assert a == b, func

    @settings(max_examples=40, deadline=None)
    @given(value_lists)
    def test_identity_merge(self, values):
        for func in ALL_FUNCS:
            f = _FUNCTIONS[func]
            state = f.aggregate(np.asarray(values))
            merged = f.merge(f.init_empty(), state)
            assert f.finalize(merged) == f.finalize(state), func


class TestSpecificSemantics:
    def test_count_ignores_values(self):
        f = _FUNCTIONS[AggFunc.COUNT]
        assert not f.needs_values
        assert f.aggregate(np.empty(7)) == 7

    def test_avg_exact_across_skewed_split(self):
        f = _FUNCTIONS[AggFunc.AVG]
        left = f.aggregate(np.asarray([1.0]))
        right = f.aggregate(np.asarray([2.0, 3.0, 4.0]))
        assert f.finalize(f.merge(left, right)) == 2.5

    def test_avg_of_nothing_is_zero(self):
        f = _FUNCTIONS[AggFunc.AVG]
        assert f.finalize(f.init_empty()) == 0.0

    def test_minmaxrange(self):
        assert finalize_of(AggFunc.MINMAXRANGE, [3, 9, 5]) == 6.0
        assert finalize_of(AggFunc.MINMAXRANGE, []) == 0.0

    def test_min_empty_is_inf(self):
        f = _FUNCTIONS[AggFunc.MIN]
        assert math.isinf(f.finalize(f.init_empty()))

    def test_distinctcount_dedupes_across_merge(self):
        f = _FUNCTIONS[AggFunc.DISTINCTCOUNT]
        left = f.aggregate(np.asarray([1, 2, 2]))
        right = f.aggregate(np.asarray([2, 3]))
        assert f.finalize(f.merge(left, right)) == 3

    def test_percentile_matches_numpy(self):
        values = np.asarray([1.0, 2.0, 3.0, 10.0, 100.0])
        assert finalize_of(AggFunc.PERCENTILE50, values.tolist()) == \
            pytest.approx(np.percentile(values, 50))
        assert finalize_of(AggFunc.PERCENTILE99, values.tolist()) == \
            pytest.approx(np.percentile(values, 99))

    def test_percentile_empty_is_null(self):
        # A percentile of no rows is unknowable, not 0.0 (a real p90
        # can legitimately be 0.0) — empty states finalize to None.
        assert finalize_of(AggFunc.PERCENTILE90, []) is None

    def test_percentile_est_empty_is_null(self):
        f = _FUNCTIONS[AggFunc.PERCENTILEEST90]
        assert f.finalize(f.init_empty()) is None

    def test_function_for_unknown_raises(self):
        from types import SimpleNamespace

        fake = SimpleNamespace(func="NOT_A_FUNCTION")
        with pytest.raises(ExecutionError):
            function_for(fake)


class TestGroupedAggregation:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.tuples(st.integers(0, 4),
                           st.floats(-100, 100, allow_nan=False)),
                 min_size=1, max_size=80),
    )
    def test_grouped_matches_per_group(self, pairs):
        codes = np.asarray([p[0] for p in pairs])
        values = np.asarray([p[1] for p in pairs])
        num_groups = int(codes.max()) + 1
        for func in ALL_FUNCS:
            f = _FUNCTIONS[func]
            grouped = f.aggregate_grouped(values, codes, num_groups)
            for group in range(num_groups):
                member_values = values[codes == group]
                if len(member_values) == 0:
                    continue
                expected = f.finalize(f.aggregate(member_values))
                got = f.finalize(grouped[group])
                if isinstance(expected, float):
                    assert got == pytest.approx(expected, rel=1e-6,
                                                abs=1e-6), func
                else:
                    assert got == expected, func

"""Tests for DocSelection algebra and physical filter operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric
from repro.engine.operators import DocSelection
from repro.engine.planner import plan_segment
from repro.pql.parser import parse
from repro.pql.rewriter import optimize
from repro.segment.builder import SegmentBuilder, SegmentConfig

doc_sets = st.sets(st.integers(0, 200), max_size=80)


class TestDocSelection:
    def test_full_and_empty(self):
        assert DocSelection.full(5).count == 5
        assert DocSelection.empty().is_empty

    def test_from_docs_detects_contiguity(self):
        selection = DocSelection.from_docs(np.array([3, 4, 5]))
        assert selection.is_contiguous
        assert (selection.start, selection.end) == (3, 6)

    def test_from_docs_sparse(self):
        selection = DocSelection.from_docs(np.array([1, 5]))
        assert not selection.is_contiguous
        assert selection.count == 2

    def test_intersect_ranges(self):
        a = DocSelection.from_range(0, 10)
        b = DocSelection.from_range(5, 20)
        out = a.intersect(b)
        assert (out.start, out.end) == (5, 10)

    def test_intersect_range_with_docs(self):
        a = DocSelection.from_range(2, 6)
        b = DocSelection.from_docs(np.array([1, 3, 5, 7]))
        assert a.intersect(b).doc_array().tolist() == [3, 5]

    def test_union_adjacent_ranges_stays_contiguous(self):
        a = DocSelection.from_range(0, 5)
        b = DocSelection.from_range(5, 8)
        out = a.union(b)
        assert out.is_contiguous
        assert out.count == 8

    @settings(max_examples=80, deadline=None)
    @given(doc_sets, doc_sets)
    def test_algebra_matches_sets(self, a, b):
        sel_a = DocSelection.from_docs(
            np.array(sorted(a), dtype=np.int64)
        ) if a else DocSelection.empty()
        sel_b = DocSelection.from_docs(
            np.array(sorted(b), dtype=np.int64)
        ) if b else DocSelection.empty()
        assert set(sel_a.intersect(sel_b).doc_array().tolist()) == a & b
        assert set(sel_a.union(sel_b).doc_array().tolist()) == a | b

    # -- boolean-mask representation -------------------------------------

    def test_from_mask_detects_contiguity(self):
        mask = np.zeros(10, dtype=bool)
        mask[3:7] = True
        selection = DocSelection.from_mask(mask)
        assert selection.is_contiguous
        assert (selection.start, selection.end) == (3, 7)

    def test_from_mask_empty_and_full(self):
        assert DocSelection.from_mask(np.zeros(8, dtype=bool)).is_empty
        full = DocSelection.from_mask(np.ones(8, dtype=bool))
        assert full.is_contiguous and full.count == 8

    def test_mask_roundtrip(self):
        mask = np.zeros(12, dtype=bool)
        mask[[0, 4, 5, 11]] = True
        selection = DocSelection.from_mask(mask)
        assert selection.count == 4
        assert selection.doc_array().tolist() == [0, 4, 5, 11]
        assert np.array_equal(selection.mask(12), mask)

    @staticmethod
    def _as_selection(docs, universe, representation):
        if not docs:
            return DocSelection.empty()
        if representation == "mask":
            mask = np.zeros(universe, dtype=bool)
            mask[np.array(sorted(docs))] = True
            return DocSelection.from_mask(mask)
        return DocSelection.from_docs(np.array(sorted(docs),
                                               dtype=np.int64))

    @settings(max_examples=80, deadline=None)
    @given(doc_sets, doc_sets,
           st.sampled_from(["docs", "mask"]),
           st.sampled_from(["docs", "mask"]))
    def test_algebra_across_representations(self, a, b, repr_a, repr_b):
        sel_a = self._as_selection(a, 201, repr_a)
        sel_b = self._as_selection(b, 201, repr_b)
        assert set(sel_a.intersect(sel_b).doc_array().tolist()) == a & b
        assert set(sel_a.union(sel_b).doc_array().tolist()) == a | b
        assert sel_a.intersect(sel_b).count == len(a & b)
        assert sel_a.union(sel_b).count == len(a | b)


def _build_segment(sorted_column=None, inverted=()):
    schema = Schema("t", [dimension("s"), dimension("n", DataType.LONG),
                          metric("m", DataType.LONG)])
    builder = SegmentBuilder(
        "seg", "t", schema,
        SegmentConfig(sorted_column=sorted_column,
                      inverted_columns=tuple(inverted)),
    )
    import random

    rng = random.Random(3)
    rows = []
    for __ in range(500):
        row = {"s": rng.choice("abcdef"), "n": rng.randint(0, 9),
               "m": rng.randint(0, 100)}
        rows.append(row)
        builder.add(row)
    segment = builder.build()
    # Recover physical order for brute-force comparison.
    physical = [segment.record(i) for i in range(segment.num_docs)]
    return segment, physical


def _execute_filter(segment, pql):
    query = optimize(parse(pql))
    plan = plan_segment(segment, query)
    return set(plan.filter_plan.execute().doc_array().tolist())


def _brute(physical, predicate):
    return {i for i, r in enumerate(physical) if predicate(r)}


FILTER_CASES = [
    ("SELECT count(*) FROM t WHERE s = 'c'", lambda r: r["s"] == "c"),
    ("SELECT count(*) FROM t WHERE n > 5 AND s != 'a'",
     lambda r: r["n"] > 5 and r["s"] != "a"),
    ("SELECT count(*) FROM t WHERE s IN ('a', 'b') OR n = 9",
     lambda r: r["s"] in ("a", "b") or r["n"] == 9),
    ("SELECT count(*) FROM t WHERE n BETWEEN 3 AND 6 AND s = 'd'",
     lambda r: 3 <= r["n"] <= 6 and r["s"] == "d"),
    ("SELECT count(*) FROM t WHERE NOT (s = 'a' OR n < 2)",
     lambda r: not (r["s"] == "a" or r["n"] < 2)),
]


@pytest.mark.parametrize("config_name,sorted_column,inverted", [
    ("scan-only", None, ()),
    ("sorted", "s", ()),
    ("inverted", None, ("s", "n")),
    ("sorted+inverted", "s", ("n",)),
])
class TestFilterExecutionEquivalence:
    @pytest.mark.parametrize("pql,predicate", FILTER_CASES)
    def test_matches_brute_force(self, config_name, sorted_column,
                                 inverted, pql, predicate):
        segment, physical = _build_segment(sorted_column, inverted)
        assert _execute_filter(segment, pql) == _brute(physical, predicate)


class TestOperatorSelection:
    def test_sorted_column_yields_contiguous_selection(self):
        segment, physical = _build_segment(sorted_column="s")
        query = optimize(parse("SELECT count(*) FROM t WHERE s = 'c'"))
        plan = plan_segment(segment, query)
        selection = plan.filter_plan.execute()
        assert selection.is_contiguous

    def test_match_all_shortcut(self):
        segment, __ = _build_segment()
        query = optimize(parse("SELECT count(*) FROM t WHERE n >= 0"))
        plan = plan_segment(segment, query)
        assert "MatchAll" in plan.filter_plan.describe()
        assert plan.filter_plan.execute().count == segment.num_docs

    def test_match_none_shortcut(self):
        segment, __ = _build_segment()
        query = optimize(parse("SELECT count(*) FROM t WHERE s = 'zz'"))
        plan = plan_segment(segment, query)
        assert "MatchNone" in plan.filter_plan.describe()
        assert plan.filter_plan.execute().is_empty

    def test_stats_collected(self):
        segment, __ = _build_segment(inverted=("s",))
        query = optimize(parse(
            "SELECT count(*) FROM t WHERE s = 'a' AND n < 5"
        ))
        plan = plan_segment(segment, query)
        plan.filter_plan.execute()
        assert plan.filter_plan.stats.entries_scanned > 0

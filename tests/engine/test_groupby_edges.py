"""Edge cases of vectorized group-by execution."""

import pytest

from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric
from repro.engine.executor import execute_segment
from repro.engine.groupby import execute_group_by
from repro.engine.merge import combine_segment_results, reduce_server_results
from repro.engine.operators import DocSelection
from repro.errors import ExecutionError
from repro.pql.ast_nodes import AggFunc, Aggregation, Query
from repro.pql.parser import parse
from repro.pql.rewriter import optimize
from repro.segment.builder import SegmentBuilder


@pytest.fixture(scope="module")
def segment():
    schema = Schema("t", [
        dimension("d"),
        dimension("tags", DataType.STRING, multi_value=True),
        dimension("labels", DataType.STRING, multi_value=True),
        metric("m", DataType.LONG),
    ])
    builder = SegmentBuilder("seg", "t", schema)
    builder.add_all([
        {"d": "a", "tags": ["x", "y"], "labels": ["p"], "m": 1},
        {"d": "a", "tags": [], "labels": ["q"], "m": 2},
        {"d": "b", "tags": ["y"], "labels": [], "m": 3},
        {"d": "b", "tags": ["x", "x"], "labels": ["p", "q"], "m": 4},
    ])
    return builder.build()


def run(segment, pql):
    query = optimize(parse(pql))
    result = execute_segment(segment, query)
    return reduce_server_results(
        query, [combine_segment_results(query, [result])]
    )


class TestMultiValueGroupBy:
    def test_empty_cells_contribute_nothing(self, segment):
        response = run(segment,
                       "SELECT sum(m) FROM t GROUP BY tags TOP 10")
        got = {row[0]: row[1] for row in response.rows}
        # Row 2 (tags=[]) contributes to no group; row 4's duplicate
        # 'x' values contribute twice (per-value semantics).
        assert got == {"x": 1.0 + 4.0 + 4.0, "y": 1.0 + 3.0}

    def test_mixed_single_and_multi_group(self, segment):
        response = run(segment,
                       "SELECT count(*) FROM t GROUP BY d, tags TOP 10")
        got = {(row[0], row[1]): row[2] for row in response.rows}
        assert got == {("a", "x"): 1, ("a", "y"): 1, ("b", "y"): 1,
                       ("b", "x"): 2}

    def test_two_multi_value_group_columns_rejected(self, segment):
        query = Query("t", (Aggregation(AggFunc.COUNT, "*"),),
                      group_by=("tags", "labels"))
        selection = DocSelection.full(segment.num_docs)
        with pytest.raises(ExecutionError, match="multi-value"):
            execute_group_by(segment, query, selection)

    def test_all_rows_filtered_out(self, segment):
        response = run(segment,
                       "SELECT sum(m) FROM t WHERE d = 'zz' "
                       "GROUP BY tags TOP 10")
        assert response.rows == []

    def test_group_by_after_multi_value_filter(self, segment):
        response = run(segment,
                       "SELECT count(*) FROM t WHERE tags = 'x' "
                       "GROUP BY d TOP 10")
        got = {row[0]: row[1] for row in response.rows}
        assert got == {"a": 1, "b": 1}

"""Property-based upsert masking: valid-docId bitmaps ∧ DocSelection.

Hypothesis generates random upsert histories (sequences of keyed rows
where later occurrences of a key supersede earlier ones), builds an
immutable segment from the full history, and derives the latest-version
mask three ways:

1. a hand-computed reference (last occurrence per key wins);
2. :class:`~repro.upsert.index.TableUpsertManager` applied segment-wise;
3. the same manager fed row-by-row in a *shuffled* order — the winner
   order is a join semilattice, so application order must not matter.

The mask is then pushed through query execution in every DocSelection
physical form (bit mask and sorted id array, plus a directed contiguous
range case) on both engines, and all answers must be *exactly* equal —
to each other and to executing a compacted segment holding only the
winning rows with no mask at all. Metric values are integers, so
float64 sums are exact and no tolerance is needed.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column
from repro.engine.executor import execute_segment
from repro.engine.merge import combine_segment_results, reduce_server_results
from repro.engine.operators import DocSelection
from repro.pql.parser import parse
from repro.pql.rewriter import optimize
from repro.segment.builder import SegmentBuilder, SegmentConfig
from repro.upsert import TableUpsertManager, UpsertConfig

NUM_KEYS = 8
COUNTRIES = list("uvwx")

QUERIES = [
    "SELECT count(*) FROM t",
    "SELECT sum(m), count(*) FROM t",
    "SELECT min(m), max(m) FROM t WHERE k <= 5",
    "SELECT distinctcount(k) FROM t WHERE m > 10",
    "SELECT sum(m) FROM t WHERE c = 'u' OR c = 'w'",
    "SELECT sum(m), count(*) FROM t GROUP BY c TOP 10",
    "SELECT avg(m) FROM t WHERE NOT c = 'v' GROUP BY k TOP 20",
]

histories = st.lists(
    st.tuples(st.integers(0, NUM_KEYS - 1),   # primary key
              st.integers(0, 3),              # country index
              st.integers(0, 50)),            # metric
    min_size=1, max_size=80,
)


def make_records(history):
    return [{"k": key, "c": COUNTRIES[country], "m": m, "day": 100 + (m % 5)}
            for key, country, m in history]


def build_segment(name, records):
    schema = Schema("t", [
        dimension("k", DataType.LONG), dimension("c"),
        metric("m", DataType.LONG), time_column("day", DataType.INT),
    ])
    builder = SegmentBuilder(name, "t", schema, SegmentConfig())
    builder.add_all(records)
    return builder.build()


def reference_mask(history):
    """Latest occurrence per key wins (priority = (sequence, docId))."""
    last = {}
    for doc, (key, __, __m) in enumerate(history):
        last[key] = doc
    mask = np.zeros(len(history), dtype=bool)
    mask[sorted(last.values())] = True
    return mask


def run(segment, query, vectorized, valid_docs):
    result = execute_segment(segment, query, vectorized=vectorized,
                             valid_docs=valid_docs)
    server = combine_segment_results(query, [result])
    return reduce_server_results(query, [server])


def rows_of(query, response):
    if query.group_by:
        width = len(query.group_by)
        return {tuple(r[:width]): tuple(r[width:]) for r in response.rows}
    return response.rows


@settings(max_examples=40, deadline=None)
@given(histories, st.randoms(use_true_random=False))
def test_upsert_mask_engine_parity(history, rng):
    records = make_records(history)
    segment = build_segment("t__0__0", records)
    expected_mask = reference_mask(history)

    config = UpsertConfig(mode="upsert", key_columns=("k",))
    manager = TableUpsertManager("t", config)
    manager.apply_segment(segment)

    # Order independence: feeding the same rows one by one in a random
    # order converges to the identical bitmap.
    shuffled = TableUpsertManager("t", config)
    order = list(enumerate(records))
    rng.shuffle(order)
    for doc_id, record in order:
        shuffled.apply("t__0__0", doc_id, record)

    for m in (manager, shuffled):
        selection = m.selection_for("t__0__0", segment.num_docs)
        got = (selection.mask(segment.num_docs) if selection is not None
               else np.ones(segment.num_docs, dtype=bool))
        assert np.array_equal(got, expected_mask)

    # A compacted segment holding only the winners, executed unmasked,
    # is the ground truth the masked full segment must reproduce.
    winners = [record for record, keep in zip(records, expected_mask)
               if keep]
    compacted = build_segment("t__0__1", winners)

    forms = [DocSelection.from_mask(expected_mask),
             DocSelection.from_docs(np.flatnonzero(expected_mask))]
    for text in QUERIES:
        query = optimize(parse(text))
        truth = rows_of(query, run(compacted, query, True, None))
        for form in forms:
            for vectorized in (True, False):
                got = rows_of(query,
                              run(segment, query, vectorized, form))
                assert got == truth, (text, form, vectorized)


@pytest.mark.parametrize("start,end", [(0, 4), (2, 9), (5, 5)])
def test_contiguous_range_form(start, end):
    # Directed case for the third DocSelection shape: a dense run of
    # valid docs (e.g. every row before `start` was superseded).
    history = [(i % NUM_KEYS, i % 4, i * 3) for i in range(9)]
    records = make_records(history)
    segment = build_segment("t__0__0", records)
    valid = DocSelection.from_range(start, end)
    survivors = records[start:end]
    for text in QUERIES:
        query = optimize(parse(text))
        fast = rows_of(query, run(segment, query, True, valid))
        slow = rows_of(query, run(segment, query, False, valid))
        assert fast == slow, (text, start, end)
        if survivors:
            truth = rows_of(query, run(
                build_segment("t__0__1", survivors), query, True, None))
            assert fast == truth, (text, start, end)

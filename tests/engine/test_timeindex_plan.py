"""Planner + executor tests for the timestamp-index rollup path.

Gating: only aggregation queries whose group-by is the time column (raw
or ``timebucket``), whose functions the rollup covers, and whose
predicate is a bucket-aligned time range may take a TIME_INDEX plan.
Parity: any query that qualifies must produce byte-identical final rows
to the scan path — rollups are an access-path optimization, never an
approximation.
"""

import random

import pytest

from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column
from repro.engine.executor import execute_plan, execute_segment
from repro.engine.merge import combine_segment_results, reduce_server_results
from repro.engine.operators import DocSelection
from repro.engine.planner import PlanKind, plan_segment
from repro.pql.parser import parse
from repro.pql.rewriter import optimize
from repro.segment.builder import SegmentBuilder, SegmentConfig


@pytest.fixture(scope="module")
def segment():
    schema = Schema(
        "events",
        [
            dimension("country"),
            metric("views", DataType.LONG),
            metric("score", DataType.DOUBLE),
            time_column("day", DataType.INT),
        ],
    )
    builder = SegmentBuilder(
        "seg-ti", "events", schema,
        SegmentConfig(timestamp_index=(1, 5)),
    )
    rng = random.Random(7)
    for __ in range(2000):
        builder.add({
            "country": rng.choice(["us", "ca", "mx"]),
            "views": rng.randint(0, 50),
            "score": round(rng.random() * 10, 3),
            "day": 17000 + rng.randrange(30),  # days 17000..17029
        })
    return builder.build()


def plan(segment, pql, **kwargs):
    return plan_segment(segment, optimize(parse(pql)), **kwargs)


def run(segment, pql, allow_time_index=True):
    query = optimize(parse(pql))
    built = plan_segment(segment, query,
                         allow_time_index=allow_time_index)
    result = execute_plan(built)
    response = reduce_server_results(
        query, [combine_segment_results(query, [result])]
    )
    return built, response


class TestPlanGating:
    def test_time_group_by_uses_rollup(self, segment):
        p = plan(segment, "SELECT count(*) FROM events GROUP BY day")
        assert p.kind is PlanKind.TIME_INDEX
        assert p.time_rollup.granularity == 1

    def test_timebucket_picks_coarsest_divisor(self, segment):
        p = plan(segment,
                 "SELECT sum(views) FROM events "
                 "GROUP BY timebucket(day, 10)")
        assert p.kind is PlanKind.TIME_INDEX
        assert p.time_rollup.granularity == 5

        p = plan(segment,
                 "SELECT sum(views) FROM events "
                 "GROUP BY timebucket(day, 3)")
        assert p.kind is PlanKind.TIME_INDEX
        assert p.time_rollup.granularity == 1

    def test_uncovered_function_scans(self, segment):
        p = plan(segment,
                 "SELECT distinctcount(views) FROM events GROUP BY day")
        assert p.kind is PlanKind.SCAN

    def test_uncovered_column_scans(self, segment):
        # country is a string dimension: no rollup arrays for it.
        p = plan(segment, "SELECT min(country) FROM events GROUP BY day")
        assert p.kind is PlanKind.SCAN

    def test_non_time_group_by_scans(self, segment):
        p = plan(segment, "SELECT count(*) FROM events GROUP BY country")
        assert p.kind is PlanKind.SCAN

    def test_multi_group_by_scans(self, segment):
        p = plan(segment,
                 "SELECT count(*) FROM events GROUP BY day, country")
        assert p.kind is PlanKind.SCAN

    def test_selection_query_scans(self, segment):
        p = plan(segment, "SELECT day, views FROM events LIMIT 5")
        assert p.kind is PlanKind.SCAN

    def test_non_time_predicate_scans(self, segment):
        p = plan(segment,
                 "SELECT count(*) FROM events "
                 "WHERE country = 'us' GROUP BY day")
        assert p.kind is PlanKind.SCAN

    def test_or_predicate_scans(self, segment):
        p = plan(segment,
                 "SELECT count(*) FROM events "
                 "WHERE day = 17001 OR day = 17003 GROUP BY day")
        assert p.kind is PlanKind.SCAN

    def test_aligned_time_range_uses_rollup(self, segment):
        p = plan(segment,
                 "SELECT sum(views) FROM events "
                 "WHERE day >= 17005 AND day < 17020 "
                 "GROUP BY timebucket(day, 5)")
        assert p.kind is PlanKind.TIME_INDEX
        assert p.time_rollup.granularity == 5
        assert (p.time_low, p.time_high) == (17005, 17019)

    def test_unaligned_bounds_fall_back_to_finer_rollup(self, segment):
        p = plan(segment,
                 "SELECT sum(views) FROM events "
                 "WHERE day BETWEEN 17003 AND 17010 "
                 "GROUP BY timebucket(day, 5)")
        assert p.kind is PlanKind.TIME_INDEX
        assert p.time_rollup.granularity == 1

    def test_bounds_normalize_against_segment_range(self, segment):
        # 16987 is below the segment's min time, so the bound does not
        # cut into this segment and normalizes away entirely.
        p = plan(segment,
                 "SELECT sum(views) FROM events "
                 "WHERE day >= 16987 GROUP BY timebucket(day, 5)")
        assert p.kind is PlanKind.TIME_INDEX
        assert p.time_low is None
        assert p.time_rollup.granularity == 5

    def test_allow_time_index_false_scans(self, segment):
        p = plan(segment, "SELECT count(*) FROM events GROUP BY day",
                 allow_time_index=False)
        assert p.kind is PlanKind.SCAN


PARITY_QUERIES = [
    "SELECT count(*), sum(views), min(score), max(score), avg(views), "
    "minmaxrange(views) FROM events GROUP BY day TOP 100",
    "SELECT count(*), sum(views), avg(score) FROM events "
    "GROUP BY timebucket(day, 5) TOP 100",
    "SELECT sum(views), count(*) FROM events "
    "WHERE day >= 17005 AND day < 17020 GROUP BY timebucket(day, 5) "
    "TOP 100",
    "SELECT count(*), min(views) FROM events "
    "WHERE day BETWEEN 17003 AND 17010 GROUP BY day TOP 100",
    "SELECT sum(views), max(score) FROM events "
    "WHERE day >= 17005 AND day <= 17024",
]


class TestScanParity:
    @pytest.mark.parametrize("pql", PARITY_QUERIES)
    def test_rollup_rows_match_scan(self, segment, pql):
        rollup_plan, rollup_response = run(segment, pql)
        scan_plan, scan_response = run(segment, pql,
                                       allow_time_index=False)
        assert rollup_plan.kind is PlanKind.TIME_INDEX, pql
        assert scan_plan.kind is PlanKind.SCAN, pql
        assert rollup_response.rows == scan_response.rows, pql

    @pytest.mark.parametrize("pql", PARITY_QUERIES)
    def test_rollup_rows_match_scalar_engine(self, segment, pql):
        query = optimize(parse(pql))
        __, rollup_response = run(segment, pql)
        scalar = execute_segment(segment, query, vectorized=False)
        scalar_response = reduce_server_results(
            query, [combine_segment_results(query, [scalar])]
        )
        assert rollup_response.rows == scalar_response.rows, pql

    def test_stats_mark_rollup_usage(self, segment):
        query = optimize(parse(PARITY_QUERIES[0]))
        result = execute_segment(segment, query)
        assert result.stats.time_index_used
        assert result.stats.time_index_buckets_scanned == 30
        assert result.stats.num_docs_scanned < segment.num_docs

    def test_valid_docs_mask_disables_rollup(self, segment):
        query = optimize(parse(PARITY_QUERIES[0]))
        mask = DocSelection(start=0, end=segment.num_docs - 1)
        result = execute_segment(segment, query, valid_docs=mask)
        assert not result.stats.time_index_used

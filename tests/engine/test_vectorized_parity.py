"""Property-based parity: vectorized batch kernels vs the scalar oracle.

Hypothesis generates random dictionary-encoded datasets and random
queries (AND/OR/NOT trees over =, !=, range, IN, BETWEEN, LIKE leaves;
plain and grouped aggregates; multi-value group-bys), then executes
each query twice per segment configuration — once through the numpy
batch engine and once through the row-at-a-time scalar oracle
(``vectorized=False``) — and requires *exact* equality of the merged
results.

Metric values are integers, so float64 aggregate sums are exact
regardless of summation order and the comparison needs no tolerance:
any mismatch at all is a kernel bug. Edge cases (empty selection,
all-docs selection, empty IN-like matches) fall out of the generators
and are also pinned explicitly at the bottom.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column
from repro.engine.executor import execute_segment
from repro.engine.merge import combine_segment_results, reduce_server_results
from repro.pql.parser import parse
from repro.pql.rewriter import optimize
from repro.segment.builder import SegmentBuilder, SegmentConfig

D1 = list("abcdef")
D2 = list("xyz")
TAGS = list("pqrst")
N_VALUES = list(range(8))
DAYS = list(range(100, 106))


def make_schema():
    return Schema("t", [
        dimension("d1"), dimension("d2"),
        dimension("n", DataType.LONG),
        dimension("tags", multi_value=True),
        metric("m", DataType.LONG),
        time_column("day", DataType.INT),
    ])


def make_records(seed, size=300):
    rng = random.Random(seed)
    return [
        {"d1": rng.choice(D1), "d2": rng.choice(D2),
         "n": rng.choice(N_VALUES),
         "tags": rng.sample(TAGS, rng.randint(1, 3)),
         "m": rng.randint(0, 50), "day": rng.choice(DAYS)}
        for __ in range(size)
    ]


CONFIGS = {
    "plain": SegmentConfig(),
    "sorted": SegmentConfig(sorted_column="d1"),
    "inverted": SegmentConfig(
        inverted_columns=("d1", "d2", "n", "day", "tags")),
}


@pytest.fixture(scope="module")
def built_segments():
    records = make_records(99)
    schema = make_schema()
    built = {}
    for name, config in CONFIGS.items():
        builder = SegmentBuilder(f"seg_{name}", "t", schema, config)
        builder.add_all(records)
        built[name] = builder.build()
    return built


# -- random query generation --------------------------------------------------

leaf_predicates = st.one_of(
    st.sampled_from(D1).map(lambda v: f"d1 = '{v}'"),
    st.sampled_from(D2).map(lambda v: f"d2 != '{v}'"),
    st.sampled_from(TAGS).map(lambda v: f"tags = '{v}'"),
    st.sampled_from(TAGS).map(lambda v: f"tags != '{v}'"),
    st.tuples(st.sampled_from(N_VALUES),
              st.sampled_from(["<", "<=", ">", ">="])).map(
        lambda t: f"n {t[1]} {t[0]}"),
    st.lists(st.sampled_from(N_VALUES), min_size=1, max_size=3).map(
        lambda vs: f"n IN ({', '.join(map(str, vs))})"),
    st.lists(st.sampled_from(D1), min_size=1, max_size=2).map(
        lambda vs: "d1 NOT IN ({})".format(
            ", ".join(f"'{v}'" for v in vs))),
    st.tuples(st.sampled_from(DAYS), st.integers(0, 3)).map(
        lambda t: f"day BETWEEN {t[0]} AND {t[0] + t[1]}"),
    st.sampled_from(["a%", "%c", "_", "%", "x_z", "zz%"]).map(
        lambda p: f"d1 LIKE '{p}'"),
    # Contradictions / tautologies force empty and all-docs selections.
    st.just("n < 0"),
    st.just("n >= 0"),
)


def join_with(op):
    return lambda parts: f" {op} ".join(f"({p})" for p in parts)


predicate_strings = st.recursive(
    leaf_predicates,
    lambda inner: st.one_of(
        st.lists(inner, min_size=2, max_size=3).map(join_with("AND")),
        st.lists(inner, min_size=2, max_size=3).map(join_with("OR")),
        inner.map(lambda p: f"NOT ({p})"),
    ),
    max_leaves=5,
)

select_lists = st.sampled_from([
    "count(*)",
    "sum(m)",
    "count(*), sum(m), min(m), max(m)",
    "avg(m), distinctcount(d1)",
    "minmaxrange(m), percentile95(m)",
    "distinctcounthll(d1), sum(n)",
])

group_bys = st.sampled_from(["", "d1", "d2", "d1, n", "day", "tags",
                             "tags, d2"])


@st.composite
def query_texts(draw):
    select = draw(select_lists)
    where = draw(st.one_of(st.none(), predicate_strings))
    group = draw(group_bys)
    text = f"SELECT {select} FROM t"
    if where:
        text += f" WHERE {where}"
    if group:
        text += f" GROUP BY {group} TOP 1000"
    return text


def run_engine(segment, query, vectorized):
    result = execute_segment(segment, query, vectorized=vectorized)
    server = combine_segment_results(query, [result])
    return reduce_server_results(query, [server])


def assert_same_rows(query, fast, slow, context):
    if query.group_by:
        width = len(query.group_by)
        got = {tuple(r[:width]): tuple(r[width:]) for r in fast.rows}
        want = {tuple(r[:width]): tuple(r[width:]) for r in slow.rows}
    else:
        got, want = fast.rows, slow.rows
    assert got == want, context


@settings(max_examples=60, deadline=None)
@given(query_texts())
def test_vectorized_scalar_parity(built_segments, text):
    query = optimize(parse(text))
    for name, segment in built_segments.items():
        fast = run_engine(segment, query, vectorized=True)
        slow = run_engine(segment, query, vectorized=False)
        # Only results must agree; execution stats legitimately differ
        # (the planner answers metadata-only queries without scanning,
        # the oracle always walks every doc).
        assert_same_rows(query, fast, slow, (name, text))


# -- pinned edges (cheap, deterministic, run even with --hypothesis-seed) ---

EDGE_QUERIES = [
    # Empty selection: no doc matches, plain and grouped.
    "SELECT count(*), sum(m), min(m), max(m) FROM t WHERE n < 0",
    "SELECT sum(m) FROM t WHERE n < 0 GROUP BY d1 TOP 10",
    # All docs selected (tautology and no WHERE at all).
    "SELECT count(*), avg(m) FROM t WHERE n >= 0",
    "SELECT distinctcount(d1), percentile50(m) FROM t",
    # Multi-value semantics: = matches any entry; != needs NNF pushdown.
    "SELECT count(*) FROM t WHERE tags = 'p'",
    "SELECT count(*) FROM t WHERE NOT tags = 'p'",
    "SELECT count(*) FROM t WHERE tags != 'p'",
    # MV group-by duplicates one doc into several groups.
    "SELECT sum(m), count(*) FROM t GROUP BY tags TOP 100",
    # Selection queries, with and without ORDER BY.
    "SELECT d1, m FROM t WHERE d2 = 'x' LIMIT 7",
    "SELECT d1, n, m FROM t WHERE n > 3 ORDER BY m DESC, d1 LIMIT 9",
]


@pytest.mark.parametrize("text", EDGE_QUERIES)
def test_edge_parity(built_segments, text):
    query = optimize(parse(text))
    for name, segment in built_segments.items():
        fast = run_engine(segment, query, vectorized=True)
        slow = run_engine(segment, query, vectorized=False)
        if query.is_aggregation:
            assert_same_rows(query, fast, slow, (name, text))
        else:
            assert fast.rows == slow.rows, (name, text)

"""Tests for per-segment planning: plan kinds, pruning, cost ordering."""

import pytest

from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column
from repro.engine.planner import PlanKind, plan_segment
from repro.errors import PlanningError
from repro.pql.parser import parse
from repro.pql.rewriter import optimize
from repro.segment.builder import SegmentBuilder, SegmentConfig
from repro.startree.builder import StarTreeConfig


@pytest.fixture(scope="module")
def segment():
    schema = Schema("t", [
        dimension("s"), dimension("n", DataType.LONG),
        metric("m", DataType.LONG), time_column("day", DataType.INT),
    ])
    builder = SegmentBuilder(
        "seg", "t", schema,
        SegmentConfig(sorted_column="s", inverted_columns=("n",),
                      star_tree=StarTreeConfig(
                          dimensions=("s", "n", "day"),
                          max_leaf_records=8)),
    )
    import random

    rng = random.Random(1)
    for __ in range(300):
        builder.add({"s": rng.choice("abc"), "n": rng.randint(0, 5),
                     "m": rng.randint(0, 10),
                     "day": 17000 + rng.randint(0, 6)})
    return builder.build()


def plan(segment, pql, **kwargs):
    return plan_segment(segment, optimize(parse(pql)), **kwargs)


class TestPlanKinds:
    def test_metadata_only_count(self, segment):
        assert plan(segment, "SELECT count(*) FROM t").kind is \
            PlanKind.METADATA

    def test_metadata_only_min_max(self, segment):
        p = plan(segment, "SELECT min(m), max(m), minmaxrange(m) FROM t")
        assert p.kind is PlanKind.METADATA

    def test_metadata_not_used_with_filter(self, segment):
        p = plan(segment, "SELECT count(*) FROM t WHERE s = 'a'")
        assert p.kind is not PlanKind.METADATA

    def test_metadata_not_used_for_sum(self, segment):
        assert plan(segment, "SELECT sum(m) FROM t").kind is not \
            PlanKind.METADATA

    def test_star_tree_plan(self, segment):
        p = plan(segment, "SELECT sum(m) FROM t WHERE s = 'a' GROUP BY n")
        assert p.kind is PlanKind.STAR_TREE

    def test_star_tree_disabled_flag(self, segment):
        p = plan(segment, "SELECT sum(m) FROM t WHERE s = 'a'",
                 allow_star_tree=False)
        assert p.kind is PlanKind.SCAN

    def test_star_tree_rejected_for_distinctcount(self, segment):
        p = plan(segment, "SELECT distinctcount(n) FROM t WHERE s = 'a'")
        assert p.kind is PlanKind.SCAN

    def test_star_tree_rejected_for_selection(self, segment):
        p = plan(segment, "SELECT s, n FROM t WHERE s = 'a'")
        assert p.kind is PlanKind.SCAN

    def test_unknown_column_rejected(self, segment):
        with pytest.raises(PlanningError, match="missing columns"):
            plan(segment, "SELECT sum(zzz) FROM t")


class TestTimePruning:
    def test_pruned_when_disjoint(self, segment):
        p = plan(segment, "SELECT sum(m) FROM t WHERE day > 18000")
        assert p.kind is PlanKind.EMPTY

    def test_pruned_below(self, segment):
        p = plan(segment, "SELECT sum(m) FROM t WHERE day < 16000")
        assert p.kind is PlanKind.EMPTY

    def test_not_pruned_when_overlapping(self, segment):
        p = plan(segment,
                 "SELECT sum(m) FROM t WHERE day BETWEEN 17003 AND 19000")
        assert p.kind is not PlanKind.EMPTY

    def test_or_does_not_prune(self, segment):
        # A top-level OR gives no usable time bound.
        p = plan(segment,
                 "SELECT sum(m) FROM t WHERE day > 18000 OR s = 'a'")
        assert p.kind is not PlanKind.EMPTY


class TestCostOrdering:
    def test_sorted_operator_runs_first(self, segment):
        p = plan(
            segment,
            "SELECT sum(m) FROM t WHERE n = 3 AND s = 'b' "
            "AND day >= 17001",
            allow_star_tree=False,
        )
        description = p.filter_plan.describe()
        # Sorted-column operator must be the first AND child.
        assert description.startswith("And(SortedRange(s")

    def test_ordering_disabled_preserves_query_order(self, segment):
        p = plan(
            segment,
            "SELECT sum(m) FROM t WHERE n = 3 AND s = 'b'",
            allow_star_tree=False, use_cost_ordering=False,
        )
        description = p.filter_plan.describe()
        assert description.startswith("And(Inverted(n")

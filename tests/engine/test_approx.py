"""Tests for the mergeable quantile sketch and the PERCENTILEEST path.

The sketch's contract (see ``repro.engine.approx``): deterministic,
bounded state, byte-commutative merges, exact below ``k``, and rank
error within its own declared bound — each asserted here, with a
hypothesis property suite covering the merge algebra and the codec
round-trip.
"""

import math

import numpy as np
import pytest

from repro.engine.aggregates import _FUNCTIONS
from repro.engine.approx import DEFAULT_K, QuantileSketch, sketch_of
from repro.net import codec
from repro.pql.ast_nodes import AggFunc

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

value_lists = st.lists(
    st.floats(min_value=-1e9, max_value=1e9, allow_nan=False, width=32),
    min_size=0, max_size=800,
)


class TestBasics:
    def test_empty_quantile_is_none(self):
        assert QuantileSketch().quantile(50) is None

    def test_exact_below_k(self):
        values = [float(v) for v in range(DEFAULT_K - 1)]
        sketch = sketch_of(values)
        for q in (0, 25, 50, 90, 99, 100):
            assert sketch.quantile(q) == pytest.approx(
                np.percentile(values, q))
        assert sketch.rank_error_bound() == 0.0

    def test_deterministic_construction(self):
        values = list(np.random.default_rng(4).normal(size=5000))
        assert sketch_of(values) == sketch_of(values)
        assert sketch_of(values).quantile(95) == \
            sketch_of(values).quantile(95)

    def test_add_many_matches_add_loop(self):
        values = list(np.random.default_rng(5).normal(size=1500))
        bulk = sketch_of(values)
        scalar = QuantileSketch()
        for value in values:
            scalar.add(value)
        assert bulk == scalar

    def test_bounded_state(self):
        n = 200_000
        sketch = sketch_of(np.arange(n, dtype=np.float64))
        # O(k log(n/k)) retained items, nowhere near n.
        assert sketch.num_retained <= DEFAULT_K * (
            2 + math.ceil(math.log2(n / DEFAULT_K)))
        assert sketch.count == n

    def test_merge_k_mismatch_rejected(self):
        with pytest.raises(ValueError):
            QuantileSketch(k=8).merge(QuantileSketch(k=16))

    def test_rank_error_within_bound_large(self):
        rng = np.random.default_rng(6)
        values = rng.lognormal(2.0, 1.5, size=50_000)
        sketch = sketch_of(values)
        ordered = np.sort(values)
        bound = sketch.rank_error_bound() + 1.0 / len(values)
        assert 0 < bound < 0.1  # the bound itself stays meaningful
        for q in (10, 50, 90, 95, 99):
            estimate = sketch.quantile(q)
            rank = np.searchsorted(ordered, estimate, side="right") \
                / len(values)
            assert abs(rank - q / 100.0) <= bound, q


class TestMergeAlgebra:
    @settings(max_examples=50, deadline=None)
    @given(value_lists, value_lists)
    def test_merge_commutative(self, a_vals, b_vals):
        a, b = sketch_of(a_vals), sketch_of(b_vals)
        assert a.merge(b) == b.merge(a)

    @settings(max_examples=50, deadline=None)
    @given(value_lists, value_lists, value_lists)
    def test_merge_associative(self, a_vals, b_vals, c_vals):
        a, b, c = (sketch_of(v) for v in (a_vals, b_vals, c_vals))
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @settings(max_examples=50, deadline=None)
    @given(value_lists)
    def test_merge_identity(self, values):
        sketch = sketch_of(values)
        assert sketch.merge(QuantileSketch()) == sketch

    @settings(max_examples=30, deadline=None)
    @given(value_lists, st.integers(0, 800))
    def test_split_rank_error_bounded(self, values, split):
        split = min(split, len(values))
        if not values:
            return
        merged = sketch_of(values[:split]).merge(sketch_of(values[split:]))
        assert merged.count == len(values)
        ordered = np.sort(np.asarray(values, dtype=np.float64))
        bound = merged.rank_error_bound() + 1.0 / len(values)
        for q in (50, 95):
            estimate = merged.quantile(q)
            # searchsorted rank window: the estimate interpolates
            # between retained items, so check against both sides.
            lo = np.searchsorted(ordered, estimate, side="left") \
                / len(values)
            hi = np.searchsorted(ordered, estimate, side="right") \
                / len(values)
            target = q / 100.0
            assert lo - bound <= target <= hi + bound


class TestCodecRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(value_lists)
    def test_round_trip_preserves_state(self, values):
        sketch = sketch_of(values)
        tree = codec.json_roundtrip(codec.encode(sketch))
        restored = codec.decode(tree)
        assert restored == sketch
        assert restored.quantile(90) == sketch.quantile(90)

    def test_round_trip_then_merge_matches(self):
        a = sketch_of(list(range(1000)))
        b = sketch_of(list(range(500, 2000)))
        shipped = codec.decode(codec.json_roundtrip(codec.encode(a)))
        assert shipped.merge(b) == a.merge(b)


class TestPercentileEstFunction:
    def test_empty_finalizes_none(self):
        for func in (AggFunc.PERCENTILEEST50, AggFunc.PERCENTILEEST90,
                     AggFunc.PERCENTILEEST95, AggFunc.PERCENTILEEST99):
            f = _FUNCTIONS[func]
            assert f.finalize(f.init_empty()) is None

    def test_small_input_matches_exact_percentile(self):
        values = np.asarray([3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0])
        for est, exact in ((AggFunc.PERCENTILEEST50, AggFunc.PERCENTILE50),
                           (AggFunc.PERCENTILEEST99, AggFunc.PERCENTILE99)):
            f_est, f_exact = _FUNCTIONS[est], _FUNCTIONS[exact]
            assert f_est.finalize(f_est.aggregate(values)) == \
                pytest.approx(f_exact.finalize(f_exact.aggregate(values)))

    def test_grouped_states_match_per_group(self):
        rng = np.random.default_rng(9)
        values = rng.normal(size=3000)
        codes = rng.integers(0, 5, size=3000)
        f = _FUNCTIONS[AggFunc.PERCENTILEEST90]
        grouped = f.aggregate_grouped(values, codes, 5)
        for g in range(5):
            assert grouped[g] == f.aggregate(values[codes == g]), g

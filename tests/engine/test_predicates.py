"""Tests for leaf-predicate compilation into dictionary-id ranges."""

import numpy as np
import pytest

from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric
from repro.engine.predicates import compile_leaf
from repro.errors import PlanningError
from repro.pql.ast_nodes import Between, CompareOp, Comparison, In
from repro.segment.builder import SegmentBuilder


@pytest.fixture(scope="module")
def segment():
    schema = Schema("t", [dimension("s"), dimension("n", DataType.LONG),
                          metric("m", DataType.LONG)])
    builder = SegmentBuilder("seg", "t", schema)
    for s, n in [("a", 10), ("c", 20), ("e", 30), ("a", 20), ("c", 10)]:
        builder.add({"s": s, "n": n, "m": 1})
    return builder.build()
    # dictionaries: s -> [a, c, e], n -> [10, 20, 30]


class TestEquality:
    def test_eq_present(self, segment):
        match = compile_leaf(Comparison("s", CompareOp.EQ, "c"),
                             segment.column("s"))
        assert match.ranges == ((1, 2),)

    def test_eq_absent(self, segment):
        match = compile_leaf(Comparison("s", CompareOp.EQ, "zzz"),
                             segment.column("s"))
        assert match.is_empty

    def test_neq(self, segment):
        match = compile_leaf(Comparison("s", CompareOp.NEQ, "c"),
                             segment.column("s"))
        assert match.ranges == ((0, 1), (2, 3))

    def test_neq_absent_matches_all(self, segment):
        match = compile_leaf(Comparison("s", CompareOp.NEQ, "zzz"),
                             segment.column("s"))
        assert match.is_all


class TestRanges:
    def test_lt(self, segment):
        match = compile_leaf(Comparison("n", CompareOp.LT, 20),
                             segment.column("n"))
        assert match.ranges == ((0, 1),)

    def test_lte(self, segment):
        match = compile_leaf(Comparison("n", CompareOp.LTE, 20),
                             segment.column("n"))
        assert match.ranges == ((0, 2),)

    def test_gt(self, segment):
        match = compile_leaf(Comparison("n", CompareOp.GT, 10),
                             segment.column("n"))
        assert match.ranges == ((1, 3),)

    def test_gte_covers_all(self, segment):
        match = compile_leaf(Comparison("n", CompareOp.GTE, 0),
                             segment.column("n"))
        assert match.is_all

    def test_between(self, segment):
        match = compile_leaf(Between("n", 10, 20), segment.column("n"))
        assert match.ranges == ((0, 2),)

    def test_between_no_overlap(self, segment):
        match = compile_leaf(Between("n", 40, 50), segment.column("n"))
        assert match.is_empty

    def test_range_between_values(self, segment):
        match = compile_leaf(Comparison("n", CompareOp.LT, 15),
                             segment.column("n"))
        assert match.ranges == ((0, 1),)


class TestIn:
    def test_in_coalesces_adjacent(self, segment):
        match = compile_leaf(In("s", ("a", "c")), segment.column("s"))
        assert match.ranges == ((0, 2),)

    def test_in_disjoint(self, segment):
        match = compile_leaf(In("s", ("a", "e")), segment.column("s"))
        assert match.ranges == ((0, 1), (2, 3))

    def test_in_ignores_absent_values(self, segment):
        match = compile_leaf(In("s", ("a", "nope")), segment.column("s"))
        assert match.ranges == ((0, 1),)

    def test_not_in(self, segment):
        match = compile_leaf(In("s", ("c",), negated=True),
                             segment.column("s"))
        assert match.ranges == ((0, 1), (2, 3))


class TestTypeHandling:
    def test_numeric_literal_against_string_column(self, segment):
        match = compile_leaf(Comparison("s", CompareOp.EQ, 5),
                             segment.column("s"))
        assert match.is_empty  # coerced to "5", absent

    def test_string_literal_against_numeric_rejected(self, segment):
        with pytest.raises(PlanningError):
            compile_leaf(Comparison("n", CompareOp.EQ, "ten"),
                         segment.column("n"))

    def test_float_literal_against_int_column(self, segment):
        match = compile_leaf(Comparison("n", CompareOp.LT, 15.5),
                             segment.column("n"))
        assert match.ranges == ((0, 1),)


class TestIdMatchHelpers:
    def test_mask_for(self, segment):
        match = compile_leaf(In("s", ("a", "e")), segment.column("s"))
        ids = np.array([0, 1, 2, 0], dtype=np.uint32)
        assert match.mask_for(ids).tolist() == [True, False, True, True]

    def test_id_array(self, segment):
        match = compile_leaf(In("s", ("a", "e")), segment.column("s"))
        assert match.id_array().tolist() == [0, 2]

    def test_selectivity(self, segment):
        match = compile_leaf(Comparison("s", CompareOp.EQ, "a"),
                             segment.column("s"))
        assert match.selectivity() == pytest.approx(1 / 3)

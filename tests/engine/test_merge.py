"""Tests for partial-result combining and broker-side reduction."""

from repro.engine.merge import combine_segment_results, reduce_server_results
from repro.engine.results import (
    AggregationPartial,
    ExecutionStats,
    GroupByPartial,
    SegmentResult,
    SelectionPartial,
    ServerResult,
)
from repro.pql.parser import parse
from repro.pql.rewriter import optimize


def q(text):
    return optimize(parse(text))


class TestCombineSegments:
    def test_aggregation_states_merge(self):
        query = q("SELECT count(*), sum(m) FROM t")
        results = [
            SegmentResult(aggregation=AggregationPartial([3, 10.0]),
                          stats=ExecutionStats(num_docs_scanned=3)),
            SegmentResult(aggregation=AggregationPartial([2, 5.0]),
                          stats=ExecutionStats(num_docs_scanned=2)),
        ]
        combined = combine_segment_results(query, results, "server-1")
        assert combined.aggregation.states == [5, 15.0]
        assert combined.stats.num_docs_scanned == 5
        assert combined.server == "server-1"

    def test_group_by_merges_keys(self):
        query = q("SELECT sum(m) FROM t GROUP BY s")
        a = GroupByPartial({("x",): [1.0], ("y",): [2.0]})
        b = GroupByPartial({("y",): [3.0], ("z",): [4.0]})
        combined = combine_segment_results(
            query,
            [SegmentResult(group_by=a), SegmentResult(group_by=b)],
        )
        assert combined.group_by.groups == {
            ("x",): [1.0], ("y",): [5.0], ("z",): [4.0]
        }

    def test_selection_rows_trimmed_to_limit(self):
        query = q("SELECT a FROM t LIMIT 3")
        partials = [
            SegmentResult(selection=SelectionPartial(("a",),
                                                     [(i,) for i in range(5)]))
        ]
        combined = combine_segment_results(query, partials)
        assert len(combined.selection.rows) == 3


class TestReduce:
    def test_aggregation_finalized(self):
        query = q("SELECT avg(m) FROM t")
        servers = [
            ServerResult("s1", aggregation=AggregationPartial([(10.0, 2)])),
            ServerResult("s2", aggregation=AggregationPartial([(20.0, 3)])),
        ]
        response = reduce_server_results(query, servers)
        assert response.rows == [(6.0,)]
        assert response.table.columns == ("avg(m)",)

    def test_error_marks_partial(self):
        query = q("SELECT count(*) FROM t")
        servers = [
            ServerResult("s1", aggregation=AggregationPartial([7])),
            ServerResult("s2", error="timeout"),
        ]
        response = reduce_server_results(query, servers)
        assert response.is_partial
        assert response.exceptions == ["s2: timeout"]
        assert response.rows == [(7,)]  # partial data still returned

    def test_group_by_top_n_applied_at_reduce(self):
        query = q("SELECT sum(m) FROM t GROUP BY s TOP 2")
        servers = [
            ServerResult("s1", group_by=GroupByPartial(
                {("a",): [5.0], ("b",): [1.0], ("c",): [9.0]}
            )),
        ]
        response = reduce_server_results(query, servers)
        assert [row[0] for row in response.rows] == ["c", "a"]

    def test_empty_aggregation_response(self):
        query = q("SELECT count(*) FROM t")
        response = reduce_server_results(query, [])
        assert response.rows == [(0,)]

    def test_empty_selection_response(self):
        query = q("SELECT a FROM t")
        response = reduce_server_results(query, [])
        assert response.rows == []
        assert response.table.columns == ("a",)

    def test_selection_merge_sorts_across_servers(self):
        query = q("SELECT a FROM t ORDER BY a DESC LIMIT 3")
        servers = [
            ServerResult("s1", selection=SelectionPartial(("a",),
                                                          [(1,), (5,)])),
            ServerResult("s2", selection=SelectionPartial(("a",),
                                                          [(9,), (2,)])),
        ]
        response = reduce_server_results(query, servers)
        assert [row[0] for row in response.rows] == [9, 5, 2]

    def test_result_table_helpers(self):
        query = q("SELECT count(*) FROM t")
        response = reduce_server_results(
            query, [ServerResult("s1",
                                 aggregation=AggregationPartial([4]))]
        )
        assert response.table.to_dicts() == [{"count(*)": 4}]
        assert response.table.column_values("count(*)") == [4]
        assert len(response.table) == 1

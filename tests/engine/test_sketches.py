"""Tests for the HyperLogLog sketch and the DISTINCTCOUNTHLL path."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.sketches import HyperLogLog, hash64


class TestHyperLogLog:
    def test_empty_estimates_zero(self):
        assert HyperLogLog().cardinality() == 0

    def test_small_cardinalities_near_exact(self):
        sketch = HyperLogLog()
        for i in range(100):
            sketch.add(f"value-{i}")
        assert sketch.cardinality() == pytest.approx(100, abs=3)

    def test_duplicates_ignored(self):
        sketch = HyperLogLog()
        for __ in range(10_000):
            sketch.add("same")
        assert sketch.cardinality() == 1

    def test_large_cardinality_within_error(self):
        sketch = HyperLogLog(precision=12)
        n = 50_000
        for i in range(n):
            sketch.add(i)
        error = abs(sketch.cardinality() - n) / n
        assert error < 4 * sketch.relative_error  # ~6.5% at p=12

    def test_merge_equals_union(self):
        a, b = HyperLogLog(), HyperLogLog()
        for i in range(1000):
            a.add(i)
        for i in range(500, 1500):
            b.add(i)
        union = a.merge(b)
        both = HyperLogLog()
        for i in range(1500):
            both.add(i)
        assert union == both

    def test_merge_precision_mismatch_rejected(self):
        with pytest.raises(ValueError):
            HyperLogLog(precision=10).merge(HyperLogLog(precision=12))

    def test_invalid_precision(self):
        with pytest.raises(ValueError):
            HyperLogLog(precision=2)

    def test_copy_is_independent(self):
        a = HyperLogLog()
        a.add("x")
        b = a.copy()
        b.add("y")
        assert a != b

    def test_hash64_deterministic_and_spread(self):
        assert hash64("abc") == hash64("abc")
        hashes = {hash64(i) >> 52 for i in range(1000)}
        assert len(hashes) > 500  # top bits well spread

    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.integers(0, 10_000), min_size=0, max_size=300))
    def test_order_independent(self, values):
        ordered = HyperLogLog()
        ordered.add_many(sorted(values))
        shuffled = HyperLogLog()
        items = list(values)
        random.Random(0).shuffle(items)
        shuffled.add_many(items)
        assert ordered == shuffled


class TestDistinctCountHllEndToEnd:
    @pytest.fixture(scope="class")
    def segment(self):
        from repro.common.schema import Schema
        from repro.common.types import DataType, dimension, metric
        from repro.segment.builder import SegmentBuilder

        schema = Schema("t", [dimension("user", DataType.LONG),
                              dimension("grp"),
                              metric("m", DataType.LONG)])
        builder = SegmentBuilder("s", "t", schema)
        rng = random.Random(8)
        for __ in range(5000):
            builder.add({"user": rng.randrange(800),
                         "grp": rng.choice("ab"), "m": 1})
        return builder.build()

    def run(self, segment, pql):
        from repro.engine.executor import execute_segment
        from repro.engine.merge import (
            combine_segment_results,
            reduce_server_results,
        )
        from repro.pql.parser import parse
        from repro.pql.rewriter import optimize

        query = optimize(parse(pql))
        result = execute_segment(segment, query)
        return reduce_server_results(
            query, [combine_segment_results(query, [result])]
        )

    def test_hll_close_to_exact(self, segment):
        approx = self.run(
            segment, "SELECT distinctcounthll(user) FROM t"
        ).rows[0][0]
        exact = self.run(
            segment, "SELECT distinctcount(user) FROM t"
        ).rows[0][0]
        assert abs(approx - exact) / exact < 0.06

    def test_hll_group_by(self, segment):
        response = self.run(
            segment,
            "SELECT distinctcounthll(user) FROM t GROUP BY grp TOP 5",
        )
        assert len(response.rows) == 2
        for row in response.rows:
            assert 300 < row[1] < 900

"""Tests for the HyperLogLog sketch and the DISTINCTCOUNTHLL path."""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.sketches import HyperLogLog, hash64


class TestHyperLogLog:
    def test_empty_estimates_zero(self):
        assert HyperLogLog().cardinality() == 0

    def test_small_cardinalities_near_exact(self):
        sketch = HyperLogLog()
        for i in range(100):
            sketch.add(f"value-{i}")
        assert sketch.cardinality() == pytest.approx(100, abs=3)

    def test_duplicates_ignored(self):
        sketch = HyperLogLog()
        for __ in range(10_000):
            sketch.add("same")
        assert sketch.cardinality() == 1

    def test_large_cardinality_within_error(self):
        sketch = HyperLogLog(precision=12)
        n = 50_000
        for i in range(n):
            sketch.add(i)
        error = abs(sketch.cardinality() - n) / n
        assert error < 4 * sketch.relative_error  # ~6.5% at p=12

    def test_merge_equals_union(self):
        a, b = HyperLogLog(), HyperLogLog()
        for i in range(1000):
            a.add(i)
        for i in range(500, 1500):
            b.add(i)
        union = a.merge(b)
        both = HyperLogLog()
        for i in range(1500):
            both.add(i)
        assert union == both

    def test_merge_precision_mismatch_rejected(self):
        with pytest.raises(ValueError):
            HyperLogLog(precision=10).merge(HyperLogLog(precision=12))

    def test_invalid_precision(self):
        with pytest.raises(ValueError):
            HyperLogLog(precision=2)

    def test_copy_is_independent(self):
        a = HyperLogLog()
        a.add("x")
        b = a.copy()
        b.add("y")
        assert a != b

    def test_hash64_deterministic_and_spread(self):
        assert hash64("abc") == hash64("abc")
        hashes = {hash64(i) >> 52 for i in range(1000)}
        assert len(hashes) > 500  # top bits well spread

    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.integers(0, 10_000), min_size=0, max_size=300))
    def test_order_independent(self, values):
        ordered = HyperLogLog()
        ordered.add_many(sorted(values))
        shuffled = HyperLogLog()
        items = list(values)
        random.Random(0).shuffle(items)
        shuffled.add_many(items)
        assert ordered == shuffled


class TestTypedHashing:
    """Regression suite for the str-punning hash64 bug: values used to
    hash through ``str(value)``, so ``1`` and ``"1"`` collided and
    ``1.0`` / ``1`` diverged — HLL counts disagreed with the exact
    DISTINCTCOUNT's Python-equality semantics on tiny cardinalities."""

    def test_type_domains_disjoint(self):
        assert hash64(1) != hash64("1")
        assert hash64(0) != hash64("")
        assert hash64(None) not in {hash64(0), hash64("None")}
        assert hash64(b"x") != hash64("x")

    def test_equal_numerics_collide_by_design(self):
        # The exact DISTINCTCOUNT state is a set under Python equality
        # (1 == 1.0 == True is ONE element), so the sketch must agree.
        assert hash64(1) == hash64(1.0) == hash64(True)
        assert hash64(-7) == hash64(-7.0)
        assert hash64(np.int32(5)) == hash64(5) == hash64(np.float64(5.0))

    def test_mixed_types_match_exact_distinctcount(self):
        values = [1, "1", 1.0, True, 0, "", None, 2.5, "2.5", b"2.5",
                  -3, -3.0, "abc", 17, 17.0]
        sketch = HyperLogLog()
        for value in values:
            sketch.add(value)
        assert sketch.cardinality() == len(set(values))

    def test_hash64_array_matches_scalar_ints(self):
        from repro.engine.sketches import hash64_array

        rng = np.random.default_rng(5)
        values = rng.integers(-2 ** 62, 2 ** 62, size=2000)
        bulk = hash64_array(values)
        scalar = np.array([hash64(int(v)) for v in values],
                          dtype=np.uint64)
        assert np.array_equal(bulk, scalar)

    def test_hash64_array_matches_scalar_floats(self):
        from repro.engine.sketches import hash64_array

        values = np.array([1.5, -0.0, 2.0, math.inf, -math.inf,
                           math.nan, 1e300, -7.25, 42.0, 1e19])
        bulk = hash64_array(values)
        scalar = np.array([hash64(float(v)) for v in values],
                          dtype=np.uint64)
        assert np.array_equal(bulk, scalar)

    @pytest.mark.parametrize("precision", [4, 12, 16])
    def test_add_many_register_identical_to_add(self, precision):
        # precision 4 exercises the >52-bit payload fallback (binary
        # reduction); 12/16 take the exact-float frexp fast path.
        rng = np.random.default_rng(11)
        values = rng.integers(0, 100_000, size=4000)
        bulk = HyperLogLog(precision)
        bulk.add_many(values)
        scalar = HyperLogLog(precision)
        for value in values:
            scalar.add(int(value))
        assert bulk == scalar


class TestDistinctCountHllEndToEnd:
    @pytest.fixture(scope="class")
    def segment(self):
        from repro.common.schema import Schema
        from repro.common.types import DataType, dimension, metric
        from repro.segment.builder import SegmentBuilder

        schema = Schema("t", [dimension("user", DataType.LONG),
                              dimension("grp"),
                              metric("m", DataType.LONG)])
        builder = SegmentBuilder("s", "t", schema)
        rng = random.Random(8)
        for __ in range(5000):
            builder.add({"user": rng.randrange(800),
                         "grp": rng.choice("ab"), "m": 1})
        return builder.build()

    def run(self, segment, pql):
        from repro.engine.executor import execute_segment
        from repro.engine.merge import (
            combine_segment_results,
            reduce_server_results,
        )
        from repro.pql.parser import parse
        from repro.pql.rewriter import optimize

        query = optimize(parse(pql))
        result = execute_segment(segment, query)
        return reduce_server_results(
            query, [combine_segment_results(query, [result])]
        )

    def test_hll_close_to_exact(self, segment):
        approx = self.run(
            segment, "SELECT distinctcounthll(user) FROM t"
        ).rows[0][0]
        exact = self.run(
            segment, "SELECT distinctcount(user) FROM t"
        ).rows[0][0]
        assert abs(approx - exact) / exact < 0.06

    def test_hll_group_by(self, segment):
        response = self.run(
            segment,
            "SELECT distinctcounthll(user) FROM t GROUP BY grp TOP 5",
        )
        assert len(response.rows) == 2
        for row in response.rows:
            assert 300 < row[1] < 900

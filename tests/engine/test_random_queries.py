"""Randomized whole-query equivalence against a brute-force reference.

Hypothesis generates random PQL queries (filters, aggregations,
group-bys) and random datasets; each query is executed through the full
per-segment pipeline on several segment configurations (scan-only,
sorted, inverted, sorted+inverted+star-tree) and compared against a
pure-Python reference evaluator over the raw records. This is the
strongest correctness net in the suite: any disagreement between an
index structure and plain semantics fails here.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column
from repro.engine.executor import execute_segment
from repro.engine.merge import combine_segment_results, reduce_server_results
from repro.pql.parser import parse
from repro.pql.rewriter import optimize
from repro.segment.builder import SegmentBuilder, SegmentConfig
from repro.startree.builder import StarTreeConfig

COLUMNS = {"d1": list("abcdef"), "d2": list("xyz")}
N_VALUES = list(range(8))
DAYS = list(range(100, 106))


def make_schema():
    return Schema("t", [
        dimension("d1"), dimension("d2"),
        dimension("n", DataType.LONG),
        metric("m", DataType.LONG),
        time_column("day", DataType.INT),
    ])


def make_records(seed, size=400):
    rng = random.Random(seed)
    return [
        {"d1": rng.choice(COLUMNS["d1"]), "d2": rng.choice(COLUMNS["d2"]),
         "n": rng.choice(N_VALUES), "m": rng.randint(0, 50),
         "day": rng.choice(DAYS)}
        for __ in range(size)
    ]


CONFIGS = {
    "plain": SegmentConfig(),
    "sorted": SegmentConfig(sorted_column="d1"),
    "inverted": SegmentConfig(inverted_columns=("d1", "d2", "n", "day")),
    "full": SegmentConfig(
        sorted_column="d1", inverted_columns=("d2", "n"),
        star_tree=StarTreeConfig(dimensions=("d1", "d2", "n", "day"),
                                 max_leaf_records=5),
    ),
}


@pytest.fixture(scope="module")
def segments():
    records = make_records(1234)
    schema = make_schema()
    built = {}
    for name, config in CONFIGS.items():
        builder = SegmentBuilder(f"seg_{name}", "t", schema, config)
        builder.add_all(records)
        built[name] = builder.build()
    return records, built


# -- random query generation --------------------------------------------------

leaf_predicates = st.one_of(
    st.sampled_from(COLUMNS["d1"]).map(lambda v: f"d1 = '{v}'"),
    st.sampled_from(COLUMNS["d2"]).map(lambda v: f"d2 != '{v}'"),
    st.tuples(st.sampled_from(N_VALUES),
              st.sampled_from(["<", "<=", ">", ">="])).map(
        lambda t: f"n {t[1]} {t[0]}"),
    st.lists(st.sampled_from(N_VALUES), min_size=1, max_size=3).map(
        lambda vs: f"n IN ({', '.join(map(str, vs))})"),
    st.tuples(st.sampled_from(DAYS), st.integers(0, 3)).map(
        lambda t: f"day BETWEEN {t[0]} AND {t[0] + t[1]}"),
    st.sampled_from(COLUMNS["d1"]).map(lambda v: f"NOT d1 = '{v}'"),
    st.sampled_from(["a%", "%c", "_", "%", "x_z"]).map(
        lambda p: f"d1 LIKE '{p}'"),
    st.sampled_from(["a%", "%y%"]).map(
        lambda p: f"d2 NOT LIKE '{p}'"),
)


def join_with(op):
    return lambda parts: f" {op} ".join(f"({p})" for p in parts)


predicate_strings = st.recursive(
    leaf_predicates,
    lambda inner: st.one_of(
        st.lists(inner, min_size=2, max_size=3).map(join_with("AND")),
        st.lists(inner, min_size=2, max_size=3).map(join_with("OR")),
    ),
    max_leaves=5,
)

select_lists = st.sampled_from([
    "count(*)",
    "sum(m)",
    "count(*), sum(m), min(m), max(m)",
    "avg(m), distinctcount(d1)",
])

group_bys = st.sampled_from(["", "d1", "d2", "d1, n", "day"])


@st.composite
def queries(draw):
    select = draw(select_lists)
    where = draw(st.one_of(st.none(), predicate_strings))
    group = draw(group_bys)
    text = f"SELECT {select} FROM t"
    if where:
        text += f" WHERE {where}"
    if group:
        text += f" GROUP BY {group} TOP 1000"
    return text


# -- reference evaluation ----------------------------------------------------

def reference(records, query):
    from tests.reference import evaluate

    matched = [r for r in records
               if query.where is None or evaluate(query.where, r)]
    if query.group_by:
        groups = {}
        for r in matched:
            key = tuple(r[c] for c in query.group_by)
            groups.setdefault(key, []).append(r)
        return {
            key: tuple(_agg(a, rows) for a in query.aggregations)
            for key, rows in groups.items()
        }
    return tuple(_agg(a, matched) for a in query.aggregations)


def _agg(aggregation, rows):
    from repro.pql.ast_nodes import AggFunc

    func = aggregation.func
    if func is AggFunc.COUNT:
        return len(rows)
    values = [r[aggregation.column] for r in rows]
    if func is AggFunc.SUM:
        return float(sum(values))
    if func is AggFunc.MIN:
        return float(min(values)) if values else math.inf
    if func is AggFunc.MAX:
        return float(max(values)) if values else -math.inf
    if func is AggFunc.AVG:
        return sum(values) / len(values) if values else 0.0
    if func is AggFunc.DISTINCTCOUNT:
        return len(set(values))
    raise NotImplementedError(func)


def run_engine(segment, query):
    result = execute_segment(segment, query)
    server = combine_segment_results(query, [result])
    return reduce_server_results(query, [server])


def approx_equal(a, b):
    if isinstance(a, float) or isinstance(b, float):
        if math.isinf(a) or math.isinf(b):
            return a == b
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
    return a == b


@settings(max_examples=120, deadline=None)
@given(queries())
def test_random_query_equivalence(segments, text):
    records, built = segments
    query = optimize(parse(text))
    expected = reference(records, query)

    for name, segment in built.items():
        response = run_engine(segment, query)
        if query.group_by:
            got = {
                tuple(row[:len(query.group_by)]):
                    tuple(row[len(query.group_by):])
                for row in response.rows
            }
            assert set(got) == set(expected), (name, text)
            for key, values in expected.items():
                for a, b in zip(got[key], values):
                    assert approx_equal(a, b), (name, text, key)
        else:
            [row] = response.rows
            for a, b in zip(row, expected):
                assert approx_equal(a, b), (name, text)

"""Tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.pql.parser import parse
from repro.workloads import anomaly, impressions, share_analytics, wvmp
from repro.workloads.generator import ZipfSampler, name_pool

WORKLOADS = [anomaly, share_analytics, wvmp, impressions]


class TestZipf:
    def test_heavy_tail(self):
        sampler = ZipfSampler(100, s=1.2, seed=0)
        samples = sampler.sample(20_000)
        counts = np.bincount(samples, minlength=100)
        assert counts[0] > counts[50] > 0
        # Top 10 values carry a large share of the mass.
        assert counts[:10].sum() > 0.35 * len(samples)

    def test_range(self):
        sampler = ZipfSampler(7, seed=1)
        samples = sampler.sample(1000)
        assert samples.min() >= 0
        assert samples.max() < 7

    def test_deterministic_with_seed(self):
        a = ZipfSampler(50, seed=3).sample(100)
        b = ZipfSampler(50, seed=3).sample(100)
        assert np.array_equal(a, b)

    def test_scalar_sample(self):
        assert isinstance(ZipfSampler(10, seed=0).sample(), int)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)

    def test_name_pool(self):
        pool = name_pool("x", 3)
        assert pool == ["x-00000", "x-00001", "x-00002"]


@pytest.mark.parametrize("workload", WORKLOADS,
                         ids=lambda w: w.__name__.rsplit(".", 1)[-1])
class TestWorkloadContracts:
    def test_records_conform_to_schema(self, workload):
        schema = workload.schema()
        records = workload.generate_records(500, seed=1)
        assert len(records) == 500
        for record in records[:50]:
            normalized = schema.normalize(record)
            assert set(normalized) == set(schema.column_names)

    def test_queries_parse_and_reference_schema(self, workload):
        schema = workload.schema()
        queries = workload.generate_queries(50, seed=2)
        assert len(queries) == 50
        for text in queries:
            query = parse(text)
            for column in query.referenced_columns():
                assert column in schema, (text, column)

    def test_generation_deterministic(self, workload):
        assert workload.generate_records(50, seed=9) == \
            workload.generate_records(50, seed=9)
        assert workload.generate_queries(20, seed=9) == \
            workload.generate_queries(20, seed=9)


class TestWorkloadSpecifics:
    def test_anomaly_segment_configs(self):
        assert anomaly.segment_config("none").inverted_columns == ()
        assert anomaly.segment_config("inverted").inverted_columns
        assert anomaly.segment_config("startree").star_tree is not None
        with pytest.raises(ValueError):
            anomaly.segment_config("bogus")

    def test_wvmp_queries_always_filter_viewee(self):
        for text in wvmp.generate_queries(30, seed=5):
            assert "vieweeId =" in text

    def test_wvmp_configs(self):
        assert wvmp.segment_config("sorted").sorted_column == "vieweeId"
        assert "vieweeId" in wvmp.segment_config("inverted").inverted_columns

    def test_share_queries_always_filter_item(self):
        for text in share_analytics.generate_queries(30, seed=5):
            assert "itemId =" in text

    def test_impressions_partition_config(self):
        config = impressions.partition_config()
        assert config.column == "memberId"
        assert config.num_partitions == impressions.NUM_PARTITIONS

    def test_impression_queries_filter_member(self):
        for text in impressions.generate_queries(30, seed=5):
            assert "memberId =" in text

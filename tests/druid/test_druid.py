"""Tests for the Druid baseline engine."""

import random

import pytest

from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column
from repro.druid.cluster import DruidCluster
from repro.druid.engine import execute_druid_segment
from repro.druid.segment import (
    build_druid_segments,
    druid_segment_config,
    druid_storage_bytes,
)
from repro.errors import ClusterError
from repro.pql.parser import parse
from repro.pql.rewriter import optimize
from repro.segment.builder import SegmentBuilder


@pytest.fixture(scope="module")
def schema():
    return Schema("events", [
        dimension("country"), dimension("browser"),
        metric("views", DataType.LONG), time_column("day", DataType.INT),
    ])


@pytest.fixture(scope="module")
def dataset():
    rng = random.Random(12)
    return [
        {"country": rng.choice(["us", "de", "in"]),
         "browser": rng.choice(["chrome", "firefox"]),
         "views": rng.randint(1, 9), "day": 17000 + rng.randrange(6)}
        for __ in range(3000)
    ]


class TestSegments:
    def test_every_dimension_gets_inverted_index(self, schema):
        config = druid_segment_config(schema)
        assert set(config.inverted_columns) == {"country", "browser",
                                                "day"}
        assert config.sorted_column is None
        assert config.star_tree is None

    def test_time_chunking(self, schema, dataset):
        segments = build_druid_segments("events", schema, dataset,
                                        time_chunk=2)
        assert len(segments) == 3  # 6 days / 2-day chunks
        for segment in segments:
            low, high = segment.time_range()
            assert high - low <= 1

    def test_no_chunk_single_segment(self, schema, dataset):
        segments = build_druid_segments("events", schema, dataset)
        assert len(segments) == 1

    def test_storage_exceeds_pinot_equivalent(self, schema, dataset):
        """The Fig 14 observation: Druid's mandatory per-dimension
        inverted indexes inflate storage vs a lean Pinot config."""
        druid = build_druid_segments("events", schema, dataset)
        builder = SegmentBuilder("pinot", "events", schema)
        builder.add_all(dataset)
        pinot = builder.build()
        assert druid_storage_bytes(druid) > pinot.metadata.total_bytes


class TestExecutionEquivalence:
    QUERIES = [
        "SELECT count(*) FROM events WHERE country = 'us'",
        "SELECT sum(views) FROM events WHERE browser = 'chrome' "
        "AND day BETWEEN 17001 AND 17003",
        "SELECT sum(views) FROM events WHERE country = 'us' "
        "OR browser = 'firefox' GROUP BY country TOP 10",
        "SELECT count(*) FROM events WHERE NOT country = 'de'",
        "SELECT country, views FROM events WHERE day = 17000 "
        "ORDER BY views DESC LIMIT 5",
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_druid_matches_pinot_results(self, schema, dataset, text):
        druid_segments = build_druid_segments("events", schema, dataset,
                                              time_chunk=2)
        builder = SegmentBuilder("pinot", "events", schema)
        builder.add_all(dataset)
        pinot_segment = builder.build()

        from repro.engine.executor import execute_segment
        from repro.engine.merge import (
            combine_segment_results,
            reduce_server_results,
        )

        query = optimize(parse(text))
        druid_results = [execute_druid_segment(s, query)
                         for s in druid_segments]
        druid_response = reduce_server_results(
            query, [combine_segment_results(query, druid_results)]
        )
        pinot_response = reduce_server_results(
            query,
            [combine_segment_results(
                query, [execute_segment(pinot_segment, query)]
            )],
        )

        def canon(rows):
            return sorted(
                tuple(round(c, 6) if isinstance(c, float) else c
                      for c in row) for row in rows
            )

        assert canon(druid_response.rows) == canon(pinot_response.rows)


class TestDruidCluster:
    def test_cluster_flow(self, schema, dataset):
        druid = DruidCluster(num_historicals=3)
        druid.create_table("events", schema)
        names = druid.load_records("events", dataset, time_chunk=2)
        assert len(names) == 3
        response = druid.execute("SELECT count(*) FROM events")
        assert response.rows[0][0] == len(dataset)

    def test_duplicate_table_rejected(self, schema):
        druid = DruidCluster()
        druid.create_table("events", schema)
        with pytest.raises(ClusterError):
            druid.create_table("events", schema)

    def test_unknown_table_rejected(self, schema):
        druid = DruidCluster()
        with pytest.raises(ClusterError):
            druid.execute("SELECT count(*) FROM mystery")

    def test_storage_accounting(self, schema, dataset):
        druid = DruidCluster(num_historicals=2)
        druid.create_table("events", schema)
        druid.load_records("events", dataset)
        assert druid.storage_bytes("events") > 0

"""Additional Druid-cluster behaviour tests."""

import random

import pytest

from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column
from repro.druid.cluster import DruidCluster


@pytest.fixture(scope="module")
def loaded():
    schema = Schema("events", [
        dimension("country"), metric("views", DataType.LONG),
        time_column("day", DataType.INT),
    ])
    rng = random.Random(3)
    records = [
        {"country": rng.choice(["us", "de"]), "views": 1,
         "day": 17000 + rng.randrange(4)}
        for __ in range(2000)
    ]
    druid = DruidCluster(num_historicals=3)
    druid.create_table("events", schema)
    druid.load_records("events", records, time_chunk=1)
    return druid, records


class TestDruidCluster:
    def test_segments_distributed_round_robin(self, loaded):
        druid, __ = loaded
        counts = [
            len(h.segments_of("events")) for h in druid.historicals
        ]
        assert sum(counts) == 4
        assert max(counts) - min(counts) <= 1

    def test_group_by_merged_across_historicals(self, loaded):
        druid, records = loaded
        expected = {}
        for r in records:
            expected[r["country"]] = expected.get(r["country"], 0) + 1
        response = druid.execute(
            "SELECT count(*) FROM events GROUP BY country TOP 10"
        )
        assert {row[0]: row[1] for row in response.rows} == expected

    def test_selection_query(self, loaded):
        druid, __ = loaded
        response = druid.execute(
            "SELECT country, views FROM events WHERE day = 17001 LIMIT 5"
        )
        assert 0 < len(response.rows) <= 5

    def test_like_predicate_works_on_druid(self, loaded):
        druid, records = loaded
        response = druid.execute(
            "SELECT count(*) FROM events WHERE country LIKE 'u%'"
        )
        expected = sum(1 for r in records if r["country"] == "us")
        assert response.rows[0][0] == expected

    def test_having_applies(self, loaded):
        druid, records = loaded
        response = druid.execute(
            "SELECT count(*) FROM events GROUP BY country "
            "HAVING count(*) > 999999 TOP 5"
        )
        assert response.rows == []

    def test_stats_aggregated(self, loaded):
        druid, __ = loaded
        response = druid.execute(
            "SELECT count(*) FROM events WHERE country = 'us'"
        )
        assert response.stats.num_segments_queried == 4
        assert response.stats.num_docs_scanned > 0

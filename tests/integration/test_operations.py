"""Operational flows: rebalance, large-cluster routing end to end,
partitioned realtime tables, and replica divergence handling."""

import pytest

from repro.cluster.pinot import PinotCluster
from repro.cluster.table import PartitionConfig, StreamConfig, TableConfig
from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column


@pytest.fixture
def schema():
    return Schema("events", [
        dimension("memberId", DataType.LONG), dimension("country"),
        metric("views", DataType.LONG), time_column("day", DataType.INT),
    ])


def records(n, seed_day=17000):
    return [{"memberId": i % 97, "country": "us", "views": 1,
             "day": seed_day + i % 5} for i in range(n)]


class TestRebalance:
    def test_rebalance_spreads_to_new_servers(self, schema):
        cluster = PinotCluster(num_servers=2)
        cluster.create_table(TableConfig.offline("events", schema,
                                                 replication=2))
        cluster.upload_records("events", records(6000),
                               rows_per_segment=1000)
        new_server = cluster.add_server("server-new")
        assert new_server.hosted_segments("events_OFFLINE") == []

        mapping = cluster.leader_controller().rebalance_table(
            "events_OFFLINE"
        )
        assert "server-new" in mapping
        assert new_server.hosted_segments("events_OFFLINE")
        response = cluster.execute("SELECT count(*) FROM events")
        assert response.rows[0][0] == 6000
        assert not response.is_partial

    def test_rebalance_preserves_replication(self, schema):
        cluster = PinotCluster(num_servers=3)
        cluster.create_table(TableConfig.offline("events", schema,
                                                 replication=2))
        cluster.upload_records("events", records(4000),
                               rows_per_segment=1000)
        cluster.add_server()
        cluster.leader_controller().rebalance_table("events_OFFLINE")
        view = cluster.helix.external_view("events_OFFLINE")
        for segment, replicas in view.items():
            online = [s for s, state in replicas.items()
                      if state == "ONLINE"]
            assert len(online) == 2, segment

    def test_rebalance_keeps_existing_replicas_when_possible(self, schema):
        cluster = PinotCluster(num_servers=3)
        cluster.create_table(TableConfig.offline("events", schema,
                                                 replication=1))
        cluster.upload_records("events", records(3000),
                               rows_per_segment=1000)
        before = cluster.helix.ideal_state("events_OFFLINE")
        cluster.leader_controller().rebalance_table("events_OFFLINE")
        after = cluster.helix.ideal_state("events_OFFLINE")
        # Balanced before, balanced after: nothing should have moved.
        assert before == after


class TestLargeClusterRoutingE2E:
    def test_queries_touch_fewer_servers(self, schema):
        cluster = PinotCluster(num_servers=8)
        cluster.create_table(TableConfig.offline(
            "events", schema, replication=3,
            routing_strategy="large_cluster",
            routing_options={"target_servers": 3, "keep_tables": 5,
                             "generate_tables": 40},
        ))
        cluster.upload_records("events", records(16_000),
                               rows_per_segment=1000)
        response = cluster.execute("SELECT count(*) FROM events")
        assert response.rows[0][0] == 16_000
        fanout = cluster.brokers[0].fanout_for(
            "SELECT count(*) FROM events"
        )
        assert fanout < 8  # strictly fewer than every server

    def test_correct_after_server_loss(self, schema):
        cluster = PinotCluster(num_servers=8)
        cluster.create_table(TableConfig.offline(
            "events", schema, replication=3,
            routing_strategy="large_cluster",
            routing_options={"target_servers": 3, "keep_tables": 5,
                             "generate_tables": 40},
        ))
        cluster.upload_records("events", records(8_000),
                               rows_per_segment=1000)
        cluster.kill_server("server-3")
        response = cluster.execute("SELECT count(*) FROM events")
        assert response.rows[0][0] == 8_000
        assert not response.is_partial


class TestPartitionedRealtime:
    def test_partition_aware_routing_on_realtime_table(self, schema):
        cluster = PinotCluster(num_servers=4)
        cluster.create_kafka_topic("events-rt", 4)
        cluster.create_table(TableConfig.realtime(
            "events", schema,
            StreamConfig("events-rt", flush_threshold_rows=500,
                         records_per_poll=250),
            replication=1,
            partition=PartitionConfig("memberId", 4),
            routing_strategy="partition_aware",
        ))
        cluster.ingest("events-rt", records(4000), key_column="memberId")
        cluster.drain_realtime()

        total = cluster.execute("SELECT count(*) FROM events")
        assert total.rows[0][0] == 4000

        member = 42
        expected = sum(1 for r in records(4000) if r["memberId"] == member)
        response = cluster.execute(
            f"SELECT count(*) FROM events WHERE memberId = {member}"
        )
        assert response.rows[0][0] == expected
        # Point queries route to a strict subset of the cluster.
        point = cluster.brokers[0].fanout_for(
            f"SELECT count(*) FROM events WHERE memberId = {member}"
        )
        full = cluster.brokers[0].fanout_for(
            "SELECT count(*) FROM events"
        )
        assert point < full


class TestReplicaDivergence:
    def test_mismatched_replica_downloads_committed_copy(self, schema):
        """DISCARD semantics: a replica whose local rows don't match the
        committed offset replaces them with the authoritative copy."""
        cluster = PinotCluster(num_servers=2)
        cluster.create_kafka_topic("div", 1)
        cluster.create_table(TableConfig.realtime(
            "events", schema,
            StreamConfig("div", flush_threshold_rows=100,
                         records_per_poll=100),
            replication=2,
        ))
        cluster.ingest("div", records(100))

        # Let replicas consume to the end criteria, then force one
        # replica to lag (as if its time-based flush fired early at
        # offset 50) and expire Kafka below the committed offset, so it
        # cannot CATCHUP and must take the committed copy (DISCARD).
        cluster.process_realtime(ticks=1)
        victim = None
        for server in cluster.servers:
            for state in server._consuming.values():  # noqa: SLF001
                if victim is None:
                    victim = (server, state)
        assert victim is not None
        server, state = victim
        state.mutable.discard_and_replace(records(50))
        state.consumer.position = 50
        state.reached_end_criteria = True
        state.sealed = None
        state.sealed_offset = None
        cluster.kafka.expire_before("div", 0, 100)

        cluster.drain_realtime()
        view = cluster.helix.external_view("events_REALTIME")
        segment_name = "events_REALTIME__0__0"
        replicas = [
            cluster.server(instance).segment("events_REALTIME",
                                             segment_name)
            for instance, s in view[segment_name].items()
            if s == "ONLINE"
        ]
        assert len(replicas) == 2
        assert replicas[0].num_docs == replicas[1].num_docs == 100
        assert (list(replicas[0].iter_records())
                == list(replicas[1].iter_records()))

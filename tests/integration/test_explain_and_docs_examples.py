"""Smoke checks that documented snippets keep working.

Executes the README quickstart flow and the docs/PQL.md example query
shapes against a live cluster, so the documentation cannot silently rot.
"""

import pytest

from repro.cluster import PinotCluster, TableConfig
from repro.common import DataType, Schema, dimension, metric, time_column
from repro.segment import SegmentConfig


@pytest.fixture(scope="module")
def cluster():
    cluster = PinotCluster(num_servers=3)
    schema = Schema("pageviews", [
        dimension("country"),
        dimension("browser"),
        metric("views", DataType.LONG),
        time_column("day", DataType.INT),
    ])
    cluster.create_table(TableConfig.offline(
        "pageviews", schema, replication=2,
        segment_config=SegmentConfig(sorted_column="country",
                                     inverted_columns=("browser",)),
    ))
    records = [
        {"country": ["us", "de", "in"][i % 3],
         "browser": ["chrome", "firefox", "safari"][i % 3],
         "views": i % 7, "day": 17000 + i % 5}
        for i in range(3000)
    ]
    cluster.upload_records("pageviews", records, rows_per_segment=1000)
    return cluster


README_QUERIES = [
    "SELECT sum(views) FROM pageviews WHERE browser = 'chrome' "
    "GROUP BY country TOP 5",
    "SELECT count(*), sum(views) FROM pageviews",
]

PQL_DOC_QUERIES = [
    "SELECT sum(views) FROM pageviews WHERE browser = 'firefox'",
    "SELECT sum(views) FROM pageviews "
    "WHERE browser = 'firefox' OR browser = 'safari' GROUP BY country",
    "SELECT country, sum(views) FROM pageviews "
    "WHERE browser = 'chrome' AND day >= 17001 GROUP BY country",
    "SELECT count(*) FROM pageviews GROUP BY country "
    "HAVING count(*) >= 100 TOP 50",
    "SELECT country, views FROM pageviews WHERE browser = 'safari' "
    "ORDER BY views DESC LIMIT 20, 10",
    "SELECT count(*) FROM pageviews WHERE country LIKE 'u%'",
    "SELECT distinctcounthll(views) FROM pageviews",
    "SELECT count(*) FROM pageviews OPTION (timeoutMs = 10000)",
]


class TestDocumentedQueries:
    @pytest.mark.parametrize("pql", README_QUERIES + PQL_DOC_QUERIES)
    def test_runs_without_error(self, cluster, pql):
        response = cluster.execute(pql)
        assert not response.is_partial
        assert response.table.columns

    def test_quickstart_shape(self, cluster):
        response = cluster.execute(README_QUERIES[1])
        assert response.rows[0][0] == 3000

    def test_explain_output_shape(self, cluster):
        plans = cluster.explain(
            "SELECT sum(views) FROM pageviews WHERE country = 'us'"
        )
        assert plans  # at least one server
        for server, segments in plans.items():
            assert server.startswith("server-")
            for description in segments.values():
                assert "SortedRange(country" in description

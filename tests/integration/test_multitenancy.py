"""Multitenant admission control across the whole stack (§4.5)."""

import pytest

from repro.cluster.pinot import PinotCluster
from repro.cluster.table import TableConfig
from repro.cluster.tenant import TenantQuotaManager
from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric
from repro.errors import ThrottledError


@pytest.fixture
def schema():
    return Schema("events", [dimension("c"), metric("v", DataType.LONG)])


def make_cluster(schema, capacity=3, refill=0.5):
    quotas = TenantQuotaManager(default_capacity=capacity,
                                default_refill_rate=refill)
    cluster = PinotCluster(num_servers=1, quotas=quotas)
    cluster.create_table(TableConfig.offline("events", schema,
                                             tenant="analytics"))
    cluster.upload_records(
        "events", [{"c": "x", "v": i} for i in range(100)]
    )
    return cluster


class TestThrottling:
    def test_tenant_throttled_after_burst(self, schema):
        # Each query costs 1 admission token plus a small execution-time
        # charge, so a capacity just under 4 admits exactly 3 queries.
        cluster = make_cluster(schema, capacity=3.9)
        for __ in range(3):
            cluster.execute("SELECT count(*) FROM events", now=0.0)
        with pytest.raises(ThrottledError) as excinfo:
            cluster.execute("SELECT count(*) FROM events", now=0.0)
        assert excinfo.value.tenant == "analytics"
        assert excinfo.value.retry_after_s > 0

    def test_bucket_refills_with_time(self, schema):
        cluster = make_cluster(schema, capacity=2.5, refill=1.0)
        cluster.execute("SELECT count(*) FROM events", now=0.0)
        cluster.execute("SELECT count(*) FROM events", now=0.0)
        with pytest.raises(ThrottledError):
            cluster.execute("SELECT count(*) FROM events", now=0.0)
        # One virtual second later a token is back.
        response = cluster.execute("SELECT count(*) FROM events", now=1.1)
        assert response.rows[0][0] == 100

    def test_tenant_override_per_query(self, schema):
        cluster = make_cluster(schema, capacity=1)
        cluster.execute("SELECT count(*) FROM events", now=0.0)
        with pytest.raises(ThrottledError):
            cluster.execute("SELECT count(*) FROM events", now=0.0)
        # A different tenant's bucket is unaffected.
        response = cluster.execute("SELECT count(*) FROM events",
                                   tenant="other", now=0.0)
        assert response.rows[0][0] == 100

    def test_default_cluster_has_no_practical_limit(self, schema):
        cluster = PinotCluster(num_servers=1)
        cluster.create_table(TableConfig.offline("events", schema))
        cluster.upload_records("events", [{"c": "x", "v": 1}])
        for __ in range(50):
            cluster.execute("SELECT count(*) FROM events")

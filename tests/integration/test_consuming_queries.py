"""Query correctness on CONSUMING segments (freshness semantics)."""

import pytest

from repro.cluster.pinot import PinotCluster
from repro.cluster.table import StreamConfig, TableConfig
from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column


@pytest.fixture
def cluster():
    schema = Schema("clicks", [
        dimension("userId", DataType.LONG), dimension("page"),
        metric("n", DataType.LONG), time_column("ts", DataType.LONG),
    ])
    cluster = PinotCluster(num_servers=2)
    cluster.create_kafka_topic("t", 1)
    cluster.create_table(TableConfig.realtime(
        "clicks", schema,
        StreamConfig("t", flush_threshold_rows=1_000_000,
                     records_per_poll=100),
        replication=1,
    ))
    return cluster


def events(n):
    return [{"userId": i % 7, "page": f"p{i % 3}", "n": 1, "ts": i}
            for i in range(n)]


class TestConsumingQueries:
    def test_filters_on_consuming_rows(self, cluster):
        cluster.ingest("t", events(100))
        cluster.process_realtime(ticks=1)
        response = cluster.execute(
            "SELECT count(*) FROM clicks WHERE userId = 3"
        )
        expected = sum(1 for e in events(100) if e["userId"] == 3)
        assert response.rows[0][0] == expected

    def test_group_by_on_consuming_rows(self, cluster):
        cluster.ingest("t", events(100))
        cluster.process_realtime(ticks=1)
        response = cluster.execute(
            "SELECT sum(n) FROM clicks GROUP BY page TOP 5"
        )
        got = {row[0]: row[1] for row in response.rows}
        expected = {}
        for e in events(100):
            expected[e["page"]] = expected.get(e["page"], 0) + 1
        assert got == expected

    def test_results_grow_monotonically(self, cluster):
        cluster.ingest("t", events(500))
        previous = 0
        for __ in range(5):
            cluster.process_realtime(ticks=1)
            count = cluster.execute(
                "SELECT count(*) FROM clicks"
            ).rows[0][0]
            assert count >= previous
            previous = count
        assert previous == 500

    def test_snapshot_stable_between_ticks(self, cluster):
        """Two queries with no new consumption see the same rows."""
        cluster.ingest("t", events(150))
        cluster.process_realtime(ticks=2)
        first = cluster.execute("SELECT count(*) FROM clicks").rows[0][0]
        second = cluster.execute("SELECT count(*) FROM clicks").rows[0][0]
        assert first == second

    def test_time_filter_on_consuming_rows(self, cluster):
        cluster.ingest("t", events(100))
        cluster.process_realtime(ticks=1)
        response = cluster.execute(
            "SELECT count(*) FROM clicks WHERE ts >= 50"
        )
        assert response.rows[0][0] == 50

"""End-to-end offline path: build, upload, query, scale, survive."""

import random

import pytest

from repro.cluster.pinot import PinotCluster
from repro.cluster.table import PartitionConfig, TableConfig
from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column
from repro.segment.builder import SegmentConfig
from repro.startree.builder import StarTreeConfig


@pytest.fixture(scope="module")
def schema():
    return Schema("events", [
        dimension("memberId", DataType.LONG), dimension("country"),
        dimension("platform"),
        metric("views", DataType.LONG), time_column("day", DataType.INT),
    ])


@pytest.fixture(scope="module")
def dataset():
    rng = random.Random(99)
    return [
        {"memberId": rng.randrange(200),
         "country": rng.choice(["us", "de", "in", "br"]),
         "platform": rng.choice(["ios", "android", "web"]),
         "views": rng.randint(1, 5), "day": 17000 + rng.randrange(14)}
        for __ in range(8000)
    ]


@pytest.fixture(scope="module")
def cluster(schema, dataset):
    cluster = PinotCluster(num_servers=4, num_brokers=2)
    cluster.create_table(TableConfig.offline(
        "events", schema, replication=2,
        segment_config=SegmentConfig(
            sorted_column="memberId",
            inverted_columns=("country",),
            star_tree=StarTreeConfig(
                dimensions=("country", "platform", "day"),
                max_leaf_records=50),
        ),
    ))
    cluster.upload_records("events", dataset, rows_per_segment=2000)
    return cluster


def brute(dataset, predicate=lambda r: True):
    return [r for r in dataset if predicate(r)]


class TestQueryCorrectness:
    def test_count_star(self, cluster, dataset):
        assert cluster.execute(
            "SELECT count(*) FROM events"
        ).rows[0][0] == len(dataset)

    def test_filtered_aggregation(self, cluster, dataset):
        rows = brute(dataset,
                     lambda r: r["country"] == "de" and r["views"] >= 3)
        response = cluster.execute(
            "SELECT count(*), sum(views) FROM events "
            "WHERE country = 'de' AND views >= 3"
        )
        assert response.rows[0] == (
            len(rows), float(sum(r["views"] for r in rows))
        )

    def test_group_by_across_segments_and_servers(self, cluster, dataset):
        expected = {}
        for r in dataset:
            expected[r["country"]] = expected.get(r["country"], 0) \
                + r["views"]
        response = cluster.execute(
            "SELECT sum(views) FROM events GROUP BY country TOP 10"
        )
        assert {row[0]: row[1] for row in response.rows} == expected

    def test_point_lookup_on_sorted_column(self, cluster, dataset):
        member = dataset[0]["memberId"]
        rows = brute(dataset, lambda r: r["memberId"] == member)
        response = cluster.execute(
            f"SELECT count(*) FROM events WHERE memberId = {member}"
        )
        assert response.rows[0][0] == len(rows)

    def test_selection_with_order(self, cluster, dataset):
        response = cluster.execute(
            "SELECT memberId, views FROM events WHERE country = 'us' "
            "ORDER BY views DESC, memberId LIMIT 10"
        )
        assert len(response.rows) == 10
        views = [row[1] for row in response.rows]
        assert views == sorted(views, reverse=True)

    def test_distinctcount_across_merge(self, cluster, dataset):
        expected = len({r["memberId"] for r in dataset})
        response = cluster.execute(
            "SELECT distinctcount(memberId) FROM events"
        )
        assert response.rows[0][0] == expected

    def test_time_filter_prunes_but_stays_correct(self, cluster, dataset):
        rows = brute(dataset, lambda r: 17002 <= r["day"] <= 17004)
        response = cluster.execute(
            "SELECT count(*) FROM events "
            "WHERE day BETWEEN 17002 AND 17004"
        )
        assert response.rows[0][0] == len(rows)


class TestResilience:
    def test_replication_survives_one_server(self, schema, dataset):
        cluster = PinotCluster(num_servers=3)
        cluster.create_table(TableConfig.offline("events", schema,
                                                 replication=2))
        cluster.upload_records("events", dataset, rows_per_segment=2000)
        cluster.kill_server("server-2")
        response = cluster.execute("SELECT count(*) FROM events")
        assert response.rows[0][0] == len(dataset)
        assert not response.is_partial

    def test_scale_out_with_blank_node(self, schema, dataset):
        cluster = PinotCluster(num_servers=2)
        cluster.create_table(TableConfig.offline("events", schema,
                                                 replication=1))
        cluster.upload_records("events", dataset, rows_per_segment=2000)
        cluster.add_server()
        # Future uploads land on the least-loaded (new) server.
        cluster.upload_records("events", dataset[:2000],
                               rows_per_segment=2000)
        assert cluster.servers[-1].hosted_segments("events_OFFLINE")
        response = cluster.execute("SELECT count(*) FROM events")
        assert response.rows[0][0] == len(dataset) + 2000


class TestFileBackedObjectStore:
    def test_full_flow_through_disk_format(self, schema, dataset,
                                           tmp_path):
        from repro.cluster.objectstore import FileObjectStore

        cluster = PinotCluster(
            num_servers=2, object_store=FileObjectStore(tmp_path)
        )
        cluster.create_table(TableConfig.offline("events", schema))
        cluster.upload_records("events", dataset[:3000],
                               rows_per_segment=1000)
        response = cluster.execute(
            "SELECT count(*), max(views) FROM events"
        )
        assert response.rows[0][0] == 3000
        assert (tmp_path / "events_OFFLINE").exists()


class TestPartitionedTables:
    def test_partitioned_upload_and_query(self, schema, dataset):
        cluster = PinotCluster(num_servers=4)
        cluster.create_table(TableConfig.offline(
            "events", schema, replication=1,
            partition=PartitionConfig("memberId", 4),
            routing_strategy="partition_aware",
        ))
        cluster.upload_records("events", dataset, rows_per_segment=1000)
        member = dataset[10]["memberId"]
        rows = brute(dataset, lambda r: r["memberId"] == member)
        response = cluster.execute(
            f"SELECT count(*) FROM events WHERE memberId = {member}"
        )
        assert response.rows[0][0] == len(rows)

    def test_partition_routing_reduces_fanout(self, schema, dataset):
        cluster = PinotCluster(num_servers=4)
        cluster.create_table(TableConfig.offline(
            "events", schema, replication=1,
            partition=PartitionConfig("memberId", 4),
            routing_strategy="partition_aware",
        ))
        cluster.upload_records("events", dataset, rows_per_segment=1000)
        broker = cluster.brokers[0]
        point = broker.fanout_for(
            "SELECT count(*) FROM events WHERE memberId = 7"
        )
        full = broker.fanout_for("SELECT count(*) FROM events")
        assert point < full

"""End-to-end realtime ingestion tests (§3.3.6)."""

import pytest

from repro.cluster.pinot import PinotCluster
from repro.cluster.table import StreamConfig, TableConfig
from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column


@pytest.fixture
def schema():
    return Schema("clicks", [
        dimension("userId", DataType.LONG), dimension("page"),
        metric("n", DataType.LONG), time_column("ts", DataType.LONG),
    ])


def make_cluster(schema, flush_rows=200, replication=2, partitions=2,
                 flush_ticks=None):
    cluster = PinotCluster(num_servers=3)
    cluster.create_kafka_topic("clicks-topic", partitions)
    cluster.create_table(TableConfig.realtime(
        "clicks", schema,
        StreamConfig("clicks-topic", flush_threshold_rows=flush_rows,
                     flush_threshold_ticks=flush_ticks,
                     records_per_poll=50),
        replication=replication,
    ))
    return cluster


def events(n, start=0):
    return [{"userId": start + i, "page": f"p{i % 5}", "n": 1,
             "ts": start + i} for i in range(n)]


class TestIngestion:
    def test_counts_exact_after_drain(self, schema):
        cluster = make_cluster(schema)
        cluster.ingest("clicks-topic", events(1000), key_column="userId")
        cluster.drain_realtime()
        response = cluster.execute("SELECT count(*), sum(n) FROM clicks")
        assert response.rows[0] == (1000, 1000.0)
        assert not response.is_partial

    def test_fresh_data_queryable_mid_consumption(self, schema):
        """Seconds-level freshness: rows are visible while the segment
        is still CONSUMING, before any flush."""
        cluster = make_cluster(schema, flush_rows=100_000)
        cluster.ingest("clicks-topic", events(120), key_column="userId")
        cluster.process_realtime(ticks=1)  # one poll: <= 50/partition
        response = cluster.execute("SELECT count(*) FROM clicks")
        assert 0 < response.rows[0][0] <= 120
        cluster.drain_realtime()
        assert cluster.execute(
            "SELECT count(*) FROM clicks"
        ).rows[0][0] == 120

    def test_segments_roll_over(self, schema):
        cluster = make_cluster(schema, flush_rows=100, partitions=1)
        cluster.ingest("clicks-topic", events(350), key_column="userId")
        cluster.drain_realtime()
        segments = cluster.leader_controller().list_segments(
            "clicks_REALTIME"
        )
        # 350 rows at 100/segment: at least 3 sealed + 1 consuming.
        assert len(segments) >= 4
        assert cluster.execute(
            "SELECT count(*) FROM clicks"
        ).rows[0][0] == 350

    def test_time_based_flush(self, schema):
        cluster = make_cluster(schema, flush_rows=100_000, flush_ticks=3,
                               partitions=1)
        cluster.ingest("clicks-topic", events(40), key_column="userId")
        cluster.process_realtime(ticks=10)
        meta = cluster.helix.get_property(
            "realtime/clicks_REALTIME/clicks_REALTIME__0__0"
        )
        assert meta["status"] == "DONE"
        assert cluster.execute(
            "SELECT count(*) FROM clicks"
        ).rows[0][0] == 40


class TestReplicaConsistency:
    def test_replicas_identical_after_commit(self, schema):
        """The completion protocol's core guarantee: all replicas of a
        committed segment hold the exact same rows."""
        cluster = make_cluster(schema, flush_rows=100, partitions=1,
                               replication=2)
        cluster.ingest("clicks-topic", events(250), key_column="userId")
        cluster.drain_realtime()

        view = cluster.helix.external_view("clicks_REALTIME")
        committed = [
            segment for segment, replicas in view.items()
            if all(state == "ONLINE" for state in replicas.values())
        ]
        assert committed
        for segment_name in committed:
            replicas = [
                cluster.server(instance).segment("clicks_REALTIME",
                                                 segment_name)
                for instance in view[segment_name]
            ]
            assert len(replicas) == 2
            rows = [list(replica.iter_records()) for replica in replicas]
            assert rows[0] == rows[1]

    def test_commit_offsets_recorded(self, schema):
        cluster = make_cluster(schema, flush_rows=100, partitions=1)
        cluster.ingest("clicks-topic", events(150), key_column="userId")
        cluster.drain_realtime()
        meta = cluster.helix.get_property(
            "realtime/clicks_REALTIME/clicks_REALTIME__0__0"
        )
        assert meta["status"] == "DONE"
        assert meta["end_offset"] >= 100
        next_meta = cluster.helix.get_property(
            "realtime/clicks_REALTIME/clicks_REALTIME__0__1"
        )
        assert next_meta["start_offset"] == meta["end_offset"]


class TestFailover:
    def test_controller_failover_does_not_lose_data(self, schema):
        cluster = make_cluster(schema, flush_rows=100, partitions=1)
        cluster.ingest("clicks-topic", events(150), key_column="userId")
        cluster.drain_realtime()
        leader = cluster.leader_controller()
        cluster.kill_controller(leader.instance_id)
        cluster.ingest("clicks-topic", events(150, start=150),
                       key_column="userId")
        cluster.drain_realtime()
        assert cluster.execute(
            "SELECT count(*) FROM clicks"
        ).rows[0][0] == 300

    def test_server_loss_keeps_table_queryable(self, schema):
        cluster = make_cluster(schema, flush_rows=100, partitions=2,
                               replication=2)
        cluster.ingest("clicks-topic", events(400), key_column="userId")
        cluster.drain_realtime()
        cluster.kill_server(cluster.servers[0].instance_id)
        response = cluster.execute("SELECT count(*) FROM clicks")
        assert response.rows[0][0] == 400
        assert not response.is_partial

    def test_sealed_replica_kept_not_redownloaded(self, schema):
        """A replica whose local offset matches the committed offset
        KEEPs its local copy (minimal network transfer)."""
        cluster = make_cluster(schema, flush_rows=100, partitions=1,
                               replication=2)
        cluster.ingest("clicks-topic", events(120), key_column="userId")
        cluster.drain_realtime()
        view = cluster.helix.external_view("clicks_REALTIME")
        segment_name = "clicks_REALTIME__0__0"
        hosts = list(view[segment_name])
        assert len(hosts) == 2
        for host in hosts:
            segment = cluster.server(host).segment("clicks_REALTIME",
                                                   segment_name)
            assert segment.num_docs == 100

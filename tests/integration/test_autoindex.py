"""End-to-end test of §5.2's automatic index addition."""

import pytest

from repro.cluster.autoindex import AutoIndexAnalyzer
from repro.cluster.pinot import PinotCluster
from repro.cluster.table import TableConfig
from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric


@pytest.fixture
def cluster():
    schema = Schema("events", [
        dimension("country"), dimension("browser"),
        metric("views", DataType.LONG),
    ])
    cluster = PinotCluster(num_servers=2, num_minions=1)
    cluster.create_table(TableConfig.offline("events", schema))
    records = [
        {"country": f"c{i % 40}", "browser": f"b{i % 5}", "views": 1}
        for i in range(20_000)
    ]
    cluster.upload_records("events", records, rows_per_segment=10_000)
    return cluster


def hammer(cluster, n=30):
    for i in range(n):
        cluster.execute(
            f"SELECT sum(views) FROM events WHERE country = 'c{i % 40}'"
        )


class TestAutoIndex:
    def test_query_log_recorded(self, cluster):
        hammer(cluster, n=5)
        log = cluster.brokers[0].query_log
        assert len(log) == 5
        assert log[0].filter_columns == {"country"}
        assert log[0].entries_scanned_in_filter > 0

    def test_recommendation_from_hot_column(self, cluster):
        hammer(cluster)
        analyzer = AutoIndexAnalyzer(cluster.leader_controller(),
                                     min_queries=20,
                                     min_entries_scanned=10_000)
        recs = analyzer.recommend(cluster.brokers)
        assert [r.column for r in recs] == ["country"]
        assert recs[0].queries_filtering == 30

    def test_cold_column_not_recommended(self, cluster):
        hammer(cluster, n=25)
        cluster.execute("SELECT sum(views) FROM events "
                        "WHERE browser = 'b1'")
        analyzer = AutoIndexAnalyzer(cluster.leader_controller(),
                                     min_queries=20,
                                     min_entries_scanned=10_000)
        recs = analyzer.recommend(cluster.brokers)
        assert all(r.column != "browser" for r in recs)

    def test_apply_backfills_and_speeds_up(self, cluster):
        hammer(cluster)
        store = cluster.object_store
        segment_name = store.list_segments("events_OFFLINE")[0]
        assert store.get("events_OFFLINE",
                         segment_name).column("country").inverted is None

        analyzer = AutoIndexAnalyzer(cluster.leader_controller(),
                                     min_queries=20,
                                     min_entries_scanned=10_000)
        task_ids = analyzer.apply(cluster.brokers)
        assert len(task_ids) == 1
        cluster.run_minions()

        # Segments now carry the index...
        reloaded = store.get("events_OFFLINE", segment_name)
        assert reloaded.column("country").inverted is not None
        # ...the table config indexes the column for future segments...
        config = cluster.leader_controller().table_config("events_OFFLINE")
        assert "country" in config.segment_config.inverted_columns
        # ...queries still answer correctly and scan fewer entries.
        before = cluster.brokers[0].query_log[-1]
        response = cluster.execute(
            "SELECT sum(views) FROM events WHERE country = 'c1'"
        )
        assert response.rows[0][0] == 500.0
        after = cluster.brokers[0].query_log[-1]
        assert after.entries_scanned_in_filter < \
            before.entries_scanned_in_filter

    def test_apply_is_idempotent(self, cluster):
        hammer(cluster)
        analyzer = AutoIndexAnalyzer(cluster.leader_controller(),
                                     min_queries=20,
                                     min_entries_scanned=10_000)
        assert len(analyzer.apply(cluster.brokers)) == 1
        cluster.run_minions()
        # Second pass: the column is already configured, nothing to do.
        assert analyzer.apply(cluster.brokers) == []

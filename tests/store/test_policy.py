"""Eviction-policy unit tests: LRU recency order and SIEVE's
scan resistance (one-touch scan keys leave before re-referenced
working-set keys)."""

import pytest

from repro.store.policy import LruPolicy, SievePolicy, make_policy

A, B, C, D = ("t", "a"), ("t", "b"), ("t", "c"), ("t", "d")


def drain(policy, evictable=lambda key: True):
    """Evict until empty, returning the victim order."""
    order = []
    while True:
        victim = policy.victim(evictable)
        if victim is None:
            break
        order.append(victim)
        policy.on_remove(victim)
    return order


class TestLru:
    def test_victims_in_insertion_order_without_accesses(self):
        policy = LruPolicy()
        for key in (A, B, C):
            policy.on_admit(key)
        assert drain(policy) == [A, B, C]

    def test_access_moves_to_most_recent(self):
        policy = LruPolicy()
        for key in (A, B, C):
            policy.on_admit(key)
        policy.on_access(A)
        assert policy.victim(lambda key: True) == B

    def test_skips_unevictable(self):
        policy = LruPolicy()
        for key in (A, B, C):
            policy.on_admit(key)
        assert policy.victim(lambda key: key != A) == B
        assert policy.victim(lambda key: False) is None

    def test_remove_unknown_key_is_noop(self):
        policy = LruPolicy()
        policy.on_remove(A)
        policy.on_access(A)
        assert policy.victim(lambda key: True) is None


class TestSieve:
    def test_evicts_unvisited_first(self):
        policy = SievePolicy()
        for key in (A, B, C):
            policy.on_admit(key)
        policy.on_access(A)  # sets A's visited bit
        assert policy.victim(lambda key: True) == B

    def test_visited_bit_gives_second_chance_once(self):
        policy = SievePolicy()
        for key in (A, B):
            policy.on_admit(key)
        policy.on_access(A)
        policy.on_access(B)
        # First sweep clears both visited bits, then evicts the first
        # unvisited entry from the hand.
        victim = policy.victim(lambda key: True)
        assert victim == A

    def test_scan_resistance(self):
        """A one-touch scan must not flush the re-referenced working
        set: scan keys are evicted before working-set keys (the LRU
        failure mode SIEVE exists to avoid)."""
        policy = SievePolicy()
        working = [("t", f"hot-{i}") for i in range(3)]
        for key in working:
            policy.on_admit(key)
            policy.on_access(key)  # hot: referenced again after admit
        scans = [("t", f"scan-{i}") for i in range(3)]
        for key in scans:
            policy.on_admit(key)  # scanned once, never re-referenced
        victims = []
        for __ in range(len(scans)):
            victim = policy.victim(lambda key: True)
            victims.append(victim)
            policy.on_remove(victim)
        assert victims == scans

        # Contrast: LRU evicts the working set first under the same
        # access pattern (hot keys are the oldest entries).
        lru = LruPolicy()
        for key in working:
            lru.on_admit(key)
            lru.on_access(key)
        for key in scans:
            lru.on_admit(key)
        assert lru.victim(lambda key: True) == working[0]

    def test_hand_survives_victim_removal(self):
        policy = SievePolicy()
        for key in (A, B, C, D):
            policy.on_admit(key)
        policy.on_access(A)
        victim = policy.victim(lambda key: True)
        assert victim == B
        policy.on_remove(victim)
        assert policy.victim(lambda key: True) == C

    def test_skips_unevictable_without_clearing_visited(self):
        policy = SievePolicy()
        for key in (A, B):
            policy.on_admit(key)
        policy.on_access(A)
        # A is pinned: the sweep must pass over it without spending its
        # visited bit, then evict B.
        assert policy.victim(lambda key: key != A) == B
        policy.on_remove(B)
        # A's visited bit still buys it a second chance now.
        policy.on_admit(C)
        assert policy.victim(lambda key: True) == C

    def test_all_pinned_returns_none(self):
        policy = SievePolicy()
        for key in (A, B):
            policy.on_admit(key)
        assert policy.victim(lambda key: False) is None


def test_make_policy():
    assert isinstance(make_policy("lru"), LruPolicy)
    assert isinstance(make_policy("sieve"), SievePolicy)
    with pytest.raises(ValueError):
        make_policy("clock")

"""Property: the full tiered-storage round trip is lossless.

Hypothesis generates random upsert histories; each is consumed into a
mutable segment, sealed, uploaded through the on-disk format
(FileObjectStore), "evicted", and cold-reloaded. The reloaded segment
must be byte-identical column by column, the primary-key index rebuilt
from the reloaded copy must mask exactly the same docIds, and every
query must answer identically over the original and the reloaded
segment on both engines (vectorized and scalar)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.objectstore import FileObjectStore
from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column
from repro.engine.executor import execute_segment
from repro.engine.merge import combine_segment_results, reduce_server_results
from repro.pql.parser import parse
from repro.pql.rewriter import optimize
from repro.segment.builder import SegmentConfig
from repro.segment.mutable import MutableSegment
from repro.upsert import TableUpsertManager, UpsertConfig

TABLE = "events_REALTIME"
SEGMENT = "events__0__0"
NUM_KEYS = 6
COUNTRIES = list("uvw")

QUERIES = [
    "SELECT count(*) FROM t",
    "SELECT sum(m), min(m), max(m) FROM t",
    "SELECT sum(m) FROM t WHERE c = 'u' OR m > 20",
    "SELECT sum(m), count(*) FROM t GROUP BY c TOP 10",
    "SELECT distinctcount(k) FROM t WHERE m <= 30",
]

histories = st.lists(
    st.tuples(st.integers(0, NUM_KEYS - 1),   # primary key
              st.integers(0, 2),              # country index
              st.integers(0, 40)),            # metric
    min_size=1, max_size=50,
)


def schema():
    return Schema("events", [
        dimension("k", DataType.LONG), dimension("c"),
        metric("m", DataType.LONG), time_column("day", DataType.INT),
    ])


def assert_segments_identical(original, reloaded):
    assert reloaded.name == original.name
    assert reloaded.num_docs == original.num_docs
    assert reloaded.schema.column_names == original.schema.column_names
    for name in original.schema.column_names:
        ours, theirs = original.column(name), reloaded.column(name)
        assert np.array_equal(ours.dict_ids(), theirs.dict_ids()), name
        assert np.array_equal(ours.values(), theirs.values()), name
        assert ours.dictionary.cardinality == theirs.dictionary.cardinality
    assert original.metadata.min_time == reloaded.metadata.min_time
    assert original.metadata.max_time == reloaded.metadata.max_time


def mask_of(manager, num_docs):
    selection = manager.selection_for(SEGMENT, num_docs)
    if selection is None:
        return np.ones(num_docs, dtype=bool)
    return selection.mask(num_docs)


def rows(pql, segment, vectorized, valid_docs=None):
    query = optimize(parse(pql))
    result = execute_segment(segment, query, vectorized=vectorized,
                             valid_docs=valid_docs)
    server = combine_segment_results(query, [result])
    response = reduce_server_results(query, [server])
    if query.group_by:
        width = len(query.group_by)
        return {tuple(r[:width]): tuple(r[width:])
                for r in response.rows}
    return response.rows


@settings(max_examples=30, deadline=None)
@given(history=histories)
def test_seal_upload_evict_reload_is_lossless(history, tmp_path_factory):
    store = FileObjectStore(tmp_path_factory.mktemp("deepstore"))
    mutable = MutableSegment(SEGMENT, TABLE, schema(), SegmentConfig())
    config = UpsertConfig(mode="upsert", key_columns=("k",))
    manager = TableUpsertManager(TABLE, config)
    for key, country, m in history:
        record = {"k": key, "c": COUNTRIES[country], "m": m,
                  "day": 17000 + (m % 4)}
        manager.apply(SEGMENT, mutable.num_docs, record)
        mutable.index(record)
    sealed = mutable.seal()

    # Upload through the real on-disk format, then cold-reload — the
    # deep-store round trip every eviction forces on the next query.
    store.put(TABLE, sealed)
    reloaded = store.get(TABLE, SEGMENT)
    assert reloaded is not sealed
    assert_segments_identical(sealed, reloaded)
    assert (reloaded.estimated_size_bytes()
            == sealed.estimated_size_bytes())

    # The PK index rebuilt from the reloaded copy (what a server does
    # after restart/failover) masks exactly the same docIds.
    rebuilt = TableUpsertManager(TABLE, config)
    rebuilt.rebuild([reloaded], [])
    mask_before = mask_of(manager, sealed.num_docs)
    mask_after = mask_of(rebuilt, reloaded.num_docs)
    assert np.array_equal(mask_before, mask_after)

    # Query equivalence on both engines, masked and unmasked.
    sel_before = manager.selection_for(SEGMENT, sealed.num_docs)
    sel_after = rebuilt.selection_for(SEGMENT, reloaded.num_docs)
    for pql in QUERIES:
        for vectorized in (True, False):
            assert (rows(pql, sealed, vectorized)
                    == rows(pql, reloaded, vectorized)), pql
            assert (rows(pql, sealed, vectorized, sel_before)
                    == rows(pql, reloaded, vectorized, sel_after)), pql

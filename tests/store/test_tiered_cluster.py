"""Tiered storage through the whole cluster: lazy loads, budget
pressure, the eviction → invalidation chain, controller retention
tiering, cold-load tracing over the transport, and metrics export."""

import pytest

from repro.cluster.pinot import PinotCluster
from repro.cluster.table import StreamConfig, TableConfig
from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column
from repro.net import LinkModel, SimClock, Transport
from repro.store import DEEPSTORE_ADDRESS
from repro.upsert import UpsertConfig


@pytest.fixture
def schema():
    return Schema("events", [
        dimension("country"), metric("views", DataType.LONG),
        time_column("day", DataType.INT),
    ])


def records(days, per_day=10):
    return [{"country": "us" if i % 2 else "de", "views": i, "day": day}
            for day in days for i in range(per_day)]


def spans_named(tree, name):
    found = [tree] if tree["name"] == name else []
    for child in tree["children"]:
        found.extend(spans_named(child, name))
    return found


def total_resident(cluster, table):
    return sum(
        1 for server in cluster.servers
        for entry in server.segment_cache.entries(table)
        if entry.resident
    )


class TestLazyLoading:
    def test_uploaded_segments_stay_remote_until_queried(self, schema):
        cluster = PinotCluster(num_servers=2,
                               store_budget_bytes=1 << 20)
        cluster.create_table(TableConfig.offline("events", schema))
        cluster.upload_records("events", records([17000, 17001]),
                               rows_per_segment=10)
        table = "events_OFFLINE"
        # ONLINE transitions registered refs without loading payloads.
        assert total_resident(cluster, table) == 0
        hosted = sum(len(server.segment_cache.names(table))
                     for server in cluster.servers)
        assert hosted > 0
        # Doc counts are exact from the refs alone.
        assert sum(s.num_docs(table) for s in cluster.servers) == 20

        response = cluster.execute("SELECT sum(views) FROM events")
        assert response.rows[0][0] == 2 * sum(range(10))
        assert total_resident(cluster, table) > 0
        misses = sum(s.metrics.count("store_misses")
                     for s in cluster.servers)
        assert misses > 0

    def test_results_identical_across_evict_and_reload(self, schema):
        cluster = PinotCluster(num_servers=2, store_budget_bytes=1 << 20)
        cluster.create_table(TableConfig.offline("events", schema))
        cluster.upload_records("events", records([17000, 17001, 17002]),
                               rows_per_segment=7)
        queries = [
            "SELECT count(*) FROM events",
            "SELECT sum(views) FROM events GROUP BY country",
            "SELECT min(views), max(views) FROM events WHERE day > 17000",
        ]
        before = [cluster.execute(q + " OPTION(skipCache=true)").rows
                  for q in queries]
        for server in cluster.servers:
            assert server.segment_cache.evict_all() > 0
        assert total_resident(cluster, "events_OFFLINE") == 0
        after = [cluster.execute(q + " OPTION(skipCache=true)").rows
                 for q in queries]
        assert before == after

    def test_budget_pressure_keeps_serving(self, schema):
        """A budget far smaller than the table forces constant
        evict/reload churn; answers must not change."""
        cluster = PinotCluster(num_servers=1, store_budget_bytes=2500,
                               store_policy="sieve")
        cluster.create_table(TableConfig.offline("events", schema))
        cluster.upload_records(
            "events", records([17000, 17001, 17002, 17003], per_day=30),
            rows_per_segment=30,
        )
        for __ in range(3):
            response = cluster.execute(
                "SELECT count(*) FROM events OPTION(skipCache=true)")
            assert response.rows[0][0] == 120
        server = cluster.servers[0]
        assert server.metrics.count("store_evictions") > 0
        cache = server.segment_cache
        assert cache.resident_bytes <= cache.budget_bytes


class TestEvictionInvalidation:
    def test_eviction_invalidates_hot_cache_and_publishes(self, schema):
        cluster = PinotCluster(num_servers=1)
        cluster.create_table(TableConfig.offline("events", schema))
        cluster.upload_records("events", records([17000]))
        # Warm the hot-structure cache.
        cluster.execute("SELECT sum(views) FROM events")
        server = cluster.servers[0]
        assert len(server.hot_cache) > 0

        events = []
        cluster.helix.invalidation_bus.subscribe(events.append)
        assert server.segment_cache.evict_all() == 1
        assert len(server.hot_cache) == 0
        evicted = [e for e in events if e.reason == "segment_evicted"]
        assert len(evicted) == 1
        assert evicted[0].table == "events_OFFLINE"

    def test_broker_cache_rotates_on_eviction(self, schema):
        cluster = PinotCluster(num_servers=1)
        cluster.create_table(TableConfig.offline("events", schema))
        cluster.upload_records("events", records([17000]))
        pql = "SELECT count(*) FROM events"
        cluster.execute(pql)
        assert cluster.execute(pql).cache_hit
        cluster.servers[0].segment_cache.evict_all()
        # The epoch bump changed every key: no stale hit possible.
        response = cluster.execute(pql)
        assert not response.cache_hit
        assert response.rows[0][0] == 10


class TestRetentionTiering:
    def _cluster(self, schema):
        cluster = PinotCluster(num_servers=2)
        cluster.create_table(TableConfig.offline(
            "events", schema, tier_to_remote_after=2,
        ))
        cluster.upload_records("events", records([17000]),
                               rows_per_segment=100)
        cluster.upload_records("events", records([17005]),
                               rows_per_segment=100)
        return cluster

    def test_aged_segments_go_remote_only_but_stay_queryable(self, schema):
        cluster = self._cluster(schema)
        baseline = cluster.execute(
            "SELECT count(*) FROM events OPTION(skipCache=true)").rows
        events = []
        cluster.helix.invalidation_bus.subscribe(events.append)

        tiered = cluster.run_tiering(now=17006)
        assert tiered == ["events_OFFLINE_00000"]  # day 17000 aged out
        assert [e.segment for e in events
                if e.reason == "segment_tiered"] == tiered
        meta = cluster.helix.get_property(
            "segments/events_OFFLINE/events_OFFLINE_00000")
        assert meta["tier"] == "remote"
        for server in cluster.servers:
            entry = server.segment_cache.entry("events_OFFLINE",
                                               tiered[0])
            if entry is not None:
                assert entry.remote_only
                assert not entry.resident

        # Still queryable, and the load is transient (per-query pin).
        after = cluster.execute(
            "SELECT count(*) FROM events OPTION(skipCache=true)").rows
        assert after == baseline
        for server in cluster.servers:
            entry = server.segment_cache.entry("events_OFFLINE",
                                               tiered[0])
            if entry is not None:
                assert not entry.resident

        # Idempotent: already-tiered segments are not re-tiered.
        assert cluster.run_tiering(now=17006) == []

    def test_tiering_requires_threshold(self, schema):
        cluster = PinotCluster(num_servers=1)
        cluster.create_table(TableConfig.offline("events", schema))
        cluster.upload_records("events", records([17000]))
        assert cluster.run_tiering(now=20000) == []

    def test_tier_threshold_round_trips_config(self, schema):
        config = TableConfig.offline("events", schema,
                                     tier_to_remote_after=7)
        restored = TableConfig.from_dict(config.to_dict())
        assert restored.tier_to_remote_after == 7


class TestColdLoadTracing:
    def test_segment_load_span_carries_link_latency(self, schema):
        clock = SimClock(auto_advance=False)
        transport = Transport(clock, seed=7)
        transport.set_link(None, DEEPSTORE_ADDRESS,
                           LinkModel(latency_s=0.030))
        cluster = PinotCluster(num_servers=1, clock=clock,
                               transport=transport,
                               store_budget_bytes=1 << 20,
                               trace_sample_rate=1.0)
        cluster.create_table(TableConfig.offline("events", schema))
        cluster.upload_records("events", records([17000]))

        response = cluster.execute(
            "SELECT count(*) FROM events OPTION(trace=true)")
        assert response.rows[0][0] == 10
        loads = spans_named(response.trace, "segment_load")
        assert len(loads) == 1
        span = loads[0]
        # The span sits on the fetch's virtual interval: at least the
        # two 30ms link crossings (request + response).
        assert span["duration_ms"] >= 60.0
        assert span["attributes"]["bytes"] > 0
        # Warm path: no further cold loads.
        warm = cluster.execute(
            "SELECT count(*) FROM events "
            "OPTION(trace=true, skipCache=true)")
        assert spans_named(warm.trace, "segment_load") == []
        server = cluster.servers[0]
        assert server.metrics.count("store_cold_fetches") == 1
        assert server.metrics.stages["segment_load"].max_ms >= 60.0

    def test_cold_read_amplifies_query_latency(self, schema):
        """The miss penalty is visible end-to-end: the first (cold)
        query takes at least the deep-store round trip longer than the
        same query warm."""
        clock = SimClock(auto_advance=False)
        transport = Transport(clock, seed=7)
        transport.set_link(None, DEEPSTORE_ADDRESS,
                           LinkModel(latency_s=0.050))
        cluster = PinotCluster(num_servers=1, clock=clock,
                               transport=transport,
                               store_budget_bytes=1 << 20)
        cluster.create_table(TableConfig.offline("events", schema))
        cluster.upload_records("events", records([17000]))
        pql = "SELECT count(*) FROM events OPTION(skipCache=true)"
        cold = cluster.execute(pql).time_used_ms
        warm = cluster.execute(pql).time_used_ms
        assert cold >= warm + 100.0  # two 50ms crossings


class TestUpsertUnderEviction:
    def test_upsert_results_survive_evict_and_reload(self, schema):
        upsert_schema = Schema("events", [
            dimension("memberId", DataType.LONG), metric("views"),
            time_column("day", DataType.INT),
        ])
        cluster = PinotCluster(num_servers=2)
        cluster.create_kafka_topic("events-topic", 2)
        cluster.create_table(TableConfig.realtime(
            "events", upsert_schema,
            StreamConfig("events-topic", flush_threshold_rows=20),
            replication=2,
            upsert=UpsertConfig(mode="upsert", key_columns=("memberId",)),
        ))
        rows = [{"memberId": i % 8, "views": i, "day": 17000 + (i % 3)}
                for i in range(100)]
        cluster.ingest("events-topic", rows, key_column="memberId")
        cluster.drain_realtime()

        pql = ("SELECT count(*), sum(views) FROM events "
               "OPTION(skipCache=true)")
        before = cluster.execute(pql).rows
        assert before[0][0] == 8  # one live row per key
        for server in cluster.servers:
            server.segment_cache.evict_all()
        after = cluster.execute(pql).rows
        assert after == before


def test_metrics_registry_exports_store_metrics(schema):
    cluster = PinotCluster(num_servers=1, store_budget_bytes=1 << 20)
    cluster.create_table(TableConfig.offline("events", schema))
    cluster.upload_records("events", records([17000]))
    cluster.execute("SELECT count(*) FROM events")
    text = cluster.metrics_registry.export_text()
    for name in ("store_misses", "store_pins", "store_resident_bytes",
                 "store_budget_bytes"):
        assert name in text, name

"""SegmentCache unit tests: lazy refs, pins, the byte budget, eviction
callbacks, transient residency (over-budget and remote-only), and the
store_* metrics."""

import pytest

from repro.common.schema import Schema
from repro.common.types import dimension, metric, time_column
from repro.errors import ClusterError
from repro.obs.metrics import Metrics
from repro.segment.builder import SegmentBuilder
from repro.store import SegmentCache

TABLE = "events_OFFLINE"


def build_segment(name: str, rows: int = 8):
    schema = Schema("events", [
        dimension("country"), metric("views"), time_column("day"),
    ])
    builder = SegmentBuilder(name, TABLE, schema)
    builder.add_all(
        {"country": "de" if i % 2 else "us", "views": i, "day": 100 + i}
        for i in range(rows)
    )
    return builder.build()


def make_cache(budget=None, policy="lru", evictions=None, metrics=None):
    on_evict = None
    if evictions is not None:
        on_evict = lambda table, name: evictions.append((table, name))  # noqa: E731
    return SegmentCache(budget_bytes=budget, policy=policy,
                        on_evict=on_evict, metrics=metrics)


def register_loaded(cache, segment):
    return cache.register(TABLE, segment.name,
                          size_bytes=segment.estimated_size_bytes(),
                          num_docs=segment.num_docs, segment=segment)


class TestHosting:
    def test_lazy_ref_counts_docs_without_residency(self):
        cache = make_cache()
        cache.register(TABLE, "seg-0", size_bytes=4096, num_docs=17)
        assert (TABLE, "seg-0") in cache
        assert cache.num_docs(TABLE) == 17
        assert cache.resident_bytes == 0
        assert cache.resident(TABLE, "seg-0") is None

    def test_pin_miss_fetches_then_hit_does_not(self):
        cache = make_cache()
        segment = build_segment("seg-0")
        cache.register(TABLE, "seg-0", size_bytes=1, num_docs=0)
        calls = []

        def fetch(table, name):
            calls.append((table, name))
            return segment

        assert cache.pin(TABLE, "seg-0", fetch) is segment
        assert cache.pin(TABLE, "seg-0", fetch) is segment
        assert calls == [(TABLE, "seg-0")]
        # The fetch corrected the placeholder ref's sizing.
        entry = cache.entry(TABLE, "seg-0")
        assert entry.size_bytes == segment.estimated_size_bytes()
        assert entry.num_docs == segment.num_docs
        cache.unpin(TABLE, "seg-0")
        cache.unpin(TABLE, "seg-0")
        assert cache.entry(TABLE, "seg-0").pins == 0

    def test_pin_unhosted_raises(self):
        cache = make_cache()
        with pytest.raises(ClusterError):
            cache.pin(TABLE, "ghost", lambda t, n: None)

    def test_drop_does_not_fire_evict_callback(self):
        evictions = []
        cache = make_cache(evictions=evictions)
        register_loaded(cache, build_segment("seg-0"))
        assert cache.drop(TABLE, "seg-0")
        assert not cache.drop(TABLE, "seg-0")
        assert evictions == []
        assert cache.resident_bytes == 0


class TestBudget:
    def test_budget_evicts_oldest_resident(self):
        segments = [build_segment(f"seg-{i}") for i in range(3)]
        size = segments[0].estimated_size_bytes()
        evictions = []
        cache = make_cache(budget=2 * size + size // 2,
                           evictions=evictions)
        for segment in segments:
            register_loaded(cache, segment)
        assert evictions == [(TABLE, "seg-0")]
        assert cache.resident(TABLE, "seg-0") is None
        assert cache.resident(TABLE, "seg-1") is not None
        assert cache.resident_bytes <= cache.budget_bytes
        # The evicted segment is still hosted — just not resident.
        assert (TABLE, "seg-0") in cache

    def test_pinned_segments_are_never_evicted(self):
        segments = [build_segment(f"seg-{i}") for i in range(2)]
        size = segments[0].estimated_size_bytes()
        evictions = []
        cache = make_cache(budget=size, evictions=evictions)
        register_loaded(cache, segments[0])
        cache.pin(TABLE, "seg-0", lambda t, n: segments[0])
        register_loaded(cache, segments[1])
        # seg-0 is pinned, seg-1 just arrived: the budget goes soft
        # rather than evicting the pinned entry.
        assert (TABLE, "seg-0") not in [
            (t, n) for t, n in evictions
        ]
        assert cache.resident(TABLE, "seg-0") is not None
        cache.unpin(TABLE, "seg-0")

    def test_over_budget_segment_is_transient(self):
        segment = build_segment("big", rows=64)
        cache = make_cache(budget=segment.estimated_size_bytes() // 2)
        cache.register(TABLE, "big", size_bytes=1, num_docs=0)
        loaded = cache.pin(TABLE, "big", lambda t, n: segment)
        assert loaded is segment  # served while pinned...
        cache.unpin(TABLE, "big")
        assert cache.resident(TABLE, "big") is None  # ...gone after

    def test_evict_all(self):
        cache = make_cache(budget=None)
        for i in range(3):
            register_loaded(cache, build_segment(f"seg-{i}"))
        cache.pin(TABLE, "seg-1", lambda t, n: None)
        assert cache.evict_all() == 2  # pinned seg-1 stays
        assert cache.resident(TABLE, "seg-1") is not None
        cache.unpin(TABLE, "seg-1")


class TestRemoteOnly:
    def test_set_remote_only_evicts_and_stays_transient(self):
        segment = build_segment("aged")
        evictions = []
        cache = make_cache(evictions=evictions)
        register_loaded(cache, segment)
        assert cache.set_remote_only(TABLE, "aged")
        assert evictions == [(TABLE, "aged")]
        assert cache.resident(TABLE, "aged") is None
        # Still hosted and queryable — but only transiently resident.
        loaded = cache.pin(TABLE, "aged", lambda t, n: segment)
        assert loaded is segment
        cache.unpin(TABLE, "aged")
        assert cache.resident(TABLE, "aged") is None

    def test_set_remote_only_unhosted(self):
        cache = make_cache()
        assert not cache.set_remote_only(TABLE, "ghost")


class TestMetrics:
    def test_counters_and_gauges(self):
        metrics = Metrics()
        segment = build_segment("seg-0")
        cache = make_cache(budget=10 * segment.estimated_size_bytes(),
                           metrics=metrics)
        cache.register(TABLE, "seg-0", size_bytes=1, num_docs=0)
        cache.pin(TABLE, "seg-0", lambda t, n: segment)   # miss
        cache.unpin(TABLE, "seg-0")
        cache.pin(TABLE, "seg-0", lambda t, n: segment)   # hit
        cache.unpin(TABLE, "seg-0")
        cache.evict_all()
        assert metrics.count("store_misses") == 1
        assert metrics.count("store_hits") == 1
        assert metrics.count("store_pins") == 2
        assert metrics.count("store_evictions") == 1
        assert metrics.gauge_value("store_resident_bytes") == 0
        assert metrics.gauge_value("store_budget_bytes") == cache.budget_bytes

    def test_unbounded_budget_gauge_is_minus_one(self):
        metrics = Metrics()
        make_cache(metrics=metrics)
        assert metrics.gauge_value("store_budget_bytes") == -1


def test_sieve_policy_by_name():
    segments = [build_segment(f"seg-{i}") for i in range(3)]
    size = segments[0].estimated_size_bytes()
    cache = make_cache(budget=2 * size + size // 2, policy="sieve")
    register_loaded(cache, segments[0])
    cache.pin(TABLE, "seg-0", lambda t, n: segments[0])  # visited
    cache.unpin(TABLE, "seg-0")
    register_loaded(cache, segments[1])
    register_loaded(cache, segments[2])
    # SIEVE spares the re-referenced seg-0; LRU would have evicted it.
    assert cache.resident(TABLE, "seg-0") is not None
    assert cache.resident(TABLE, "seg-1") is None

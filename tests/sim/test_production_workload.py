"""The sim harness's ``production`` workload: degrade/recover churn
with the failure detector in the loop.

Two invariants ride every run (on top of the default catalogue):

* **ejection discipline** — ejected servers receive only probe
  traffic (``FailureDetector.counters["discipline_violations"]`` stays
  0 on every broker, checked after every op);
* **heal return** — once the epilogue heals all faults and pumps
  probe traffic, no live server may remain ejected.
"""

import pytest

from repro.sim.harness import (
    SIM_HEALTH_POLICY,
    SimulationHarness,
    run_schedule,
    run_seed,
)
from repro.sim.schedule import Op, Schedule

STEPS = 50


def production_schedule(seed, ops=None):
    return Schedule(seed=seed, config={"workload": "production"},
                    ops=list(ops or []))


class TestProductionSweep:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_seed_sweep_stays_clean(self, seed):
        result = run_seed(seed, num_steps=STEPS,
                          config={"workload": "production"})
        assert result.ok, (
            f"seed {seed} violated an invariant: "
            f"{result.violations[0]}\n"
            f"schedule:\n{result.schedule.to_json()}"
        )

    def test_replay_is_byte_identical(self):
        generated = run_seed(11, num_steps=STEPS,
                             config={"workload": "production"})
        replayed = run_schedule(generated.schedule)
        assert replayed.digest == generated.digest

    def test_detector_wired_into_brokers(self):
        schedule = production_schedule(seed=5)
        harness = SimulationHarness(schedule)
        assert all(b.health is not None
                   for b in harness.cluster.brokers)
        assert all(b.health.policy == SIM_HEALTH_POLICY
                   for b in harness.cluster.brokers)

    def test_default_workload_has_no_detector(self):
        harness = SimulationHarness(Schedule(seed=5, config={}))
        assert all(b.health is None for b in harness.cluster.brokers)

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            SimulationHarness(Schedule(seed=0,
                                       config={"workload": "prod"}))


class TestDirectedDegradeHealCycle:
    """A hand-written schedule that forces the eject -> probe -> heal
    -> return arc instead of waiting for the RNG to produce one."""

    def directed_ops(self):
        ops = [Op("ingest", {"partition": 0, "count": 4, "seed": 1}),
               Op("consume", {"partition": 0, "max_rows": 4}),
               Op("degrade_server", {"instance": "server-1",
                                     "latency_ms": 100,
                                     "error_rate": 0.9})]
        # Enough flaky queries to breach the error EWMA, with clock
        # advances so probe cadences elapse.
        for index in range(14):
            ops.append(Op("query", {"seed": 1000 + index}))
            ops.append(Op("advance_time", {"seconds": 0.7}))
        ops.append(Op("recover_server", {"instance": "server-1"}))
        for index in range(10):
            ops.append(Op("query", {"seed": 2000 + index}))
            ops.append(Op("advance_time", {"seconds": 0.7}))
        return ops

    def run_directed(self, seed=7):
        schedule = production_schedule(seed, self.directed_ops())
        harness = SimulationHarness(schedule)
        result = harness.run()
        return harness, result

    def test_cycle_ejects_probes_and_heals(self):
        harness, result = self.run_directed()
        assert result.ok, str(result.violations[0])
        counters = {"ejections": 0, "heals": 0, "probes": 0,
                    "discipline_violations": 0}
        for broker in harness.cluster.brokers:
            for key in counters:
                counters[key] += broker.health.counters[key]
        assert counters["ejections"] > 0, "degradation never ejected"
        assert counters["heals"] >= counters["ejections"]
        assert counters["probes"] > 0
        assert counters["discipline_violations"] == 0
        assert not any(broker.health.ejected_set()
                       for broker in harness.cluster.brokers)

    def test_cycle_replays_identically(self):
        __, first = self.run_directed()
        second = run_schedule(first.schedule)
        assert second.digest == first.digest

"""Acceptance: replaying a recorded schedule is byte-identical.

The ISSUE's bar for the harness — same schedule in, same observation
stream (and therefore same invariant verdicts) out. The digest covers
every op applied, every query's result rows and partial flag, and every
violation, so equal digests mean observationally identical runs.
"""

import pytest

from repro.sim.harness import run_schedule, run_seed

STEPS = 25


class TestByteIdenticalReplay:
    @pytest.mark.parametrize("seed", [3, 11])
    def test_generate_then_replay_matches_digest(self, seed):
        generated = run_seed(seed, num_steps=STEPS)
        replayed = run_schedule(generated.schedule)
        assert replayed.digest == generated.digest
        assert replayed.observations == generated.observations
        assert [v.to_dict() for v in replayed.violations] == [
            v.to_dict() for v in generated.violations
        ]

    def test_replay_after_json_round_trip(self):
        """The artifact path: schedule -> JSON -> schedule -> replay."""
        from repro.sim.schedule import Schedule
        generated = run_seed(5, num_steps=STEPS)
        restored = Schedule.from_json(generated.schedule.to_json())
        replayed = run_schedule(restored)
        assert replayed.digest == generated.digest

    def test_different_seeds_diverge(self):
        first = run_seed(3, num_steps=STEPS)
        second = run_seed(4, num_steps=STEPS)
        assert first.digest != second.digest


class TestSweepStaysClean:
    def test_short_sweep_passes(self):
        """A handful of seeds end-to-end — the in-tree canary for the
        CI sweep. Any failure here comes with a replayable schedule."""
        for seed in range(3):
            result = run_seed(seed, num_steps=20)
            assert result.ok, (
                f"seed {seed} violated an invariant: "
                f"{result.violations[0]}\n"
                f"schedule:\n{result.schedule.to_json()}"
            )

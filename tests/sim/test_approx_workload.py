"""The sim harness's ``approx`` workload: sketch aggregations and the
timestamp index under randomized hybrid-table traffic.

Each ``approx_query`` op checks the response against the exact oracle
with the sketches' declared error bounds (``repro.sim.oracle
.approx_check``), verifies that ``OPTION(useApproximateFunction=true)``
actually rewrites under the armed threshold, and that cached and
uncached answers agree (sketches are deterministic, so approximate
answers are still cache-coherent).
"""

import pytest

from repro.sim.harness import (
    SIM_TIME_GRANULARITIES,
    SimulationHarness,
    run_schedule,
    run_seed,
)
from repro.sim.schedule import Op, Schedule

STEPS = 40


class TestApproxSweep:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_seed_sweep_stays_clean(self, seed):
        result = run_seed(seed, num_steps=STEPS,
                          config={"workload": "approx"})
        assert result.ok, (
            f"seed {seed} violated an invariant: "
            f"{result.violations[0]}\n"
            f"schedule:\n{result.schedule.to_json()}"
        )

    def test_replay_is_byte_identical(self):
        generated = run_seed(13, num_steps=STEPS,
                             config={"workload": "approx"})
        replayed = run_schedule(generated.schedule)
        assert replayed.digest == generated.digest

    def test_tables_carry_timestamp_index(self):
        harness = SimulationHarness(
            Schedule(seed=3, config={"workload": "approx"}))
        for table in ("events_OFFLINE", "events_REALTIME"):
            config = harness.cluster.table_config(table)
            assert config.segment_config.timestamp_index == \
                SIM_TIME_GRANULARITIES

    def test_default_workload_has_no_timestamp_index(self):
        harness = SimulationHarness(Schedule(seed=3, config={}))
        for table in ("events_OFFLINE", "events_REALTIME"):
            config = harness.cluster.table_config(table)
            assert config.segment_config.timestamp_index == ()

    def test_rewrites_fire_during_run(self):
        # Threshold 0 + per-query OPTION means some approx_query ops
        # must observe rewrite metadata over a long enough run.
        result = run_seed(2, num_steps=80, config={"workload": "approx"})
        assert result.ok, str(result.violations[:1])
        rewrote = [obs for obs in result.observations
                   if "rewrites=(" in obs and "rewrites=()" not in obs]
        assert rewrote, "no approx query ever carried rewrite metadata"


class TestDirectedApproxOps:
    """A hand-written schedule: ingest on both legs, then a burst of
    approx queries, so the oracle check runs against known data rather
    than whatever the RNG ingested."""

    def directed_ops(self):
        ops = []
        for partition in range(2):
            ops.append(Op("ingest", {"partition": partition, "count": 40,
                                     "seed": 50 + partition}))
            ops.append(Op("consume", {"partition": partition,
                                      "max_rows": 40}))
        for index in range(12):
            ops.append(Op("approx_query", {"seed": 9000 + index}))
        return ops

    def test_directed_run_stays_clean(self):
        schedule = Schedule(seed=21, config={"workload": "approx"},
                            ops=self.directed_ops())
        result = SimulationHarness(schedule).run()
        assert result.ok, str(result.violations[0])

    def test_directed_run_replays_identically(self):
        schedule = Schedule(seed=21, config={"workload": "approx"},
                            ops=self.directed_ops())
        first = SimulationHarness(schedule).run()
        second = run_schedule(first.schedule)
        assert second.digest == first.digest

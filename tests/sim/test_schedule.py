"""Schedule and artifact serialization round-trips."""

import json

from repro.sim.artifact import (artifact_dict, load_artifact,
                                write_artifact)
from repro.sim.harness import SimResult
from repro.sim.invariants import Violation
from repro.sim.schedule import Op, Schedule


def sample_schedule() -> Schedule:
    return Schedule(seed=7, config={"num_servers": 3}, ops=[
        Op("ingest", {"seed": 11, "count": 40}),
        Op("query", {"seed": 12}),
        Op("crash_server", {"instance": "server-1"}),
        Op("query", {"seed": 13}),
    ])


class TestScheduleRoundTrip:
    def test_json_round_trip_is_identity(self):
        schedule = sample_schedule()
        restored = Schedule.from_json(schedule.to_json())
        assert restored.seed == schedule.seed
        assert restored.config == schedule.config
        assert restored.ops == schedule.ops

    def test_json_is_stable(self):
        schedule = sample_schedule()
        assert schedule.to_json() == Schedule.from_json(
            schedule.to_json()).to_json()

    def test_truncated(self):
        schedule = sample_schedule()
        assert schedule.truncated(2).ops == schedule.ops[:2]
        assert len(schedule.truncated(99)) == len(schedule)

    def test_without_removes_slice(self):
        schedule = sample_schedule()
        reduced = schedule.without(1, 3)
        assert reduced.ops == [schedule.ops[0], schedule.ops[3]]

    def test_op_str_is_readable(self):
        assert str(Op("query", {"seed": 5})) == "query(seed=5)"


class TestArtifacts:
    def make_result(self) -> SimResult:
        return SimResult(
            schedule=sample_schedule(),
            violations=[Violation("query_oracle", "row 0 differs",
                                  step=3, op={"kind": "query"})],
            steps_executed=4,
            digest="abc123",
        )

    def test_write_and_load(self, tmp_path):
        result = self.make_result()
        path = write_artifact(result, tmp_path)
        assert path.name == "sim-seed7-query_oracle.json"
        schedule, violations = load_artifact(path)
        assert schedule.ops == result.schedule.ops
        assert violations[0].invariant == "query_oracle"
        assert violations[0].step == 3

    def test_artifact_is_valid_json_with_version(self, tmp_path):
        path = write_artifact(self.make_result(), tmp_path)
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        assert payload["digest"] == "abc123"

    def test_null_op_in_violation_loads(self, tmp_path):
        """Epilogue violations carry no op; a hand-edited artifact may
        spell that as ``"op": null`` rather than omitting the key."""
        payload = artifact_dict(self.make_result())
        payload["violations"][0]["op"] = None
        path = tmp_path / "null-op.json"
        path.write_text(json.dumps(payload))
        __, violations = load_artifact(path)
        assert violations[0].op == {}

    def test_unknown_version_rejected(self, tmp_path):
        payload = artifact_dict(self.make_result())
        payload["version"] = 99
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(payload))
        try:
            load_artifact(path)
        except ValueError as error:
            assert "version" in str(error)
        else:
            raise AssertionError("expected ValueError")

"""Unit tests for the simulation harness's query oracle."""

import math

from repro.pql.parser import parse
from repro.sim.oracle import diff_summary, expected_rows, rows_match


RECORDS = [
    {"country": "us", "platform": "ios", "memberId": 1, "views": 3,
     "day": 17000},
    {"country": "us", "platform": "android", "memberId": 2, "views": 1,
     "day": 17001},
    {"country": "de", "platform": "ios", "memberId": 1, "views": 4,
     "day": 17002},
    {"country": "de", "platform": "desktop", "memberId": 3, "views": 2,
     "day": 17002},
]


class TestPlainAggregations:
    def test_count_star(self):
        rows = expected_rows(parse("SELECT count(*) FROM t"), RECORDS)
        assert rows == [(4,)]

    def test_multi_aggregation_row_shape(self):
        rows = expected_rows(
            parse("SELECT sum(views), count(*), avg(views) FROM t"),
            RECORDS,
        )
        assert rows == [(10.0, 4, 2.5)]

    def test_min_max_are_floats(self):
        rows = expected_rows(parse("SELECT min(day), max(day) FROM t"),
                             RECORDS)
        assert rows == [(17000.0, 17002.0)]

    def test_distinctcount(self):
        rows = expected_rows(
            parse("SELECT distinctcount(memberId) FROM t"), RECORDS)
        assert rows == [(3,)]

    def test_where_filters_before_aggregation(self):
        rows = expected_rows(
            parse("SELECT count(*) FROM t WHERE country = 'de'"), RECORDS)
        assert rows == [(2,)]

    def test_empty_match_mirrors_engine_identities(self):
        """The engine finalizes empty aggregations to (0, 0.0, inf,
        -inf, 0.0, 0); the oracle must agree exactly."""
        query = parse("SELECT count(*), sum(views), min(views), "
                      "max(views), avg(views), distinctcount(views) "
                      "FROM t WHERE country = 'xx'")
        assert expected_rows(query, RECORDS) == [
            (0, 0.0, math.inf, -math.inf, 0.0, 0)
        ]


class TestGroupBy:
    def test_orders_by_first_aggregate_desc_then_key(self):
        rows = expected_rows(
            parse("SELECT sum(views) FROM t GROUP BY country"), RECORDS)
        assert rows == [("de", 6.0), ("us", 4.0)]

    def test_tie_broken_by_group_key_ascending(self):
        rows = expected_rows(
            parse("SELECT count(*) FROM t GROUP BY platform TOP 10"),
            RECORDS,
        )
        assert rows == [("ios", 2), ("android", 1), ("desktop", 1)]

    def test_top_n_window(self):
        rows = expected_rows(
            parse("SELECT count(*) FROM t GROUP BY platform TOP 1"),
            RECORDS,
        )
        assert rows == [("ios", 2)]


class TestRowComparison:
    def test_float_tolerance(self):
        assert rows_match([(0.1 + 0.2,)], [(0.3,)])

    def test_length_mismatch(self):
        assert not rows_match([(1,)], [(1,), (2,)])

    def test_value_mismatch(self):
        assert not rows_match([("us", 3.0)], [("us", 4.0)])

    def test_diff_summary_names_first_difference(self):
        text = diff_summary([(1,)], [(2,)])
        assert "expected (2,)" in text and "got (1,)" in text

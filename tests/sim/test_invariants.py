"""The invariant checkers must actually detect broken states.

Each test fabricates a cluster state that violates one invariant and
asserts the checker names it — otherwise a green sweep proves nothing.
"""

from repro.cluster.pinot import PinotCluster
from repro.cluster.table import StreamConfig, TableConfig
from repro.sim.invariants import (check_completion_safety,
                                  check_convergence)
from repro.sim.workload import schema


def realtime_cluster() -> PinotCluster:
    cluster = PinotCluster(num_servers=2)
    cluster.create_kafka_topic("events-topic", 1)
    cluster.create_table(TableConfig.realtime(
        "events", schema(),
        StreamConfig("events-topic", flush_threshold_rows=50,
                     records_per_poll=25),
        replication=2,
    ))
    return cluster


def drained(cluster: PinotCluster) -> PinotCluster:
    cluster.ingest("events-topic",
                   [{"country": "us", "platform": "ios", "memberId": 1,
                     "views": 1, "day": 17000} for __ in range(120)],
                   key_column="memberId")
    cluster.drain_realtime()
    return cluster


class TestCompletionSafety:
    def test_healthy_cluster_passes(self):
        cluster = drained(realtime_cluster())
        assert check_completion_safety(
            cluster.helix, cluster.object_store, "events_REALTIME"
        ) is None

    def test_detects_offset_gap(self):
        cluster = drained(realtime_cluster())
        name = "events_REALTIME__0__0"
        meta = cluster.helix.get_property(f"realtime/events_REALTIME/{name}")
        meta["end_offset"] -= 1  # chain now gaps into the next sequence
        cluster.helix.set_property(f"realtime/events_REALTIME/{name}", meta)
        detail = check_completion_safety(
            cluster.helix, cluster.object_store, "events_REALTIME")
        assert detail is not None

    def test_detects_committed_segment_missing_from_store(self):
        cluster = drained(realtime_cluster())
        name = "events_REALTIME__0__0"
        cluster.object_store.delete("events_REALTIME", name)
        detail = check_completion_safety(
            cluster.helix, cluster.object_store, "events_REALTIME")
        assert detail is not None
        assert "missing from store" in detail

    def test_detects_duplicate_commit_window(self):
        cluster = drained(realtime_cluster())
        # Fabricate a second committed sequence overlapping the first.
        first = cluster.helix.get_property(
            "realtime/events_REALTIME/events_REALTIME__0__0")
        consuming = "events_REALTIME__0__1"
        meta = cluster.helix.get_property(
            f"realtime/events_REALTIME/{consuming}")
        meta.update(status="DONE", start_offset=first["end_offset"] - 10,
                    end_offset=first["end_offset"] + 5)
        cluster.helix.set_property(
            f"realtime/events_REALTIME/{consuming}", meta)
        detail = check_completion_safety(
            cluster.helix, cluster.object_store, "events_REALTIME")
        assert detail is not None


class TestConvergence:
    def test_healthy_cluster_passes(self):
        cluster = drained(realtime_cluster())
        assert check_convergence(cluster.helix) is None

    def test_detects_view_behind_ideal(self):
        cluster = drained(realtime_cluster())
        view = cluster.helix.external_view("events_REALTIME")
        segment = next(iter(view))
        instance = next(iter(view[segment]))
        del view[segment][instance]
        cluster.helix.zk.upsert(
            cluster.helix._path("externalview/events_REALTIME"), view)
        detail = check_convergence(cluster.helix)
        assert detail is not None
        assert segment in detail

    def test_detects_segment_with_no_live_replica(self):
        cluster = drained(realtime_cluster())
        ideal = cluster.helix.ideal_state("events_REALTIME")
        segment = next(iter(ideal))
        ideal[segment] = {"server-9": "ONLINE"}  # not a live instance
        cluster.helix.zk.upsert(
            cluster.helix._path("idealstate/events_REALTIME"), ideal)
        view = cluster.helix.external_view("events_REALTIME")
        view.pop(segment, None)
        cluster.helix.zk.upsert(
            cluster.helix._path("externalview/events_REALTIME"), view)
        detail = check_convergence(cluster.helix)
        assert detail is not None
        assert "no live replica" in detail

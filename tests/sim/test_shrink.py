"""Shrinker behavior, tested against a synthetic run function (fast)
and once against the real harness (slow path exercised by the sweep)."""

from repro.sim.harness import SimResult
from repro.sim.invariants import Violation
from repro.sim.schedule import Op, Schedule
from repro.sim.shrink import shrink


def fake_run(schedule: Schedule) -> SimResult:
    """Violates 'query_oracle' iff a 'bad' op follows a 'setup' op."""
    armed = False
    for index, op in enumerate(schedule.ops):
        if op.kind == "setup":
            armed = True
        if op.kind == "bad" and armed:
            return SimResult(
                schedule=schedule,
                violations=[Violation("query_oracle", "boom", step=index,
                                      op=op.to_dict())],
                steps_executed=index + 1,
            )
    return SimResult(schedule=schedule,
                     steps_executed=len(schedule.ops))


def make_failing_result() -> SimResult:
    noise = [Op("noise", {"i": i}) for i in range(20)]
    ops = (noise[:7] + [Op("setup")] + noise[7:14]
           + [Op("bad")] + noise[14:])
    return fake_run(Schedule(seed=1, ops=ops))


class TestShrink:
    def test_reduces_to_minimal_pair(self):
        result = make_failing_result()
        assert not result.ok
        schedule, final = shrink(result, run_fn=fake_run)
        assert [op.kind for op in schedule.ops] == ["setup", "bad"]
        assert final.violations[0].invariant == "query_oracle"

    def test_truncates_past_failing_step(self):
        result = make_failing_result()
        schedule, __ = shrink(result, run_fn=fake_run)
        assert len(schedule) <= result.violations[0].step + 1

    def test_keeps_failures_of_same_invariant_only(self):
        """A candidate that fails a *different* invariant is not
        accepted as a reduction."""
        def run_two_modes(schedule: Schedule) -> SimResult:
            kinds = [op.kind for op in schedule.ops]
            if "bad" in kinds and "setup" in kinds:
                return fake_run(schedule)
            if "bad" in kinds:  # without setup: a different failure
                return SimResult(
                    schedule=schedule,
                    violations=[Violation("other_invariant", "nope",
                                          step=kinds.index("bad"))],
                    steps_executed=len(kinds),
                )
            return SimResult(schedule=schedule,
                             steps_executed=len(kinds))

        result = run_two_modes(make_failing_result().schedule)
        schedule, final = shrink(result, run_fn=run_two_modes)
        assert [op.kind for op in schedule.ops] == ["setup", "bad"]
        assert final.violations[0].invariant == "query_oracle"

    def test_passing_run_is_rejected(self):
        passing = fake_run(Schedule(seed=1, ops=[Op("noise")]))
        try:
            shrink(passing, run_fn=fake_run)
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError")

    def test_respects_run_budget(self):
        calls = {"n": 0}

        def counting_run(schedule: Schedule) -> SimResult:
            calls["n"] += 1
            return fake_run(schedule)

        result = make_failing_result()
        shrink(result, run_fn=counting_run, max_runs=5)
        assert calls["n"] <= 5

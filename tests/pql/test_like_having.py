"""Tests for the LIKE predicate and HAVING clause extensions."""

import random

import pytest

from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric
from repro.engine.executor import execute_segment
from repro.engine.merge import combine_segment_results, reduce_server_results
from repro.errors import PlanningError, PQLSyntaxError
from repro.pql.ast_nodes import CompareOp, Like
from repro.pql.parser import parse
from repro.pql.rewriter import normalize_predicate, optimize
from repro.segment.builder import SegmentBuilder, SegmentConfig


class TestLikeParsing:
    def test_like(self):
        query = parse("SELECT a FROM t WHERE name LIKE 'ab%'")
        assert query.where == Like("name", "ab%")

    def test_not_like(self):
        query = parse("SELECT a FROM t WHERE name NOT LIKE '%x_'")
        assert query.where == Like("name", "%x_", negated=True)

    def test_like_to_regex(self):
        assert Like("c", "a%b_c").to_regex() == "a.*b.c"
        assert Like("c", "100%.txt").to_regex() == r"100.*\.txt"

    def test_not_pushdown_flips_negation(self):
        predicate = parse(
            "SELECT a FROM t WHERE NOT name LIKE 'x%'"
        ).where
        assert normalize_predicate(predicate) == Like("name", "x%",
                                                      negated=True)

    def test_roundtrip_through_str(self):
        query = parse("SELECT a FROM t WHERE name NOT LIKE 'a%'")
        assert parse(str(query)) == query


class TestHavingParsing:
    def test_having(self):
        query = parse(
            "SELECT sum(m) FROM t GROUP BY c HAVING sum(m) > 100"
        )
        [condition] = query.having
        assert condition.op is CompareOp.GT
        assert condition.value == 100

    def test_having_multiple_conditions(self):
        query = parse(
            "SELECT sum(m), count(*) FROM t GROUP BY c "
            "HAVING sum(m) >= 10 AND count(*) < 5"
        )
        assert len(query.having) == 2

    def test_having_requires_group_by(self):
        with pytest.raises(PQLSyntaxError, match="GROUP BY"):
            parse("SELECT sum(m) FROM t HAVING sum(m) > 1")

    def test_having_aggregation_must_be_selected(self):
        with pytest.raises(PQLSyntaxError, match="select list"):
            parse("SELECT sum(m) FROM t GROUP BY c HAVING max(m) > 1")

    def test_having_rejects_plain_column(self):
        with pytest.raises(PQLSyntaxError):
            parse("SELECT sum(m) FROM t GROUP BY c HAVING c > 1")

    def test_roundtrip_through_str(self):
        query = parse(
            "SELECT sum(m) FROM t GROUP BY c HAVING sum(m) > 100 TOP 5"
        )
        assert parse(str(query)) == query


@pytest.fixture(scope="module")
def segment():
    schema = Schema("t", [
        dimension("name"), dimension("grp"),
        metric("m", DataType.LONG),
    ])
    builder = SegmentBuilder(
        "seg", "t", schema, SegmentConfig(sorted_column="name"),
    )
    rng = random.Random(2)
    names = ["alpha", "albatross", "beta", "bees", "gamma", "alps"]
    for __ in range(600):
        builder.add({"name": rng.choice(names),
                     "grp": rng.choice("pq"),
                     "m": rng.randint(1, 9)})
    return builder.build()


def run(segment, pql):
    query = optimize(parse(pql))
    result = execute_segment(segment, query)
    return reduce_server_results(
        query, [combine_segment_results(query, [result])]
    )


class TestLikeExecution:
    def test_prefix_match(self, segment):
        response = run(segment,
                       "SELECT count(*) FROM t WHERE name LIKE 'al%'")
        expected = run(
            segment,
            "SELECT count(*) FROM t "
            "WHERE name IN ('alpha', 'albatross', 'alps')",
        )
        assert response.rows == expected.rows

    def test_underscore_wildcard(self, segment):
        response = run(segment,
                       "SELECT count(*) FROM t WHERE name LIKE 'bee_'")
        expected = run(segment,
                       "SELECT count(*) FROM t WHERE name = 'bees'")
        assert response.rows == expected.rows

    def test_not_like(self, segment):
        like = run(segment,
                   "SELECT count(*) FROM t WHERE name LIKE '%a'").rows[0][0]
        not_like = run(
            segment, "SELECT count(*) FROM t WHERE name NOT LIKE '%a'"
        ).rows[0][0]
        assert like + not_like == segment.num_docs

    def test_like_on_numeric_column_rejected(self, segment):
        with pytest.raises(PlanningError, match="string column"):
            run(segment, "SELECT count(*) FROM t WHERE m LIKE '1%'")

    def test_like_combined_with_filter(self, segment):
        response = run(
            segment,
            "SELECT sum(m) FROM t WHERE name LIKE 'a%' AND grp = 'p'",
        )
        brute = run(
            segment,
            "SELECT sum(m) FROM t "
            "WHERE name IN ('alpha', 'albatross', 'alps') AND grp = 'p'",
        )
        assert response.rows == brute.rows


class TestHavingExecution:
    def test_iceberg_filtering(self, segment):
        full = run(segment,
                   "SELECT count(*) FROM t GROUP BY name TOP 100")
        counts = {row[0]: row[1] for row in full.rows}
        threshold = sorted(counts.values())[len(counts) // 2]
        iceberg = run(
            segment,
            f"SELECT count(*) FROM t GROUP BY name "
            f"HAVING count(*) >= {threshold} TOP 100",
        )
        expected = {k: v for k, v in counts.items() if v >= threshold}
        assert {row[0]: row[1] for row in iceberg.rows} == expected

    def test_having_multiple_conditions(self, segment):
        response = run(
            segment,
            "SELECT count(*), sum(m) FROM t GROUP BY name "
            "HAVING count(*) > 0 AND sum(m) < 0 TOP 100",
        )
        assert response.rows == []

    def test_having_applies_after_merge(self, segment):
        """HAVING must filter on the *global* aggregate, not per-segment
        partials — verified by splitting data across two segments."""
        records = list(segment.iter_records())
        half = len(records) // 2
        schema = segment.schema
        pieces = []
        for i, chunk in enumerate((records[:half], records[half:])):
            builder = SegmentBuilder(f"piece{i}", "t", schema)
            builder.add_all(chunk)
            pieces.append(builder.build())

        query = optimize(parse(
            "SELECT count(*) FROM t GROUP BY name "
            "HAVING count(*) >= 50 TOP 100"
        ))
        results = [execute_segment(piece, query) for piece in pieces]
        split_response = reduce_server_results(
            query, [combine_segment_results(query, results)]
        )
        whole_response = run(
            segment,
            "SELECT count(*) FROM t GROUP BY name "
            "HAVING count(*) >= 50 TOP 100",
        )
        assert sorted(split_response.rows) == sorted(whole_response.rows)

"""Tests for the PQL parser."""

import pytest

from repro.errors import PQLSyntaxError, QueryError
from repro.pql.ast_nodes import (
    AggFunc,
    Aggregation,
    And,
    Between,
    ColumnRef,
    CompareOp,
    Comparison,
    In,
    Not,
    Or,
)
from repro.pql.parser import parse


class TestSelectList:
    def test_projection(self):
        query = parse("SELECT a, b FROM t")
        assert query.select == (ColumnRef("a"), ColumnRef("b"))
        assert query.is_selection

    def test_star(self):
        query = parse("SELECT * FROM t")
        assert query.select_star

    def test_aggregations(self):
        query = parse("SELECT count(*), sum(x), distinctcount(y) FROM t")
        assert query.aggregations == (
            Aggregation(AggFunc.COUNT, "*"),
            Aggregation(AggFunc.SUM, "x"),
            Aggregation(AggFunc.DISTINCTCOUNT, "y"),
        )
        assert query.is_aggregation

    def test_aggregation_case_insensitive(self):
        query = parse("SELECT SuM(x) FROM t")
        assert query.aggregations[0].func is AggFunc.SUM

    def test_unknown_function_rejected(self):
        with pytest.raises(PQLSyntaxError, match="unknown aggregation"):
            parse("SELECT median(x) FROM t")

    def test_star_argument_only_for_count(self):
        with pytest.raises(PQLSyntaxError):
            parse("SELECT sum(*) FROM t")

    def test_percentiles(self):
        query = parse("SELECT percentile95(x) FROM t")
        assert query.aggregations[0].func is AggFunc.PERCENTILE95


class TestWhere:
    def test_comparisons(self):
        query = parse("SELECT a FROM t WHERE x = 1 AND y >= 2.5 "
                      "AND z != 'q'")
        assert isinstance(query.where, And)
        ops = [child.op for child in query.where.children]
        assert ops == [CompareOp.EQ, CompareOp.GTE, CompareOp.NEQ]

    def test_neq_spellings(self):
        a = parse("SELECT a FROM t WHERE x != 1").where
        b = parse("SELECT a FROM t WHERE x <> 1").where
        assert a == b

    def test_in(self):
        query = parse("SELECT a FROM t WHERE c IN ('x', 'y')")
        assert query.where == In("c", ("x", "y"))

    def test_not_in(self):
        query = parse("SELECT a FROM t WHERE c NOT IN (1, 2)")
        assert query.where == In("c", (1, 2), negated=True)

    def test_between(self):
        query = parse("SELECT a FROM t WHERE d BETWEEN 1 AND 5")
        assert query.where == Between("d", 1, 5)

    def test_boolean_literals(self):
        query = parse("SELECT a FROM t WHERE flag = true")
        assert query.where == Comparison("flag", CompareOp.EQ, True)

    def test_precedence_and_over_or(self):
        query = parse("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3")
        assert isinstance(query.where, Or)
        assert isinstance(query.where.children[1], And)

    def test_parentheses(self):
        query = parse("SELECT a FROM t WHERE (x = 1 OR y = 2) AND z = 3")
        assert isinstance(query.where, And)
        assert isinstance(query.where.children[0], Or)

    def test_not(self):
        query = parse("SELECT a FROM t WHERE NOT x = 1")
        assert isinstance(query.where, Not)

    def test_missing_predicate(self):
        with pytest.raises(PQLSyntaxError):
            parse("SELECT a FROM t WHERE x")


class TestClauses:
    def test_group_by(self):
        query = parse("SELECT sum(x) FROM t GROUP BY a, b")
        assert query.group_by == ("a", "b")

    def test_group_by_requires_aggregation(self):
        with pytest.raises(PQLSyntaxError):
            parse("SELECT a FROM t GROUP BY a")

    def test_projection_must_be_grouped(self):
        with pytest.raises(PQLSyntaxError):
            parse("SELECT a, sum(x) FROM t GROUP BY b")

    def test_grouped_projection_allowed(self):
        query = parse("SELECT a, sum(x) FROM t GROUP BY a")
        assert query.projections == (ColumnRef("a"),)

    def test_mixing_without_group_by_rejected(self):
        with pytest.raises(PQLSyntaxError):
            parse("SELECT a, sum(x) FROM t")

    def test_top(self):
        assert parse("SELECT sum(x) FROM t GROUP BY a TOP 5").limit == 5

    def test_limit(self):
        assert parse("SELECT a FROM t LIMIT 7").limit == 7

    def test_limit_with_offset(self):
        query = parse("SELECT a FROM t LIMIT 20, 10")
        assert query.offset == 20
        assert query.limit == 10

    def test_default_limit(self):
        assert parse("SELECT a FROM t").limit == 10

    def test_order_by(self):
        query = parse("SELECT a, b FROM t ORDER BY a DESC, b")
        assert query.order_by[0].descending
        assert not query.order_by[1].descending

    def test_order_by_aggregation(self):
        query = parse(
            "SELECT sum(x) FROM t GROUP BY a ORDER BY sum(x) DESC TOP 3"
        )
        assert query.order_by[0].expression == Aggregation(AggFunc.SUM, "x")

    def test_order_by_aggregation_not_selected_rejected(self):
        with pytest.raises(PQLSyntaxError):
            parse("SELECT sum(x) FROM t GROUP BY a ORDER BY sum(y)")

    def test_order_by_ungrouped_column_rejected(self):
        with pytest.raises(PQLSyntaxError):
            parse("SELECT sum(x) FROM t GROUP BY a ORDER BY b")

    def test_option_clause(self):
        query = parse("SELECT a FROM t OPTION (timeoutMs = 100)")
        assert query.options == {"timeoutMs": 100}

    def test_boolean_options(self):
        query = parse(
            "SELECT a FROM t OPTION (skipCache = true, skipPrune = FALSE)"
        )
        assert query.options == {"skipCache": True, "skipPrune": False}

    def test_unknown_option_rejected(self):
        with pytest.raises(QueryError, match="skipCahce"):
            parse("SELECT a FROM t OPTION (skipCahce = true)")

    def test_unknown_option_error_lists_known_names(self):
        with pytest.raises(QueryError, match="skipCache"):
            parse("SELECT a FROM t OPTION (bogus = 1)")

    def test_option_value_type_checked(self):
        with pytest.raises(QueryError, match="boolean"):
            parse("SELECT a FROM t OPTION (skipCache = 1)")
        with pytest.raises(QueryError, match="number"):
            parse("SELECT a FROM t OPTION (timeoutMs = true)")
        with pytest.raises(QueryError, match="number"):
            parse("SELECT a FROM t OPTION (timeoutMs = 'fast')")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(PQLSyntaxError, match="trailing"):
            parse("SELECT a FROM t LIMIT 5 bogus")

    def test_referenced_columns(self):
        query = parse(
            "SELECT sum(x) FROM t WHERE a = 1 AND b IN (2) GROUP BY c"
        )
        assert query.referenced_columns() == {"x", "a", "b", "c"}

    def test_str_roundtrips_through_parser(self):
        text = ("SELECT sum(x), count(*) FROM t WHERE a = 1 AND "
                "b BETWEEN 2 AND 3 GROUP BY c ORDER BY sum(x) DESC "
                "LIMIT 5")
        query = parse(text)
        assert parse(str(query)) == query


class TestTimeBucket:
    def test_group_by_timebucket(self):
        from repro.pql.ast_nodes import TimeBucket

        query = parse("SELECT count(*) FROM t GROUP BY timebucket(day, 7)")
        assert query.group_by == (TimeBucket("day", 7),)

    def test_mixed_with_plain_columns(self):
        from repro.pql.ast_nodes import TimeBucket

        query = parse(
            "SELECT count(*) FROM t GROUP BY country, timebucket(day, 5)"
        )
        assert query.group_by == ("country", TimeBucket("day", 5))

    def test_case_insensitive_keyword(self):
        from repro.pql.ast_nodes import TimeBucket

        query = parse("SELECT count(*) FROM t GROUP BY TIMEBUCKET(day, 5)")
        assert query.group_by == (TimeBucket("day", 5),)

    def test_size_must_be_positive_integer(self):
        for bad in ("0", "-2", "2.5"):
            with pytest.raises(PQLSyntaxError):
                parse(f"SELECT count(*) FROM t "
                      f"GROUP BY timebucket(day, {bad})")

    def test_str_round_trips(self):
        text = ("SELECT sum(x) FROM t WHERE day >= 17000 "
                "GROUP BY timebucket(day, 5) TOP 10")
        query = parse(text)
        assert parse(str(query)) == query

    def test_plain_timebucket_identifier_still_a_column(self):
        # Without parentheses, "timebucket" is just a column name.
        query = parse("SELECT count(*) FROM t GROUP BY timebucket")
        assert query.group_by == ("timebucket",)


class TestApproximateOption:
    def test_option_parses_as_boolean(self):
        query = parse(
            "SELECT distinctcount(a) FROM t "
            "OPTION (useApproximateFunction = true)"
        )
        assert query.options == {"useApproximateFunction": True}

    def test_option_combines_with_others(self):
        query = parse(
            "SELECT distinctcount(a) FROM t "
            "OPTION (useApproximateFunction = false, skipCache = true)"
        )
        assert query.options == {"useApproximateFunction": False,
                                 "skipCache": True}

    def test_non_boolean_value_rejected(self):
        with pytest.raises(QueryError):
            parse("SELECT a FROM t OPTION (useApproximateFunction = 1)")

"""Tests for the PQL tokenizer."""

import pytest

from repro.errors import PQLSyntaxError
from repro.pql.lexer import TokenType, tokenize


def kinds(text):
    return [t.type for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)][:-1]  # drop EOF


class TestTokens:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM Where")
        assert [t.value for t in tokens[:3]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.type is TokenType.KEYWORD for t in tokens[:3])

    def test_identifiers_preserve_case(self):
        assert values("vieweeId")[0] == "vieweeId"

    def test_numbers(self):
        assert values("42 -7 3.5 1e3 -2.5e-2") == [42, -7, 3.5, 1000.0,
                                                   -0.025]

    def test_string_literal(self):
        assert values("'hello world'") == ["hello world"]

    def test_string_escaped_quote(self):
        assert values("'it''s'") == ["it's"]

    def test_unterminated_string(self):
        with pytest.raises(PQLSyntaxError, match="unterminated"):
            tokenize("'oops")

    def test_operators(self):
        assert values("= != <> < <= > >=") == ["=", "!=", "!=", "<", "<=",
                                               ">", ">="]

    def test_punctuation(self):
        assert kinds("( ) , *")[:4] == [TokenType.LPAREN, TokenType.RPAREN,
                                        TokenType.COMMA, TokenType.STAR]

    def test_quoted_identifier(self):
        tokens = tokenize('"day"')
        assert tokens[0].type is TokenType.IDENTIFIER
        assert tokens[0].value == "day"

    def test_unexpected_character(self):
        with pytest.raises(PQLSyntaxError):
            tokenize("a ; b")

    def test_eof_always_last(self):
        assert kinds("x")[-1] is TokenType.EOF
        assert kinds("")[-1] is TokenType.EOF

    def test_position_reported(self):
        with pytest.raises(PQLSyntaxError, match="position"):
            tokenize("abc $ def")

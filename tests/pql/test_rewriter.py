"""Tests for the query rewriter, including a semantic property test."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pql.ast_nodes import (
    And,
    Between,
    CompareOp,
    Comparison,
    In,
    Not,
    Or,
)
from repro.pql.parser import parse
from repro.pql.rewriter import normalize_predicate, optimize, split_hybrid


from tests.reference import evaluate  # noqa: E402 - shared reference


class TestNormalization:
    def test_not_pushed_into_comparison(self):
        predicate = parse("SELECT a FROM t WHERE NOT x = 1").where
        assert normalize_predicate(predicate) == Comparison(
            "x", CompareOp.NEQ, 1
        )

    def test_double_negation(self):
        predicate = parse("SELECT a FROM t WHERE NOT NOT x = 1").where
        assert normalize_predicate(predicate) == Comparison(
            "x", CompareOp.EQ, 1
        )

    def test_de_morgan(self):
        predicate = parse(
            "SELECT a FROM t WHERE NOT (x = 1 AND y = 2)"
        ).where
        normalized = normalize_predicate(predicate)
        assert isinstance(normalized, Or)
        assert Comparison("x", CompareOp.NEQ, 1) in normalized.children

    def test_not_between_becomes_range_or(self):
        predicate = parse(
            "SELECT a FROM t WHERE NOT x BETWEEN 1 AND 5"
        ).where
        normalized = normalize_predicate(predicate)
        assert isinstance(normalized, Or)

    def test_not_in_flips_flag(self):
        predicate = parse("SELECT a FROM t WHERE NOT x IN (1, 2)").where
        assert normalize_predicate(predicate) == In("x", (1, 2),
                                                    negated=True)

    def test_nested_ands_flattened(self):
        predicate = parse(
            "SELECT a FROM t WHERE (x = 1 AND y = 2) AND z = 3"
        ).where
        normalized = normalize_predicate(predicate)
        assert isinstance(normalized, And)
        assert len(normalized.children) == 3

    def test_duplicate_children_deduped(self):
        predicate = parse(
            "SELECT a FROM t WHERE x = 1 AND x = 1"
        ).where
        assert normalize_predicate(predicate) == Comparison(
            "x", CompareOp.EQ, 1
        )

    def test_or_of_equals_fused_to_in(self):
        predicate = parse(
            "SELECT a FROM t WHERE b = 'x' OR b = 'y' OR b = 'z'"
        ).where
        assert normalize_predicate(predicate) == In("b", ("x", "y", "z"))

    def test_or_of_in_and_eq_fused(self):
        predicate = parse(
            "SELECT a FROM t WHERE b IN ('x') OR b = 'y'"
        ).where
        assert normalize_predicate(predicate) == In("b", ("x", "y"))

    def test_or_across_columns_not_fused(self):
        predicate = parse(
            "SELECT a FROM t WHERE b = 'x' OR c = 'y'"
        ).where
        normalized = normalize_predicate(predicate)
        assert isinstance(normalized, Or)
        assert len(normalized.children) == 2

    def test_optimize_without_where_is_identity(self):
        query = parse("SELECT a FROM t")
        assert optimize(query) is query


# -- property: normalization preserves semantics -------------------------------

columns = st.sampled_from(["a", "b", "c"])
literals = st.integers(min_value=0, max_value=5)


def predicates(depth=3):
    leaf = st.one_of(
        st.builds(Comparison, columns, st.sampled_from(list(CompareOp)),
                  literals),
        st.builds(
            In, columns,
            st.lists(literals, min_size=1, max_size=3).map(tuple),
            st.booleans(),
        ),
        st.builds(
            lambda c, lo, span: Between(c, lo, lo + span),
            columns, literals, st.integers(0, 3),
        ),
    )
    return st.recursive(
        leaf,
        lambda inner: st.one_of(
            st.builds(lambda kids: And(tuple(kids)),
                      st.lists(inner, min_size=2, max_size=3)),
            st.builds(lambda kids: Or(tuple(kids)),
                      st.lists(inner, min_size=2, max_size=3)),
            st.builds(Not, inner),
        ),
        max_leaves=8,
    )


class TestNormalizationSemantics:
    @settings(max_examples=150, deadline=None)
    @given(predicates())
    def test_normalize_preserves_semantics(self, predicate):
        normalized = normalize_predicate(predicate)
        rng = random.Random(0)
        for __ in range(25):
            record = {c: rng.randint(0, 5) for c in ("a", "b", "c")}
            assert evaluate(predicate, record) == evaluate(normalized,
                                                           record)

    @settings(max_examples=80, deadline=None)
    @given(predicates())
    def test_normalized_form_has_no_not(self, predicate):
        def has_not(node):
            if isinstance(node, Not):
                return True
            if isinstance(node, (And, Or)):
                return any(has_not(c) for c in node.children)
            return False

        assert not has_not(normalize_predicate(predicate))


class TestHybridSplit:
    def test_split_adds_boundary_filters(self):
        query = parse("SELECT count(*) FROM events WHERE a = 1")
        offline, realtime = split_hybrid(
            query, "day", 17005, "events_OFFLINE", "events_REALTIME"
        )
        assert offline.table == "events_OFFLINE"
        assert realtime.table == "events_REALTIME"
        assert "day <= 17005" in str(offline.where)
        assert "day > 17005" in str(realtime.where)
        # Original filter preserved on both sides.
        assert "a = 1" in str(offline.where)
        assert "a = 1" in str(realtime.where)

    def test_split_without_where(self):
        query = parse("SELECT count(*) FROM events")
        offline, realtime = split_hybrid(
            query, "day", 100, "o", "r"
        )
        assert str(offline.where) == "day <= 100"
        assert str(realtime.where) == "day > 100"

    def test_split_covers_all_times_exactly_once(self):
        query = parse("SELECT count(*) FROM events")
        offline, realtime = split_hybrid(query, "day", 10, "o", "r")
        for day in range(0, 21):
            record = {"day": day}
            offline_match = evaluate(offline.where, record)
            realtime_match = evaluate(realtime.where, record)
            assert offline_match != realtime_match  # exactly one side

"""Unit tests for schemas: validation, normalization, evolution."""

import pytest

from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column
from repro.errors import SchemaError


@pytest.fixture
def schema():
    return Schema(
        "events",
        [
            dimension("country"),
            dimension("tags", DataType.STRING, multi_value=True),
            metric("clicks", DataType.LONG),
            time_column("day", DataType.INT),
        ],
    )


class TestConstruction:
    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema("empty", [])

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            Schema("dup", [dimension("a"), dimension("a")])

    def test_two_time_columns_rejected(self):
        with pytest.raises(SchemaError):
            Schema("t2", [time_column("t1"), time_column("t2")])

    def test_time_column_optional(self):
        schema = Schema("nt", [dimension("d")])
        assert schema.time_column is None

    def test_introspection(self, schema):
        assert schema.column_names == ("country", "tags", "clicks", "day")
        assert schema.dimension_names == ("country", "tags")
        assert schema.metric_names == ("clicks",)
        assert schema.time_column == "day"
        assert "country" in schema
        assert "missing" not in schema
        assert len(schema) == 4

    def test_field_lookup_error_lists_columns(self, schema):
        with pytest.raises(SchemaError, match="country"):
            schema.field("nope")


class TestNormalize:
    def test_full_record(self, schema):
        record = schema.normalize(
            {"country": "us", "tags": ["a"], "clicks": "3", "day": 17000}
        )
        assert record == {"country": "us", "tags": ["a"], "clicks": 3,
                          "day": 17000}

    def test_missing_columns_get_defaults(self, schema):
        record = schema.normalize({"country": "us"})
        assert record["clicks"] == 0
        assert record["day"] == 0
        assert record["tags"] == ["null"]

    def test_unknown_column_rejected(self, schema):
        with pytest.raises(SchemaError, match="extra"):
            schema.normalize({"country": "us", "extra": 1})

    def test_bad_value_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.normalize({"clicks": "many"})


class TestEvolution:
    def test_with_column_appends(self, schema):
        evolved = schema.with_column(dimension("os"))
        assert "os" in evolved
        assert "os" not in schema  # original untouched

    def test_with_existing_column_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.with_column(dimension("country"))

    def test_new_column_defaults_in_old_records(self, schema):
        evolved = schema.with_column(dimension("os"))
        record = evolved.normalize({"country": "us"})
        assert record["os"] == "null"


class TestSerialization:
    def test_roundtrip(self, schema):
        assert Schema.from_dict(schema.to_dict()) == schema

    def test_roundtrip_preserves_roles_and_types(self, schema):
        clone = Schema.from_dict(schema.to_dict())
        assert clone.field("clicks").is_metric
        assert clone.field("tags").multi_value
        assert clone.field("day").dtype is DataType.INT

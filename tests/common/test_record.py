"""Tests for record helpers."""

from repro.common.record import normalize_stream, project, records_equal
from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric


def make_schema():
    return Schema("t", [dimension("d"),
                        dimension("tags", DataType.STRING,
                                  multi_value=True),
                        metric("m", DataType.LONG)])


class TestNormalizeStream:
    def test_lazy_normalization(self):
        schema = make_schema()
        stream = normalize_stream(schema, iter([{"d": "x"},
                                                {"m": "5"}]))
        first = next(stream)
        assert first == {"d": "x", "tags": ["null"], "m": 0}
        second = next(stream)
        assert second["m"] == 5


class TestRecordsEqual:
    def test_equal(self):
        assert records_equal({"a": 1, "b": [1, 2]},
                             {"b": [1, 2], "a": 1})

    def test_tuple_vs_list_cells_equal(self):
        assert records_equal({"b": (1, 2)}, {"b": [1, 2]})

    def test_different_keys(self):
        assert not records_equal({"a": 1}, {"b": 1})

    def test_different_values(self):
        assert not records_equal({"a": 1}, {"a": 2})
        assert not records_equal({"a": [1, 2]}, {"a": [2, 1]})


class TestProject:
    def test_project(self):
        assert project({"a": 1, "b": 2, "c": 3}, ["a", "c"]) == \
            {"a": 1, "c": 3}

"""Unit tests for time utilities."""

import pytest

from repro.common.timeutils import (
    TimeGranularity,
    TimeUnit,
    retention_cutoff,
    time_boundary,
)


class TestTimeUnit:
    def test_millis(self):
        assert TimeUnit.SECONDS.millis == 1000
        assert TimeUnit.DAYS.millis == 86_400_000

    def test_convert_down(self):
        assert TimeUnit.DAYS.convert(2, TimeUnit.HOURS) == 48

    def test_convert_up_floors(self):
        assert TimeUnit.HOURS.convert(25, TimeUnit.DAYS) == 1

    def test_convert_identity(self):
        assert TimeUnit.MINUTES.convert(7, TimeUnit.MINUTES) == 7


class TestGranularity:
    def test_invalid_size(self):
        with pytest.raises(ValueError):
            TimeGranularity(TimeUnit.DAYS, 0)

    def test_truncate(self):
        granularity = TimeGranularity(TimeUnit.DAYS, 7)
        assert granularity.truncate(17003) == 16996 + 7  # 17003 - 17003 % 7

    def test_millis(self):
        assert TimeGranularity(TimeUnit.HOURS, 6).millis == 6 * 3_600_000


class TestBoundaries:
    def test_time_boundary_backs_off_one_bucket(self):
        granularity = TimeGranularity(TimeUnit.DAYS, 1)
        assert time_boundary(17010, granularity) == 17009

    def test_time_boundary_wider_bucket(self):
        granularity = TimeGranularity(TimeUnit.DAYS, 7)
        assert time_boundary(17010, granularity) == 17003

    def test_retention_cutoff(self):
        assert retention_cutoff(now=17100, retention=30) == 17070

"""Unit tests for time utilities."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.timeutils import (
    TimeGranularity,
    TimeUnit,
    retention_cutoff,
    time_boundary,
)


class TestTimeUnit:
    def test_millis(self):
        assert TimeUnit.SECONDS.millis == 1000
        assert TimeUnit.DAYS.millis == 86_400_000

    def test_convert_down(self):
        assert TimeUnit.DAYS.convert(2, TimeUnit.HOURS) == 48

    def test_convert_up_floors(self):
        assert TimeUnit.HOURS.convert(25, TimeUnit.DAYS) == 1

    def test_convert_identity(self):
        assert TimeUnit.MINUTES.convert(7, TimeUnit.MINUTES) == 7


class TestGranularity:
    def test_invalid_size(self):
        with pytest.raises(ValueError):
            TimeGranularity(TimeUnit.DAYS, 0)

    def test_truncate(self):
        granularity = TimeGranularity(TimeUnit.DAYS, 7)
        assert granularity.truncate(17003) == 16996 + 7  # 17003 - 17003 % 7

    def test_millis(self):
        assert TimeGranularity(TimeUnit.HOURS, 6).millis == 6 * 3_600_000


class TestBoundaries:
    def test_time_boundary_backs_off_one_bucket(self):
        granularity = TimeGranularity(TimeUnit.DAYS, 1)
        assert time_boundary(17010, granularity) == 17009

    def test_time_boundary_wider_bucket(self):
        granularity = TimeGranularity(TimeUnit.DAYS, 7)
        assert time_boundary(17010, granularity) == 17003

    def test_retention_cutoff(self):
        assert retention_cutoff(now=17100, retention=30) == 17070


class TestBoundaryPartitionProperty:
    """The hybrid-split contract, for every granularity (§3.3.3 Fig 6).

    ``split_hybrid`` rewrites a query into offline ``t <= boundary`` and
    realtime ``t > boundary``. For that rewrite to be lossless and
    duplicate-free the boundary must (a) partition the time axis
    exactly, and (b) sit strictly below the bucket containing the
    offline max — the trailing bucket may be only partially pushed, so
    every value in it must be served by realtime.
    """

    granularities = st.builds(
        TimeGranularity,
        st.sampled_from(list(TimeUnit)),
        st.integers(min_value=1, max_value=100),
    )

    @given(max_time=st.integers(min_value=0, max_value=2**40),
           granularity=granularities,
           offset=st.integers(min_value=-200, max_value=200))
    def test_offline_and_realtime_predicates_partition_axis(
            self, max_time, granularity, offset):
        boundary = time_boundary(max_time, granularity)
        value = max_time + offset
        served_offline = value <= boundary
        served_realtime = value > boundary
        # Exactly one side serves any time value: no gap, no overlap.
        assert served_offline != served_realtime

    @given(max_time=st.integers(min_value=0, max_value=2**40),
           granularity=granularities)
    def test_trailing_bucket_is_left_to_realtime(self, max_time,
                                                 granularity):
        """No value in the (possibly incomplete) bucket that contains
        ``max_time`` may be served from offline: the boundary must fall
        strictly below the bucket's start."""
        boundary = time_boundary(max_time, granularity)
        bucket_start = granularity.truncate(max_time)
        assert boundary < bucket_start

    @given(max_time=st.integers(min_value=0, max_value=2**40),
           granularity=granularities)
    def test_boundary_gives_up_at_most_one_bucket(self, max_time,
                                                  granularity):
        """Conversely the back-off is bounded: offline still serves
        everything below the previous bucket boundary."""
        boundary = time_boundary(max_time, granularity)
        bucket_start = granularity.truncate(max_time)
        assert boundary >= bucket_start - granularity.size

"""Unit tests for the data-type layer."""

import numpy as np
import pytest

from repro.common.types import (
    DataType,
    FieldRole,
    FieldSpec,
    dimension,
    metric,
    time_column,
)
from repro.errors import SchemaError


class TestDataTypeCoercion:
    def test_int_from_string(self):
        assert DataType.INT.coerce("42") == 42

    def test_int_rejects_overflow(self):
        with pytest.raises(SchemaError):
            DataType.INT.coerce(2**31)

    def test_long_accepts_wide_values(self):
        assert DataType.LONG.coerce(2**40) == 2**40

    def test_long_rejects_overflow(self):
        with pytest.raises(SchemaError):
            DataType.LONG.coerce(2**63)

    def test_int_rejects_bool(self):
        with pytest.raises(SchemaError):
            DataType.INT.coerce(True)

    def test_double_from_int(self):
        assert DataType.DOUBLE.coerce(3) == 3.0

    def test_string_from_number(self):
        assert DataType.STRING.coerce(17) == "17"

    def test_boolean_from_string(self):
        assert DataType.BOOLEAN.coerce("true") is True
        assert DataType.BOOLEAN.coerce("FALSE") is False

    def test_boolean_rejects_garbage(self):
        with pytest.raises(SchemaError):
            DataType.BOOLEAN.coerce("maybe")

    def test_int_rejects_garbage_string(self):
        with pytest.raises(SchemaError):
            DataType.INT.coerce("not-a-number")

    def test_numeric_classification(self):
        assert DataType.INT.is_numeric
        assert DataType.DOUBLE.is_numeric
        assert not DataType.STRING.is_numeric
        assert not DataType.BOOLEAN.is_numeric

    def test_numpy_dtypes(self):
        assert DataType.LONG.numpy_dtype == np.dtype(np.int64)
        assert DataType.FLOAT.numpy_dtype == np.dtype(np.float32)

    def test_defaults(self):
        assert DataType.INT.default_value == 0
        assert DataType.STRING.default_value == "null"
        assert DataType.BOOLEAN.default_value is False


class TestFieldSpec:
    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            FieldSpec("bad name", DataType.INT)

    def test_metric_must_be_numeric(self):
        with pytest.raises(SchemaError):
            FieldSpec("m", DataType.STRING, FieldRole.METRIC)

    def test_time_column_must_be_integral(self):
        with pytest.raises(SchemaError):
            FieldSpec("t", DataType.DOUBLE, FieldRole.TIME)
        spec = FieldSpec("t", DataType.LONG, FieldRole.TIME)
        assert spec.is_time

    def test_only_dimensions_can_be_multi_value(self):
        with pytest.raises(SchemaError):
            FieldSpec("m", DataType.LONG, FieldRole.METRIC, multi_value=True)

    def test_default_is_type_default(self):
        assert dimension("d").default == "null"
        assert metric("m").default == 0

    def test_explicit_default_is_coerced(self):
        spec = FieldSpec("d", DataType.INT, default="7")
        assert spec.default == 7

    def test_coerce_scalar(self):
        assert dimension("d", DataType.LONG).coerce("5") == 5

    def test_coerce_none_gives_default(self):
        assert dimension("d").coerce(None) == "null"

    def test_coerce_multi_value_list(self):
        spec = dimension("tags", DataType.STRING, multi_value=True)
        assert spec.coerce(["a", 1]) == ["a", "1"]

    def test_coerce_multi_value_scalar_wraps(self):
        spec = dimension("tags", DataType.STRING, multi_value=True)
        assert spec.coerce("solo") == ["solo"]

    def test_coerce_multi_value_none_gives_default_list(self):
        spec = dimension("tags", DataType.STRING, multi_value=True)
        assert spec.coerce(None) == ["null"]

    def test_convenience_constructors(self):
        assert dimension("d").role is FieldRole.DIMENSION
        assert metric("m").role is FieldRole.METRIC
        assert time_column("t").role is FieldRole.TIME

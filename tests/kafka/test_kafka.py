"""Tests for the simulated Kafka broker and the murmur2 partitioner."""

import pytest

from repro.errors import IngestionError
from repro.kafka.broker import KafkaConsumer, SimKafka
from repro.kafka.partitioner import kafka_partition, murmur2


def _java_murmur2(data: bytes) -> int:
    """Independent transcription of Kafka's Java murmur2 using signed
    32-bit arithmetic, as a reference for the vectorized version."""

    def i32(x):
        x &= 0xFFFFFFFF
        return x - 0x100000000 if x >= 0x80000000 else x

    def urshift(x, n):
        return (x & 0xFFFFFFFF) >> n

    length = len(data)
    seed = i32(0x9747B28C)
    m = i32(0x5BD1E995)
    h = i32(seed ^ length)
    i = 0
    while length - i >= 4:
        k = int.from_bytes(data[i:i + 4], "little", signed=True)
        k = i32(k * m)
        k = i32(k ^ urshift(k, 24))
        k = i32(k * m)
        h = i32(h * m)
        h = i32(h ^ k)
        i += 4
    rest = length - i
    if rest == 3:
        h = i32(h ^ i32((data[i + 2] & 0xFF) << 16))
    if rest >= 2:
        h = i32(h ^ ((data[i + 1] & 0xFF) << 8))
    if rest >= 1:
        h = i32(h ^ (data[i] & 0xFF))
        h = i32(h * m)
    h = i32(h ^ urshift(h, 13))
    h = i32(h * m)
    h = i32(h ^ urshift(h, 15))
    return h & 0xFFFFFFFF


class TestPartitioner:
    def test_murmur2_matches_java_reference(self):
        cases = [b"", b"a", b"ab", b"abc", b"abcd", b"hello world",
                 b"user-12345", bytes(range(256))]
        for data in cases:
            assert murmur2(data) == _java_murmur2(data), data

    def test_partition_is_stable(self):
        assert kafka_partition("user-42", 8) == kafka_partition("user-42", 8)

    def test_partition_in_range(self):
        for key in range(200):
            assert 0 <= kafka_partition(key, 7) < 7

    def test_partition_spreads_keys(self):
        partitions = {kafka_partition(f"k{i}", 8) for i in range(100)}
        assert len(partitions) == 8

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            kafka_partition("k", 0)


@pytest.fixture
def kafka():
    broker = SimKafka()
    broker.create_topic("events", 4)
    return broker


class TestTopics:
    def test_duplicate_topic_rejected(self, kafka):
        with pytest.raises(IngestionError):
            kafka.create_topic("events", 2)

    def test_missing_topic_rejected(self, kafka):
        with pytest.raises(IngestionError):
            kafka.fetch("nope", 0, 0)

    def test_num_partitions(self, kafka):
        assert kafka.num_partitions("events") == 4


class TestProduceConsume:
    def test_keyed_produce_uses_partitioner(self, kafka):
        partition, offset = kafka.produce("events", {"v": 1}, key="k1")
        assert partition == kafka_partition("k1", 4)
        assert offset == 0

    def test_offsets_dense_per_partition(self, kafka):
        for i in range(10):
            kafka.produce("events", {"v": i}, key="samekey")
        partition = kafka_partition("samekey", 4)
        messages = kafka.fetch("events", partition, 0, max_records=100)
        assert [m.offset for m in messages] == list(range(10))
        assert [m.value["v"] for m in messages] == list(range(10))

    def test_unkeyed_round_robin(self, kafka):
        for i in range(8):
            kafka.produce("events", {"v": i})
        counts = [kafka.latest_offset("events", p) for p in range(4)]
        assert sum(counts) == 8

    def test_fetch_respects_max_records(self, kafka):
        for i in range(10):
            kafka.produce("events", {"v": i}, key="k")
        partition = kafka_partition("k", 4)
        assert len(kafka.fetch("events", partition, 0, max_records=3)) == 3

    def test_identical_replay(self, kafka):
        """Two independent reads of the same offset range see the same
        records — the property the completion protocol relies on."""
        for i in range(20):
            kafka.produce("events", {"v": i}, key="k")
        partition = kafka_partition("k", 4)
        read1 = kafka.fetch("events", partition, 5, 10)
        read2 = kafka.fetch("events", partition, 5, 10)
        assert read1 == read2


class TestRetention:
    def test_expired_offsets_unreadable(self, kafka):
        for i in range(10):
            kafka.produce("events", {"v": i}, key="k")
        partition = kafka_partition("k", 4)
        kafka.expire_before("events", partition, 5)
        assert kafka.earliest_offset("events", partition) == 5
        with pytest.raises(IngestionError, match="retention"):
            kafka.fetch("events", partition, 2)
        assert kafka.fetch("events", partition, 5)[0].value == {"v": 5}


class TestConsumer:
    def test_poll_advances_position(self, kafka):
        for i in range(10):
            kafka.produce("events", {"v": i}, key="k")
        partition = kafka_partition("k", 4)
        consumer = KafkaConsumer(kafka, "events", partition, 0)
        first = consumer.poll(max_records=4)
        assert len(first) == 4
        assert consumer.position == 4
        assert consumer.lag == 6

    def test_poll_until_stops_at_target(self, kafka):
        for i in range(10):
            kafka.produce("events", {"v": i}, key="k")
        partition = kafka_partition("k", 4)
        consumer = KafkaConsumer(kafka, "events", partition, 0)
        consumer.poll_until(end_offset=7, max_records=100)
        assert consumer.position == 7
        assert consumer.poll_until(end_offset=7) == []

"""Golden-vector tests pinning murmur2 to Kafka's Java reference.

The vectors are the exact cases from Kafka's own
``org.apache.kafka.common.utils.UtilsTest#testMurmur2`` — the contract
§4.4 depends on: offline segment builds and realtime consumption only
agree on partition placement if our hash is bit-for-bit Kafka's.
Expected values are Java's *signed* 32-bit ints, as published.
"""

import pytest

from repro.kafka.partitioner import (kafka_partition, key_bytes, murmur2,
                                     pk_partition, primary_key_bytes)

# (key bytes, signed 32-bit murmur2) straight from Kafka's UtilsTest.
KAFKA_GOLDEN = [
    (b"21", -973932308),
    (b"foobar", -790332482),
    (b"a-little-bit-long-string", -985981536),
    (b"a-little-bit-longer-string", -1486304829),
    (b"lkjh234lh9fiuh90y23oiuhsafujhadof229phr9h19h89h8", -58897971),
    (b"abc", 479470107),
]


def signed32(value: int) -> int:
    return value - 0x100000000 if value >= 0x80000000 else value


class TestMurmur2Golden:
    @pytest.mark.parametrize("data,expected", KAFKA_GOLDEN,
                             ids=[d.decode()[:24] for d, __ in KAFKA_GOLDEN])
    def test_matches_kafka_java_reference(self, data, expected):
        assert signed32(murmur2(data)) == expected

    def test_empty_key(self):
        # Not in Kafka's table but a stable fixture here: the seed
        # path (h = seed ^ 0) with no mixing rounds.
        assert murmur2(b"") == 275646681

    def test_returns_unsigned_32_bits(self):
        for data, __ in KAFKA_GOLDEN:
            assert 0 <= murmur2(data) < 2**32


class TestPartitionPlacement:
    """Partition = (murmur2 & 0x7FFFFFFF) % N, pinned so historical
    segment partition metadata stays valid across refactors."""

    @pytest.mark.parametrize("key,by2,by4,by8", [
        ("21", 0, 0, 4),
        ("foobar", 0, 2, 6),
        ("a-little-bit-long-string", 0, 0, 0),
        ("a-little-bit-longer-string", 1, 3, 3),
        ("abc", 1, 3, 3),
    ])
    def test_golden_placements(self, key, by2, by4, by8):
        assert kafka_partition(key, 2) == by2
        assert kafka_partition(key, 4) == by4
        assert kafka_partition(key, 8) == by8

    def test_placement_consistent_with_masked_hash(self):
        for data, expected in KAFKA_GOLDEN:
            want = (signed32(murmur2(data)) & 0x7FFFFFFF) % 7
            assert kafka_partition(data, 7) == want

    def test_key_bytes_canonicalisation(self):
        # int and string forms of the same member id must co-locate.
        assert key_bytes(21) == b"21"
        assert kafka_partition(21, 8) == kafka_partition("21", 8)
        assert key_bytes(b"raw") == b"raw"


class TestPrimaryKeyPartition:
    """Upsert primary-key placement (single + composite keys)."""

    def test_single_column_matches_plain_key(self):
        # The single-column encoding IS the Kafka message-key encoding,
        # so producing with key_column=<pk> routes identically.
        for data, __ in KAFKA_GOLDEN:
            assert primary_key_bytes([data]) == key_bytes(data)
            assert pk_partition([data], 8) == kafka_partition(data, 8)
        assert pk_partition([21], 4) == kafka_partition(21, 4)

    def test_composite_length_prefix_disambiguates(self):
        assert primary_key_bytes(["a", "bc"]) != primary_key_bytes(
            ["ab", "c"])
        assert primary_key_bytes(["a", "bc"]) == (
            b"\x00\x00\x00\x01a\x00\x00\x00\x02bc")

    @pytest.mark.parametrize("values,by4,by8,by7", [
        (("member-1", 17000), 0, 4, 6),
        (("member-2", 17000), 2, 2, 0),
        (("a", "bc"), 0, 0, 1),
        (("ab", "c"), 0, 0, 4),
    ])
    def test_golden_composite_placements(self, values, by4, by8, by7):
        # Pinned so historical upsert partition metadata stays valid.
        assert pk_partition(values, 4) == by4
        assert pk_partition(values, 8) == by8
        assert pk_partition(values, 7) == by7

    def test_rejects_bad_partition_count(self):
        with pytest.raises(ValueError):
            pk_partition(["k"], 0)

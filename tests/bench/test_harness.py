"""Tests for the benchmark measurement harness."""

import pytest

from repro.bench.harness import (
    compile_queries,
    make_druid_executor,
    make_segment_executor,
    measure,
    verify_engines_agree,
)
from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric
from repro.segment.builder import SegmentBuilder


@pytest.fixture(scope="module")
def segment():
    schema = Schema("t", [dimension("d"), metric("m", DataType.LONG)])
    builder = SegmentBuilder("s", "t", schema)
    for i in range(500):
        builder.add({"d": f"v{i % 7}", "m": i % 13})
    return builder.build()


@pytest.fixture(scope="module")
def queries():
    return compile_queries([
        "SELECT count(*) FROM t WHERE d = 'v3'",
        "SELECT sum(m) FROM t GROUP BY d TOP 10",
    ])


class TestExecutors:
    def test_segment_executor_answers(self, segment, queries):
        execute = make_segment_executor([segment])
        response = execute(queries[0])
        assert response.rows[0][0] > 0

    def test_druid_executor_agrees(self, segment, queries):
        pinot = make_segment_executor([segment])
        druid = make_druid_executor([segment])
        verify_engines_agree(queries, {"pinot": pinot, "druid": druid})

    def test_disagreement_detected(self, segment, queries):
        good = make_segment_executor([segment])

        def broken(query):
            response = good(query)
            response.table.rows = [(99999,) * len(response.table.columns)]
            return response

        with pytest.raises(AssertionError, match="disagrees"):
            verify_engines_agree(
                queries, {"good": good, "broken": broken}
            )


class TestMeasure:
    def test_measure_counts_and_positivity(self, segment, queries):
        execute = make_segment_executor([segment])
        measured = measure("x", execute, queries, repeats=3)
        assert len(measured.service_times_s) == len(queries) * 3
        assert (measured.service_times_s > 0).all()
        assert measured.mean_ms > 0
        assert measured.p99_ms >= measured.mean_ms * 0.5

    def test_stats_collected_per_execution(self, segment, queries):
        execute = make_segment_executor([segment])
        measured = measure("x", execute, queries)
        assert len(measured.stats) == len(queries)
        assert measured.stats[0].num_segments_queried == 1

    def test_responses_kept_on_request(self, segment, queries):
        execute = make_segment_executor([segment])
        measured = measure("x", execute, queries, keep_responses=True)
        assert len(measured.responses) == len(queries)

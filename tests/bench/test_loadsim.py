"""Tests for the load simulator and benchmark reporting."""

import numpy as np
import pytest

from repro.bench.loadsim import (
    Degradation,
    LoadSimConfig,
    ProductionConfig,
    build_quotas,
    production_sweep,
    qps_sweep,
    saturation_qps,
    simulate_open_loop,
    simulate_production,
    zipf_tenants,
)
from repro.cluster.health import HealthPolicy
from repro.bench.report import (
    render_histogram,
    render_sweep,
    render_table,
    technique_comparison,
)


def config(**kwargs):
    defaults = dict(num_servers=4, workers_per_server=2,
                    overhead_s=0.0005, duration_s=2.0, warmup_s=0.2,
                    seed=1)
    defaults.update(kwargs)
    return LoadSimConfig(**defaults)


class TestSimulator:
    def test_latency_grows_with_offered_load(self):
        service = np.full(10, 0.004)  # 4 ms of work per query
        fanouts = np.full(10, 4)
        low = simulate_open_loop(service, fanouts, qps=100, config=config())
        high = simulate_open_loop(service, fanouts, qps=4000,
                                  config=config())
        assert high.p99_ms > low.p99_ms

    def test_saturation_detected(self):
        service = np.full(5, 0.02)  # 20 ms per query
        fanouts = np.full(5, 4)
        # Capacity ~ 8 workers / (5ms + overhead per sub-request x4).
        overloaded = simulate_open_loop(service, fanouts, qps=5000,
                                        config=config())
        assert overloaded.completion_ratio < 0.99

    def test_low_load_latency_near_service_time(self):
        service = np.full(5, 0.008)
        fanouts = np.full(5, 1)
        stats = simulate_open_loop(service, fanouts, qps=5,
                                   config=config())
        assert stats.p50_ms == pytest.approx(8.5, rel=0.2)

    def test_faster_engine_sustains_more_qps(self):
        fast = np.full(10, 0.001)
        slow = np.full(10, 0.010)
        fanouts = np.full(10, 4)
        grid = [100, 500, 1000, 2000, 4000]
        fast_stats = qps_sweep(fast, fanouts, grid, config())
        slow_stats = qps_sweep(slow, fanouts, grid, config())
        assert saturation_qps(fast_stats) > saturation_qps(slow_stats)

    def test_lower_fanout_beats_higher_at_high_rate(self):
        """The Fig 16 mechanism: same total work, smaller fan-out."""
        service = np.full(10, 0.004)
        grid = [200, 1000, 3000]
        wide = qps_sweep(service, np.full(10, 4), grid, config())
        narrow = qps_sweep(service, np.full(10, 1), grid, config())
        assert saturation_qps(narrow, latency_budget_ms=50) >= \
            saturation_qps(wide, latency_budget_ms=50)

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError):
            simulate_open_loop(np.ones(3), np.ones(2), 10, config())

    def test_deterministic_by_seed(self):
        service = np.full(5, 0.002)
        fanouts = np.full(5, 2)
        a = simulate_open_loop(service, fanouts, 100, config(seed=7))
        b = simulate_open_loop(service, fanouts, 100, config(seed=7))
        assert a.row() == b.row()


def production_config(**kwargs):
    defaults = dict(num_servers=4, workers_per_server=4,
                    duration_s=8.0, warmup_s=1.0, seed=3)
    defaults.update(kwargs)
    return ProductionConfig(**defaults)


DEGRADED = (Degradation(server=0, start_s=2.0, end_s=6.0,
                        slow_factor=8.0, error_rate=0.3),)


class TestZipfTenants:
    def test_weights_follow_zipf(self):
        tenants = zipf_tenants(n=5, exponent=1.0)
        assert len(tenants) == 5
        assert tenants[0].weight == pytest.approx(1.0)
        assert tenants[1].weight == pytest.approx(0.5)
        assert tenants[4].weight == pytest.approx(0.2)

    def test_priorities_descend_with_rank(self):
        tenants = zipf_tenants(n=8)
        priorities = [t.priority for t in tenants]
        assert priorities == sorted(priorities, reverse=True)
        assert all(0.0 <= p <= 1.0 for p in priorities)


class TestProductionSim:
    def test_deterministic_by_seed(self):
        a = simulate_production(300, production_config())
        b = simulate_production(300, production_config())
        assert a.stats.row() == b.stats.row()
        assert a.server_subrequests == b.server_subrequests

    def test_diurnal_peak_carries_more_arrivals(self):
        """The sin(-pi/2) phase puts the trough at the window edges and
        the peak mid-window."""
        import numpy as np

        from repro.bench.loadsim import _diurnal_arrivals
        config = production_config(duration_s=20.0,
                                   diurnal_amplitude=0.8)
        rng = np.random.default_rng(0)
        times = _diurnal_arrivals(500, config, rng)
        third = config.duration_s / 3.0
        edge = np.sum(times < third)
        middle = np.sum((times >= third) & (times < 2 * third))
        assert middle > edge * 1.3

    def test_degraded_server_hurts_tail_without_detector(self):
        clean = simulate_production(300, production_config())
        sick = simulate_production(
            300, production_config(degradations=DEGRADED))
        assert sick.stats.p99_ms > clean.stats.p99_ms * 3

    def test_detector_protects_tail_and_keeps_discipline(self):
        off = simulate_production(
            300, production_config(degradations=DEGRADED))
        on = simulate_production(
            300, production_config(degradations=DEGRADED),
            detector_policy=HealthPolicy(min_samples=4,
                                         probe_interval_s=0.5,
                                         probe_successes_to_heal=2))
        assert on.ejections > 0
        assert on.stats.p99_ms < off.stats.p99_ms
        # Probe-only invariant: zero non-probe dispatches while ejected.
        assert on.discipline_violations == 0
        assert on.probes > 0

    def test_healed_server_returns_to_rotation(self):
        on = simulate_production(
            300, production_config(degradations=DEGRADED),
            detector_policy=HealthPolicy(min_samples=4,
                                         probe_interval_s=0.5,
                                         probe_successes_to_heal=2))
        assert on.heals > 0
        assert on.post_recovery_subrequests.get("server-0", 0) > 0

    def test_overload_sheds_lowest_priority_first(self):
        config = production_config()
        stats = simulate_production(4000, config,
                                    quotas=build_quotas(config))
        assert sum(stats.shed.values()) > 0
        by_name = {t.name: t for t in config.tenants}
        shed_rate = {
            tenant: stats.shed.get(tenant, 0)
            / max(1, stats.shed.get(tenant, 0)
                  + stats.admitted.get(tenant, 0))
            for tenant in by_name
        }
        top = max(by_name.values(), key=lambda t: t.priority).name
        bottom = min(by_name.values(), key=lambda t: t.priority).name
        assert shed_rate[top] <= shed_rate[bottom]

    def test_no_shedding_when_unloaded(self):
        config = production_config()
        stats = simulate_production(50, config,
                                    quotas=build_quotas(config))
        assert sum(stats.shed.values()) == 0

    def test_sweep_shapes(self):
        cells = production_sweep([100, 300], production_config())
        assert [c.stats.offered_qps for c in cells] == [100, 300]
        assert all(not c.detector_enabled for c in cells)


class TestReporting:
    def test_render_table(self):
        text = render_table(["a", "b"], [[1, "xx"], [22, "y"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "b" in lines[0]

    def test_render_sweep_marks_saturation(self):
        service = np.full(5, 0.050)
        fanouts = np.full(5, 4)
        series = {"slow": qps_sweep(service, fanouts, [10, 10_000],
                                    config())}
        text = render_sweep(series)
        assert "SATURATED" in text

    def test_render_histogram(self):
        text = render_histogram([1, 1, 2, 5, 5, 5], bins=4, title="t")
        assert text.startswith("t")
        assert "#" in text

    def test_technique_comparison_is_table_1(self):
        text = technique_comparison()
        for name in ("RDBMS", "KV stores", "Druid", "Pinot"):
            assert name in text

"""Tests for the load simulator and benchmark reporting."""

import numpy as np
import pytest

from repro.bench.loadsim import (
    LoadSimConfig,
    qps_sweep,
    saturation_qps,
    simulate_open_loop,
)
from repro.bench.report import (
    render_histogram,
    render_sweep,
    render_table,
    technique_comparison,
)


def config(**kwargs):
    defaults = dict(num_servers=4, workers_per_server=2,
                    overhead_s=0.0005, duration_s=2.0, warmup_s=0.2,
                    seed=1)
    defaults.update(kwargs)
    return LoadSimConfig(**defaults)


class TestSimulator:
    def test_latency_grows_with_offered_load(self):
        service = np.full(10, 0.004)  # 4 ms of work per query
        fanouts = np.full(10, 4)
        low = simulate_open_loop(service, fanouts, qps=100, config=config())
        high = simulate_open_loop(service, fanouts, qps=4000,
                                  config=config())
        assert high.p99_ms > low.p99_ms

    def test_saturation_detected(self):
        service = np.full(5, 0.02)  # 20 ms per query
        fanouts = np.full(5, 4)
        # Capacity ~ 8 workers / (5ms + overhead per sub-request x4).
        overloaded = simulate_open_loop(service, fanouts, qps=5000,
                                        config=config())
        assert overloaded.completion_ratio < 0.99

    def test_low_load_latency_near_service_time(self):
        service = np.full(5, 0.008)
        fanouts = np.full(5, 1)
        stats = simulate_open_loop(service, fanouts, qps=5,
                                   config=config())
        assert stats.p50_ms == pytest.approx(8.5, rel=0.2)

    def test_faster_engine_sustains_more_qps(self):
        fast = np.full(10, 0.001)
        slow = np.full(10, 0.010)
        fanouts = np.full(10, 4)
        grid = [100, 500, 1000, 2000, 4000]
        fast_stats = qps_sweep(fast, fanouts, grid, config())
        slow_stats = qps_sweep(slow, fanouts, grid, config())
        assert saturation_qps(fast_stats) > saturation_qps(slow_stats)

    def test_lower_fanout_beats_higher_at_high_rate(self):
        """The Fig 16 mechanism: same total work, smaller fan-out."""
        service = np.full(10, 0.004)
        grid = [200, 1000, 3000]
        wide = qps_sweep(service, np.full(10, 4), grid, config())
        narrow = qps_sweep(service, np.full(10, 1), grid, config())
        assert saturation_qps(narrow, latency_budget_ms=50) >= \
            saturation_qps(wide, latency_budget_ms=50)

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError):
            simulate_open_loop(np.ones(3), np.ones(2), 10, config())

    def test_deterministic_by_seed(self):
        service = np.full(5, 0.002)
        fanouts = np.full(5, 2)
        a = simulate_open_loop(service, fanouts, 100, config(seed=7))
        b = simulate_open_loop(service, fanouts, 100, config(seed=7))
        assert a.row() == b.row()


class TestReporting:
    def test_render_table(self):
        text = render_table(["a", "b"], [[1, "xx"], [22, "y"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "b" in lines[0]

    def test_render_sweep_marks_saturation(self):
        service = np.full(5, 0.050)
        fanouts = np.full(5, 4)
        series = {"slow": qps_sweep(service, fanouts, [10, 10_000],
                                    config())}
        text = render_sweep(series)
        assert "SATURATED" in text

    def test_render_histogram(self):
        text = render_histogram([1, 1, 2, 5, 5, 5], bins=4, title="t")
        assert text.startswith("t")
        assert "#" in text

    def test_technique_comparison_is_table_1(self):
        text = technique_comparison()
        for name in ("RDBMS", "KV stores", "Druid", "Pinot"):
            assert name in text

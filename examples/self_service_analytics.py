"""Self-service analytics: iceberg queries, LIKE, EXPLAIN, auto-indexing.

Run with::

    python examples/self_service_analytics.py

Demonstrates the analyst-facing and self-service features: HAVING
(iceberg queries, §4.3), LIKE patterns evaluated on dictionaries,
EXPLAIN showing per-segment physical plans, the HyperLogLog-backed
approximate distinct count, and the §5.2 loop that mines query logs to
add inverted indexes automatically.
"""

from __future__ import annotations

import random

from repro.cluster import AutoIndexAnalyzer, PinotCluster, TableConfig
from repro.common import DataType, Schema, dimension, metric


def main() -> None:
    cluster = PinotCluster(num_servers=2, num_minions=1)
    schema = Schema("content", [
        dimension("pageUrl"),
        dimension("country"),
        dimension("viewerId", DataType.LONG),
        metric("views", DataType.LONG),
    ])
    cluster.create_table(TableConfig.offline("content", schema))

    rng = random.Random(9)
    sections = ["jobs", "feed", "learning", "news"]
    records = [
        {
            "pageUrl": f"/{rng.choice(sections)}/item-{rng.randrange(200)}",
            "country": f"c{rng.randrange(50)}",
            "viewerId": rng.randrange(5_000),
            "views": 1,
        }
        for __ in range(40_000)
    ]
    cluster.upload_records("content", records, rows_per_segment=20_000)

    # Iceberg query (§4.3): only countries that move the needle.
    response = cluster.execute(
        "SELECT count(*) FROM content GROUP BY country "
        "HAVING count(*) >= 850 TOP 50"
    )
    print("countries with >= 850 views (iceberg / HAVING):")
    for row in response.rows:
        print(f"  {row[0]}: {row[1]}")

    # LIKE: pattern matching evaluated against the dictionary.
    response = cluster.execute(
        "SELECT sum(views) FROM content WHERE pageUrl LIKE '/jobs/%'"
    )
    print(f"\nviews on /jobs/*: {response.rows[0][0]:.0f}")

    # Approximate distinct viewers via HyperLogLog (bounded state).
    exact = cluster.execute(
        "SELECT distinctcount(viewerId) FROM content"
    ).rows[0][0]
    approx = cluster.execute(
        "SELECT distinctcounthll(viewerId) FROM content"
    ).rows[0][0]
    print(f"\ndistinct viewers: exact={exact}, hll~={approx} "
          f"({abs(approx - exact) / exact:.1%} error, 4 KiB state)")

    # EXPLAIN: plans are per segment; today country is scanned.
    plan = cluster.explain(
        "SELECT sum(views) FROM content WHERE country = 'c1'"
    )
    print("\nplan before auto-indexing:")
    for server, segments in plan.items():
        for segment, description in segments.items():
            print(f"  {server}/{segment}: {description}")

    # Simulate a day of dashboard traffic, then run the §5.2 analysis.
    for i in range(40):
        cluster.execute(
            f"SELECT sum(views) FROM content WHERE country = 'c{i % 50}'"
        )
    analyzer = AutoIndexAnalyzer(cluster.leader_controller(),
                                 min_queries=25,
                                 min_entries_scanned=100_000)
    for recommendation in analyzer.recommend(cluster.brokers):
        print(f"\nauto-index recommendation: "
              f"{recommendation.table}.{recommendation.column} "
              f"({recommendation.reasons[0]})")
    analyzer.apply(cluster.brokers)
    cluster.run_minions()

    plan = cluster.explain(
        "SELECT sum(views) FROM content WHERE country = 'c1'"
    )
    print("\nplan after auto-indexing:")
    for server, segments in plan.items():
        for segment, description in segments.items():
            print(f"  {server}/{segment}: {description}")


if __name__ == "__main__":
    main()

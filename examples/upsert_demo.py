"""Primary-key upsert: latest-value customer profiles over a stream.

Run with::

    python examples/upsert_demo.py

A customer-profile table consumes a change stream where every event
carries the member's *current* state (plan, lifetime views). With
``UpsertConfig(mode="upsert")`` the table is keyed on ``memberId``:
each new event supersedes the member's previous row, and queries always
see exactly one — the latest — row per member, even though the
superseded versions still sit physically inside committed segments
(they are masked by per-segment valid-docId bitmaps; see
docs/UPSERT.md). A second table shows ``mode="dedup"``, where repeated
deliveries of the same key are dropped at ingestion instead.
"""

from __future__ import annotations

import random

from repro.cluster import PinotCluster, StreamConfig, TableConfig
from repro.common import DataType, Schema, dimension, metric, time_column
from repro.upsert import UpsertConfig

PLANS = ["free", "premium", "enterprise"]


def schema(name: str) -> Schema:
    return Schema(name, [
        dimension("memberId", DataType.LONG),
        dimension("plan"),
        metric("views", DataType.LONG),
        time_column("day", DataType.INT),
    ])


def profile_event(rng: random.Random, member: int, day: int) -> dict:
    return {"memberId": member, "plan": rng.choice(PLANS),
            "views": rng.randrange(1, 500), "day": day}


def main() -> None:
    cluster = PinotCluster(num_servers=3)
    cluster.create_kafka_topic("profile-updates", num_partitions=2)
    cluster.create_table(TableConfig.realtime(
        "profiles", schema("profiles"),
        StreamConfig("profile-updates", flush_threshold_rows=200,
                     records_per_poll=100),
        replication=2,
        upsert=UpsertConfig(mode="upsert", key_columns=("memberId",)),
    ))

    rng = random.Random(7)
    members = list(range(100))

    # Three days of profile churn: every member's row is rewritten many
    # times; segments seal and commit in between.
    latest: dict[int, dict] = {}
    for day in (17000, 17001, 17002):
        events = [profile_event(rng, rng.choice(members), day)
                  for __ in range(600)]
        for event in events:
            latest[event["memberId"]] = event
        cluster.ingest("profile-updates", events, key_column="memberId")
        cluster.drain_realtime()
        count = cluster.execute(
            "SELECT count(*) FROM profiles").rows[0][0]
        print(f"day {day}: {len(events)} updates ingested, "
              f"{count} member rows visible")

    # count(*) equals the number of distinct members ever seen — one
    # visible row per primary key, however many versions were written.
    count = cluster.execute("SELECT count(*) FROM profiles").rows[0][0]
    assert count == len(latest), (count, len(latest))

    total = cluster.execute("SELECT sum(views) FROM profiles").rows[0][0]
    expected = sum(event["views"] for event in latest.values())
    assert total == expected, (total, expected)
    print(f"\nlatest-value total views: {total:.0f} "
          f"(matches the reference ledger of {len(latest)} members)")

    print("\nmembers on each plan right now:")
    for plan, members_on_plan in cluster.execute(
            "SELECT count(*) FROM profiles GROUP BY plan TOP 5").rows:
        want = sum(1 for event in latest.values()
                   if event["plan"] == plan)
        assert members_on_plan == want, (plan, members_on_plan, want)
        print(f"  {plan:>10}: {members_on_plan:.0f}")

    # The same stream into a dedup table keeps the *first* delivery per
    # member and silently drops every later duplicate at ingestion.
    cluster.create_kafka_topic("profile-signups", num_partitions=2)
    cluster.create_table(TableConfig.realtime(
        "signups", schema("signups"),
        StreamConfig("profile-signups", flush_threshold_rows=200,
                     records_per_poll=100),
        replication=2,
        upsert=UpsertConfig(mode="dedup", key_columns=("memberId",)),
    ))
    deliveries = [profile_event(rng, member, 17000)
                  for member in members for __ in range(3)]
    rng.shuffle(deliveries)
    cluster.ingest("profile-signups", deliveries, key_column="memberId")
    cluster.drain_realtime()
    count = cluster.execute("SELECT count(*) FROM signups").rows[0][0]
    dropped = sum(server.metrics.count("dedup_rows_dropped")
                  for server in cluster.servers)
    assert count == len(members), count
    print(f"\ndedup table: {len(deliveries)} deliveries -> "
          f"{count:.0f} rows ({dropped} duplicate rows dropped "
          f"across replicas)")

    print("\nupsert bookkeeping (from the unified metrics registry):")
    for line in cluster.metrics_registry.export_text().splitlines():
        if "upsert" in line or "dedup" in line:
            print(f"  {line}")


if __name__ == "__main__":
    main()

"""Production-shape load simulation: the failure detector at work.

Run with::

    python examples/loadsim_demo.py

Drives the diurnal, Zipf-tenant load generator (`repro.bench.loadsim`)
against a 4-server cluster where server-0 falls sick mid-run (8x
slower, 90% errors), three ways:

1. detector **off** — the broker keeps routing to the sick server and
   every query that touches it pays the tax;
2. detector **on** — per-server health EWMAs eject server-0, probe it
   back with trickle traffic, and heal it once its window closes;
3. a healthy baseline for reference.

The demo is self-checking: it asserts the detector-on tail beats
detector-off, that ejected servers saw only probe traffic, and that
the healed server returned to rotation.
"""

from __future__ import annotations

from repro.bench.loadsim import (
    Degradation,
    ProductionConfig,
    build_quotas,
    simulate_production,
)
from repro.cluster.health import HealthPolicy

QPS = 1500.0
CONFIG = ProductionConfig(
    num_servers=4,
    workers_per_server=4,
    duration_s=8.0,
    warmup_s=1.0,
    seed=3,
    degradations=(
        Degradation(server=0, start_s=2.0, end_s=6.0,
                    slow_factor=8.0, error_rate=0.9),
    ),
)
POLICY = HealthPolicy(min_samples=8, probe_interval_s=0.25,
                      probe_successes_to_heal=2)


def run_cell(label: str, detector: HealthPolicy | None,
             degraded: bool = True) -> object:
    config = (CONFIG if degraded
              else ProductionConfig(
                  num_servers=CONFIG.num_servers,
                  workers_per_server=CONFIG.workers_per_server,
                  duration_s=CONFIG.duration_s,
                  warmup_s=CONFIG.warmup_s,
                  seed=CONFIG.seed))
    cell = simulate_production(QPS, config, detector_policy=detector,
                               quotas=build_quotas(config))
    stats = cell.stats
    print(f"  {label:<14} p50 {stats.p50_ms:8.2f} ms   "
          f"p99 {stats.p99_ms:9.2f} ms   "
          f"completed {stats.completion_ratio:6.1%}   "
          f"ejections {cell.ejections}  heals {cell.heals}  "
          f"probes {cell.probes}")
    return cell


def main() -> None:
    print(f"Offered load: {QPS:.0f} qps with a diurnal swing; "
          f"server-0 sick from t=2s to t=6s (8x slow, 90% errors)\n")

    off = run_cell("detector off", None)
    on = run_cell("detector on", POLICY)
    healthy = run_cell("healthy", POLICY, degraded=False)

    print()
    for when, server, event in on.events:
        print(f"  t={when:5.2f}s  {server}  {event}")

    # -- self checks --------------------------------------------------
    assert on.stats.p99_ms < off.stats.p99_ms, (
        "detector-on tail should beat detector-off on a degraded "
        "cluster")
    assert on.stats.completion_ratio > off.stats.completion_ratio, (
        "detector-on should complete more of the offered load")
    assert on.ejections > 0, "the sick server never got ejected"
    assert on.heals >= on.ejections, "the sick server never healed"
    assert on.discipline_violations == 0, (
        "ejected servers must receive only probe traffic")
    assert on.post_recovery_subrequests.get("server-0", 0) > 0, (
        "the healed server never returned to rotation")
    assert healthy.ejections == 0, (
        "a healthy cluster should never eject")

    improvement = off.stats.p99_ms / on.stats.p99_ms
    print(f"\nDetector-on p99 is {improvement:.1f}x better than "
          f"detector-off under degradation and completes "
          f"{on.stats.completion_ratio:.0%} of offered load vs "
          f"{off.stats.completion_ratio:.0%}; server-0 took "
          f"{on.probe_subrequests.get('server-0', 0)} probes while "
          f"ejected and {on.post_recovery_subrequests.get('server-0', 0)} "
          f"real sub-requests after healing. All checks passed.")


if __name__ == "__main__":
    main()

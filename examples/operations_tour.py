"""Operations tour: the §3.2/§5.2 cluster-management features.

Run with::

    python examples/operations_tour.py

Walks through the operational side of Pinot this reproduction models:
retention GC, minion purge tasks (GDPR-style), on-the-fly schema
evolution, multitenant throttling, fault tolerance (server death,
controller failover), and elastic scale-out with blank nodes.
"""

from __future__ import annotations

import random

from repro.cluster import (
    PartitionConfig,
    PinotCluster,
    TableConfig,
    TenantQuotaManager,
)
from repro.common import DataType, Schema, dimension, metric, time_column
from repro.errors import ThrottledError


def main() -> None:
    quotas = TenantQuotaManager(default_capacity=1e12,
                                default_refill_rate=1e12)
    quotas.configure("noisy-tenant", capacity=3.5, refill_rate=0.5)
    cluster = PinotCluster(num_servers=4, quotas=quotas)

    schema = Schema("events", [
        dimension("memberId", DataType.LONG),
        dimension("country"),
        metric("views", DataType.LONG),
        time_column("day", DataType.INT),
    ])
    cluster.create_table(TableConfig.offline(
        "events", schema, replication=2, retention=30,
        partition=PartitionConfig("memberId", 4),
        routing_strategy="partition_aware",
    ))

    rng = random.Random(1)
    records = [
        {"memberId": rng.randrange(100), "country": rng.choice("ab"),
         "views": 1, "day": day}
        for day in (17000, 17020, 17040) for __ in range(2_000)
    ]
    cluster.upload_records("events", records, rows_per_segment=2_000)
    print("rows loaded:",
          cluster.execute("SELECT count(*) FROM events").rows[0][0])

    # --- retention GC (§3.2) -------------------------------------------
    deleted = cluster.run_retention(now=17045)
    remaining = cluster.execute("SELECT count(*) FROM events").rows[0][0]
    print(f"\nretention GC at day 17045 deleted {len(deleted)} segments; "
          f"{remaining} rows remain (30-day window)")

    # --- minion purge (GDPR member deletion) ---------------------------
    controller = cluster.leader_controller()
    victim = records[-1]["memberId"]
    before = cluster.execute(
        f"SELECT count(*) FROM events WHERE memberId = {victim}"
    ).rows[0][0]
    controller.schedule_task("purge", "events_OFFLINE",
                             {"column": "memberId", "values": [victim]})
    cluster.run_minions()
    after = cluster.execute(
        f"SELECT count(*) FROM events WHERE memberId = {victim}"
    ).rows[0][0]
    print(f"\npurge task: member {victim} had {before} rows, "
          f"now {after} (segments rewritten in place)")

    # --- schema evolution without downtime (§5.2) ----------------------
    controller.add_column("events_OFFLINE", dimension("platform"))
    count = cluster.execute(
        "SELECT count(*) FROM events WHERE platform = 'null'"
    ).rows[0][0]
    print(f"\nadded column 'platform'; old segments answer with the "
          f"default value ({count} rows match 'null')")

    # --- multitenancy (§4.5) -------------------------------------------
    print("\nnoisy tenant burst:")
    for i in range(5):
        try:
            cluster.execute("SELECT count(*) FROM events",
                            tenant="noisy-tenant", now=0.0)
            print(f"  query {i + 1}: ok")
        except ThrottledError as exc:
            print(f"  query {i + 1}: throttled "
                  f"(retry in {exc.retry_after_s:.1f}s)")

    # --- fault tolerance ------------------------------------------------
    cluster.kill_server("server-0")
    response = cluster.execute("SELECT count(*) FROM events")
    print(f"\nkilled server-0: query still complete="
          f"{not response.is_partial} ({response.rows[0][0]} rows; "
          "replication=2)")

    old_leader = cluster.leader_controller().instance_id
    cluster.kill_controller(old_leader)
    new_leader = cluster.leader_controller().instance_id
    print(f"killed leader {old_leader}: {new_leader} took over")

    # --- elastic scale-out (§3.4) ---------------------------------------
    cluster.add_server("server-blank")
    cluster.upload_records(
        "events",
        [{"memberId": 5, "country": "a", "views": 1, "day": 17041}] * 100,
    )
    hosted = cluster.server("server-blank").hosted_segments(
        "events_OFFLINE"
    )
    print(f"\nblank server joined and now hosts {len(hosted)} segment(s); "
          "local storage is just a cache of the object store")


if __name__ == "__main__":
    main()

"""Who Viewed My Profile: the paper's flagship high-QPS use case.

Run with::

    python examples/wvmp_dashboard.py

Builds the WVMP table the way production Pinot does — hybrid
offline + realtime, physically sorted by ``vieweeId`` (§4.2) — and
serves the queries behind the WVMP page: view counts, viewer facets,
and distinct viewers, merged transparently across the time boundary.
"""

from __future__ import annotations

from repro.cluster import PinotCluster, StreamConfig, TableConfig
from repro.segment import SegmentConfig
from repro.workloads import wvmp


def main() -> None:
    cluster = PinotCluster(num_servers=3)
    schema = wvmp.schema()
    sorted_config = SegmentConfig(sorted_column="vieweeId")

    # Hybrid table: offline (Hadoop push) + realtime (Kafka) sharing the
    # logical name "wvmp"; the broker splits queries at the time
    # boundary (§3.3.3, Fig 6).
    cluster.create_kafka_topic("profile-views", num_partitions=2)
    cluster.create_table(TableConfig.offline(
        "wvmp", schema, replication=2, segment_config=sorted_config,
    ))
    cluster.create_table(TableConfig.realtime(
        "wvmp", schema,
        StreamConfig("profile-views", flush_threshold_rows=50_000),
        replication=2, segment_config=sorted_config,
    ))

    # Offline: the nightly ETL'd history.
    history = wvmp.generate_records(80_000, seed=5)
    cluster.upload_records("wvmp", history, rows_per_segment=20_000)

    # Realtime: today's profile views flowing through Kafka.
    today = wvmp.FIRST_DAY + wvmp.NUM_DAYS
    live = []
    for record in wvmp.generate_records(5_000, seed=6):
        record["day"] = today
        live.append(record)
    cluster.ingest("profile-views", live, key_column="vieweeId")
    cluster.drain_realtime()

    me = history[0]["vieweeId"]
    print(f"WVMP dashboard for member {me}\n")

    total = cluster.execute(
        f"SELECT sum(views) FROM wvmp WHERE vieweeId = {me}"
    )
    uniques = cluster.execute(
        f"SELECT distinctcount(viewerId) FROM wvmp WHERE vieweeId = {me}"
    )
    print(f"profile views: {total.rows[0][0]:.0f} "
          f"from {uniques.rows[0][0]} unique viewers")

    for facet in ("viewerCompany", "viewerOccupation", "viewerRegion"):
        response = cluster.execute(
            f"SELECT sum(views) FROM wvmp WHERE vieweeId = {me} "
            f"GROUP BY {facet} TOP 3"
        )
        print(f"\ntop {facet}:")
        for row in response.rows:
            print(f"  {row[0]:<18} {row[1]:.0f}")

    # Freshness: today's views are already included via the realtime
    # side of the hybrid table.
    todays = cluster.execute(
        f"SELECT count(*) FROM wvmp WHERE day = {today}"
    )
    print(f"\nviews today (from Kafka, seconds-fresh): "
          f"{todays.rows[0][0]}")

    # Why sorted segments matter: the whole dashboard touched only a
    # contiguous slice of each segment.
    stats = total.stats
    print(f"\n(scanned {stats.num_docs_scanned} docs out of "
          f"{stats.total_docs} for the headline count)")


if __name__ == "__main__":
    main()

"""Realtime ingestion: Kafka -> consuming segments -> committed segments.

Run with::

    python examples/realtime_ingestion.py

Demonstrates the paper's §3.3.6 flow end to end: events are produced to
a (simulated) Kafka topic, server replicas consume them into mutable
segments that are queryable within "seconds" (ticks, here), and the
segment-completion protocol seals and commits identical replicas once
the flush threshold is reached.
"""

from __future__ import annotations

import random

from repro.cluster import PinotCluster, StreamConfig, TableConfig
from repro.common import DataType, Schema, dimension, metric, time_column


def main() -> None:
    cluster = PinotCluster(num_servers=3)
    cluster.create_kafka_topic("clicks", num_partitions=2)

    schema = Schema(
        "clickstream",
        [
            dimension("userId", DataType.LONG),
            dimension("page"),
            metric("clicks", DataType.LONG),
            time_column("ts", DataType.LONG),
        ],
    )
    cluster.create_table(
        TableConfig.realtime(
            "clickstream",
            schema,
            StreamConfig("clicks", flush_threshold_rows=1_000,
                         records_per_poll=250),
            replication=2,
        )
    )

    rng = random.Random(3)

    def produce(n: int, t0: int) -> None:
        cluster.ingest(
            "clicks",
            (
                {
                    "userId": rng.randrange(500),
                    "page": rng.choice(["home", "feed", "jobs", "search"]),
                    "clicks": 1,
                    "ts": t0 + i,
                }
                for i in range(n)
            ),
            key_column="userId",
        )

    # Produce a burst, then watch freshness: rows become queryable while
    # segments are still CONSUMING.
    produce(3_000, t0=0)
    for tick in range(4):
        cluster.process_realtime(ticks=1)
        visible = cluster.execute(
            "SELECT count(*) FROM clickstream"
        ).rows[0][0]
        print(f"tick {tick}: {visible} rows visible (still consuming)")

    cluster.drain_realtime()
    print("\nafter drain:",
          cluster.execute("SELECT count(*) FROM clickstream").rows[0])

    controller = cluster.leader_controller()
    print("\nsegments (per Kafka partition, sealed + consuming):")
    for name in controller.list_segments("clickstream_REALTIME"):
        meta = cluster.helix.get_property(
            f"realtime/clickstream_REALTIME/{name}"
        )
        print(f"  {name}: status={meta['status']} "
              f"offsets=[{meta['start_offset']}, {meta['end_offset']})")

    # Keep producing; segments roll over automatically.
    produce(2_000, t0=10_000)
    cluster.drain_realtime()
    response = cluster.execute(
        "SELECT sum(clicks) FROM clickstream GROUP BY page TOP 5"
    )
    print("\nclicks by page after second burst:")
    for row in response.rows:
        print(f"  {row[0]:>7}: {row[1]:.0f}")

    print("\ntotal:",
          cluster.execute("SELECT count(*) FROM clickstream").rows[0][0])


if __name__ == "__main__":
    main()

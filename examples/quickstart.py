"""Quickstart: stand up a Pinot cluster, load data, run PQL queries.

Run with::

    python examples/quickstart.py

Covers the basics: creating an offline table, pushing segments the way
a Hadoop job would, and running aggregation / group-by / selection
queries through a broker.
"""

from __future__ import annotations

import random

from repro.cluster import PinotCluster, TableConfig
from repro.common import DataType, Schema, dimension, metric, time_column
from repro.segment import SegmentConfig


def main() -> None:
    # 1. A cluster: 3 servers, 1 broker, 3 controllers (one leader),
    #    simulated Zookeeper + object store, all in this process.
    cluster = PinotCluster(num_servers=3)

    # 2. A table schema: dimensions, metrics, and a time column.
    schema = Schema(
        "pageviews",
        [
            dimension("country"),
            dimension("browser"),
            metric("views", DataType.LONG),
            time_column("day", DataType.INT),
        ],
    )
    cluster.create_table(
        TableConfig.offline(
            "pageviews",
            schema,
            replication=2,
            segment_config=SegmentConfig(
                sorted_column="country",
                inverted_columns=("browser",),
            ),
        )
    )

    # 3. Generate some data and push it; the facade chunks records into
    #    segments and uploads them to the (leader) controller, which
    #    assigns replicas to servers via Helix.
    rng = random.Random(7)
    records = [
        {
            "country": rng.choice(["us", "de", "in", "br", "jp"]),
            "browser": rng.choice(["chrome", "firefox", "safari"]),
            "views": rng.randint(1, 10),
            "day": 17000 + rng.randrange(7),
        }
        for __ in range(50_000)
    ]
    segment_names = cluster.upload_records("pageviews", records,
                                           rows_per_segment=10_000)
    print(f"uploaded {len(segment_names)} segments: {segment_names}")

    # 4. Query through the broker with PQL.
    response = cluster.execute("SELECT count(*), sum(views) FROM pageviews")
    print("\ntotal:", response.rows[0])

    response = cluster.execute(
        "SELECT sum(views) FROM pageviews "
        "WHERE browser = 'chrome' AND day BETWEEN 17001 AND 17003 "
        "GROUP BY country TOP 5"
    )
    print("\nchrome views by country (top 5):")
    for row in response.rows:
        print(f"  {row[0]:>3}: {row[1]:.0f}")

    response = cluster.execute(
        "SELECT country, browser, views FROM pageviews "
        "WHERE views >= 9 ORDER BY views DESC LIMIT 5"
    )
    print("\nhighest-view rows:")
    for row in response.rows:
        print(f"  {row}")

    stats = response.stats
    print(
        f"\nexecution stats: {stats.num_segments_queried} segments "
        f"queried, {stats.num_docs_scanned} docs scanned, "
        f"{stats.num_entries_scanned_in_filter} entries scanned in filter"
    )


if __name__ == "__main__":
    main()

"""Anomaly-detection dashboards with star-tree pre-aggregation (§4.3).

Run with::

    python examples/anomaly_startree.py

Builds the multidimensional business-metrics table with a star-tree
index and shows how the planner transparently serves iceberg-style
queries from pre-aggregated records — including Fig 9's simple
predicate and Fig 10's OR + GROUP BY — while unsupported queries fall
back to raw execution, unchanged.
"""

from __future__ import annotations

from repro.cluster import PinotCluster, TableConfig
from repro.workloads import anomaly


def run(cluster, pql: str):
    response = cluster.execute(pql)
    stats = response.stats
    path = "star-tree" if stats.startree_used else "raw scan"
    print(f"\n> {pql}")
    print(f"  [{path}; scanned {stats.num_docs_scanned} records "
          f"of {stats.total_docs} raw]")
    for row in response.rows[:5]:
        print(f"  {row}")
    return response


def main() -> None:
    cluster = PinotCluster(num_servers=3)
    cluster.create_table(TableConfig.offline(
        "anomaly", anomaly.schema(), replication=2,
        segment_config=anomaly.segment_config("startree"),
    ))
    records = anomaly.generate_records(120_000, seed=11)
    cluster.upload_records("anomaly", records, rows_per_segment=60_000)
    metric_name = records[0]["metricName"]

    # Fig 9: simple predicate, answered by navigating the star-tree.
    run(cluster,
        f"SELECT sum(value) FROM anomaly "
        f"WHERE browser = 'firefox'")

    # Fig 10: OR predicate (fused to IN by the rewriter) with GROUP BY,
    # requiring multiple tree navigations.
    run(cluster,
        "SELECT sum(value) FROM anomaly "
        "WHERE browser = 'firefox' OR browser = 'safari' "
        "GROUP BY country TOP 5")

    # The monitoring query shape: metric + day range, grouped by day.
    run(cluster,
        f"SELECT sum(value), sum(eventCount) FROM anomaly "
        f"WHERE metricName = '{metric_name}' "
        f"AND day BETWEEN {anomaly.FIRST_DAY} AND {anomaly.FIRST_DAY + 3} "
        f"GROUP BY day TOP 31")

    # DISTINCTCOUNT needs the original rows — the planner transparently
    # falls back to raw execution (§4.3: "otherwise, query execution
    # runs on the original unaggregated data").
    run(cluster,
        f"SELECT distinctcount(country) FROM anomaly "
        f"WHERE metricName = '{metric_name}'")


if __name__ == "__main__":
    main()

"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` uses the legacy
``setup.py develop`` path through this file when PEP 660 editable
builds are unavailable offline.
"""
from setuptools import setup

setup()

"""Open-loop cluster load simulation for the QPS-sweep figures.

The paper's Figs 11/14/15/16 plot query latency against offered query
rate on a 9-host cluster. A pure-Python engine cannot serve tens of
thousands of QPS, so per DESIGN.md we split the reproduction in two:

1. *measure* the real per-query service time of each engine
   configuration on the synthetic dataset (the harness does this);
2. *simulate* a cluster under open-loop Poisson load, feeding it the
   measured service-time distributions.

The simulator models each server as a FIFO multi-worker station. One
query fans out to ``fanout`` servers; each contacted server performs
``total_work / fanout + overhead`` seconds of work, and the query
completes when its slowest sub-request finishes. This reproduces the
effects the paper discusses: heavier engines saturate at lower rates;
high fan-out amplifies tail latency and burns capacity on per-request
overhead (the §4.4 straggler/routing story).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LoadSimConfig:
    """Cluster and experiment parameters (defaults mirror §6's setup:
    nine query-processing hosts)."""

    num_servers: int = 9
    workers_per_server: int = 8
    #: Fixed cost per sub-request (scatter/gather RPC, plan setup).
    overhead_s: float = 0.0005
    duration_s: float = 10.0
    warmup_s: float = 1.0
    seed: int = 0


@dataclass
class LatencyStats:
    """Summary of one (engine, qps) simulation cell."""

    offered_qps: float
    completed: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float
    #: Fraction of offered queries that completed within the window —
    #: < 1 indicates saturation (the latency "drops out" in the plots).
    completion_ratio: float

    def row(self) -> tuple:
        return (
            self.offered_qps, self.completed, round(self.mean_ms, 2),
            round(self.p50_ms, 2), round(self.p95_ms, 2),
            round(self.p99_ms, 2), round(self.completion_ratio, 3),
        )


def simulate_open_loop(
    service_times_s: np.ndarray,
    fanouts: np.ndarray,
    qps: float,
    config: LoadSimConfig = LoadSimConfig(),
) -> LatencyStats:
    """Simulate Poisson arrivals at ``qps`` and return latency stats.

    ``service_times_s[i]`` is the *total* single-threaded work of query
    shape ``i``; ``fanouts[i]`` is how many servers its routing strategy
    contacts. Queries cycle through the shapes in randomized order.
    """
    if len(service_times_s) != len(fanouts):
        raise ValueError("service_times and fanouts must align")
    rng = np.random.default_rng(config.seed)
    horizon = config.duration_s
    num_arrivals = int(np.ceil(qps * horizon))
    if num_arrivals == 0:
        raise ValueError("qps too low for the simulation window")

    inter = rng.exponential(1.0 / qps, size=num_arrivals)
    arrivals = np.cumsum(inter)
    arrivals = arrivals[arrivals < horizon]
    shape_ids = rng.integers(0, len(service_times_s), size=len(arrivals))

    # Each server is a heap of worker-free times (G/G/c FIFO station).
    servers = [
        [0.0] * config.workers_per_server for _ in range(config.num_servers)
    ]
    for worker_heap in servers:
        heapq.heapify(worker_heap)

    latencies: list[float] = []
    cutoff = horizon  # sub-requests finishing past this are "timeouts"
    server_cursor = 0
    for arrival, shape in zip(arrivals, shape_ids):
        total_work = float(service_times_s[shape])
        fanout = int(fanouts[shape])
        fanout = max(1, min(fanout, config.num_servers))
        per_server = total_work / fanout + config.overhead_s

        # Routing: rotate the contacted-server window so load spreads.
        finish = 0.0
        for i in range(fanout):
            server = servers[(server_cursor + i) % config.num_servers]
            free_at = heapq.heappop(server)
            start = max(arrival, free_at)
            done = start + per_server
            heapq.heappush(server, done)
            if done > finish:
                finish = done
        server_cursor = (server_cursor + fanout) % config.num_servers

        if arrival >= config.warmup_s and finish <= cutoff:
            latencies.append(finish - arrival)

    offered_in_window = int(np.sum(arrivals >= config.warmup_s))
    if not latencies:
        return LatencyStats(qps, 0, float("inf"), float("inf"),
                            float("inf"), float("inf"), float("inf"), 0.0)
    lat_ms = np.asarray(latencies) * 1e3
    return LatencyStats(
        offered_qps=qps,
        completed=len(latencies),
        mean_ms=float(lat_ms.mean()),
        p50_ms=float(np.percentile(lat_ms, 50)),
        p95_ms=float(np.percentile(lat_ms, 95)),
        p99_ms=float(np.percentile(lat_ms, 99)),
        max_ms=float(lat_ms.max()),
        completion_ratio=(len(latencies) / offered_in_window
                          if offered_in_window else 0.0),
    )


def qps_sweep(
    service_times_s: np.ndarray,
    fanouts: np.ndarray,
    qps_values: list[float],
    config: LoadSimConfig = LoadSimConfig(),
) -> list[LatencyStats]:
    """Run :func:`simulate_open_loop` across a QPS grid."""
    return [
        simulate_open_loop(service_times_s, fanouts, qps, config)
        for qps in qps_values
    ]


def saturation_qps(stats: list[LatencyStats],
                   latency_budget_ms: float = 100.0,
                   min_completion: float = 0.99) -> float:
    """The highest offered QPS still meeting an interactive latency
    budget — the scalar used to compare curves ("scales 2x further")."""
    best = 0.0
    for cell in stats:
        if (cell.p99_ms <= latency_budget_ms
                and cell.completion_ratio >= min_completion):
            best = max(best, cell.offered_qps)
    return best

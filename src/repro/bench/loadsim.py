"""Open-loop cluster load simulation for the QPS-sweep figures.

The paper's Figs 11/14/15/16 plot query latency against offered query
rate on a 9-host cluster. A pure-Python engine cannot serve tens of
thousands of QPS, so per DESIGN.md we split the reproduction in two:

1. *measure* the real per-query service time of each engine
   configuration on the synthetic dataset (the harness does this);
2. *simulate* a cluster under open-loop Poisson load, feeding it the
   measured service-time distributions.

The simulator models each server as a FIFO multi-worker station. One
query fans out to ``fanout`` servers; each contacted server performs
``total_work / fanout + overhead`` seconds of work, and the query
completes when its slowest sub-request finishes. This reproduces the
effects the paper discusses: heavier engines saturate at lower rates;
high fan-out amplifies tail latency and burns capacity on per-request
overhead (the §4.4 straggler/routing story).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.health import FailureDetector, HealthPolicy
from repro.cluster.tenant import TenantQuotaManager
from repro.errors import ThrottledError


@dataclass(frozen=True)
class LoadSimConfig:
    """Cluster and experiment parameters (defaults mirror §6's setup:
    nine query-processing hosts)."""

    num_servers: int = 9
    workers_per_server: int = 8
    #: Fixed cost per sub-request (scatter/gather RPC, plan setup).
    overhead_s: float = 0.0005
    duration_s: float = 10.0
    warmup_s: float = 1.0
    seed: int = 0


@dataclass
class LatencyStats:
    """Summary of one (engine, qps) simulation cell."""

    offered_qps: float
    completed: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float
    #: Fraction of offered queries that completed within the window —
    #: < 1 indicates saturation (the latency "drops out" in the plots).
    completion_ratio: float

    def row(self) -> tuple:
        return (
            self.offered_qps, self.completed, round(self.mean_ms, 2),
            round(self.p50_ms, 2), round(self.p95_ms, 2),
            round(self.p99_ms, 2), round(self.completion_ratio, 3),
        )


def simulate_open_loop(
    service_times_s: np.ndarray,
    fanouts: np.ndarray,
    qps: float,
    config: LoadSimConfig = LoadSimConfig(),
) -> LatencyStats:
    """Simulate Poisson arrivals at ``qps`` and return latency stats.

    ``service_times_s[i]`` is the *total* single-threaded work of query
    shape ``i``; ``fanouts[i]`` is how many servers its routing strategy
    contacts. Queries cycle through the shapes in randomized order.
    """
    if len(service_times_s) != len(fanouts):
        raise ValueError("service_times and fanouts must align")
    rng = np.random.default_rng(config.seed)
    horizon = config.duration_s
    num_arrivals = int(np.ceil(qps * horizon))
    if num_arrivals == 0:
        raise ValueError("qps too low for the simulation window")

    inter = rng.exponential(1.0 / qps, size=num_arrivals)
    arrivals = np.cumsum(inter)
    arrivals = arrivals[arrivals < horizon]
    shape_ids = rng.integers(0, len(service_times_s), size=len(arrivals))

    # Each server is a heap of worker-free times (G/G/c FIFO station).
    servers = [
        [0.0] * config.workers_per_server for _ in range(config.num_servers)
    ]
    for worker_heap in servers:
        heapq.heapify(worker_heap)

    latencies: list[float] = []
    cutoff = horizon  # sub-requests finishing past this are "timeouts"
    server_cursor = 0
    for arrival, shape in zip(arrivals, shape_ids):
        total_work = float(service_times_s[shape])
        fanout = int(fanouts[shape])
        fanout = max(1, min(fanout, config.num_servers))
        per_server = total_work / fanout + config.overhead_s

        # Routing: rotate the contacted-server window so load spreads.
        finish = 0.0
        for i in range(fanout):
            server = servers[(server_cursor + i) % config.num_servers]
            free_at = heapq.heappop(server)
            start = max(arrival, free_at)
            done = start + per_server
            heapq.heappush(server, done)
            if done > finish:
                finish = done
        server_cursor = (server_cursor + fanout) % config.num_servers

        if arrival >= config.warmup_s and finish <= cutoff:
            latencies.append(finish - arrival)

    offered_in_window = int(np.sum(arrivals >= config.warmup_s))
    if not latencies:
        return LatencyStats(qps, 0, float("inf"), float("inf"),
                            float("inf"), float("inf"), float("inf"), 0.0)
    lat_ms = np.asarray(latencies) * 1e3
    return LatencyStats(
        offered_qps=qps,
        completed=len(latencies),
        mean_ms=float(lat_ms.mean()),
        p50_ms=float(np.percentile(lat_ms, 50)),
        p95_ms=float(np.percentile(lat_ms, 95)),
        p99_ms=float(np.percentile(lat_ms, 99)),
        max_ms=float(lat_ms.max()),
        completion_ratio=(len(latencies) / offered_in_window
                          if offered_in_window else 0.0),
    )


def qps_sweep(
    service_times_s: np.ndarray,
    fanouts: np.ndarray,
    qps_values: list[float],
    config: LoadSimConfig = LoadSimConfig(),
) -> list[LatencyStats]:
    """Run :func:`simulate_open_loop` across a QPS grid."""
    return [
        simulate_open_loop(service_times_s, fanouts, qps, config)
        for qps in qps_values
    ]


def saturation_qps(stats: list[LatencyStats],
                   latency_budget_ms: float = 100.0,
                   min_completion: float = 0.99) -> float:
    """The highest offered QPS still meeting an interactive latency
    budget — the scalar used to compare curves ("scales 2x further")."""
    best = 0.0
    for cell in stats:
        if (cell.p99_ms <= latency_budget_ms
                and cell.completion_ratio >= min_completion):
            best = max(best, cell.offered_qps)
    return best


# -- production-shape load (failure detection + adaptive admission) ----------
#
# The closed-loop scenario from the ROADMAP: diurnal arrival rate,
# Zipf-distributed tenants with priorities, a mixed query-shape
# workload, and servers that degrade and recover mid-run. The *real*
# broker components run in the loop — ``repro.cluster.health``'s
# FailureDetector scores every sub-request and ejects/probes servers,
# and ``repro.cluster.tenant``'s TenantQuotaManager sheds low-priority
# tenants when worker backlogs build — so the latency-vs-QPS curves in
# BENCH_loadsim.json exercise the exact production code paths.


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's share of traffic and its admission configuration."""

    name: str
    weight: float
    priority: float
    capacity: float = 1e9
    refill_rate: float = 1e9


@dataclass(frozen=True)
class QueryShape:
    """One query class: total work, fan-out, and traffic share."""

    name: str
    service_s: float
    fanout: int
    weight: float


#: Interactive dashboards dominate; analytical scans are the heavy tail
#: (the paper's §6 mixed-workload shape).
DEFAULT_SHAPES: tuple[QueryShape, ...] = (
    QueryShape("dashboard", 0.003, 3, 0.70),
    QueryShape("analytics", 0.012, 6, 0.25),
    QueryShape("scan", 0.040, 9, 0.05),
)


@dataclass(frozen=True)
class Degradation:
    """One server's mid-run sickness window: service times multiply by
    ``slow_factor`` and sub-requests fail with ``error_rate`` while
    ``start_s <= t < end_s``; outside the window the server is healthy."""

    server: int
    start_s: float
    end_s: float
    slow_factor: float = 1.0
    error_rate: float = 0.0


def zipf_tenants(n: int = 8, exponent: float = 1.1) -> tuple[TenantProfile, ...]:
    """A Zipf tenant population: rank-1 tenants carry most traffic and
    the highest priority (the paid dashboards), the long tail carries
    little traffic at low priority (the batch/exploratory users) — so
    overload shedding sacrifices the tail first."""
    profiles = []
    for rank in range(1, n + 1):
        weight = 1.0 / rank ** exponent
        priority = (0.9 - 0.8 * (rank - 1) / max(1, n - 1)
                    if n > 1 else 0.9)
        profiles.append(TenantProfile(
            name=f"tenant-{rank:02d}", weight=weight,
            priority=round(priority, 3),
        ))
    return tuple(profiles)


@dataclass(frozen=True)
class ProductionConfig:
    """Cluster and workload parameters for the production-shape sim."""

    num_servers: int = 9
    workers_per_server: int = 8
    overhead_s: float = 0.0005
    duration_s: float = 20.0
    warmup_s: float = 2.0
    seed: int = 0
    #: Arrival rate swings +-amplitude around the mean over one
    #: ``diurnal_period_s`` (defaults to the run window — one
    #: compressed day: trough at the start, peak mid-run).
    diurnal_amplitude: float = 0.5
    diurnal_period_s: float | None = None
    tenants: tuple[TenantProfile, ...] = field(default_factory=zipf_tenants)
    shapes: tuple[QueryShape, ...] = DEFAULT_SHAPES
    degradations: tuple[Degradation, ...] = ()
    #: Per-sub-request replica attempts (primary + retries).
    max_attempts: int = 3
    #: Work one probe costs its target (trickle traffic).
    probe_work_s: float = 0.002
    #: Worker backlog (seconds) that maps to admission pressure 1.0.
    pressure_norm_s: float = 0.25


@dataclass
class ProductionStats:
    """One production-sim cell: latency stats plus the detector's and
    admission control's behavior."""

    stats: LatencyStats
    detector_enabled: bool
    ejections: int
    heals: int
    probes: int
    #: Non-probe sub-requests sent to an ejected server — the
    #: probe-only invariant holds iff this is 0.
    discipline_violations: int
    failed_queries: int
    shed: dict[str, int]
    admitted: dict[str, int]
    #: (virtual time, server, "ejected"/"healed") transitions.
    events: list[tuple[float, str, str]]
    server_subrequests: dict[str, int]
    probe_subrequests: dict[str, int]
    #: Non-probe sub-requests per server departing after every
    #: degradation window closed — healed servers must return here.
    post_recovery_subrequests: dict[str, int]


def _diurnal_arrivals(qps: float, config: ProductionConfig,
                      rng: np.random.Generator) -> np.ndarray:
    """Nonhomogeneous Poisson arrivals via thinning: candidates at the
    peak rate, each kept with probability rate(t)/peak."""
    amplitude = config.diurnal_amplitude
    period = (config.diurnal_period_s if config.diurnal_period_s
              else config.duration_s)
    peak = qps * (1.0 + amplitude)
    n_candidates = int(np.ceil(peak * config.duration_s * 1.1)) + 16
    inter = rng.exponential(1.0 / peak, size=n_candidates)
    times = np.cumsum(inter)
    times = times[times < config.duration_s]
    if amplitude <= 0.0:
        return times
    # Trough at t=0, peak mid-window (sin phase -pi/2).
    rate = 1.0 + amplitude * np.sin(
        2.0 * np.pi * times / period - np.pi / 2.0)
    keep = rng.random(len(times)) < rate * qps / peak
    return times[keep]


def _degradation_at(config: ProductionConfig, server: int,
                    t: float) -> tuple[float, float]:
    """(slow_factor, error_rate) in effect on ``server`` at ``t``."""
    slow, err = 1.0, 0.0
    for window in config.degradations:
        if window.server == server and window.start_s <= t < window.end_s:
            slow *= window.slow_factor
            err = max(err, window.error_rate)
    return slow, err


def build_quotas(config: ProductionConfig,
                 shed_start: float = 0.5) -> TenantQuotaManager:
    """A quota manager configured from the tenant population."""
    quotas = TenantQuotaManager(shed_start=shed_start)
    for tenant in config.tenants:
        quotas.configure(tenant.name, tenant.capacity, tenant.refill_rate,
                         priority=tenant.priority)
    return quotas


def simulate_production(
    qps: float,
    config: ProductionConfig = ProductionConfig(),
    detector_policy: HealthPolicy | None = None,
    quotas: TenantQuotaManager | None = None,
) -> ProductionStats:
    """Run one production-shape cell and return stats + detector state.

    ``detector_policy=None`` runs the detector-off baseline (the broker
    keeps routing to sick servers and eats their latency/errors);
    passing a :class:`HealthPolicy` runs the real FailureDetector in
    the routing loop. ``quotas=None`` disables admission control.
    """
    rng = np.random.default_rng(config.seed)
    detector = (FailureDetector(detector_policy)
                if detector_policy is not None else None)
    arrivals = _diurnal_arrivals(qps, config, rng)
    if len(arrivals) == 0:
        raise ValueError("qps too low for the simulation window")

    tenant_names = [t.name for t in config.tenants]
    tenant_p = np.array([t.weight for t in config.tenants])
    tenant_p = tenant_p / tenant_p.sum()
    tenant_ids = rng.choice(len(tenant_names), size=len(arrivals),
                            p=tenant_p)
    shape_p = np.array([s.weight for s in config.shapes])
    shape_p = shape_p / shape_p.sum()
    shape_ids = rng.choice(len(config.shapes), size=len(arrivals),
                           p=shape_p)

    servers = [
        [0.0] * config.workers_per_server
        for _ in range(config.num_servers)
    ]
    for worker_heap in servers:
        heapq.heapify(worker_heap)
    names = [f"server-{i}" for i in range(config.num_servers)]

    recovery_t = max((d.end_s for d in config.degradations), default=0.0)
    server_subrequests = {name: 0 for name in names}
    probe_subrequests = {name: 0 for name in names}
    post_recovery = {name: 0 for name in names}
    shed: dict[str, int] = {}
    admitted: dict[str, int] = {}
    failed_queries = 0
    latencies: list[float] = []
    offered_in_window = 0
    cursor = 0

    def run_subrequest(server_idx: int, depart: float,
                       work_s: float, probe: bool) -> tuple[float, bool]:
        """One sub-request on one server; returns (done, ok). Feeds the
        detector with the outcome and the *service* latency (queueing
        is load, not sickness)."""
        name = names[server_idx]
        if detector is not None:
            detector.record_dispatch(name, now=depart, probe=probe)
        heap = servers[server_idx]
        free = heapq.heappop(heap)
        start = max(depart, free)
        slow, err = _degradation_at(config, server_idx, start)
        service = work_s * slow
        done = start + service
        heapq.heappush(heap, done)
        if probe:
            probe_subrequests[name] += 1
        else:
            server_subrequests[name] += 1
            if config.degradations and depart >= recovery_t:
                post_recovery[name] += 1
        ok = not (err > 0.0 and rng.random() < err)
        if detector is not None:
            if ok:
                detector.observe_success(name, latency_s=service, now=done)
            else:
                detector.observe_failure(name, now=done)
        return done, ok

    for arrival, tenant_id, shape_id in zip(arrivals, tenant_ids,
                                            shape_ids):
        tenant = tenant_names[tenant_id]
        shape = config.shapes[shape_id]
        in_window = arrival >= config.warmup_s
        if in_window:
            offered_in_window += 1

        # Probe trickle: each ejected server gets at most one probe per
        # cadence interval, dispatched here at arrival granularity.
        if detector is not None:
            for name in sorted(detector.ejected_set()):
                if detector.try_probe(name, arrival):
                    run_subrequest(names.index(name), arrival,
                                   config.probe_work_s, probe=True)

        # Adaptive admission: the mean time-to-free-worker across the
        # fleet, normalized, is the queue-pressure signal.
        if quotas is not None:
            backlog = 0.0
            for heap in servers:
                backlog += max(0.0, heap[0] - arrival)
            pressure = min(1.0, backlog / config.num_servers
                           / config.pressure_norm_s)
            try:
                quotas.admit(tenant, now=arrival, pressure=pressure)
            except ThrottledError:
                if in_window:
                    shed[tenant] = shed.get(tenant, 0) + 1
                continue
        if in_window:
            admitted[tenant] = admitted.get(tenant, 0) + 1

        healthy = (
            [i for i in range(config.num_servers)
             if not detector.is_ejected(names[i])]
            if detector is not None else list(range(config.num_servers))
        )
        if not healthy:  # fleet-fraction cap makes this unreachable
            healthy = list(range(config.num_servers))
        fanout = max(1, min(shape.fanout, len(healthy)))
        per_server = shape.service_s / fanout + config.overhead_s

        finish = arrival
        query_ok = True
        for k in range(fanout):
            server_idx = healthy[(cursor + k) % len(healthy)]
            tried = {server_idx}
            done, ok = run_subrequest(server_idx, arrival, per_server,
                                      probe=False)
            # Bounded replica failover, departing when the failure is
            # known; ejected and already-tried servers are excluded.
            while not ok and len(tried) < config.max_attempts:
                candidates = [i for i in healthy if i not in tried]
                if not candidates:
                    break
                retry_idx = candidates[(cursor + k) % len(candidates)]
                tried.add(retry_idx)
                done, ok = run_subrequest(retry_idx, done, per_server,
                                          probe=False)
            if not ok:
                query_ok = False
            finish = max(finish, done)
        cursor = (cursor + fanout) % config.num_servers

        if quotas is not None:
            quotas.charge(tenant, finish - arrival, now=arrival)
        if not in_window:
            continue
        if not query_ok:
            failed_queries += 1
        elif finish <= config.duration_s:
            latencies.append(finish - arrival)

    if latencies:
        lat_ms = np.asarray(latencies) * 1e3
        stats = LatencyStats(
            offered_qps=qps,
            completed=len(latencies),
            mean_ms=float(lat_ms.mean()),
            p50_ms=float(np.percentile(lat_ms, 50)),
            p95_ms=float(np.percentile(lat_ms, 95)),
            p99_ms=float(np.percentile(lat_ms, 99)),
            max_ms=float(lat_ms.max()),
            completion_ratio=(len(latencies) / offered_in_window
                              if offered_in_window else 0.0),
        )
    else:
        stats = LatencyStats(qps, 0, float("inf"), float("inf"),
                             float("inf"), float("inf"), float("inf"), 0.0)
    counters = detector.counters if detector is not None else {}
    return ProductionStats(
        stats=stats,
        detector_enabled=detector is not None,
        ejections=counters.get("ejections", 0),
        heals=counters.get("heals", 0),
        probes=counters.get("probes", 0),
        discipline_violations=counters.get("discipline_violations", 0),
        failed_queries=failed_queries,
        shed=shed,
        admitted=admitted,
        events=list(detector.events) if detector is not None else [],
        server_subrequests=server_subrequests,
        probe_subrequests=probe_subrequests,
        post_recovery_subrequests=post_recovery,
    )


def production_sweep(
    qps_values: list[float],
    config: ProductionConfig = ProductionConfig(),
    detector_policy: HealthPolicy | None = None,
    quotas_factory=None,
) -> list[ProductionStats]:
    """Run :func:`simulate_production` across a QPS grid; a fresh
    quota manager per cell when ``quotas_factory`` is given."""
    return [
        simulate_production(
            qps, config, detector_policy,
            quotas=quotas_factory() if quotas_factory else None,
        )
        for qps in qps_values
    ]

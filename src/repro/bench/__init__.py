"""Benchmark harness: service-time measurement, open-loop cluster load
simulation, and plain-text reporting."""

from repro.bench.harness import (
    MeasuredWorkload,
    compile_queries,
    make_druid_executor,
    make_segment_executor,
    measure,
    measure_all,
    verify_engines_agree,
)
from repro.bench.loadsim import (
    LatencyStats,
    LoadSimConfig,
    qps_sweep,
    saturation_qps,
    simulate_open_loop,
)
from repro.bench.report import (
    render_histogram,
    render_sweep,
    render_table,
    technique_comparison,
)
from repro.bench.store import (
    StoreScenarioResult,
    run_store_scenario,
)

__all__ = [
    "LatencyStats",
    "LoadSimConfig",
    "MeasuredWorkload",
    "StoreScenarioResult",
    "compile_queries",
    "make_druid_executor",
    "make_segment_executor",
    "measure",
    "measure_all",
    "qps_sweep",
    "render_histogram",
    "render_sweep",
    "render_table",
    "run_store_scenario",
    "saturation_qps",
    "simulate_open_loop",
    "technique_comparison",
    "verify_engines_agree",
]

"""Tiered-storage scenarios: access traces against a byte-budgeted
segment cache over a virtual-latency deep store.

Shared by ``scripts/bench_store.py`` (the BENCH_store.json CI gate) and
``benchmarks/test_tiered_storage.py`` (the fig_store report). Each
scenario builds a single-server cluster whose deep-store link has real
latency and bandwidth on the virtual clock, uploads one segment per
table, sizes the cache budget as a fraction of the total bytes, and
replays a seeded hot-set access trace (optionally polluted with
periodic full-table scans). Per-query latency is the broker's
``time_used_ms`` — virtual-clock time, so cold loads surface as the
deep-store round trip plus the transfer time of the segment bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.pinot import PinotCluster
from repro.cluster.table import TableConfig
from repro.common.schema import Schema
from repro.common.types import DataType, dimension, metric, time_column
from repro.net import LinkModel, SimClock, Transport
from repro.store import DEEPSTORE_ADDRESS


@dataclass
class StoreScenarioResult:
    """One access-trace replay, summarized."""

    name: str
    policy: str
    hit_ratio: float
    p50_ms: float
    p99_ms: float
    hits: int
    misses: int
    evictions: int
    budget_bytes: int
    total_bytes: int

    def summary(self) -> dict:
        return {
            "policy": self.policy,
            "hit_ratio": round(self.hit_ratio, 4),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "budget_bytes": self.budget_bytes,
            "total_bytes": self.total_bytes,
        }


def _schema() -> Schema:
    return Schema("events", [
        dimension("country"), metric("views", DataType.LONG),
        time_column("day", DataType.INT),
    ])


def _records(rows: int, table_index: int) -> list[dict]:
    return [{"country": f"c{i % 7}", "views": i + table_index,
             "day": 17000 + (i % 5)} for i in range(rows)]


def _trace(rng: np.random.Generator, num_tables: int, accesses: int,
           hot_tables: int, hot_fraction: float,
           scan_every: int | None) -> list[int]:
    """Hot-set accesses, optionally polluted with periodic one-shot
    scans over every table (the pattern SIEVE resists and LRU does
    not)."""
    trace: list[int] = []
    step = 0
    while len(trace) < accesses:
        if scan_every is not None and step % scan_every == 0 and step:
            trace.extend(range(num_tables))
        elif rng.random() < hot_fraction:
            trace.append(int(rng.integers(0, hot_tables)))
        else:
            trace.append(int(rng.integers(hot_tables, num_tables)))
        step += 1
    return trace[:accesses]


def run_store_scenario(name: str, *, num_tables: int = 12,
                       rows_per_table: int = 400,
                       budget_fraction: float = 1.0,
                       policy: str = "lru", accesses: int = 240,
                       hot_tables: int = 4, hot_fraction: float = 0.85,
                       scan_every: int | None = None, seed: int = 7,
                       link_latency_s: float = 0.010,
                       bandwidth_bytes_per_s: float = 50e6,
                       ) -> StoreScenarioResult:
    """Replay one access trace and summarize cache behavior.

    ``budget_fraction`` sizes the cache budget relative to the total
    bytes of all uploaded segments (1.0 = everything fits; 0.25 = the
    working set is 4x the budget).
    """
    clock = SimClock(auto_advance=False)
    transport = Transport(clock, seed=seed)
    transport.set_link(None, DEEPSTORE_ADDRESS, LinkModel(
        latency_s=link_latency_s,
        bandwidth_bytes_per_s=bandwidth_bytes_per_s,
    ))
    cluster = PinotCluster(num_servers=1, clock=clock,
                           transport=transport,
                           store_budget_bytes=1 << 40,
                           store_policy=policy)
    schema = _schema()
    tables = [f"t{i:02d}" for i in range(num_tables)]
    for index, table in enumerate(tables):
        cluster.create_table(TableConfig.offline(table, schema))
        cluster.upload_records(table, _records(rows_per_table, index),
                               rows_per_segment=rows_per_table)

    server = cluster.servers[0]
    cache = server.segment_cache
    total_bytes = sum(e.size_bytes for e in cache.entries())
    # The budget is sized from the actual uploaded bytes, so set it
    # after upload; the next cache operation re-enforces it.
    budget = max(1, int(total_bytes * budget_fraction))
    cache.budget_bytes = budget

    rng = np.random.default_rng(seed)
    trace = _trace(rng, num_tables, accesses, hot_tables, hot_fraction,
                   scan_every)

    def query(table_index: int) -> float:
        pql = (f"SELECT sum(views), count(*) FROM {tables[table_index]} "
               "OPTION(skipCache=true)")
        return cluster.execute(pql).time_used_ms

    # Warm every table once so the measured window starts from steady
    # state: with a fitting budget nothing is cold afterwards, while
    # under pressure the eviction churn this causes IS the steady state.
    for table_index in range(num_tables):
        query(table_index)
    hits0 = server.metrics.count("store_hits")
    misses0 = server.metrics.count("store_misses")
    evictions0 = server.metrics.count("store_evictions")
    times_ms = np.array([query(t) for t in trace])
    hits = server.metrics.count("store_hits") - hits0
    misses = server.metrics.count("store_misses") - misses0
    evictions = server.metrics.count("store_evictions") - evictions0
    return StoreScenarioResult(
        name=name, policy=policy,
        hit_ratio=hits / max(1, hits + misses),
        p50_ms=float(np.percentile(times_ms, 50)),
        p99_ms=float(np.percentile(times_ms, 99)),
        hits=hits, misses=misses, evictions=evictions,
        budget_bytes=budget, total_bytes=total_bytes,
    )

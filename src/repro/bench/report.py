"""Plain-text reporting for benchmark output (tables and ASCII series).

The benchmarks print the same rows/series the paper's tables and
figures report; EXPERIMENTS.md records paper-vs-measured shapes.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.bench.loadsim import LatencyStats


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[Any]]) -> str:
    """Render a fixed-width ASCII table."""
    columns = [list(map(str, col)) for col in zip(headers, *rows)] if rows \
        else [[str(h)] for h in headers]
    widths = [max(len(cell) for cell in col) for col in columns]

    def fmt(cells: Sequence[Any]) -> str:
        return " | ".join(
            str(cell).ljust(width) for cell, width in zip(cells, widths)
        )

    divider = "-+-".join("-" * width for width in widths)
    lines = [fmt(headers), divider]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_sweep(series: dict[str, list[LatencyStats]],
                 metric: str = "p99_ms") -> str:
    """Render QPS-sweep results, one column per engine (a text Fig 11)."""
    qps_values = sorted({
        cell.offered_qps for cells in series.values() for cell in cells
    })
    names = list(series)
    rows = []
    for qps in qps_values:
        row: list[Any] = [int(qps)]
        for name in names:
            cell = next(
                (c for c in series[name] if c.offered_qps == qps), None
            )
            if cell is None:
                row.append("-")
            elif cell.completion_ratio < 0.99:
                row.append("SATURATED")
            else:
                row.append(round(getattr(cell, metric), 1))
        rows.append(row)
    return render_table(["qps"] + [f"{n} ({metric})" for n in names], rows)


def render_histogram(values: Sequence[float], bins: int = 20,
                     width: int = 40, title: str = "") -> str:
    """A text histogram (stands in for the Fig 12 KDE / Fig 13 plot)."""
    import numpy as np

    data = np.asarray(list(values), dtype=np.float64)
    if len(data) == 0:
        return f"{title}\n(no data)"
    counts, edges = np.histogram(data, bins=bins)
    peak = counts.max() if counts.max() else 1
    lines = [title] if title else []
    for count, low, high in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"{low:10.3f} - {high:10.3f} | {bar} {count}")
    return "\n".join(lines)


#: Table 1 of the paper, reproduced verbatim as structured data so the
#: Table 1 "benchmark" can print it and the docs can reference it.
TECHNIQUE_COMPARISON = [
    # technique, fast ingest+indexing, high query rate, flexibility, latency
    ("RDBMS", "Not typically", "Yes", "High", "Low/moderate"),
    ("KV stores", "Yes", "Yes", "None", "Low"),
    ("Online OLAP", "No", "Not typically", "High", "Low/moderate"),
    ('"Offline" OLAP', "No", "No", "High", "High"),
    ("Druid", "Yes", "No", "Moderate", "Low/moderate"),
    ("Pinot", "Yes", "Yes", "Moderate", "Low"),
]


def technique_comparison() -> str:
    """Render Table 1."""
    headers = ["Technique", "Fast ingest and indexing", "High query rate",
               "Query flexibility", "Query latency"]
    return render_table(headers, TECHNIQUE_COMPARISON)

"""Measurement harness: real engine timings feeding the load simulator.

Stage 1 of every QPS-sweep figure (see DESIGN.md): execute the sampled
query log against a fully built dataset with each engine configuration,
recording per-query wall-clock service times and execution stats. The
measured distributions then drive :mod:`repro.bench.loadsim`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.engine.executor import execute_segment
from repro.engine.merge import combine_segment_results, reduce_server_results
from repro.engine.results import BrokerResponse, ExecutionStats
from repro.pql.ast_nodes import Query
from repro.pql.parser import parse
from repro.pql.rewriter import optimize
from repro.segment.segment import ImmutableSegment

ExecuteFn = Callable[[Query], BrokerResponse]


@dataclass
class MeasuredWorkload:
    """Per-query service times (seconds) and stats for one engine."""

    name: str
    service_times_s: np.ndarray
    stats: list[ExecutionStats] = field(default_factory=list)
    responses: list[BrokerResponse] = field(default_factory=list)

    @property
    def mean_ms(self) -> float:
        return float(self.service_times_s.mean() * 1e3)

    @property
    def p99_ms(self) -> float:
        return float(np.percentile(self.service_times_s, 99) * 1e3)


def compile_queries(queries: Sequence[str]) -> list[Query]:
    """Parse + broker-optimize a PQL log once, outside the timed loop."""
    return [optimize(parse(text)) for text in queries]


def make_segment_executor(segments: Sequence[ImmutableSegment],
                          allow_star_tree: bool = True,
                          use_cost_ordering: bool = True,
                          vectorized: bool = True) -> ExecuteFn:
    """Single-process executor over a list of Pinot segments."""

    def execute(query: Query) -> BrokerResponse:
        results = [
            execute_segment(segment, query,
                            use_cost_ordering=use_cost_ordering,
                            allow_star_tree=allow_star_tree,
                            vectorized=vectorized)
            for segment in segments
        ]
        server = combine_segment_results(query, results)
        return reduce_server_results(query, [server])

    return execute


def make_druid_executor(segments: Sequence[ImmutableSegment]) -> ExecuteFn:
    """Single-process executor using the Druid execution model."""
    from repro.druid.engine import execute_druid_segment

    def execute(query: Query) -> BrokerResponse:
        results = [
            execute_druid_segment(segment, query) for segment in segments
        ]
        server = combine_segment_results(query, results)
        return reduce_server_results(query, [server])

    return execute


def measure(name: str, execute: ExecuteFn, queries: Sequence[Query],
            repeats: int = 1, keep_responses: bool = False,
            warmup: int = 2, clock=None) -> MeasuredWorkload:
    """Time every query ``repeats`` times; returns the measured workload.

    A short warmup absorbs one-time costs (forward-index unpack caches,
    on-demand inverted index builds) that a long-running server would
    have already paid.

    Pass a ``repro.net`` SimClock as ``clock`` to measure on the
    cluster's virtual timeline instead of the wall clock — simulated
    link latency, queueing, and hedging then show up in the measured
    distribution (and with a manual clock the timings are exactly
    reproducible).
    """
    read_time = clock.now if clock is not None else time.perf_counter
    for query in queries[:warmup]:
        execute(query)
    times = np.empty(len(queries) * repeats)
    measured = MeasuredWorkload(name, times)
    index = 0
    for __ in range(repeats):
        for query in queries:
            started = read_time()
            response = execute(query)
            times[index] = read_time() - started
            index += 1
            measured.stats.append(response.stats)
            if keep_responses:
                measured.responses.append(response)
    return measured


def _canonical_rows(rows: Sequence[tuple]) -> list[tuple]:
    """Sort rows and round floats so summation order doesn't matter."""
    def canon(cell):
        if isinstance(cell, float):
            return float(f"{cell:.9g}")  # 9 significant digits
        return cell

    return sorted(tuple(canon(c) for c in row) for row in rows)


def measure_all(engines: dict[str, ExecuteFn], queries: Sequence[Query],
                passes: int = 2, repeats: int = 1) -> dict[str, MeasuredWorkload]:
    """Measure several engines fairly: full passes alternate between
    engines and each engine keeps its *fastest* pass (by mean).

    Transient system noise (another process stealing CPU mid-run) hits
    whichever engine happens to be measuring; best-of-N with
    interleaving keeps comparisons between engines meaningful.
    """
    best: dict[str, MeasuredWorkload] = {}
    for __ in range(passes):
        for name, execute in engines.items():
            measured = measure(name, execute, queries, repeats=repeats)
            current = best.get(name)
            if current is None or measured.mean_ms < current.mean_ms:
                best[name] = measured
    return best


def verify_engines_agree(queries: Sequence[Query],
                         engines: dict[str, ExecuteFn],
                         sample: int = 20) -> None:
    """Cross-check that all engine configurations return identical
    results on a sample of the query log (a guard for the benchmarks:
    we only compare performance of *correct* engines). Floats are
    compared to 1e-6 to tolerate summation-order differences."""
    names = list(engines)
    for query in queries[:sample]:
        reference = None
        for name in names:
            response = engines[name](query)
            rows = _canonical_rows(response.table.rows)
            if reference is None:
                reference = (names[0], rows)
            elif rows != reference[1]:
                raise AssertionError(
                    f"engine {name!r} disagrees with {reference[0]!r} on "
                    f"{query}: {rows[:3]} vs {reference[1][:3]}"
                )

"""Scalar (row-at-a-time) segment executor — the vectorized engine's oracle.

The batch engine in :mod:`repro.engine.executor` evaluates predicates
and aggregates over numpy column arrays (selection vectors, grouped
kernels, late materialization). This module is its deliberately naive
counterpart: every document is visited one at a time, predicate trees
are interpreted per row over materialized Python values, and aggregates
accumulate in plain Python loops. It shares the AST and the *state
shapes* with the vectorized engine (partial states must merge across
servers regardless of which engine produced them) but none of its
kernels, planner, or index structures — a bug in selection vectors,
bitmap unions, dictionary-id range compilation or grouped kernels
cannot cancel itself out here.

Selected per query with ``OPTION(vectorized=false)`` or per cluster via
``ServerInstance.default_vectorized`` — see docs/ENGINE.md. It is the
denominator of the ``BENCH_engine.json`` speedup gate and the system
under test of the scalar leg of the CI simulation sweep.
"""

from __future__ import annotations

import math
import re
from typing import Any, Callable

from repro.common.types import DataType
from repro.engine.results import (
    AggregationPartial,
    ExecutionStats,
    GroupByPartial,
    SegmentResult,
    SelectionPartial,
    row_sort_key,
)
from repro.errors import ExecutionError, PlanningError
from repro.pql.ast_nodes import (
    AggFunc,
    Aggregation,
    And,
    Between,
    CompareOp,
    Comparison,
    In,
    Like,
    Or,
    Predicate,
    Query,
    TimeBucket,
    group_by_column,
)
from repro.segment.segment import Column, ImmutableSegment

_PERCENTILE_FUNCS = frozenset({
    AggFunc.PERCENTILE50, AggFunc.PERCENTILE90,
    AggFunc.PERCENTILE95, AggFunc.PERCENTILE99,
})
_PERCENTILE_EST_FUNCS = frozenset({
    AggFunc.PERCENTILEEST50, AggFunc.PERCENTILEEST90,
    AggFunc.PERCENTILEEST95, AggFunc.PERCENTILEEST99,
})

#: (value getter, per-row truth test). The getter returns the row's
#: value — a list for multi-value columns, where a leaf matches when
#: ANY entry matches (Pinot's multi-value semantics, which the
#: vectorized engine implements by complement id ranges; NOT is pushed
#: into leaves before evaluation so both engines agree on rows like
#: ``{a, b}`` under ``c != a``).
_RowTest = Callable[[int], bool]


def execute_segment_scalar(segment: ImmutableSegment,
                           query: Query,
                           valid_docs=None) -> SegmentResult:
    """Execute ``query`` on one segment, one document at a time.

    ``valid_docs`` (a :class:`~repro.engine.operators.DocSelection`, or
    None for all-valid) is an upsert table's valid-docId mask: invalid
    docs are skipped before the predicate runs, mirroring the vectorized
    engine's base-selection intersection exactly.
    """
    _validate(segment, query)
    stats = ExecutionStats(num_segments_queried=1,
                           num_segments_processed=1,
                           total_docs=segment.num_docs)

    test = _compile_predicate(segment, query.where)
    leaves = _count_leaves(query.where)
    if valid_docs is not None:
        valid_mask = valid_docs.mask(segment.num_docs)
        predicate_test = test

        def test(doc: int) -> bool:
            return bool(valid_mask[doc]) and predicate_test(doc)

    if query.group_by:
        result = SegmentResult(stats=stats)
        result.group_by = _execute_group_by(segment, query, test, stats)
        matched = stats.raw_docs_matched
    elif query.is_aggregation:
        result = SegmentResult(stats=stats)
        result.aggregation = _execute_aggregation(segment, query, test,
                                                  stats)
        matched = stats.raw_docs_matched
    else:
        result = SegmentResult(stats=stats)
        result.selection = _execute_selection(segment, query, test, stats)
        matched = stats.raw_docs_matched
    stats.num_docs_scanned = matched
    stats.num_entries_scanned_in_filter = segment.num_docs * leaves
    if matched:
        stats.num_segments_matched = 1
    return result


# -- predicate interpretation ------------------------------------------------


def _validate(segment: ImmutableSegment, query: Query) -> None:
    missing = [
        column for column in query.referenced_columns()
        if not segment.has_column(column)
    ]
    if missing:
        raise PlanningError(
            f"segment {segment.name!r} is missing columns {missing} "
            f"referenced by the query"
        )


def _count_leaves(predicate: Predicate | None) -> int:
    if predicate is None:
        return 0
    if isinstance(predicate, (And, Or)):
        return sum(_count_leaves(c) for c in predicate.children)
    return 1


def _coerce_literal(column: Column, value: Any) -> Any:
    """Mirror the vectorized compiler's literal coercion rules: numeric
    literals against string columns become strings, string literals
    against numeric columns are a planning error."""
    dtype = column.dictionary.dtype
    if dtype is DataType.STRING and not isinstance(value, str):
        return str(value)
    if dtype is not DataType.STRING and isinstance(value, str):
        raise PlanningError(
            f"cannot compare string literal {value!r} against numeric "
            "column"
        )
    return value


def _compile_predicate(segment: ImmutableSegment,
                       predicate: Predicate | None) -> _RowTest:
    """Build a per-document truth test interpreting the predicate AST.

    NOT is pushed into the leaves first (the same NNF transform the
    broker's rewriter applies) because Pinot's multi-value semantics
    negate at the *value* level: ``mv != a`` matches a document when any
    entry differs from ``a``, not when no entry equals it.
    """
    if predicate is None:
        return lambda doc: True
    from repro.pql.rewriter import normalize_predicate

    return _compile_node(segment, normalize_predicate(predicate))


def _compile_node(segment: ImmutableSegment,
                  predicate: Predicate) -> _RowTest:
    if isinstance(predicate, And):
        tests = [_compile_node(segment, c) for c in predicate.children]
        return lambda doc: all(t(doc) for t in tests)
    if isinstance(predicate, Or):
        tests = [_compile_node(segment, c) for c in predicate.children]
        return lambda doc: any(t(doc) for t in tests)
    return _compile_scalar_leaf(segment, predicate)


def _compile_scalar_leaf(segment: ImmutableSegment,
                         predicate: Predicate) -> _RowTest:
    column = segment.column(getattr(predicate, "column"))
    value_test = _leaf_value_test(column, predicate)
    if column.is_multi_value:
        def test(doc: int) -> bool:
            return any(value_test(v) for v in column.value_of_doc(doc))
    else:
        def test(doc: int) -> bool:
            return value_test(column.value_of_doc(doc))
    return test


def _leaf_value_test(column: Column,
                     predicate: Predicate) -> Callable[[Any], bool]:
    """The per-value truth test for one leaf predicate."""
    if isinstance(predicate, Comparison):
        literal = _coerce_literal(column, predicate.value)
        op = predicate.op
        if op is CompareOp.EQ:
            return lambda v: v == literal
        if op is CompareOp.NEQ:
            return lambda v: v != literal
        if op is CompareOp.LT:
            return lambda v: v < literal
        if op is CompareOp.LTE:
            return lambda v: v <= literal
        if op is CompareOp.GT:
            return lambda v: v > literal
        return lambda v: v >= literal
    if isinstance(predicate, In):
        literals = {_coerce_literal(column, v) for v in predicate.values}
        if predicate.negated:
            return lambda v: v not in literals
        return lambda v: v in literals
    if isinstance(predicate, Between):
        low = _coerce_literal(column, predicate.low)
        high = _coerce_literal(column, predicate.high)
        return lambda v: low <= v <= high
    if isinstance(predicate, Like):
        if column.dictionary.dtype is not DataType.STRING:
            raise PlanningError(
                f"LIKE requires a string column, {predicate.column!r} is "
                f"{column.dictionary.dtype.value}"
            )
        regex = re.compile(predicate.to_regex())
        if predicate.negated:
            return lambda v: regex.fullmatch(v) is None
        return lambda v: regex.fullmatch(v) is not None
    raise PlanningError(f"not a leaf predicate: {predicate!r}")


# -- scalar aggregation accumulators -----------------------------------------


class _Accumulator:
    """Row-at-a-time accumulator producing the same partial-state shape
    as the vectorized :class:`~repro.engine.aggregates.AggregateFunction`
    (states must merge across servers regardless of engine)."""

    def __init__(self, aggregation: Aggregation, column: Column | None):
        self.func = aggregation.func
        self.column = column
        if column is not None and column.is_multi_value:
            raise ExecutionError(
                f"cannot aggregate over multi-value column "
                f"{aggregation.column!r}"
            )
        self.count = 0
        self.total = 0.0
        self.low = math.inf
        self.high = -math.inf
        self.values: list[Any] = []
        self.distinct: set[Any] = set()
        self.hll = None
        if self.func is AggFunc.DISTINCTCOUNTHLL:
            from repro.engine.aggregates import function_for

            self.hll = function_for(aggregation).init_empty()

    def add(self, doc: int) -> None:
        self.count += 1
        if self.column is None:
            return  # COUNT needs no values
        value = self.column.value_of_doc(doc)
        func = self.func
        if func in (AggFunc.SUM, AggFunc.AVG):
            self.total += value
        elif func is AggFunc.MIN:
            if value < self.low:
                self.low = value
        elif func is AggFunc.MAX:
            if value > self.high:
                self.high = value
        elif func is AggFunc.MINMAXRANGE:
            if value < self.low:
                self.low = value
            if value > self.high:
                self.high = value
        elif func is AggFunc.DISTINCTCOUNT:
            self.distinct.add(value)
        elif func is AggFunc.DISTINCTCOUNTHLL:
            self.hll.add(value)
        elif func in _PERCENTILE_FUNCS or func in _PERCENTILE_EST_FUNCS:
            self.values.append(value)
        else:
            raise ExecutionError(f"unsupported aggregation {func}")

    def state(self) -> Any:
        func = self.func
        if func is AggFunc.COUNT:
            return self.count
        if func is AggFunc.SUM:
            return float(self.total)
        if func is AggFunc.MIN:
            return float(self.low)
        if func is AggFunc.MAX:
            return float(self.high)
        if func is AggFunc.AVG:
            return (float(self.total), self.count)
        if func is AggFunc.MINMAXRANGE:
            return (float(self.low), float(self.high))
        if func is AggFunc.DISTINCTCOUNT:
            return frozenset(self.distinct)
        if func is AggFunc.DISTINCTCOUNTHLL:
            return self.hll
        if func in _PERCENTILE_EST_FUNCS:
            # Build the sketch from values in document order — the same
            # insertion sequence as the vectorized aggregate, so the
            # partial states are identical (not just close).
            from repro.engine.approx import sketch_of

            return sketch_of(self.values)
        return tuple(self.values)


def _make_accumulators(segment: ImmutableSegment,
                       query: Query) -> list[_Accumulator]:
    accumulators = []
    for aggregation in query.aggregations:
        column = (None if aggregation.func is AggFunc.COUNT
                  else segment.column(aggregation.column))
        accumulators.append(_Accumulator(aggregation, column))
    return accumulators


def _execute_aggregation(segment: ImmutableSegment, query: Query,
                         test: _RowTest,
                         stats: ExecutionStats) -> AggregationPartial:
    accumulators = _make_accumulators(segment, query)
    matched = 0
    for doc in range(segment.num_docs):
        if not test(doc):
            continue
        matched += 1
        for accumulator in accumulators:
            accumulator.add(doc)
    stats.raw_docs_matched = matched
    stats.num_entries_scanned_post_filter = matched * sum(
        1 for a in accumulators if a.column is not None
    )
    return AggregationPartial([a.state() for a in accumulators])


# -- scalar group-by ---------------------------------------------------------


def _execute_group_by(segment: ImmutableSegment, query: Query,
                      test: _RowTest,
                      stats: ExecutionStats) -> GroupByPartial:
    group_columns = [segment.column(group_by_column(g))
                     for g in query.group_by]
    multi_value = [c for c in group_columns if c.is_multi_value]
    if len(multi_value) > 1:
        raise ExecutionError(
            "at most one multi-value group-by column is supported; got "
            f"{[c.name for c in multi_value]}"
        )

    partial = GroupByPartial()
    accumulators: dict[tuple, list[_Accumulator]] = {}
    matched = 0
    entries = 0
    for doc in range(segment.num_docs):
        if not test(doc):
            continue
        matched += 1
        # A multi-value group column yields one group *per entry* of the
        # document (duplicate entries count twice — matching the
        # vectorized engine's np.repeat expansion).
        keys: list[tuple] = [()]
        for expr, column in zip(query.group_by, group_columns):
            value = column.value_of_doc(doc)
            if isinstance(expr, TimeBucket):
                if column.is_multi_value:
                    raise ExecutionError(
                        "timebucket requires a single-value column"
                    )
                keys = [key + (expr.bucket_of(value),) for key in keys]
            elif column.is_multi_value:
                keys = [key + (entry,) for key in keys for entry in value]
            else:
                keys = [key + (value,) for key in keys]
        for key in keys:
            entries += 1
            group = accumulators.get(key)
            if group is None:
                group = _make_accumulators(segment, query)
                accumulators[key] = group
            for accumulator in group:
                accumulator.add(doc)
    stats.raw_docs_matched = matched
    values_needed = sum(
        1 for a in query.aggregations if a.func is not AggFunc.COUNT
    )
    stats.num_entries_scanned_post_filter = entries * (
        len(group_columns) + values_needed
    )
    for key, group in accumulators.items():
        partial.groups[key] = [a.state() for a in group]
    return partial


# -- scalar selection (projection) -------------------------------------------


def _plain(value: Any) -> Any:
    import numpy as np

    return value.item() if isinstance(value, np.generic) else value


def _execute_selection(segment: ImmutableSegment, query: Query,
                       test: _RowTest,
                       stats: ExecutionStats) -> SelectionPartial:
    if query.select_star:
        columns = segment.schema.column_names
    else:
        columns = tuple(item.name for item in query.projections)
    needed = query.limit + query.offset
    bounded = not query.order_by

    column_objects = [segment.column(name) for name in columns]
    rows: list[tuple] = []
    matched = 0
    for doc in range(segment.num_docs):
        if not test(doc):
            continue
        matched += 1
        if bounded and len(rows) >= needed:
            continue  # keep counting matches; rows are already bounded
        row = tuple(
            tuple(column.value_of_doc(doc)) if column.is_multi_value
            else _plain(column.value_of_doc(doc))
            for column in column_objects
        )
        rows.append(row)
    stats.raw_docs_matched = matched
    stats.num_entries_scanned_post_filter = len(rows) * len(columns)
    if query.order_by:
        key = row_sort_key(query, columns)
        if key is None:
            raise ExecutionError("ORDER BY on selection failed to compile")
        rows.sort(key=key)
        rows = rows[:needed]
    return SelectionPartial(columns, rows)

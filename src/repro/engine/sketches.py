"""Probabilistic sketches for approximate aggregations.

The paper's conclusion lists "additional types of indexes and
specialized data structures for query optimization" as future work;
production Pinot subsequently shipped sketch-backed aggregations. This
module implements a dense HyperLogLog from scratch, backing the
``DISTINCTCOUNTHLL`` aggregation: a bounded-size, mergeable distinct
count whose partial states ship well between servers and broker —
unlike the exact ``DISTINCTCOUNT``, whose state is the value set
itself.

Hashing is *typed*: every cell value is first rendered to a canonical
byte string whose leading tag byte separates the type domains (the same
tag-prefixed encoding discipline as ``upsert.primary_key_bytes``), so
``1`` and ``"1"`` land in different registers. The encoding is
equality-consistent with Python: numerics that compare equal across
types (``1 == 1.0 == True``) encode identically, because the exact
``DISTINCTCOUNT`` state is a set under Python equality and the sketch
must agree with it on small cardinalities.
"""

from __future__ import annotations

import math
import struct

import numpy as np


_MASK64 = 0xFFFFFFFFFFFFFFFF
_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3

#: Tag bytes for the canonical typed encoding.
_TAG_INT = b"i"       # 64-bit integral numeric (int/bool/integral float)
_TAG_BIGINT = b"I"    # integral numeric beyond int64, as decimal digits
_TAG_FLOAT = b"f"     # non-integral (or non-finite) float, IEEE-754 bits
_TAG_STR = b"s"       # utf-8 text
_TAG_BYTES = b"y"     # raw bytes
_TAG_NONE = b"n"      # null
_TAG_OTHER = b"o"     # fallback: type-qualified repr


def _fnv1a_64(data: bytes) -> int:
    """64-bit FNV-1a — fast, but weak in the high bits on short keys."""
    value = _FNV_OFFSET
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & _MASK64
    return value


def _fmix64(value: int) -> int:
    """MurmurHash3's 64-bit finalizer: full avalanche on all bits."""
    value ^= value >> 33
    value = (value * 0xFF51AFD7ED558CCD) & _MASK64
    value ^= value >> 33
    value = (value * 0xC4CEB9FE1A85EC53) & _MASK64
    value ^= value >> 33
    return value


def canonical_bytes(value) -> bytes:
    """Typed canonical encoding of a cell value for hashing.

    Numerics that are equal under Python's cross-type equality encode
    identically (``1``, ``1.0``, ``True`` → the same 9 bytes); strings,
    bytes and null occupy disjoint tag domains so ``1`` never collides
    with ``"1"``.
    """
    if value is None:
        return _TAG_NONE
    if isinstance(value, bytes):
        return _TAG_BYTES + value
    if isinstance(value, str):
        return _TAG_STR + value.encode("utf-8")
    if isinstance(value, (bool, np.bool_)):
        value = int(value)
    if isinstance(value, (int, np.integer)):
        v = int(value)
        if _INT64_MIN <= v <= _INT64_MAX:
            return _TAG_INT + struct.pack(">q", v)
        return _TAG_BIGINT + str(v).encode("ascii")
    if isinstance(value, (float, np.floating)):
        f = float(value)
        if math.isfinite(f) and f == math.floor(f):
            v = int(f)
            if _INT64_MIN <= v <= _INT64_MAX:
                return _TAG_INT + struct.pack(">q", v)
            return _TAG_BIGINT + str(v).encode("ascii")
        return _TAG_FLOAT + struct.pack(">d", f)
    return _TAG_OTHER + f"{type(value).__name__}:{value}".encode("utf-8")


def hash64(value) -> int:
    """Canonical 64-bit hash of a cell value.

    FNV-1a over the typed canonical encoding plus the murmur3 finalizer
    so the *high* bits (which HLL uses for register indexing) avalanche
    properly even on short keys.
    """
    return _fmix64(_fnv1a_64(canonical_bytes(value)))


# -- vectorized bulk hashing ---------------------------------------------------


def _hash_tagged_bits(tag: int, bits: np.ndarray) -> np.ndarray:
    """Vectorized FNV-1a + fmix64 over ``tag`` + 8 big-endian bytes.

    ``bits`` is a uint64 array holding the 8 payload bytes of each
    value's canonical encoding; the result is bit-identical to the
    scalar ``hash64`` on the same encodings.
    """
    with np.errstate(over="ignore"):
        prime = np.uint64(_FNV_PRIME)
        # The tag byte folds in before any payload, so its mix is a
        # compile-time constant; all array passes run in place through
        # one reused temporary to keep this memory-bound loop tight.
        start = ((_FNV_OFFSET ^ tag) * _FNV_PRIME) & _MASK64
        h = np.full(bits.shape, start, dtype=np.uint64)
        tmp = np.empty_like(bits)
        mask = np.uint64(0xFF)
        for shift in range(56, -1, -8):
            np.right_shift(bits, np.uint64(shift), out=tmp)
            np.bitwise_and(tmp, mask, out=tmp)
            np.bitwise_xor(h, tmp, out=h)
            np.multiply(h, prime, out=h)
        np.right_shift(h, np.uint64(33), out=tmp)
        np.bitwise_xor(h, tmp, out=h)
        np.multiply(h, np.uint64(0xFF51AFD7ED558CCD), out=h)
        np.right_shift(h, np.uint64(33), out=tmp)
        np.bitwise_xor(h, tmp, out=h)
        np.multiply(h, np.uint64(0xC4CEB9FE1A85EC53), out=h)
        np.right_shift(h, np.uint64(33), out=tmp)
        np.bitwise_xor(h, tmp, out=h)
    return h


def hash64_array(values: np.ndarray) -> np.ndarray:
    """Bulk ``hash64`` over a numpy array — bit-identical to the scalar
    loop, but vectorized for the numeric dtypes the engine's
    dictionary-decoded columns produce."""
    values = np.asarray(values)
    if values.dtype.kind in "iub":
        bits = values.astype(np.int64).view(np.uint64)
        return _hash_tagged_bits(_TAG_INT[0], bits)
    if values.dtype.kind == "f":
        v = values.astype(np.float64)
        integral = (np.isfinite(v) & (np.floor(v) == v)
                    & (v >= -9.223372036854776e18)
                    & (v < 9.223372036854776e18))
        out = np.empty(v.shape, dtype=np.uint64)
        if integral.any():
            bits = v[integral].astype(np.int64).view(np.uint64)
            out[integral] = _hash_tagged_bits(_TAG_INT[0], bits)
        rest = ~integral
        if rest.any():
            # Non-integral and non-finite values hash over their IEEE
            # bit pattern, exactly like the scalar encoder. Integral
            # floats beyond int64 range take the scalar big-int encoder.
            rest_vals = v[rest]
            hashed = _hash_tagged_bits(_TAG_FLOAT[0],
                                       rest_vals.view(np.uint64))
            big = np.isfinite(rest_vals) & (np.floor(rest_vals) == rest_vals)
            if big.any():
                hashed[big] = np.array(
                    [hash64(float(x)) for x in rest_vals[big]],
                    dtype=np.uint64)
            out[rest] = hashed
        return out
    # Strings / objects: variable-length encodings — scalar loop.
    return np.array([hash64(v) for v in values.tolist()], dtype=np.uint64)


class HyperLogLog:
    """Dense HLL with ``2**precision`` 6-bit registers.

    Standard estimator (Flajolet et al.) with linear-counting small-range
    correction. Merging takes the register-wise max, which is exactly
    how per-segment partial states combine.
    """

    def __init__(self, precision: int = 12,
                 registers: np.ndarray | None = None):
        if not 4 <= precision <= 16:
            raise ValueError("precision must be in [4, 16]")
        self.precision = precision
        self.num_registers = 1 << precision
        if registers is None:
            self.registers = np.zeros(self.num_registers, dtype=np.uint8)
        else:
            if len(registers) != self.num_registers:
                raise ValueError("register count mismatch")
            self.registers = registers.astype(np.uint8, copy=True)

    # -- building -----------------------------------------------------------

    def add(self, value) -> None:
        self.add_hash(hash64(value))

    def add_hash(self, hashed: int) -> None:
        index = hashed >> (64 - self.precision)
        remaining = hashed & ((1 << (64 - self.precision)) - 1)
        # Rank = position of the leftmost 1-bit in the remaining bits.
        rank = (64 - self.precision) - remaining.bit_length() + 1
        if rank > self.registers[index]:
            self.registers[index] = rank

    def add_many(self, values) -> None:
        """Bulk add: vectorized hashing + register update for numeric
        arrays, scalar loop otherwise. Register-identical to calling
        ``add`` per value."""
        arr = np.asarray(values)
        if arr.dtype == object or arr.dtype.kind in "USO":
            for value in (arr.tolist() if arr.ndim else [arr.item()]):
                self.add(value)
            return
        if not arr.size:
            return
        self.add_hashes(hash64_array(arr))

    def add_hashes(self, hashed: np.ndarray) -> None:
        """Bulk register update from precomputed 64-bit hashes."""
        if not len(hashed):
            return
        hashed = np.asarray(hashed, dtype=np.uint64)
        payload_bits = 64 - self.precision
        shift = np.uint64(payload_bits)
        index = (hashed >> shift).astype(np.int64)
        remaining = hashed & np.uint64((1 << payload_bits) - 1)
        if payload_bits <= 52:
            # Every payload fits a float64 mantissa exactly, so frexp's
            # exponent IS the bit length — one vector op instead of the
            # six-pass binary reduction.
            bits = np.frexp(remaining.astype(np.float64))[1]
        else:
            bits = _bit_length_u64(remaining)
        rank = (payload_bits - bits + 1).astype(np.uint8)
        np.maximum.at(self.registers, index, rank)

    # -- estimation ------------------------------------------------------------

    @property
    def _alpha(self) -> float:
        m = self.num_registers
        if m == 16:
            return 0.673
        if m == 32:
            return 0.697
        if m == 64:
            return 0.709
        return 0.7213 / (1 + 1.079 / m)

    def cardinality(self) -> int:
        m = self.num_registers
        registers = self.registers.astype(np.float64)
        estimate = self._alpha * m * m / np.sum(2.0 ** -registers)
        if estimate <= 2.5 * m:
            zeros = int(np.count_nonzero(self.registers == 0))
            if zeros:
                estimate = m * math.log(m / zeros)  # linear counting
        return int(round(estimate))

    @property
    def relative_error(self) -> float:
        """The theoretical standard error: 1.04 / sqrt(m)."""
        return 1.04 / math.sqrt(self.num_registers)

    # -- merging -----------------------------------------------------------------

    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        if other.precision != self.precision:
            raise ValueError("cannot merge HLLs of different precision")
        return HyperLogLog(
            self.precision,
            np.maximum(self.registers, other.registers),
        )

    def copy(self) -> "HyperLogLog":
        return HyperLogLog(self.precision, self.registers)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HyperLogLog):
            return NotImplemented
        return (self.precision == other.precision
                and np.array_equal(self.registers, other.registers))

    def __repr__(self) -> str:
        return (f"HyperLogLog(p={self.precision}, "
                f"estimate={self.cardinality()})")


def _bit_length_u64(values: np.ndarray) -> np.ndarray:
    """Exact per-element ``int.bit_length`` for a uint64 array (binary
    reduction — no float round-off, unlike log2)."""
    v = values.copy()
    out = np.zeros(v.shape, dtype=np.int64)
    for step in (32, 16, 8, 4, 2, 1):
        big = v >= np.uint64(1 << step)
        out[big] += step
        v[big] >>= np.uint64(step)
    out += (v > 0).astype(np.int64)
    return out

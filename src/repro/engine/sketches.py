"""Probabilistic sketches for approximate aggregations.

The paper's conclusion lists "additional types of indexes and
specialized data structures for query optimization" as future work;
production Pinot subsequently shipped sketch-backed aggregations. This
module implements a dense HyperLogLog from scratch, backing the
``DISTINCTCOUNTHLL`` aggregation: a bounded-size, mergeable distinct
count whose partial states ship well between servers and broker —
unlike the exact ``DISTINCTCOUNT``, whose state is the value set
itself.
"""

from __future__ import annotations

import math

import numpy as np


_MASK64 = 0xFFFFFFFFFFFFFFFF


def _fnv1a_64(data: bytes) -> int:
    """64-bit FNV-1a — fast, but weak in the high bits on short keys."""
    value = 0xCBF29CE484222325
    for byte in data:
        value ^= byte
        value = (value * 0x100000001B3) & _MASK64
    return value


def _fmix64(value: int) -> int:
    """MurmurHash3's 64-bit finalizer: full avalanche on all bits."""
    value ^= value >> 33
    value = (value * 0xFF51AFD7ED558CCD) & _MASK64
    value ^= value >> 33
    value = (value * 0xC4CEB9FE1A85EC53) & _MASK64
    value ^= value >> 33
    return value


def hash64(value) -> int:
    """Canonical 64-bit hash of a cell value.

    FNV-1a for byte mixing plus the murmur3 finalizer so the *high*
    bits (which HLL uses for register indexing) avalanche properly even
    on short keys.
    """
    return _fmix64(_fnv1a_64(str(value).encode("utf-8")))


class HyperLogLog:
    """Dense HLL with ``2**precision`` 6-bit registers.

    Standard estimator (Flajolet et al.) with linear-counting small-range
    correction. Merging takes the register-wise max, which is exactly
    how per-segment partial states combine.
    """

    def __init__(self, precision: int = 12,
                 registers: np.ndarray | None = None):
        if not 4 <= precision <= 16:
            raise ValueError("precision must be in [4, 16]")
        self.precision = precision
        self.num_registers = 1 << precision
        if registers is None:
            self.registers = np.zeros(self.num_registers, dtype=np.uint8)
        else:
            if len(registers) != self.num_registers:
                raise ValueError("register count mismatch")
            self.registers = registers.astype(np.uint8, copy=True)

    # -- building -----------------------------------------------------------

    def add(self, value) -> None:
        self.add_hash(hash64(value))

    def add_hash(self, hashed: int) -> None:
        index = hashed >> (64 - self.precision)
        remaining = hashed & ((1 << (64 - self.precision)) - 1)
        # Rank = position of the leftmost 1-bit in the remaining bits.
        rank = (64 - self.precision) - remaining.bit_length() + 1
        if rank > self.registers[index]:
            self.registers[index] = rank

    def add_many(self, values) -> None:
        for value in values:
            self.add(value)

    # -- estimation ------------------------------------------------------------

    @property
    def _alpha(self) -> float:
        m = self.num_registers
        if m == 16:
            return 0.673
        if m == 32:
            return 0.697
        if m == 64:
            return 0.709
        return 0.7213 / (1 + 1.079 / m)

    def cardinality(self) -> int:
        m = self.num_registers
        registers = self.registers.astype(np.float64)
        estimate = self._alpha * m * m / np.sum(2.0 ** -registers)
        if estimate <= 2.5 * m:
            zeros = int(np.count_nonzero(self.registers == 0))
            if zeros:
                estimate = m * math.log(m / zeros)  # linear counting
        return int(round(estimate))

    @property
    def relative_error(self) -> float:
        """The theoretical standard error: 1.04 / sqrt(m)."""
        return 1.04 / math.sqrt(self.num_registers)

    # -- merging -----------------------------------------------------------------

    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        if other.precision != self.precision:
            raise ValueError("cannot merge HLLs of different precision")
        return HyperLogLog(
            self.precision,
            np.maximum(self.registers, other.registers),
        )

    def copy(self) -> "HyperLogLog":
        return HyperLogLog(self.precision, self.registers)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HyperLogLog):
            return NotImplemented
        return (self.precision == other.precision
                and np.array_equal(self.registers, other.registers))

    def __repr__(self) -> str:
        return (f"HyperLogLog(p={self.precision}, "
                f"estimate={self.cardinality()})")

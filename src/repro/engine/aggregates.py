"""Aggregation functions with mergeable partial states.

Query execution in Pinot is distributed: every segment produces a
partial aggregation state, servers combine their segments' states, and
the broker merges the per-server states into the final value (§3.3.3
steps 6-7). Each function here therefore defines:

* ``init_empty`` — identity state,
* ``aggregate(values)`` — state from a numpy array of column values,
* ``merge(a, b)`` — combine two states,
* ``finalize(state)`` — final result value.

``DISTINCTCOUNT`` and the percentiles keep exact intermediate sets /
samples; production Pinot uses sketches (HLL, quantile digests) for
these, which trade accuracy for bounded size — exactness is the better
default for a reproduction because the tests can assert equality.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.errors import ExecutionError
from repro.pql.ast_nodes import AggFunc, Aggregation


def _group_slices(values: np.ndarray, codes: np.ndarray,
                  num_groups: int) -> tuple[np.ndarray, np.ndarray]:
    """Sort ``values`` by group code (stably, preserving document order
    within each group) and return ``(sorted_values, bounds)`` where
    group ``g`` occupies ``sorted_values[bounds[g]:bounds[g + 1]]``.

    One argsort replaces a per-row Python dispatch loop for every
    set/sample-state aggregation (DISTINCTCOUNT, HLL, percentiles).
    """
    order = np.argsort(codes, kind="stable")
    bounds = np.searchsorted(codes[order], np.arange(num_groups + 1))
    return values[order], bounds


class AggregateFunction:
    """Interface for one aggregation function."""

    #: Whether the function needs the raw column values (False for COUNT).
    needs_values = True

    def init_empty(self) -> Any:
        raise NotImplementedError

    def aggregate(self, values: np.ndarray) -> Any:
        raise NotImplementedError

    def aggregate_grouped(self, values: np.ndarray, codes: np.ndarray,
                          num_groups: int) -> list[Any]:
        """Vectorized per-group aggregation; ``codes`` maps each value to
        its group index in ``[0, num_groups)``."""
        raise NotImplementedError

    def merge(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def finalize(self, state: Any) -> Any:
        raise NotImplementedError


class CountFunction(AggregateFunction):
    needs_values = False

    def init_empty(self) -> int:
        return 0

    def aggregate(self, values: np.ndarray) -> int:
        return int(len(values))

    def aggregate_grouped(self, values, codes, num_groups):
        return np.bincount(codes, minlength=num_groups).tolist()

    def merge(self, a: int, b: int) -> int:
        return a + b

    def finalize(self, state: int) -> int:
        return state


class SumFunction(AggregateFunction):
    def init_empty(self) -> float:
        return 0.0

    def aggregate(self, values: np.ndarray) -> float:
        return float(values.sum()) if len(values) else 0.0

    def aggregate_grouped(self, values, codes, num_groups):
        return np.bincount(codes, weights=values.astype(np.float64),
                           minlength=num_groups).tolist()

    def merge(self, a: float, b: float) -> float:
        return a + b

    def finalize(self, state: float) -> float:
        return state


class MinFunction(AggregateFunction):
    def init_empty(self) -> float:
        return math.inf

    def aggregate(self, values: np.ndarray) -> float:
        return float(values.min()) if len(values) else math.inf

    def aggregate_grouped(self, values, codes, num_groups):
        out = np.full(num_groups, np.inf)
        np.minimum.at(out, codes, values.astype(np.float64))
        return out.tolist()

    def merge(self, a: float, b: float) -> float:
        return min(a, b)

    def finalize(self, state: float) -> float:
        return state


class MaxFunction(AggregateFunction):
    def init_empty(self) -> float:
        return -math.inf

    def aggregate(self, values: np.ndarray) -> float:
        return float(values.max()) if len(values) else -math.inf

    def aggregate_grouped(self, values, codes, num_groups):
        out = np.full(num_groups, -np.inf)
        np.maximum.at(out, codes, values.astype(np.float64))
        return out.tolist()

    def merge(self, a: float, b: float) -> float:
        return max(a, b)

    def finalize(self, state: float) -> float:
        return state


class AvgFunction(AggregateFunction):
    """State is (sum, count); merged exactly, finalized to sum/count."""

    def init_empty(self) -> tuple[float, int]:
        return (0.0, 0)

    def aggregate(self, values: np.ndarray) -> tuple[float, int]:
        if not len(values):
            return (0.0, 0)
        return (float(values.sum()), int(len(values)))

    def aggregate_grouped(self, values, codes, num_groups):
        sums = np.bincount(codes, weights=values.astype(np.float64),
                           minlength=num_groups)
        counts = np.bincount(codes, minlength=num_groups)
        return list(zip(sums.tolist(), counts.tolist()))

    def merge(self, a, b):
        return (a[0] + b[0], a[1] + b[1])

    def finalize(self, state) -> float:
        total, count = state
        return total / count if count else 0.0


class MinMaxRangeFunction(AggregateFunction):
    def init_empty(self):
        return (math.inf, -math.inf)

    def aggregate(self, values: np.ndarray):
        if not len(values):
            return (math.inf, -math.inf)
        return (float(values.min()), float(values.max()))

    def aggregate_grouped(self, values, codes, num_groups):
        lows = np.full(num_groups, np.inf)
        highs = np.full(num_groups, -np.inf)
        v = values.astype(np.float64)
        np.minimum.at(lows, codes, v)
        np.maximum.at(highs, codes, v)
        return list(zip(lows.tolist(), highs.tolist()))

    def merge(self, a, b):
        return (min(a[0], b[0]), max(a[1], b[1]))

    def finalize(self, state) -> float:
        low, high = state
        if math.isinf(low):
            return 0.0
        return high - low


class DistinctCountFunction(AggregateFunction):
    """Exact distinct count; the partial state is the value set."""

    def init_empty(self) -> frozenset:
        return frozenset()

    def aggregate(self, values: np.ndarray) -> frozenset:
        return frozenset(values.tolist())

    def aggregate_grouped(self, values, codes, num_groups):
        sorted_values, bounds = _group_slices(values, codes, num_groups)
        return [
            frozenset(sorted_values[bounds[g]:bounds[g + 1]].tolist())
            for g in range(num_groups)
        ]

    def merge(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def finalize(self, state: frozenset) -> int:
        return len(state)


class DistinctCountHllFunction(AggregateFunction):
    """Approximate distinct count with a mergeable HyperLogLog state.

    The sketch keeps the partial state at a fixed 4 KiB regardless of
    cardinality (~1.6% standard error at precision 12) — the bounded
    alternative to the exact set-based DISTINCTCOUNT, matching the
    sketch aggregations production Pinot later shipped.
    """

    def __init__(self, precision: int = 12):
        self.precision = precision

    def _new(self):
        from repro.engine.sketches import HyperLogLog

        return HyperLogLog(self.precision)

    def init_empty(self):
        return self._new()

    def aggregate(self, values: np.ndarray):
        sketch = self._new()
        sketch.add_many(values)
        return sketch

    def aggregate_grouped(self, values, codes, num_groups):
        # Hash every value once with the vectorized bulk path, then
        # slice the *hashes* per group — register-identical to hashing
        # group by group, but one numpy pass instead of a Python loop.
        from repro.engine.sketches import hash64_array

        hashed = hash64_array(np.asarray(values))
        sorted_hashes, bounds = _group_slices(hashed, codes, num_groups)
        sketches = [self._new() for _ in range(num_groups)]
        for g, sketch in enumerate(sketches):
            sketch.add_hashes(sorted_hashes[bounds[g]:bounds[g + 1]])
        return sketches

    def merge(self, a, b):
        return a.merge(b)

    def finalize(self, state) -> int:
        return state.cardinality()


class PercentileFunction(AggregateFunction):
    """Exact percentile; the partial state is the raw value sample.

    Production Pinot offers PERCENTILEEST / T-digest variants with
    bounded state; an exact implementation keeps the reproduction's
    results deterministic and assertable.
    """

    def __init__(self, quantile: float):
        self.quantile = quantile

    def init_empty(self) -> tuple:
        return ()

    def aggregate(self, values: np.ndarray) -> tuple:
        return tuple(values.tolist())

    def aggregate_grouped(self, values, codes, num_groups):
        sorted_values, bounds = _group_slices(values, codes, num_groups)
        return [
            tuple(sorted_values[bounds[g]:bounds[g + 1]].tolist())
            for g in range(num_groups)
        ]

    def merge(self, a: tuple, b: tuple) -> tuple:
        return a + b

    def finalize(self, state: tuple) -> float | None:
        if not state:
            # Null marker: a percentile of no rows is not 0.0 (a real
            # p99 can be 0.0) — match how empty groups report elsewhere.
            return None
        return float(np.percentile(np.asarray(state), self.quantile))


class PercentileEstFunction(AggregateFunction):
    """Approximate percentile over a mergeable quantile sketch.

    The partial state is a :class:`~repro.engine.approx.QuantileSketch`
    — bounded size regardless of row count, deterministic, and exact
    below ``k`` values. Both engines build states by feeding values in
    document order, so partial states are identical across the
    vectorized and scalar paths.
    """

    def __init__(self, quantile: float):
        self.quantile = quantile

    def _new(self):
        from repro.engine.approx import QuantileSketch

        return QuantileSketch()

    def init_empty(self):
        return self._new()

    def aggregate(self, values: np.ndarray):
        sketch = self._new()
        sketch.add_many(values)
        return sketch

    def aggregate_grouped(self, values, codes, num_groups):
        sorted_values, bounds = _group_slices(values, codes, num_groups)
        sketches = [self._new() for _ in range(num_groups)]
        for g, sketch in enumerate(sketches):
            sketch.add_many(sorted_values[bounds[g]:bounds[g + 1]])
        return sketches

    def merge(self, a, b):
        return a.merge(b)

    def finalize(self, state) -> float | None:
        return state.quantile(self.quantile)


_FUNCTIONS: dict[AggFunc, AggregateFunction] = {
    AggFunc.COUNT: CountFunction(),
    AggFunc.SUM: SumFunction(),
    AggFunc.MIN: MinFunction(),
    AggFunc.MAX: MaxFunction(),
    AggFunc.AVG: AvgFunction(),
    AggFunc.MINMAXRANGE: MinMaxRangeFunction(),
    AggFunc.DISTINCTCOUNT: DistinctCountFunction(),
    AggFunc.DISTINCTCOUNTHLL: DistinctCountHllFunction(),
    AggFunc.PERCENTILE50: PercentileFunction(50.0),
    AggFunc.PERCENTILE90: PercentileFunction(90.0),
    AggFunc.PERCENTILE95: PercentileFunction(95.0),
    AggFunc.PERCENTILE99: PercentileFunction(99.0),
    AggFunc.PERCENTILEEST50: PercentileEstFunction(50.0),
    AggFunc.PERCENTILEEST90: PercentileEstFunction(90.0),
    AggFunc.PERCENTILEEST95: PercentileEstFunction(95.0),
    AggFunc.PERCENTILEEST99: PercentileEstFunction(99.0),
}

#: Functions a star-tree's pre-aggregated metrics can serve directly.
#: COUNT re-aggregates as SUM of pre-aggregated counts (§4.3).
STAR_TREE_FUNCS = frozenset({AggFunc.COUNT, AggFunc.SUM, AggFunc.MIN,
                             AggFunc.MAX, AggFunc.AVG})


def function_for(aggregation: Aggregation) -> AggregateFunction:
    try:
        return _FUNCTIONS[aggregation.func]
    except KeyError:
        raise ExecutionError(
            f"unsupported aggregation {aggregation.func}"
        ) from None

"""Result containers for per-segment, per-server and broker results.

Results flow bottom-up (§3.3.3): segments produce partial results with
mergeable aggregation states, servers combine their segments' partials,
and the broker merges server responses into the final
:class:`ResultTable` returned to the client. Errors and timeouts mark
the response *partial* rather than failing it (step 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.engine.aggregates import function_for
from repro.pql.ast_nodes import Aggregation, ColumnRef, Query


@dataclass
class ExecutionStats:
    """Counters for one query execution (any granularity)."""

    num_segments_queried: int = 0
    num_segments_processed: int = 0
    num_segments_matched: int = 0
    #: Segments a server skipped pre-execution via zone maps, bloom
    #: filters or partition metadata (they count as queried, not
    #: processed).
    num_segments_pruned_by_server: int = 0
    num_docs_scanned: int = 0
    num_entries_scanned_in_filter: int = 0
    num_entries_scanned_post_filter: int = 0
    total_docs: int = 0
    startree_used: bool = False
    startree_docs_scanned: int = 0
    raw_docs_matched: int = 0
    metadata_only: bool = False
    #: True when a timestamp-index rollup answered the query for at
    #: least one segment (no raw rows were scanned there).
    time_index_used: bool = False
    time_index_buckets_scanned: int = 0

    def merge(self, other: "ExecutionStats") -> None:
        self.num_segments_queried += other.num_segments_queried
        self.num_segments_processed += other.num_segments_processed
        self.num_segments_matched += other.num_segments_matched
        self.num_segments_pruned_by_server += (
            other.num_segments_pruned_by_server
        )
        self.num_docs_scanned += other.num_docs_scanned
        self.num_entries_scanned_in_filter += (
            other.num_entries_scanned_in_filter
        )
        self.num_entries_scanned_post_filter += (
            other.num_entries_scanned_post_filter
        )
        self.total_docs += other.total_docs
        self.startree_used = self.startree_used or other.startree_used
        self.startree_docs_scanned += other.startree_docs_scanned
        self.raw_docs_matched += other.raw_docs_matched
        self.metadata_only = self.metadata_only and other.metadata_only
        self.time_index_used = (self.time_index_used
                                or other.time_index_used)
        self.time_index_buckets_scanned += other.time_index_buckets_scanned


@dataclass
class AggregationPartial:
    """Partial states, one per aggregation in the select list."""

    states: list[Any]

    @classmethod
    def empty(cls, aggregations: tuple[Aggregation, ...]) -> "AggregationPartial":
        return cls([function_for(a).init_empty() for a in aggregations])

    def merge(self, other: "AggregationPartial",
              aggregations: tuple[Aggregation, ...]) -> None:
        for i, aggregation in enumerate(aggregations):
            func = function_for(aggregation)
            self.states[i] = func.merge(self.states[i], other.states[i])


@dataclass
class GroupByPartial:
    """Per-group partial states keyed by the group-by value tuple."""

    groups: dict[tuple, list[Any]] = field(default_factory=dict)

    def merge(self, other: "GroupByPartial",
              aggregations: tuple[Aggregation, ...]) -> None:
        funcs = [function_for(a) for a in aggregations]
        for key, states in other.groups.items():
            mine = self.groups.get(key)
            if mine is None:
                self.groups[key] = list(states)
            else:
                for i, func in enumerate(funcs):
                    mine[i] = func.merge(mine[i], states[i])


@dataclass
class SelectionPartial:
    """Projected rows for selection (non-aggregation) queries.

    Rows are kept bounded to ``limit + offset`` per partial; ordering
    happens at merge time when the query has ORDER BY.
    """

    columns: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)


@dataclass
class SegmentResult:
    """Result of executing a query on one segment."""

    aggregation: AggregationPartial | None = None
    group_by: GroupByPartial | None = None
    selection: SelectionPartial | None = None
    stats: ExecutionStats = field(default_factory=ExecutionStats)


@dataclass
class ServerResult:
    """Combined result of one server over its assigned segments."""

    server: str
    aggregation: AggregationPartial | None = None
    group_by: GroupByPartial | None = None
    selection: SelectionPartial | None = None
    stats: ExecutionStats = field(default_factory=ExecutionStats)
    error: str | None = None
    #: Measured execution time plus any injected simulated latency;
    #: what the broker's deadline accounting charges this sub-request.
    elapsed_ms: float = 0.0


@dataclass
class ResultTable:
    """The tabular query result returned to clients."""

    columns: tuple[str, ...]
    rows: list[tuple]

    def __len__(self) -> int:
        return len(self.rows)

    def to_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column_values(self, name: str) -> list[Any]:
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def __repr__(self) -> str:
        preview = "; ".join(str(r) for r in self.rows[:3])
        more = f" (+{len(self.rows) - 3} rows)" if len(self.rows) > 3 else ""
        return f"ResultTable({self.columns}, {preview}{more})"


@dataclass
class BrokerResponse:
    """What a Pinot broker sends back to the client (§3.3.3 step 8)."""

    table: ResultTable
    stats: ExecutionStats
    is_partial: bool = False
    exceptions: list[str] = field(default_factory=list)
    time_used_ms: float = 0.0
    num_servers_queried: int = 0
    num_servers_responded: int = 0
    #: Segments the broker pruned by time-range metadata before
    #: scattering (they never reached a server).
    num_segments_pruned_by_broker: int = 0
    #: Sub-request retries the broker issued on other replicas.
    num_retries: int = 0
    #: Segments the broker moved to a different replica after their
    #: first-choice server failed.
    num_segments_failed_over: int = 0
    #: Errors that occurred but were recovered by replica failover —
    #: they do not mark the response partial.
    recovered_exceptions: list[str] = field(default_factory=list)
    #: This query's broker stage timings (route/scatter/gather/merge,
    #: plus "cache" when the result cache was consulted).
    stage_times_ms: dict[str, float] = field(default_factory=dict)
    #: True when this response was served from the broker result cache.
    cache_hit: bool = False
    #: The query's span tree (``repro.obs``), present when the query
    #: was traced (sampled, or forced via ``OPTION(trace=true)``).
    trace: dict | None = None
    #: Smart-approximation rewrites the broker applied at plan time,
    #: as ``"old -> new"`` strings (e.g. ``"distinctcount(memberId) ->
    #: distinctcounthll(memberId)"``). Empty when no rewrite happened.
    rewrites: tuple[str, ...] = ()

    @property
    def partial(self) -> bool:
        """Alias for :attr:`is_partial` (graceful-degradation flag)."""
        return self.is_partial

    @property
    def rows(self) -> list[tuple]:
        return self.table.rows


def row_sort_key(query: Query, columns: tuple[str, ...]):
    """Key function for ORDER BY on selection rows, where ``columns``
    names the row tuple's fields in order."""
    if not query.order_by:
        return None
    indices: list[tuple[int, bool]] = []
    for ordering in query.order_by:
        assert isinstance(ordering.expression, ColumnRef)
        indices.append(
            (columns.index(ordering.expression.name), ordering.descending)
        )

    def key(row: tuple):
        return tuple(
            _Reversed(row[i]) if desc else row[i] for i, desc in indices
        )

    return key


def selection_sort_key(query: Query):
    """Key function for ORDER BY on selection rows (tuples aligned with
    the query's projected columns)."""
    return row_sort_key(query, tuple(i.name for i in query.projections))


class _Reversed:
    """Wrapper inverting comparison order for DESC sort keys."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.value == self.value


def group_sort_key(query: Query):
    """Key for ordering (key, finalized_values) group entries.

    With an explicit ORDER BY the listed expressions are honored; PQL's
    default for TOP-n group-by is descending by the first aggregation.
    """
    aggregations = query.aggregations
    group_columns = list(query.group_by)

    if not query.order_by:
        def default_key(entry):
            group_key, values = entry
            # Group key as tiebreaker: deterministic TOP-n truncation
            # even when aggregate values tie at the cut-off.
            return (_Reversed(values[0]), group_key)

        return default_key

    specs: list[tuple[str, int, bool]] = []
    for ordering in query.order_by:
        expr = ordering.expression
        if isinstance(expr, Aggregation):
            specs.append(("agg", aggregations.index(expr),
                          ordering.descending))
        else:
            specs.append(("key", group_columns.index(expr.name),
                          ordering.descending))

    def key(entry):
        group_key, values = entry
        parts = []
        for kind, index, descending in specs:
            value = values[index] if kind == "agg" else group_key[index]
            parts.append(_Reversed(value) if descending else value)
        parts.append(group_key)  # deterministic tiebreak
        return tuple(parts)

    return key

"""Combining and reducing partial results (§3.3.3 steps 6-8).

Two levels of merging mirror the production system:

* :func:`combine_segment_results` — a server combines the partial
  results of all its segments into one :class:`ServerResult`;
* :func:`reduce_server_results` — the broker merges per-server results,
  finalizes aggregation states, applies ordering / offset / limit, and
  produces the :class:`BrokerResponse`. Server errors or timeouts mark
  the response partial instead of failing it (step 7).
"""

from __future__ import annotations

from repro.engine.aggregates import function_for
from repro.engine.results import (
    AggregationPartial,
    BrokerResponse,
    ExecutionStats,
    GroupByPartial,
    ResultTable,
    SegmentResult,
    ServerResult,
    SelectionPartial,
    group_sort_key,
    row_sort_key,
)
from repro.pql.ast_nodes import Query


def combine_segment_results(query: Query, results: list[SegmentResult],
                            server: str = "local") -> ServerResult:
    """Merge per-segment partial results on one server."""
    combined = ServerResult(server=server)
    stats = ExecutionStats()
    for result in results:
        stats.merge(result.stats)
        if result.aggregation is not None:
            if combined.aggregation is None:
                combined.aggregation = AggregationPartial.empty(
                    query.aggregations
                )
            combined.aggregation.merge(result.aggregation,
                                       query.aggregations)
        if result.group_by is not None:
            if combined.group_by is None:
                combined.group_by = GroupByPartial()
            combined.group_by.merge(result.group_by, query.aggregations)
        if result.selection is not None:
            if combined.selection is None:
                combined.selection = SelectionPartial(
                    result.selection.columns
                )
            combined.selection.rows.extend(result.selection.rows)
    _trim_selection(query, combined.selection)
    combined.stats = stats
    return combined


def _trim_selection(query: Query, selection: SelectionPartial | None) -> None:
    if selection is None:
        return
    needed = query.limit + query.offset
    if not query.order_by:
        del selection.rows[needed:]
        return
    key = row_sort_key(query, selection.columns)
    if key is not None:
        selection.rows.sort(key=key)
    del selection.rows[needed:]


def reduce_server_results(query: Query, server_results: list[ServerResult],
                          time_used_ms: float = 0.0,
                          recovered_exceptions: list[str] | None = None,
                          ) -> BrokerResponse:
    """Broker-side reduce: merge per-server results into the response.

    ``recovered_exceptions`` are errors the broker already repaired by
    retrying on another replica; they are surfaced for observability but
    do not mark the response partial — only errors in
    ``server_results`` (segments no replica could serve) do.
    """
    stats = ExecutionStats()
    exceptions: list[str] = []
    aggregation: AggregationPartial | None = None
    group_by: GroupByPartial | None = None
    selection: SelectionPartial | None = None

    for result in server_results:
        if result.error is not None:
            exceptions.append(f"{result.server}: {result.error}")
            continue
        stats.merge(result.stats)
        if result.aggregation is not None:
            if aggregation is None:
                aggregation = AggregationPartial.empty(query.aggregations)
            aggregation.merge(result.aggregation, query.aggregations)
        if result.group_by is not None:
            if group_by is None:
                group_by = GroupByPartial()
            group_by.merge(result.group_by, query.aggregations)
        if result.selection is not None:
            if selection is None:
                selection = SelectionPartial(result.selection.columns)
            selection.rows.extend(result.selection.rows)

    if query.group_by:
        table = _finalize_group_by(query, group_by or GroupByPartial())
    elif query.is_aggregation:
        table = _finalize_aggregation(
            query, aggregation or AggregationPartial.empty(query.aggregations)
        )
    else:
        table = _finalize_selection(query, selection)

    return BrokerResponse(
        table=table,
        stats=stats,
        is_partial=bool(exceptions),
        exceptions=exceptions,
        time_used_ms=time_used_ms,
        recovered_exceptions=list(recovered_exceptions or ()),
    )


def _finalize_aggregation(query: Query,
                          partial: AggregationPartial) -> ResultTable:
    columns = tuple(str(a) for a in query.aggregations)
    row = tuple(
        function_for(a).finalize(state)
        for a, state in zip(query.aggregations, partial.states)
    )
    return ResultTable(columns, [row])


def _finalize_group_by(query: Query, partial: GroupByPartial) -> ResultTable:
    columns = tuple(str(g) for g in query.group_by) + tuple(
        str(a) for a in query.aggregations
    )
    having_specs = [
        (query.aggregations.index(condition.aggregation), condition)
        for condition in query.having
    ]
    entries = []
    for key, states in partial.groups.items():
        values = tuple(
            function_for(a).finalize(state)
            for a, state in zip(query.aggregations, states)
        )
        # HAVING: iceberg filtering on the finalized aggregates (§4.3).
        if any(not condition.matches(values[index])
               for index, condition in having_specs):
            continue
        entries.append((key, values))
    entries.sort(key=group_sort_key(query))
    window = entries[query.offset:query.offset + query.limit]
    rows = [key + values for key, values in window]
    return ResultTable(columns, rows)


def _finalize_selection(query: Query,
                        selection: SelectionPartial | None) -> ResultTable:
    if selection is None:
        columns = tuple(i.name for i in query.projections) or ("*",)
        return ResultTable(columns, [])
    rows = selection.rows
    if query.order_by:
        key = row_sort_key(query, selection.columns)
        if key is not None:
            rows = sorted(rows, key=key)
    rows = rows[query.offset:query.offset + query.limit]
    return ResultTable(selection.columns, list(rows))

"""Physical filter operators and document selections.

Per §3.3.4 and §4.2, each segment gets its own physical plan: a leaf
predicate executes as

* a :class:`SortedRangeFilter` when the column is the segment's
  physically sorted column — a binary search yielding a *contiguous*
  document range, which downstream operators then restrict themselves
  to;
* an :class:`InvertedFilter` when a bitmap inverted index exists;
* a :class:`ScanFilter` otherwise — a vectorized comparison over the
  (dictionary-id) forward index, evaluated only within the current
  selection.

Selections stay contiguous as long as possible (:class:`DocSelection`),
because contiguous ranges enable the vectorized fast path the paper
describes for the sorted "who viewed my profile" workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.predicates import IdMatch
from repro.segment.segment import Column


@dataclass
class FilterStats:
    """Counters accumulated during filter execution (used for the
    Fig 13-style scan-ratio instrumentation and plan explain output)."""

    entries_scanned: int = 0
    bitmaps_unioned: int = 0
    ranges_binary_searched: int = 0


class DocSelection:
    """A selection vector: contiguous range, sorted id array, or mask.

    Three physical representations, chosen adaptively:

    * a *contiguous range* ``[start, end)`` — produced by sorted-column
      filters; enables the §4.2 vectorized fast path downstream;
    * a *boolean mask* over the whole segment — produced by scan
      filters; AND/OR combine in O(num_docs) with no sorting or
      materialized id lists;
    * a *sorted id array* — produced by inverted-index bitmap unions.

    Conversions are lazy and cached; ``doc_array()`` is the
    materialization point for gather-style consumers.
    """

    __slots__ = ("start", "end", "_docs", "_mask", "_count")

    def __init__(self, start: int = 0, end: int = 0,
                 docs: np.ndarray | None = None,
                 mask: np.ndarray | None = None):
        self.start = start
        self.end = end
        self._docs = docs  # sorted unique int64 array when id-backed
        self._mask = mask  # bool array over [0, num_docs) when mask-backed
        self._count: int | None = None

    # -- constructors -----------------------------------------------------

    @classmethod
    def full(cls, num_docs: int) -> "DocSelection":
        return cls(0, num_docs)

    @classmethod
    def empty(cls) -> "DocSelection":
        return cls(0, 0)

    @classmethod
    def from_range(cls, start: int, end: int) -> "DocSelection":
        if end <= start:
            return cls.empty()
        return cls(start, end)

    @classmethod
    def from_docs(cls, docs: np.ndarray) -> "DocSelection":
        if len(docs) == 0:
            return cls.empty()
        # Preserve contiguity when the array happens to be a dense run.
        if int(docs[-1]) - int(docs[0]) + 1 == len(docs):
            return cls(int(docs[0]), int(docs[-1]) + 1)
        out = cls(0, 0, docs.astype(np.int64, copy=False))
        return out

    @classmethod
    def from_mask(cls, mask: np.ndarray) -> "DocSelection":
        count = int(np.count_nonzero(mask))
        if count == 0:
            return cls.empty()
        first = int(mask.argmax())
        last = len(mask) - 1 - int(mask[::-1].argmax())
        if last - first + 1 == count:  # dense run: keep it contiguous
            return cls(first, last + 1)
        out = cls(0, 0, mask=mask)
        out._count = count
        return out

    # -- accessors ---------------------------------------------------------

    @property
    def is_contiguous(self) -> bool:
        return self._docs is None and self._mask is None

    @property
    def count(self) -> int:
        if self._count is not None:
            return self._count
        if self._docs is not None:
            self._count = len(self._docs)
        elif self._mask is not None:
            self._count = int(np.count_nonzero(self._mask))
        else:
            self._count = self.end - self.start
        return self._count

    @property
    def is_empty(self) -> bool:
        return self.count == 0

    def doc_array(self) -> np.ndarray:
        if self._docs is not None:
            return self._docs
        if self._mask is not None:
            self._docs = np.nonzero(self._mask)[0].astype(np.int64)
            return self._docs
        return np.arange(self.start, self.end, dtype=np.int64)

    def mask(self, num_docs: int) -> np.ndarray:
        """This selection as a boolean mask over ``[0, num_docs)``."""
        if self._mask is not None:
            return self._mask
        out = np.zeros(num_docs, dtype=bool)
        if self._docs is not None:
            out[self._docs] = True
        else:
            out[self.start:self.end] = True
        return out

    def __repr__(self) -> str:
        if self.is_contiguous:
            return f"DocSelection[{self.start}:{self.end}]"
        kind = "mask" if self._docs is None else "docs"
        return f"DocSelection({kind}={self.count})"

    # -- combinators -------------------------------------------------------

    def intersect(self, other: "DocSelection") -> "DocSelection":
        if self.is_empty or other.is_empty:
            return DocSelection.empty()
        if self.is_contiguous and other.is_contiguous:
            return DocSelection.from_range(
                max(self.start, other.start), min(self.end, other.end)
            )
        if self.is_contiguous:
            return other._clip(self.start, self.end)
        if other.is_contiguous:
            return self._clip(other.start, other.end)
        if self._mask is not None and other._mask is not None:
            return DocSelection.from_mask(self._mask & other._mask)
        if self._mask is not None or other._mask is not None:
            # Mask ∧ docs: probe the mask at the id positions — O(ids).
            masked = self if self._mask is not None else other
            ids = (other if masked is self else self).doc_array()
            return DocSelection.from_docs(ids[masked._mask[ids]])
        docs = np.intersect1d(self._docs, other._docs, assume_unique=True)
        return DocSelection.from_docs(docs)

    def union(self, other: "DocSelection") -> "DocSelection":
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        if (self.is_contiguous and other.is_contiguous
                and self.end >= other.start and other.end >= self.start):
            return DocSelection.from_range(
                min(self.start, other.start), max(self.end, other.end)
            )
        if self._mask is not None and other._mask is not None:
            return DocSelection.from_mask(self._mask | other._mask)
        if self._mask is not None or other._mask is not None:
            masked = self if self._mask is not None else other
            rest = other if masked is self else self
            out = masked._mask.copy()
            if rest._docs is not None:
                out[rest._docs] = True
            else:
                out[rest.start:rest.end] = True
            return DocSelection.from_mask(out)
        docs = np.union1d(self.doc_array(), other.doc_array())
        return DocSelection.from_docs(docs)

    def _clip(self, start: int, end: int) -> "DocSelection":
        if self._mask is not None:
            out = self._mask.copy()
            out[:start] = False
            out[end:] = False
            return DocSelection.from_mask(out)
        docs = self._docs
        lo = int(np.searchsorted(docs, start, side="left"))
        hi = int(np.searchsorted(docs, end, side="left"))
        return DocSelection.from_docs(docs[lo:hi])


# -- physical operators ----------------------------------------------------


class FilterOperator:
    """One node of a physical filter plan."""

    #: Lower executes earlier inside an AND (§4.2: sorted first).
    def cost(self) -> float:
        raise NotImplementedError

    def execute(self, context: DocSelection,
                stats: FilterStats) -> DocSelection:
        """Evaluate within ``context`` and return the matching docs."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass
class MatchAllFilter(FilterOperator):
    """Predicate matches every value in the segment (§3.3.4 shortcut)."""

    num_docs: int

    def cost(self) -> float:
        return 0.0

    def execute(self, context, stats):
        return context

    def describe(self) -> str:
        return "MatchAll"


@dataclass
class MatchNoneFilter(FilterOperator):
    def cost(self) -> float:
        return 0.0

    def execute(self, context, stats):
        return DocSelection.empty()

    def describe(self) -> str:
        return "MatchNone"


@dataclass
class SortedRangeFilter(FilterOperator):
    """Binary-search filter on the physically sorted column (§4.2)."""

    column: Column
    match: IdMatch

    def cost(self) -> float:
        # Nearly free: a couple of binary searches per id range.
        return 1.0 + len(self.match.ranges)

    def execute(self, context, stats):
        forward = self.column.forward
        selection = DocSelection.empty()
        for lo, hi in self.match.ranges:
            start, end = forward.doc_range_for_ids(lo, hi)
            stats.ranges_binary_searched += 1
            selection = selection.union(DocSelection.from_range(start, end))
        return selection.intersect(context)

    def describe(self) -> str:
        return (
            f"SortedRange({self.column.name}, ids={list(self.match.ranges)})"
        )


@dataclass
class InvertedFilter(FilterOperator):
    """Bitmap inverted-index filter with the §4.2 scan fallback.

    When an earlier operator has already narrowed the selection below
    this filter's estimated bitmap size, materializing and intersecting
    the bitmaps would cost more than just checking the surviving
    documents' forward-index values — "falling back to iterator-style
    scan query execution on a range of the column leads to better query
    performance than trying to perform bitmap operations on large
    bitmap indexes". The fallback kicks in exactly then.
    """

    column: Column
    match: IdMatch

    def cost(self) -> float:
        # Proportional to the estimated number of matching rows the
        # bitmap union materializes.
        estimated_rows = self.match.selectivity() * self.column.num_docs
        return 10.0 + estimated_rows

    def execute(self, context, stats):
        estimated_rows = self.match.selectivity() * self.column.num_docs
        context_is_narrow = (
            context.count < self.column.num_docs
            and context.count < estimated_rows
        )
        if context_is_narrow and not self.column.is_multi_value:
            return _scan_within(self.column, self.match, context, stats)
        inverted = self.column.inverted
        assert inverted is not None, "planner bug: no inverted index"
        docs = inverted.union_doc_array(self.match.ranges)
        stats.bitmaps_unioned += self.match.matched_ids
        stats.entries_scanned += len(docs)
        return DocSelection.from_docs(docs).intersect(context)

    def describe(self) -> str:
        return f"Inverted({self.column.name}, ids={self.match.matched_ids})"


def _scan_within(column: Column, match: IdMatch, context: DocSelection,
                 stats: FilterStats) -> DocSelection:
    """Vectorized forward-index check of ``match`` on the context docs.

    Contiguous contexts produce a boolean selection vector over the
    whole segment (no id materialization — AND/OR chains combine masks
    in O(num_docs)); narrowed id-array contexts gather only the
    surviving documents' dictionary ids.
    """
    forward = column.forward
    if context.is_contiguous:
        if context.start == 0 and context.end == column.num_docs:
            ids = forward.dict_ids()
            stats.entries_scanned += len(ids)
            return DocSelection.from_mask(match.mask_for(ids))
        ids = forward.dict_ids()[context.start:context.end]
        stats.entries_scanned += len(ids)
        mask = np.zeros(column.num_docs, dtype=bool)
        mask[context.start:context.end] = match.mask_for(ids)
        return DocSelection.from_mask(mask)
    docs = context.doc_array()
    ids = forward.dict_ids()[docs]
    stats.entries_scanned += len(ids)
    mask = match.mask_for(ids)
    return DocSelection.from_docs(docs[mask])


@dataclass
class ScanFilter(FilterOperator):
    """Vectorized forward-index scan, restricted to the context."""

    column: Column
    match: IdMatch

    def cost(self) -> float:
        # Must touch every entry in the current selection; model the
        # worst case (full column) so scans sort last.
        return 1000.0 + self.column.metadata.total_entries

    def execute(self, context, stats):
        if self.column.is_multi_value:
            return self._execute_multi_value(context, stats)
        return _scan_within(self.column, self.match, context, stats)

    def _execute_multi_value(self, context, stats):
        forward = self.column.forward
        flat = forward.flat_ids()
        offsets = forward.offsets
        stats.entries_scanned += len(flat)
        flat_mask = self.match.mask_for(flat)
        cumulative = np.concatenate(([0], np.cumsum(flat_mask)))
        per_doc = cumulative[offsets[1:]] - cumulative[offsets[:-1]]
        return DocSelection.from_mask(per_doc > 0).intersect(context)

    def describe(self) -> str:
        return f"Scan({self.column.name}, ids={self.match.matched_ids})"


@dataclass
class AndFilter(FilterOperator):
    """Conjunction; children are pre-ordered by the planner so cheap,
    selection-narrowing operators run first and later operators only
    evaluate the surviving documents (§4.2)."""

    children: list[FilterOperator]

    def cost(self) -> float:
        return min(c.cost() for c in self.children)

    def execute(self, context, stats):
        selection = context
        for child in self.children:
            selection = child.execute(selection, stats)
            if selection.is_empty:
                return selection
        return selection

    def describe(self) -> str:
        inner = ", ".join(c.describe() for c in self.children)
        return f"And({inner})"


@dataclass
class OrFilter(FilterOperator):
    children: list[FilterOperator]

    def cost(self) -> float:
        return sum(c.cost() for c in self.children)

    def execute(self, context, stats):
        out = DocSelection.empty()
        for child in self.children:
            out = out.union(child.execute(context, stats))
        return out

    def describe(self) -> str:
        inner = ", ".join(c.describe() for c in self.children)
        return f"Or({inner})"


@dataclass
class FilterPlan:
    """The filter part of a per-segment physical plan."""

    root: FilterOperator | None
    num_docs: int
    stats: FilterStats = field(default_factory=FilterStats)

    def execute(self, base: DocSelection | None = None) -> DocSelection:
        """Run the filter tree. ``base`` restricts the starting context
        (e.g. an upsert table's valid-docId bitmap): operators only ever
        narrow their context, so superseded docs can never re-enter."""
        context = DocSelection.full(self.num_docs)
        if base is not None:
            context = context.intersect(base)
        if self.root is None:
            return context
        return self.root.execute(context, self.stats)

    def describe(self) -> str:
        return self.root.describe() if self.root else "MatchAll"

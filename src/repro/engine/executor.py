"""Per-segment query execution (§3.3.4).

Executes a :class:`~repro.engine.planner.SegmentPlan`:

* ``METADATA`` plans answer straight from segment metadata without
  touching any index (the ``SELECT COUNT(*)`` fast path of §4.1);
* ``STAR_TREE`` plans traverse the segment's star-tree and aggregate
  pre-aggregated records (§4.3);
* ``SCAN`` plans run the physical filter, then aggregate / group /
  project the surviving documents.
"""

from __future__ import annotations

import numpy as np

from repro.engine.aggregates import function_for
from repro.engine.groupby import execute_group_by
from repro.engine.operators import DocSelection
from repro.engine.planner import PlanKind, SegmentPlan, plan_segment
from repro.engine.results import (
    AggregationPartial,
    ExecutionStats,
    SegmentResult,
    SelectionPartial,
)
from repro.errors import ExecutionError
from repro.pql.ast_nodes import AggFunc, Query
from repro.segment.segment import ImmutableSegment


def execute_segment(segment: ImmutableSegment, query: Query,
                    use_cost_ordering: bool = True,
                    allow_star_tree: bool = True,
                    vectorized: bool = True,
                    valid_docs: DocSelection | None = None) -> SegmentResult:
    """Plan and execute ``query`` on one segment.

    ``vectorized=False`` bypasses the planner and batch kernels entirely
    and runs the row-at-a-time scalar oracle (:mod:`repro.engine.scalar`)
    — selectable per query via ``OPTION(vectorized=false)`` and per
    cluster via ``ServerInstance.default_vectorized``.

    ``valid_docs`` is an upsert table's valid-docId selection: both
    engines intersect it before filter evaluation, so superseded rows
    are invisible whichever engine (or mix of engines) runs the query.
    """
    if valid_docs is not None and valid_docs.count >= segment.num_docs:
        valid_docs = None  # every doc valid: keep the unmasked fast paths
    if not vectorized:
        from repro.engine.scalar import execute_segment_scalar

        return execute_segment_scalar(segment, query, valid_docs=valid_docs)
    plan = plan_segment(segment, query, use_cost_ordering,
                        allow_star_tree and valid_docs is None,
                        allow_metadata_only=valid_docs is None,
                        allow_time_index=valid_docs is None)
    return execute_plan(plan, valid_docs=valid_docs)


def execute_plan(plan: SegmentPlan,
                 valid_docs: DocSelection | None = None) -> SegmentResult:
    query = plan.query
    segment = plan.segment
    stats = ExecutionStats(num_segments_queried=1,
                           total_docs=segment.num_docs)

    if plan.kind is PlanKind.EMPTY:
        return _empty_result(query, stats)

    stats.num_segments_processed = 1

    if plan.kind is PlanKind.METADATA:
        assert valid_docs is None, (
            "metadata plans answer over all docs; planner must not pick "
            "them under a partial valid-docId mask"
        )
        stats.metadata_only = True
        stats.num_segments_matched = 1
        return _execute_metadata(segment, query, stats)

    if plan.kind is PlanKind.TIME_INDEX:
        assert valid_docs is None, (
            "timestamp-index rollups pre-aggregate every stored doc; "
            "planner must not pick them under a partial valid-docId mask"
        )
        return _execute_time_index(plan, stats)

    if plan.kind is PlanKind.STAR_TREE:
        from repro.startree.query import execute_on_star_tree

        assert valid_docs is None, (
            "star-tree pre-aggregation ignores valid-docId masks"
        )
        assert segment.star_tree is not None
        partial, docs_scanned = execute_on_star_tree(
            segment.star_tree, query
        )
        stats.startree_used = True
        stats.startree_docs_scanned = docs_scanned
        stats.num_docs_scanned = docs_scanned
        stats.num_segments_matched = 1
        result = SegmentResult(stats=stats)
        if query.group_by:
            result.group_by = partial
        else:
            result.aggregation = partial
        return result

    assert plan.filter_plan is not None
    selection = plan.filter_plan.execute(valid_docs)
    stats.num_entries_scanned_in_filter = (
        plan.filter_plan.stats.entries_scanned
    )
    stats.num_docs_scanned = selection.count
    stats.raw_docs_matched = selection.count
    if not selection.is_empty:
        stats.num_segments_matched = 1

    result = SegmentResult(stats=stats)
    if query.group_by:
        result.group_by = execute_group_by(segment, query, selection)
        stats.num_entries_scanned_post_filter = selection.count * (
            len(query.group_by) + sum(
                1 for a in query.aggregations
                if function_for(a).needs_values
            )
        )
    elif query.is_aggregation:
        result.aggregation = _execute_aggregation(segment, query, selection,
                                                  stats)
    else:
        result.selection = _execute_selection(segment, query, selection)
        stats.num_entries_scanned_post_filter = (
            min(selection.count, query.limit + query.offset)
            * len(result.selection.columns)
        )
    return result


def prune_result(segment: ImmutableSegment, query: Query) -> SegmentResult:
    """The result for a segment skipped by the server-side pruner:
    counted as queried (its docs appear in total_docs) but never
    processed — the same accounting as an EMPTY time-pruned plan."""
    stats = ExecutionStats(num_segments_queried=1,
                           total_docs=segment.num_docs,
                           num_segments_pruned_by_server=1)
    return _empty_result(query, stats)


def _empty_result(query: Query, stats: ExecutionStats) -> SegmentResult:
    result = SegmentResult(stats=stats)
    if query.group_by:
        from repro.engine.results import GroupByPartial

        result.group_by = GroupByPartial()
    elif query.is_aggregation:
        result.aggregation = AggregationPartial.empty(query.aggregations)
    else:
        result.selection = SelectionPartial(_selection_columns(query))
    return result


# -- timestamp-index plans ---------------------------------------------------


def _execute_time_index(plan: SegmentPlan,
                        stats: ExecutionStats) -> SegmentResult:
    """Aggregate pre-aggregated rollup buckets instead of raw rows.

    The partial states produced here have the exact shapes the scan
    path emits (COUNT=int, SUM=float, MIN/MAX=float, AVG=(sum, count),
    MINMAXRANGE=(min, max)), so broker/server merges cannot tell the
    two plans apart.
    """
    query = plan.query
    rollup = plan.time_rollup
    assert rollup is not None
    window = rollup.slice_range(plan.time_low, plan.time_high)
    buckets = rollup.buckets[window]
    counts = rollup.counts[window]
    stats.time_index_used = True
    stats.time_index_buckets_scanned = len(buckets)
    if len(buckets):
        stats.num_segments_matched = 1

    result = SegmentResult(stats=stats)
    if not query.group_by:
        result.aggregation = AggregationPartial([
            _rollup_total_state(a, rollup, window, counts)
            for a in query.aggregations
        ])
        return result

    size = plan.time_bucket_size or 1
    keys = (buckets // size) * size if size > 1 else buckets
    uniq, inverse = np.unique(keys, return_inverse=True)
    num_groups = len(uniq)
    per_agg = [
        _rollup_grouped_states(a, rollup, window, counts, inverse, num_groups)
        for a in query.aggregations
    ]
    from repro.engine.results import GroupByPartial

    result.group_by = GroupByPartial({
        (int(uniq[g]),): [states[g] for states in per_agg]
        for g in range(num_groups)
    })
    return result


def _rollup_total_state(aggregation, rollup, window: slice,
                        counts: np.ndarray):
    func = aggregation.func
    if func is AggFunc.COUNT:
        return int(counts.sum())
    sums = rollup.sums[aggregation.column][window]
    mins = rollup.mins[aggregation.column][window]
    maxs = rollup.maxs[aggregation.column][window]
    empty = len(counts) == 0
    if func is AggFunc.SUM:
        return float(sums.sum()) if not empty else 0.0
    if func is AggFunc.MIN:
        return float(mins.min()) if not empty else float("inf")
    if func is AggFunc.MAX:
        return float(maxs.max()) if not empty else float("-inf")
    if func is AggFunc.AVG:
        return (float(sums.sum()), int(counts.sum())) if not empty else (0.0, 0)
    if func is AggFunc.MINMAXRANGE:
        if empty:
            return (float("inf"), float("-inf"))
        return (float(mins.min()), float(maxs.max()))
    raise ExecutionError(  # pragma: no cover - planner guarantees
        f"{func} is not answerable from the timestamp index"
    )


def _rollup_grouped_states(aggregation, rollup, window: slice,
                           counts: np.ndarray, inverse: np.ndarray,
                           num_groups: int) -> list:
    func = aggregation.func
    group_counts = np.zeros(num_groups, dtype=np.int64)
    np.add.at(group_counts, inverse, counts)
    if func is AggFunc.COUNT:
        return [int(c) for c in group_counts]
    sums = rollup.sums[aggregation.column][window]
    mins = rollup.mins[aggregation.column][window]
    maxs = rollup.maxs[aggregation.column][window]
    if func in (AggFunc.SUM, AggFunc.AVG):
        group_sums = np.zeros(num_groups)
        np.add.at(group_sums, inverse, sums)
        if func is AggFunc.SUM:
            return [float(s) for s in group_sums]
        return [(float(s), int(c))
                for s, c in zip(group_sums, group_counts)]
    group_mins = np.full(num_groups, np.inf)
    group_maxs = np.full(num_groups, -np.inf)
    np.minimum.at(group_mins, inverse, mins)
    np.maximum.at(group_maxs, inverse, maxs)
    if func is AggFunc.MIN:
        return [float(v) for v in group_mins]
    if func is AggFunc.MAX:
        return [float(v) for v in group_maxs]
    if func is AggFunc.MINMAXRANGE:
        return [(float(lo), float(hi))
                for lo, hi in zip(group_mins, group_maxs)]
    raise ExecutionError(  # pragma: no cover - planner guarantees
        f"{func} is not answerable from the timestamp index"
    )


# -- metadata-only plans -----------------------------------------------------


def _execute_metadata(segment: ImmutableSegment, query: Query,
                      stats: ExecutionStats) -> SegmentResult:
    states = []
    for aggregation in query.aggregations:
        if aggregation.func is AggFunc.COUNT:
            states.append(segment.num_docs)
            continue
        meta = segment.metadata.column(aggregation.column)
        if aggregation.func is AggFunc.MIN:
            states.append(float(meta.min_value))
        elif aggregation.func is AggFunc.MAX:
            states.append(float(meta.max_value))
        elif aggregation.func is AggFunc.MINMAXRANGE:
            states.append((float(meta.min_value), float(meta.max_value)))
        else:  # pragma: no cover - planner guarantees
            raise ExecutionError(
                f"{aggregation.func} is not metadata-answerable"
            )
    return SegmentResult(aggregation=AggregationPartial(states), stats=stats)


# -- aggregation -----------------------------------------------------------


def _execute_aggregation(segment: ImmutableSegment, query: Query,
                         selection: DocSelection,
                         stats: ExecutionStats) -> AggregationPartial:
    states = []
    docs = None
    for aggregation in query.aggregations:
        func = function_for(aggregation)
        if not func.needs_values:
            states.append(func.aggregate(np.empty(selection.count)))
            continue
        column = segment.column(aggregation.column)
        if column.is_multi_value:
            raise ExecutionError(
                f"cannot aggregate over multi-value column "
                f"{aggregation.column!r}"
            )
        if selection.is_contiguous:
            # Vectorized fast path on a contiguous range (§4.2).
            values = column.values()[selection.start:selection.end]
        else:
            if docs is None:
                docs = selection.doc_array()
            values = column.values()[docs]
        stats.num_entries_scanned_post_filter += len(values)
        states.append(func.aggregate(np.asarray(values)))
    return AggregationPartial(states)


# -- selection (projection) queries ---------------------------------------


def _selection_columns(query: Query) -> tuple[str, ...]:
    if query.select_star:
        return ("*",)
    return tuple(item.name for item in query.projections)


def _execute_selection(segment: ImmutableSegment, query: Query,
                       selection: DocSelection) -> SelectionPartial:
    if query.select_star:
        columns = segment.schema.column_names
    else:
        columns = tuple(item.name for item in query.projections)
    needed = query.limit + query.offset

    docs = selection.doc_array()
    if not query.order_by:
        docs = docs[:needed]
    rows = _materialize_rows(segment, columns, docs)
    if query.order_by:
        from repro.engine.results import row_sort_key

        key = row_sort_key(query, columns)
        if key is None:
            raise ExecutionError("ORDER BY on selection failed to compile")
        rows.sort(key=key)
        rows = rows[:needed]
    return SelectionPartial(columns, rows)


def _materialize_rows(segment: ImmutableSegment, columns: tuple[str, ...],
                      docs: np.ndarray) -> list[tuple]:
    column_values = []
    for name in columns:
        column = segment.column(name)
        if column.is_multi_value:
            column_values.append(
                [tuple(column.value_of_doc(int(d))) for d in docs]
            )
        else:
            values = column.values()[docs]
            column_values.append([_plain(v) for v in values])
    return [tuple(col[i] for col in column_values)
            for i in range(len(docs))]


def _plain(value):
    return value.item() if isinstance(value, np.generic) else value

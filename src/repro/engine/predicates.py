"""Compilation of leaf predicates into dictionary-id matches.

Because every column is dictionary-encoded with ids assigned in sorted
value order (§3.1), every PQL leaf predicate compiles into a union of
disjoint, contiguous *dictionary-id ranges*:

* ``c = v``            → ``[id, id + 1)``
* ``c != v``           → ``[0, id) ∪ [id + 1, card)``
* ``c IN (...)``       → one range per present value (coalesced)
* ``c < v`` etc.       → one range (sorted dictionary!)
* ``c BETWEEN a AND b``→ one range

The same :class:`IdMatch` feeds all three physical filter operators
(sorted-range, inverted-index, scan), which is what lets the planner
pick operators per segment by index availability (§3.3.4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PlanningError
from repro.pql.ast_nodes import (
    Between,
    CompareOp,
    Comparison,
    In,
    Like,
    Predicate,
)
from repro.segment.dictionary import Dictionary
from repro.segment.segment import Column


@dataclass(frozen=True)
class IdMatch:
    """Disjoint sorted half-open dictionary-id ranges matching a leaf."""

    ranges: tuple[tuple[int, int], ...]
    cardinality: int

    @property
    def is_empty(self) -> bool:
        return not self.ranges

    @property
    def is_all(self) -> bool:
        """True when every dictionary id matches — the 'predicate matches
        all values of a segment' special case (§3.3.4)."""
        return (
            len(self.ranges) == 1
            and self.ranges[0] == (0, self.cardinality)
        )

    @property
    def matched_ids(self) -> int:
        return sum(hi - lo for lo, hi in self.ranges)

    def selectivity(self) -> float:
        """Fraction of dictionary ids matched — the planner's cheap
        proxy for row selectivity."""
        if not self.cardinality:
            return 0.0
        return self.matched_ids / self.cardinality

    def id_array(self) -> np.ndarray:
        parts = [np.arange(lo, hi, dtype=np.int64) for lo, hi in self.ranges]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    def mask_for(self, dict_ids: np.ndarray) -> np.ndarray:
        """Boolean mask of which entries in ``dict_ids`` match.

        Few ranges (EQ, a range predicate, NEQ's two-sided complement)
        evaluate as direct comparisons; many ranges (IN / NOT IN / LIKE
        over a large dictionary) use one binary search per entry against
        the flattened range boundaries — an id is inside some half-open
        range exactly when its insertion point is odd, so the whole
        batch is a single ``searchsorted`` instead of one comparison
        pass per range.
        """
        if not self.ranges:
            return np.zeros(len(dict_ids), dtype=bool)
        if len(self.ranges) <= 2:
            mask = np.zeros(len(dict_ids), dtype=bool)
            for lo, hi in self.ranges:
                if hi == lo + 1:
                    mask |= dict_ids == lo
                else:
                    mask |= (dict_ids >= lo) & (dict_ids < hi)
            return mask
        # _coalesce guarantees sorted, disjoint, non-adjacent ranges, so
        # the flattened boundaries are strictly increasing.
        boundaries = np.fromiter(
            (bound for id_range in self.ranges for bound in id_range),
            dtype=np.int64, count=2 * len(self.ranges),
        )
        positions = np.searchsorted(boundaries, dict_ids, side="right")
        return (positions & 1).astype(bool)


def _coalesce(ranges: list[tuple[int, int]], cardinality: int) -> IdMatch:
    ranges = sorted((lo, hi) for lo, hi in ranges if hi > lo)
    merged: list[tuple[int, int]] = []
    for lo, hi in ranges:
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return IdMatch(tuple(merged), cardinality)


def _complement(match: IdMatch) -> IdMatch:
    out: list[tuple[int, int]] = []
    cursor = 0
    for lo, hi in match.ranges:
        if cursor < lo:
            out.append((cursor, lo))
        cursor = hi
    if cursor < match.cardinality:
        out.append((cursor, match.cardinality))
    return IdMatch(tuple(out), match.cardinality)


def compile_leaf(predicate: Predicate, column: Column) -> IdMatch:
    """Compile one leaf predicate against a column's dictionary."""
    dictionary = column.dictionary
    if isinstance(predicate, Comparison):
        return _compile_comparison(predicate, dictionary)
    if isinstance(predicate, In):
        return _compile_in(predicate, dictionary)
    if isinstance(predicate, Between):
        value_lo = _coerce(dictionary, predicate.low)
        value_hi = _coerce(dictionary, predicate.high)
        lo, hi = dictionary.id_range_for(value_lo, value_hi)
        return _coalesce([(lo, hi)], dictionary.cardinality)
    if isinstance(predicate, Like):
        return _compile_like(predicate, dictionary)
    raise PlanningError(f"not a leaf predicate: {predicate!r}")


def _compile_like(predicate: Like, dictionary: Dictionary) -> IdMatch:
    """LIKE evaluates the pattern over the dictionary, not the rows:
    cardinality-many regex matches regardless of segment size."""
    import re

    from repro.common.types import DataType

    if dictionary.dtype is not DataType.STRING:
        raise PlanningError(
            f"LIKE requires a string column, {predicate.column!r} is "
            f"{dictionary.dtype.value}"
        )
    regex = re.compile(predicate.to_regex())
    ranges = [
        (dict_id, dict_id + 1)
        for dict_id in range(dictionary.cardinality)
        if regex.fullmatch(dictionary.value_of(dict_id)) is not None
    ]
    match = _coalesce(ranges, dictionary.cardinality)
    if predicate.negated:
        return _complement(match)
    return match


def _compile_comparison(predicate: Comparison,
                        dictionary: Dictionary) -> IdMatch:
    card = dictionary.cardinality
    value = _coerce(dictionary, predicate.value)
    op = predicate.op
    if op is CompareOp.EQ:
        dict_id = dictionary.id_of(value)
        ranges = [] if dict_id is None else [(dict_id, dict_id + 1)]
        return _coalesce(ranges, card)
    if op is CompareOp.NEQ:
        dict_id = dictionary.id_of(value)
        if dict_id is None:
            return IdMatch(((0, card),), card)
        return _complement(_coalesce([(dict_id, dict_id + 1)], card))
    if op is CompareOp.LT:
        lo, hi = dictionary.id_range_for(None, value, high_inclusive=False)
    elif op is CompareOp.LTE:
        lo, hi = dictionary.id_range_for(None, value, high_inclusive=True)
    elif op is CompareOp.GT:
        lo, hi = dictionary.id_range_for(value, None, low_inclusive=False)
    elif op is CompareOp.GTE:
        lo, hi = dictionary.id_range_for(value, None, low_inclusive=True)
    else:  # pragma: no cover - exhaustive enum
        raise PlanningError(f"unknown comparison op {op}")
    return _coalesce([(lo, hi)], card)


def _compile_in(predicate: In, dictionary: Dictionary) -> IdMatch:
    card = dictionary.cardinality
    ranges = []
    for value in predicate.values:
        dict_id = dictionary.id_of(_coerce(dictionary, value))
        if dict_id is not None:
            ranges.append((dict_id, dict_id + 1))
    match = _coalesce(ranges, card)
    if predicate.negated:
        return _complement(match)
    return match


def _coerce(dictionary: Dictionary, value):
    """Coerce a literal to the column type for dictionary comparison.

    PQL queries routinely write numeric literals for LONG columns and
    vice versa; comparing an ``int`` against a float dictionary (or the
    reverse) is fine, but strings must stay strings.
    """
    from repro.common.types import DataType

    if dictionary.dtype is DataType.STRING and not isinstance(value, str):
        return str(value)
    if dictionary.dtype is not DataType.STRING and isinstance(value, str):
        raise PlanningError(
            f"cannot compare string literal {value!r} against numeric "
            "column"
        )
    if dictionary.dtype in (DataType.INT, DataType.LONG) and isinstance(
        value, float
    ):
        return value  # numpy handles float-vs-int comparison correctly
    return value

"""Mergeable quantile sketch backing the ``PERCENTILEEST*`` functions.

A deterministic KLL/MRL-style sketch: items live in levels where level
``h`` items each represent ``2**h`` original values. When a level fills
past ``k`` items it is *compacted* — sorted, and every other item
promoted to the next level at double weight. Survivor parity alternates
per level via a compaction counter instead of a coin flip, so the
sketch is fully deterministic: the simulation harness's byte-identical
replay digests depend on it, and the scalar and vectorized engines can
assert state equality rather than mere closeness.

Properties the engine relies on:

* **Bounded state** — ``O(k log(n/k))`` items regardless of input size,
  so partial states ship cheaply through the ``repro.net`` codec.
* **Mergeable** — ``merge`` concatenates levels and re-compacts;
  commutative to the byte (sorted unions + summed counters), so
  scatter/gather order cannot perturb results.
* **Exact when small** — below ``k`` values no compaction happens and
  ``quantile`` reproduces ``np.percentile``'s linear interpolation
  exactly.
* **Bounded error** — with ``H`` compacted levels the rank error is at
  most ``H/(2k)`` of ``n`` (each level-``h`` compaction displaces ranks
  by ≤ ``2**(h-1)`` and happens ≤ ``n/(k·2**h)`` times), surfaced as
  :meth:`rank_error_bound` for the oracle and the CI gate.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

#: Default compactor capacity; ~0.25% rank error per compacted level.
DEFAULT_K = 200


class QuantileSketch:
    """Deterministic mergeable quantile sketch (KLL/MRL hybrid)."""

    __slots__ = ("k", "count", "levels", "offsets")

    def __init__(self, k: int = DEFAULT_K, count: int = 0,
                 levels: list[list[float]] | None = None,
                 offsets: list[int] | None = None):
        if k < 8:
            raise ValueError("k must be >= 8")
        self.k = k
        self.count = count
        #: ``levels[h]`` holds items of weight ``2**h``.
        self.levels: list[list[float]] = levels if levels is not None else [[]]
        #: Per-level compaction counters; parity picks survivor offset.
        self.offsets: list[int] = (offsets if offsets is not None
                                   else [0] * len(self.levels))

    # -- building -----------------------------------------------------------

    def add(self, value) -> None:
        self.levels[0].append(float(value))
        self.count += 1
        if len(self.levels[0]) >= self.k:
            self._compact(0)

    def add_many(self, values: Iterable) -> None:
        """Bulk add, state-identical to per-value :meth:`add` in the
        same order (fills level 0 in chunks between compactions)."""
        if isinstance(values, np.ndarray):
            vals = values.astype(np.float64).tolist()
        else:
            vals = [float(v) for v in values]
        level0 = self.levels[0]
        i, n = 0, len(vals)
        while i < n:
            take = min(self.k - len(level0), n - i)
            level0.extend(vals[i:i + take])
            self.count += take
            i += take
            if len(level0) >= self.k:
                self._compact(0)
                level0 = self.levels[0]

    def _compact(self, h: int) -> None:
        """Promote half of level ``h`` to ``h + 1`` deterministically."""
        items = sorted(self.levels[h])
        carry = items.pop() if len(items) % 2 else None
        offset = self.offsets[h] & 1
        self.offsets[h] += 1
        survivors = items[offset::2]
        self.levels[h] = [carry] if carry is not None else []
        if h + 1 == len(self.levels):
            self.levels.append([])
            self.offsets.append(0)
        self.levels[h + 1].extend(survivors)
        if len(self.levels[h + 1]) >= self.k:
            self._compact(h + 1)

    # -- merging -----------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Combined sketch; commutative to the byte (sorted level unions
        plus summed compaction counters)."""
        if other.k != self.k:
            raise ValueError("cannot merge sketches of different k")
        height = max(len(self.levels), len(other.levels))
        levels = []
        offsets = []
        for h in range(height):
            a = self.levels[h] if h < len(self.levels) else []
            b = other.levels[h] if h < len(other.levels) else []
            levels.append(sorted(a + b))
            oa = self.offsets[h] if h < len(self.offsets) else 0
            ob = other.offsets[h] if h < len(other.offsets) else 0
            offsets.append(oa + ob)
        merged = QuantileSketch(self.k, self.count + other.count,
                                levels, offsets)
        h = 0
        while h < len(merged.levels):
            if len(merged.levels[h]) >= merged.k:
                merged._compact(h)
            h += 1
        return merged

    def copy(self) -> "QuantileSketch":
        return QuantileSketch(self.k, self.count,
                              [list(level) for level in self.levels],
                              list(self.offsets))

    # -- estimation ----------------------------------------------------------

    def _weighted_items(self) -> tuple[np.ndarray, np.ndarray]:
        values: list[float] = []
        weights: list[int] = []
        for h, level in enumerate(self.levels):
            weight = 1 << h
            for value in level:
                values.append(value)
                weights.append(weight)
        order = np.argsort(np.asarray(values, dtype=np.float64),
                           kind="stable")
        return (np.asarray(values, dtype=np.float64)[order],
                np.asarray(weights, dtype=np.int64)[order])

    def quantile(self, q: float) -> float | None:
        """Estimated ``q``-th percentile (``q`` in [0, 100]), with
        ``np.percentile``-style linear interpolation; ``None`` when the
        sketch is empty."""
        if self.count == 0:
            return None
        values, weights = self._weighted_items()
        # Each item of weight w occupies w consecutive unit positions in
        # [0, count); interpolate between the values at the positions
        # flanking the (possibly fractional) target rank — identical to
        # np.percentile's "linear" method when all weights are 1.
        ends = np.cumsum(weights)
        target = (q / 100.0) * (self.count - 1)
        lo = int(math.floor(target))
        hi = int(math.ceil(target))
        v_lo = float(values[np.searchsorted(ends, lo, side="right")])
        v_hi = float(values[np.searchsorted(ends, hi, side="right")])
        if hi == lo:
            return v_lo
        return v_lo + (v_hi - v_lo) * (target - lo)

    def rank_error_bound(self) -> float:
        """Worst-case rank error as a fraction of ``count``."""
        compacted = sum(1 for h in range(len(self.offsets))
                        if self.offsets[h] > 0)
        if compacted == 0:
            return 0.0
        return min(1.0, compacted / (2.0 * self.k))

    @property
    def num_retained(self) -> int:
        return sum(len(level) for level in self.levels)

    # -- equality / serialization support ------------------------------------

    def canonical_levels(self) -> list[list[float]]:
        return [sorted(level) for level in self.levels]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return (self.k == other.k and self.count == other.count
                and self.offsets == other.offsets
                and self.canonical_levels() == other.canonical_levels())

    def __repr__(self) -> str:
        return (f"QuantileSketch(k={self.k}, n={self.count}, "
                f"retained={self.num_retained})")


def sketch_of(values: Sequence, k: int = DEFAULT_K) -> QuantileSketch:
    """Convenience constructor: a sketch over ``values`` in order."""
    sketch = QuantileSketch(k)
    sketch.add_many(values)
    return sketch

"""Per-segment logical and physical query planning (§3.3.4, Figs 5 & 7).

Query plans are generated *per segment* because index availability and
physical layout differ between segments. The planner:

1. validates the query against the segment's schema;
2. picks a plan kind — metadata-only (e.g. ``SELECT COUNT(*)`` or
   min/max without a filter, answered from segment metadata), star-tree
   (the query is served from pre-aggregated records, §4.3), or regular
   scan;
3. for regular plans, compiles every leaf predicate into an
   :class:`~repro.engine.predicates.IdMatch` and selects a physical
   operator per leaf by index availability;
4. orders AND children by estimated cost so selective, cheap operators
   (sorted ranges first) narrow the selection for the rest (§4.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.engine.operators import (
    AndFilter,
    FilterOperator,
    FilterPlan,
    InvertedFilter,
    MatchAllFilter,
    MatchNoneFilter,
    OrFilter,
    ScanFilter,
    SortedRangeFilter,
)
from repro.engine.predicates import compile_leaf
from repro.errors import PlanningError
from repro.pql.ast_nodes import (
    AggFunc,
    And,
    Between,
    Comparison,
    Not,
    Or,
    Predicate,
    Query,
)
from repro.segment.segment import ImmutableSegment


class PlanKind(enum.Enum):
    METADATA = "METADATA"
    STAR_TREE = "STAR_TREE"
    SCAN = "SCAN"
    EMPTY = "EMPTY"  # segment provably contributes nothing


@dataclass
class SegmentPlan:
    """A physical plan for one (query, segment) pair."""

    kind: PlanKind
    segment: ImmutableSegment
    query: Query
    filter_plan: FilterPlan | None = None
    use_cost_ordering: bool = True
    notes: list[str] = field(default_factory=list)

    def describe(self) -> str:
        parts = [self.kind.value]
        if self.filter_plan is not None:
            parts.append(self.filter_plan.describe())
        parts.extend(self.notes)
        return " | ".join(parts)


_METADATA_FUNCS = frozenset({AggFunc.COUNT, AggFunc.MIN, AggFunc.MAX,
                             AggFunc.MINMAXRANGE})


def plan_segment(segment: ImmutableSegment, query: Query,
                 use_cost_ordering: bool = True,
                 allow_star_tree: bool = True,
                 allow_metadata_only: bool = True) -> SegmentPlan:
    """Build the physical plan for ``query`` on ``segment``.

    ``use_cost_ordering`` and ``allow_star_tree`` exist for the ablation
    benchmarks; production behaviour is both enabled.
    ``allow_metadata_only=False`` forces a scan plan even for
    metadata-answerable queries — required when the caller will mask the
    scan with a partial valid-docId selection (upsert tables), since
    metadata answers describe *every* stored doc.
    """
    _validate_columns(segment, query)

    if _time_pruned(segment, query):
        return SegmentPlan(PlanKind.EMPTY, segment, query,
                           notes=["pruned by segment time range"])

    if allow_metadata_only and _is_metadata_only(segment, query):
        return SegmentPlan(PlanKind.METADATA, segment, query,
                           notes=["answered from segment metadata"])

    if allow_star_tree and segment.star_tree is not None:
        from repro.startree.query import supports_query

        if supports_query(segment.star_tree, query):
            return SegmentPlan(PlanKind.STAR_TREE, segment, query,
                               notes=["star-tree pre-aggregation"])

    root = None
    if query.where is not None:
        root = _compile_filter(segment, query.where, use_cost_ordering)
    filter_plan = FilterPlan(root, segment.num_docs)
    return SegmentPlan(PlanKind.SCAN, segment, query, filter_plan,
                       use_cost_ordering)


def _validate_columns(segment: ImmutableSegment, query: Query) -> None:
    missing = [
        column for column in query.referenced_columns()
        if not segment.has_column(column)
    ]
    if missing:
        raise PlanningError(
            f"segment {segment.name!r} is missing columns {missing} "
            f"referenced by the query"
        )


def _time_pruned(segment: ImmutableSegment, query: Query) -> bool:
    """Prune segments whose time range cannot match the query's time
    filter — how hybrid-table rewritten queries avoid touching segments
    on the wrong side of the boundary."""
    time_range = segment.time_range()
    time_column = segment.metadata.time_column
    if time_range is None or time_column is None or query.where is None:
        return False
    low, high = _time_bounds(query.where, time_column)
    min_time, max_time = time_range
    if low is not None and max_time < low:
        return True
    if high is not None and min_time > high:
        return True
    return False


def time_bounds(predicate: Predicate,
                time_column: str) -> tuple[int | None, int | None]:
    """Conservative [low, high] bounds implied on the time column by the
    top-level AND of the predicate (None = unbounded). Shared by
    per-segment pruning here and broker-side pruning."""
    return _time_bounds(predicate, time_column)


def _time_bounds(predicate: Predicate,
                 time_column: str) -> tuple[int | None, int | None]:
    if isinstance(predicate, And):
        low, high = None, None
        for child in predicate.children:
            child_low, child_high = _time_bounds(child, time_column)
            if child_low is not None:
                low = child_low if low is None else max(low, child_low)
            if child_high is not None:
                high = child_high if high is None else min(high, child_high)
        return low, high
    if isinstance(predicate, Comparison) and predicate.column == time_column:
        from repro.pql.ast_nodes import CompareOp

        value = predicate.value
        if not isinstance(value, (int, float)):
            return None, None
        if predicate.op is CompareOp.EQ:
            return value, value
        if predicate.op is CompareOp.GT:
            return value + 1, None
        if predicate.op is CompareOp.GTE:
            return value, None
        if predicate.op is CompareOp.LT:
            return None, value - 1
        if predicate.op is CompareOp.LTE:
            return None, value
        return None, None
    if isinstance(predicate, Between) and predicate.column == time_column:
        low, high = predicate.low, predicate.high
        if isinstance(low, (int, float)) and isinstance(high, (int, float)):
            return low, high
    return None, None


def _is_metadata_only(segment: ImmutableSegment, query: Query) -> bool:
    if query.where is not None or query.group_by or not query.is_aggregation:
        return False
    if query.projections:
        return False
    for aggregation in query.aggregations:
        if aggregation.func not in _METADATA_FUNCS:
            return False
        if aggregation.func is AggFunc.COUNT:
            continue
        column = segment.column(aggregation.column)
        if column.is_multi_value:
            return False
    return True


# -- filter compilation -------------------------------------------------------


def _compile_filter(segment: ImmutableSegment, predicate: Predicate,
                    use_cost_ordering: bool) -> FilterOperator:
    if isinstance(predicate, And):
        children = [
            _compile_filter(segment, child, use_cost_ordering)
            for child in predicate.children
        ]
        children = _simplify_and(children, segment.num_docs)
        if len(children) == 1:
            return children[0]
        if use_cost_ordering:
            children.sort(key=lambda op: op.cost())
        return AndFilter(children)
    if isinstance(predicate, Or):
        children = [
            _compile_filter(segment, child, use_cost_ordering)
            for child in predicate.children
        ]
        children = _simplify_or(children, segment.num_docs)
        if len(children) == 1:
            return children[0]
        return OrFilter(children)
    if isinstance(predicate, Not):
        # The rewriter eliminates NOT; raw (un-optimized) queries can
        # still carry it, so normalize on the fly.
        from repro.pql.rewriter import normalize_predicate

        return _compile_filter(segment, normalize_predicate(predicate),
                               use_cost_ordering)
    return _compile_leaf_operator(segment, predicate)


def _compile_leaf_operator(segment: ImmutableSegment,
                           predicate: Predicate) -> FilterOperator:
    column_name = getattr(predicate, "column")
    column = segment.column(column_name)
    match = compile_leaf(predicate, column)
    if match.is_empty:
        return MatchNoneFilter()
    if match.is_all and not column.is_multi_value:
        # Predicate matches all values in this segment (§3.3.4).
        return MatchAllFilter(segment.num_docs)
    if column.is_sorted:
        return SortedRangeFilter(column, match)
    if column.inverted is not None:
        return InvertedFilter(column, match)
    return ScanFilter(column, match)


def _simplify_and(children: list[FilterOperator],
                  num_docs: int) -> list[FilterOperator]:
    if any(isinstance(c, MatchNoneFilter) for c in children):
        return [MatchNoneFilter()]
    remaining = [c for c in children if not isinstance(c, MatchAllFilter)]
    return remaining or [MatchAllFilter(num_docs)]


def _simplify_or(children: list[FilterOperator],
                 num_docs: int) -> list[FilterOperator]:
    if any(isinstance(c, MatchAllFilter) for c in children):
        return [MatchAllFilter(num_docs)]
    remaining = [c for c in children if not isinstance(c, MatchNoneFilter)]
    return remaining or [MatchNoneFilter()]

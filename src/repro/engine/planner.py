"""Per-segment logical and physical query planning (§3.3.4, Figs 5 & 7).

Query plans are generated *per segment* because index availability and
physical layout differ between segments. The planner:

1. validates the query against the segment's schema;
2. picks a plan kind — metadata-only (e.g. ``SELECT COUNT(*)`` or
   min/max without a filter, answered from segment metadata), star-tree
   (the query is served from pre-aggregated records, §4.3), or regular
   scan;
3. for regular plans, compiles every leaf predicate into an
   :class:`~repro.engine.predicates.IdMatch` and selects a physical
   operator per leaf by index availability;
4. orders AND children by estimated cost so selective, cheap operators
   (sorted ranges first) narrow the selection for the rest (§4.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.engine.operators import (
    AndFilter,
    FilterOperator,
    FilterPlan,
    InvertedFilter,
    MatchAllFilter,
    MatchNoneFilter,
    OrFilter,
    ScanFilter,
    SortedRangeFilter,
)
from repro.engine.predicates import compile_leaf
from repro.errors import PlanningError
from repro.pql.ast_nodes import (
    AggFunc,
    And,
    Between,
    CompareOp,
    Comparison,
    Not,
    Or,
    Predicate,
    Query,
    TimeBucket,
)
from repro.segment.segment import ImmutableSegment


class PlanKind(enum.Enum):
    METADATA = "METADATA"
    TIME_INDEX = "TIME_INDEX"
    STAR_TREE = "STAR_TREE"
    SCAN = "SCAN"
    EMPTY = "EMPTY"  # segment provably contributes nothing


@dataclass
class SegmentPlan:
    """A physical plan for one (query, segment) pair."""

    kind: PlanKind
    segment: ImmutableSegment
    query: Query
    filter_plan: FilterPlan | None = None
    use_cost_ordering: bool = True
    notes: list[str] = field(default_factory=list)
    #: TIME_INDEX plans: the rollup to aggregate plus the normalized
    #: inclusive time bounds to slice it with (None = unbounded), and
    #: the query's bucket size (None when there is no GROUP BY).
    time_rollup: "object | None" = None
    time_low: int | None = None
    time_high: int | None = None
    time_bucket_size: int | None = None

    def describe(self) -> str:
        parts = [self.kind.value]
        if self.filter_plan is not None:
            parts.append(self.filter_plan.describe())
        parts.extend(self.notes)
        return " | ".join(parts)


_METADATA_FUNCS = frozenset({AggFunc.COUNT, AggFunc.MIN, AggFunc.MAX,
                             AggFunc.MINMAXRANGE})

#: Functions the timestamp-index rollups can serve with partial states
#: byte-identical to the scan path's (COUNT/SUM/MIN/MAX plus the two
#: derived from them).
_TIME_INDEX_FUNCS = frozenset({AggFunc.COUNT, AggFunc.SUM, AggFunc.MIN,
                               AggFunc.MAX, AggFunc.AVG,
                               AggFunc.MINMAXRANGE})


def plan_segment(segment: ImmutableSegment, query: Query,
                 use_cost_ordering: bool = True,
                 allow_star_tree: bool = True,
                 allow_metadata_only: bool = True,
                 allow_time_index: bool = True) -> SegmentPlan:
    """Build the physical plan for ``query`` on ``segment``.

    ``use_cost_ordering`` and ``allow_star_tree`` exist for the ablation
    benchmarks; production behaviour is both enabled.
    ``allow_metadata_only=False`` forces a scan plan even for
    metadata-answerable queries — required when the caller will mask the
    scan with a partial valid-docId selection (upsert tables), since
    metadata answers describe *every* stored doc.
    ``allow_time_index=False`` likewise disables the timestamp-index
    rollup path (rollups pre-aggregate every stored doc).
    """
    _validate_columns(segment, query)

    if _time_pruned(segment, query):
        return SegmentPlan(PlanKind.EMPTY, segment, query,
                           notes=["pruned by segment time range"])

    if allow_metadata_only and _is_metadata_only(segment, query):
        return SegmentPlan(PlanKind.METADATA, segment, query,
                           notes=["answered from segment metadata"])

    if allow_time_index and segment.time_index is not None:
        plan = _plan_time_index(segment, query)
        if plan is not None:
            return plan

    if allow_star_tree and segment.star_tree is not None:
        from repro.startree.query import supports_query

        if supports_query(segment.star_tree, query):
            return SegmentPlan(PlanKind.STAR_TREE, segment, query,
                               notes=["star-tree pre-aggregation"])

    root = None
    if query.where is not None:
        root = _compile_filter(segment, query.where, use_cost_ordering)
    filter_plan = FilterPlan(root, segment.num_docs)
    return SegmentPlan(PlanKind.SCAN, segment, query, filter_plan,
                       use_cost_ordering)


def _validate_columns(segment: ImmutableSegment, query: Query) -> None:
    missing = [
        column for column in query.referenced_columns()
        if not segment.has_column(column)
    ]
    if missing:
        raise PlanningError(
            f"segment {segment.name!r} is missing columns {missing} "
            f"referenced by the query"
        )


def _time_pruned(segment: ImmutableSegment, query: Query) -> bool:
    """Prune segments whose time range cannot match the query's time
    filter — how hybrid-table rewritten queries avoid touching segments
    on the wrong side of the boundary."""
    time_range = segment.time_range()
    time_column = segment.metadata.time_column
    if time_range is None or time_column is None or query.where is None:
        return False
    low, high = _time_bounds(query.where, time_column)
    min_time, max_time = time_range
    if low is not None and max_time < low:
        return True
    if high is not None and min_time > high:
        return True
    return False


def time_bounds(predicate: Predicate,
                time_column: str) -> tuple[int | None, int | None]:
    """Conservative [low, high] bounds implied on the time column by the
    top-level AND of the predicate (None = unbounded). Shared by
    per-segment pruning here and broker-side pruning."""
    return _time_bounds(predicate, time_column)


def _time_bounds(predicate: Predicate,
                 time_column: str) -> tuple[int | None, int | None]:
    if isinstance(predicate, And):
        low, high = None, None
        for child in predicate.children:
            child_low, child_high = _time_bounds(child, time_column)
            if child_low is not None:
                low = child_low if low is None else max(low, child_low)
            if child_high is not None:
                high = child_high if high is None else min(high, child_high)
        return low, high
    if isinstance(predicate, Comparison) and predicate.column == time_column:
        value = predicate.value
        if not isinstance(value, (int, float)):
            return None, None
        if predicate.op is CompareOp.EQ:
            return value, value
        if predicate.op is CompareOp.GT:
            return value + 1, None
        if predicate.op is CompareOp.GTE:
            return value, None
        if predicate.op is CompareOp.LT:
            return None, value - 1
        if predicate.op is CompareOp.LTE:
            return None, value
        return None, None
    if isinstance(predicate, Between) and predicate.column == time_column:
        low, high = predicate.low, predicate.high
        if isinstance(low, (int, float)) and isinstance(high, (int, float)):
            return low, high
    return None, None


def _is_metadata_only(segment: ImmutableSegment, query: Query) -> bool:
    if query.where is not None or query.group_by or not query.is_aggregation:
        return False
    if query.projections:
        return False
    for aggregation in query.aggregations:
        if aggregation.func not in _METADATA_FUNCS:
            return False
        if aggregation.func is AggFunc.COUNT:
            continue
        column = segment.column(aggregation.column)
        if column.is_multi_value:
            return False
    return True


# -- timestamp-index plans ---------------------------------------------------


def _plan_time_index(segment: ImmutableSegment,
                     query: Query) -> SegmentPlan | None:
    """A TIME_INDEX plan when a rollup can answer the query exactly.

    Qualifying shape: an aggregation-only query whose group-by is empty
    or a single entry on the time column (raw, or ``timebucket(...)``),
    whose aggregations are all rollup-covered, and whose predicate — if
    any — is a pure time-range conjunction whose bounds, after
    normalizing against the segment's own [min_time, max_time], land on
    bucket edges of some configured granularity. Normalizing first is
    what lets a hybrid-split boundary predicate (``day <= boundary``)
    still qualify on segments wholly inside the boundary.
    """
    index = segment.time_index
    assert index is not None
    time_column = index.time_column

    if not query.is_aggregation or query.projections:
        return None
    bucket_size: int | None = None
    if query.group_by:
        if len(query.group_by) != 1:
            return None
        entry = query.group_by[0]
        if isinstance(entry, TimeBucket):
            if entry.column != time_column:
                return None
            bucket_size = entry.size
        elif entry == time_column:
            bucket_size = 1
        else:
            return None
    for aggregation in query.aggregations:
        if aggregation.func not in _TIME_INDEX_FUNCS:
            return None
        if aggregation.func is AggFunc.COUNT:
            continue
        if not index.covers_column(aggregation.column):
            return None

    low: int | None = None
    high: int | None = None
    if query.where is not None:
        if not _time_exact_range(query.where, time_column):
            return None
        low, high = _time_bounds(query.where, time_column)
        time_range = segment.time_range()
        if time_range is not None:
            min_time, max_time = time_range
            if low is not None and low <= min_time:
                low = None  # bound does not cut into this segment
            if high is not None and high >= max_time:
                high = None

    rollup = index.rollup_for(bucket_size, low, high)
    if rollup is None:
        return None
    return SegmentPlan(
        PlanKind.TIME_INDEX, segment, query,
        notes=[f"timestamp-index rollup g={rollup.granularity}"],
        time_rollup=rollup, time_low=low, time_high=high,
        time_bucket_size=bucket_size,
    )


def _time_exact_range(predicate: Predicate, time_column: str) -> bool:
    """Whether ``predicate`` is *exactly* the [low, high] interval that
    :func:`time_bounds` derives — i.e. a conjunction of integer range
    comparisons on the time column only. Anything else (other columns,
    OR/NOT, NEQ/IN, non-integer bounds) needs the raw rows."""
    if isinstance(predicate, And):
        return all(_time_exact_range(child, time_column)
                   for child in predicate.children)
    if isinstance(predicate, Comparison):
        return (predicate.column == time_column
                and type(predicate.value) is int
                and predicate.op in (CompareOp.EQ, CompareOp.GT,
                                     CompareOp.GTE, CompareOp.LT,
                                     CompareOp.LTE))
    if isinstance(predicate, Between):
        return (predicate.column == time_column
                and type(predicate.low) is int
                and type(predicate.high) is int)
    return False


# -- filter compilation -------------------------------------------------------


def _compile_filter(segment: ImmutableSegment, predicate: Predicate,
                    use_cost_ordering: bool) -> FilterOperator:
    if isinstance(predicate, And):
        children = [
            _compile_filter(segment, child, use_cost_ordering)
            for child in predicate.children
        ]
        children = _simplify_and(children, segment.num_docs)
        if len(children) == 1:
            return children[0]
        if use_cost_ordering:
            children.sort(key=lambda op: op.cost())
        return AndFilter(children)
    if isinstance(predicate, Or):
        children = [
            _compile_filter(segment, child, use_cost_ordering)
            for child in predicate.children
        ]
        children = _simplify_or(children, segment.num_docs)
        if len(children) == 1:
            return children[0]
        return OrFilter(children)
    if isinstance(predicate, Not):
        # The rewriter eliminates NOT; raw (un-optimized) queries can
        # still carry it, so normalize on the fly.
        from repro.pql.rewriter import normalize_predicate

        return _compile_filter(segment, normalize_predicate(predicate),
                               use_cost_ordering)
    return _compile_leaf_operator(segment, predicate)


def _compile_leaf_operator(segment: ImmutableSegment,
                           predicate: Predicate) -> FilterOperator:
    column_name = getattr(predicate, "column")
    column = segment.column(column_name)
    match = compile_leaf(predicate, column)
    if match.is_empty:
        return MatchNoneFilter()
    if match.is_all and not column.is_multi_value:
        # Predicate matches all values in this segment (§3.3.4).
        return MatchAllFilter(segment.num_docs)
    if column.is_sorted:
        return SortedRangeFilter(column, match)
    if column.inverted is not None:
        return InvertedFilter(column, match)
    return ScanFilter(column, match)


def _simplify_and(children: list[FilterOperator],
                  num_docs: int) -> list[FilterOperator]:
    if any(isinstance(c, MatchNoneFilter) for c in children):
        return [MatchNoneFilter()]
    remaining = [c for c in children if not isinstance(c, MatchAllFilter)]
    return remaining or [MatchAllFilter(num_docs)]


def _simplify_or(children: list[FilterOperator],
                 num_docs: int) -> list[FilterOperator]:
    if any(isinstance(c, MatchAllFilter) for c in children):
        return [MatchAllFilter(num_docs)]
    remaining = [c for c in children if not isinstance(c, MatchNoneFilter)]
    return remaining or [MatchNoneFilter()]

"""Vectorized group-by execution over a filtered document selection.

Group keys are computed in dictionary-id space: each single-value group
column contributes its per-document dictionary ids, the ids are combined
into one mixed-radix code per document, and every aggregation function
runs once per group via its vectorized ``aggregate_grouped``. Keys are
decoded back to values only for the groups that actually occur.

A multi-value group column contributes one group *per value* of each
document (matching Pinot's semantics); at most one multi-value group
column per query is supported.
"""

from __future__ import annotations

import numpy as np

from repro.engine.aggregates import function_for
from repro.engine.operators import DocSelection
from repro.engine.results import GroupByPartial
from repro.errors import ExecutionError
from repro.pql.ast_nodes import Query, TimeBucket, group_by_column
from repro.segment.segment import ImmutableSegment


def execute_group_by(segment: ImmutableSegment, query: Query,
                     selection: DocSelection) -> GroupByPartial:
    """Aggregate ``selection`` grouped by ``query.group_by``."""
    partial = GroupByPartial()
    if selection.is_empty:
        return partial

    docs = selection.doc_array()
    group_columns = [segment.column(group_by_column(g))
                     for g in query.group_by]
    multi_value = [c for c in group_columns if c.is_multi_value]
    if len(multi_value) > 1:
        raise ExecutionError(
            "at most one multi-value group-by column is supported; got "
            f"{[c.name for c in multi_value]}"
        )

    if multi_value:
        docs, id_columns = _expand_multi_value(group_columns, docs,
                                               multi_value[0])
    else:
        id_columns = [column.dict_ids()[docs] for column in group_columns]

    if len(docs) == 0:
        return partial

    # A TIMEBUCKET entry re-keys its column in *bucket* space: map each
    # dictionary id to its bucket once (cardinality-many floors, not
    # row-many), renumber the buckets densely, and decode group keys
    # from the bucket values instead of the dictionary.
    cards: list[int] = []
    decoders: list = []
    for i, (expr, column) in enumerate(zip(query.group_by, group_columns)):
        if isinstance(expr, TimeBucket):
            if column.is_multi_value:
                raise ExecutionError(
                    "timebucket requires a single-value column"
                )
            dict_values = column.dictionary.values_of(
                np.arange(column.dictionary.cardinality)
            ).astype(np.int64)
            bucket_of_id = (dict_values // expr.size) * expr.size
            buckets, inverse = np.unique(bucket_of_id, return_inverse=True)
            id_columns[i] = inverse[np.asarray(id_columns[i],
                                               dtype=np.int64)]
            cards.append(len(buckets))
            decoders.append(
                lambda key_id, b=buckets: int(b[int(key_id)])
            )
        else:
            cards.append(column.dictionary.cardinality)
            decoders.append(
                lambda key_id, c=column: c.dictionary.value_of(int(key_id))
            )

    codes, unique_key_ids = _combine_codes(cards, id_columns)
    num_groups = len(unique_key_ids[0]) if unique_key_ids else 0

    # Aggregate each function over all groups at once.
    per_agg_states: list[list] = []
    for aggregation in query.aggregations:
        func = function_for(aggregation)
        if func.needs_values:
            values = segment.column(aggregation.column).values()[docs]
        else:
            values = np.empty(len(docs))
        per_agg_states.append(
            func.aggregate_grouped(np.asarray(values), codes, num_groups)
        )

    # Decode group keys back to values.
    for group_index in range(num_groups):
        key = tuple(
            decoders[i](unique_key_ids[i][group_index])
            for i in range(len(decoders))
        )
        partial.groups[key] = [
            states[group_index] for states in per_agg_states
        ]
    return partial


def _expand_multi_value(group_columns, docs: np.ndarray, mv_column):
    """Expand docs so each multi-value entry becomes its own row."""
    forward = mv_column.forward
    offsets = forward.offsets
    lengths = (offsets[1:] - offsets[:-1])[docs]
    expanded_docs = np.repeat(docs, lengths)
    flat = forward.flat_ids()
    mv_ids = np.concatenate(
        [flat[offsets[d]:offsets[d + 1]] for d in docs.tolist()]
    ) if len(docs) else np.empty(0, dtype=np.uint32)

    id_columns = []
    for column in group_columns:
        if column is mv_column:
            id_columns.append(mv_ids.astype(np.int64))
        else:
            id_columns.append(column.dict_ids()[expanded_docs].astype(np.int64))
    return expanded_docs, id_columns


def _combine_codes(cards, id_columns):
    """Pack per-column key ids into one group key per row; returns
    (compact codes per row, per-column unique key ids per group).

    The fast path packs ids mixed-radix into a single int64 — one
    vectorized multiply-add per column and one ``np.unique`` to number
    the groups. When the cardinality product would overflow int64
    (many wide group columns), fall back to a row-wise ``np.unique``
    over the stacked id matrix, which needs no packed representation.
    """
    key_space = 1
    for card in cards:
        key_space *= card  # python int: no silent overflow
    if key_space < 2 ** 63:
        combined = np.zeros(len(id_columns[0]), dtype=np.int64)
        for ids, card in zip(id_columns, cards):
            combined = combined * card + ids.astype(np.int64)
        unique_codes, codes = np.unique(combined, return_inverse=True)

        # Decompose unique codes back into per-column ids.
        unique_key_ids: list[np.ndarray] = []
        remainder = unique_codes.copy()
        for card in reversed(cards):
            unique_key_ids.append(remainder % card)
            remainder //= card
        unique_key_ids.reverse()
        return codes, unique_key_ids

    stacked = np.stack(
        [ids.astype(np.int64) for ids in id_columns], axis=1
    )
    unique_rows, codes = np.unique(stacked, axis=0, return_inverse=True)
    unique_key_ids = [unique_rows[:, i] for i in range(len(id_columns))]
    return codes, unique_key_ids

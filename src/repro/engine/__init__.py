"""Query engine: predicate compilation, physical operators, per-segment
planning and execution, aggregation, group-by, and result merging."""

from repro.engine.executor import execute_plan, execute_segment
from repro.engine.merge import combine_segment_results, reduce_server_results
from repro.engine.scalar import execute_segment_scalar
from repro.engine.operators import DocSelection, FilterPlan
from repro.engine.planner import PlanKind, SegmentPlan, plan_segment
from repro.engine.predicates import IdMatch, compile_leaf
from repro.engine.results import (
    BrokerResponse,
    ExecutionStats,
    ResultTable,
    SegmentResult,
    ServerResult,
)

__all__ = [
    "BrokerResponse",
    "DocSelection",
    "ExecutionStats",
    "FilterPlan",
    "IdMatch",
    "PlanKind",
    "ResultTable",
    "SegmentPlan",
    "SegmentResult",
    "ServerResult",
    "combine_segment_results",
    "compile_leaf",
    "execute_plan",
    "execute_segment",
    "execute_segment_scalar",
    "plan_segment",
    "reduce_server_results",
]

"""The persistent object store (deep store) for segment data (§3.2, §3.4).

All persistent segment data lives in a durable object store (NFS at
LinkedIn, Azure Disk / S3-style stores elsewhere); server-local storage
is only a cache and any node can be replaced by a blank one. Two
implementations:

* :class:`MemoryObjectStore` — holds the immutable segment objects
  directly (segments are immutable, so sharing references is safe);
* :class:`FileObjectStore` — round-trips every segment through the
  on-disk format in a directory tree, exercising the full serialization
  path.
"""

from __future__ import annotations

import shutil
from pathlib import Path

from repro.errors import ClusterError
from repro.segment.io import load_segment, write_segment
from repro.segment.segment import ImmutableSegment


class ObjectStore:
    """Interface: a durable keyed store of segments."""

    def put(self, table: str, segment: ImmutableSegment) -> None:
        raise NotImplementedError

    def get(self, table: str, segment_name: str) -> ImmutableSegment:
        raise NotImplementedError

    def delete(self, table: str, segment_name: str) -> None:
        raise NotImplementedError

    def exists(self, table: str, segment_name: str) -> bool:
        raise NotImplementedError

    def list_segments(self, table: str) -> list[str]:
        raise NotImplementedError

    def size_bytes(self, table: str) -> int:
        """Total stored payload size for quota accounting (§3.3.5)."""
        raise NotImplementedError


class MemoryObjectStore(ObjectStore):
    """In-memory store; the default for simulations and tests."""

    def __init__(self) -> None:
        self._segments: dict[tuple[str, str], ImmutableSegment] = {}

    def put(self, table: str, segment: ImmutableSegment) -> None:
        self._segments[(table, segment.name)] = segment

    def get(self, table: str, segment_name: str) -> ImmutableSegment:
        try:
            return self._segments[(table, segment_name)]
        except KeyError:
            raise ClusterError(
                f"segment {segment_name!r} of table {table!r} not in "
                "object store"
            ) from None

    def delete(self, table: str, segment_name: str) -> None:
        self._segments.pop((table, segment_name), None)

    def exists(self, table: str, segment_name: str) -> bool:
        return (table, segment_name) in self._segments

    def list_segments(self, table: str) -> list[str]:
        return sorted(
            name for (t, name) in self._segments if t == table
        )

    def size_bytes(self, table: str) -> int:
        return sum(
            segment.estimated_size_bytes()
            for (t, __), segment in self._segments.items() if t == table
        )


class FileObjectStore(ObjectStore):
    """Directory-tree store using the real on-disk segment format."""

    def __init__(self, root: str | Path):
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)

    def _dir(self, table: str, segment_name: str) -> Path:
        return self._root / table / segment_name

    def put(self, table: str, segment: ImmutableSegment) -> None:
        write_segment(segment, self._dir(table, segment.name))

    def get(self, table: str, segment_name: str) -> ImmutableSegment:
        directory = self._dir(table, segment_name)
        if not directory.exists():
            raise ClusterError(
                f"segment {segment_name!r} of table {table!r} not in "
                "object store"
            )
        return load_segment(directory)

    def delete(self, table: str, segment_name: str) -> None:
        directory = self._dir(table, segment_name)
        if directory.exists():
            shutil.rmtree(directory)

    def exists(self, table: str, segment_name: str) -> bool:
        return self._dir(table, segment_name).exists()

    def list_segments(self, table: str) -> list[str]:
        table_dir = self._root / table
        if not table_dir.exists():
            return []
        return sorted(p.name for p in table_dir.iterdir() if p.is_dir())

    def size_bytes(self, table: str) -> int:
        table_dir = self._root / table
        if not table_dir.exists():
            return 0
        return sum(
            f.stat().st_size for f in table_dir.rglob("*") if f.is_file()
        )

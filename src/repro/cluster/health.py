"""Broker-side failure detection (the 0.4.0 Failure Detector).

Real Pinot added a broker module that takes failed servers out of
rotation instead of retrying/hedging around them forever; this is the
reproduction of that loop. Each broker keeps a per-server health score
fed by its own scatter outcomes:

* an **error EWMA** over sub-request outcomes (1.0 = failed, 0.0 = ok),
* a **latency EWMA** over successful sub-request service times,

and ejects a server from routing when either signal breaches policy —
the error EWMA crosses ``error_threshold``, or the server's latency
EWMA exceeds ``latency_multiplier`` x the median of its healthy peers
(and an absolute floor, so quiet clusters never eject on noise).

Ejected servers receive **only probe traffic**: at most one trickle
query per ``probe_interval_s`` (plus forced probes when an ejected
server is the last replica standing for some segment — correctness
beats hygiene). ``probe_successes_to_heal`` consecutive successful
probes return the server to rotation with a fresh score. Flap guards:
a minimum sample count before any ejection, consecutive-success
healing (a flaky server keeps failing probes and stays out), and a cap
on the fraction of the fleet that may be ejected at once (a broker
that thinks *everyone* is sick is itself the problem).

Everything takes an explicit ``now`` — the detector never reads a
clock, so it slots into the simulation's virtual timeline and the
loadsim's synthetic one alike (CI forbids wall-clock reads outside
``net/clock.py``).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

#: Dispatch-time observation fed back by the detector's owner.
EVENT_EJECTED = "ejected"
EVENT_HEALED = "healed"


@dataclass(frozen=True)
class HealthPolicy:
    """Tunables for the failure detector state machine."""

    #: EWMA smoothing factor for both signals (higher = reacts faster).
    ewma_alpha: float = 0.3
    #: Observations required before a server may be ejected — a single
    #: unlucky request must never eject.
    min_samples: int = 5
    #: Error-EWMA level that ejects (0.5 ~ "most recent requests fail").
    error_threshold: float = 0.5
    #: Latency-outlier ejection: server EWMA > multiplier x healthy-peer
    #: median, and above the absolute floor.
    latency_multiplier: float = 4.0
    latency_floor_s: float = 0.05
    #: Minimum spacing between probe dispatches to one ejected server.
    probe_interval_s: float = 1.0
    #: Consecutive successful probes required to return to rotation.
    probe_successes_to_heal: int = 3
    #: At most this fraction of known servers may be ejected at once.
    max_ejected_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if not 0.0 < self.error_threshold <= 1.0:
            raise ValueError("error_threshold must be in (0, 1]")
        if self.probe_successes_to_heal < 1:
            raise ValueError("probe_successes_to_heal must be >= 1")
        if not 0.0 < self.max_ejected_fraction <= 1.0:
            raise ValueError("max_ejected_fraction must be in (0, 1]")


@dataclass
class _ServerHealth:
    """Mutable per-server score and probe bookkeeping."""

    error_ewma: float = 0.0
    latency_ewma_s: float | None = None
    samples: int = 0
    ejected: bool = False
    ejected_at: float = 0.0
    eject_reason: str = ""
    last_probe_at: float | None = None
    probe_successes: int = 0


class FailureDetector:
    """Per-broker server health scores with eject / probe-back.

    The owner feeds it three things per sub-request: a dispatch-time
    :meth:`record_dispatch` (which audits the probe-only discipline),
    then exactly one of :meth:`observe_success` /
    :meth:`observe_failure` when the outcome is known. Observations on
    an ejected server *are* its probe results — three consecutive
    successes heal it; any failure re-arms the probe timer.
    """

    def __init__(self, policy: HealthPolicy | None = None):
        self.policy = policy if policy is not None else HealthPolicy()
        self._servers: dict[str, _ServerHealth] = {}
        self._ejected: set[str] = set()
        #: Monotone counters, mirrored into broker metrics by the owner.
        self.counters: dict[str, int] = {
            "ejections": 0,
            "heals": 0,
            "probes": 0,
            "probe_failures": 0,
            "forced_probes": 0,
            #: Non-probe dispatches to an ejected server — the
            #: "ejected servers receive only probe traffic" invariant
            #: holds iff this stays 0.
            "discipline_violations": 0,
        }
        #: (now, instance, EVENT_EJECTED/EVENT_HEALED) transition log.
        self.events: list[tuple[float, str, str]] = []

    # -- queries -----------------------------------------------------------

    def ejected_set(self) -> frozenset[str]:
        return frozenset(self._ejected)

    def is_ejected(self, instance: str) -> bool:
        return instance in self._ejected

    def score(self, instance: str) -> dict:
        """Introspection: the raw per-server signals."""
        state = self._servers.get(instance, _ServerHealth())
        return {
            "error_ewma": state.error_ewma,
            "latency_ewma_s": state.latency_ewma_s,
            "samples": state.samples,
            "ejected": state.ejected,
            "eject_reason": state.eject_reason,
            "probe_successes": state.probe_successes,
        }

    # -- probe gating ------------------------------------------------------

    def try_probe(self, instance: str, now: float,
                  force: bool = False) -> bool:
        """May a probe be dispatched to this (ejected) server now?

        Returns True and arms the cadence timer when the trickle budget
        allows (one probe per ``probe_interval_s``). ``force=True``
        bypasses the cadence — used when an ejected server is the only
        remaining replica for some segments, where refusing to probe
        would turn a merely-slow server into an unroutable answer.
        """
        state = self._servers.get(instance)
        if state is None or not state.ejected:
            return False
        if not force:
            if (state.last_probe_at is not None
                    and now - state.last_probe_at
                    < self.policy.probe_interval_s):
                return False
            self.counters["probes"] += 1
        else:
            self.counters["probes"] += 1
            self.counters["forced_probes"] += 1
        state.last_probe_at = now
        return True

    def record_dispatch(self, instance: str, now: float,
                        probe: bool = False) -> None:
        """Audit one dispatch: non-probe traffic to an ejected server
        is a discipline violation (the sim invariant reads this)."""
        if instance in self._ejected and not probe:
            self.counters["discipline_violations"] += 1

    # -- observations ------------------------------------------------------

    def observe_success(self, instance: str, latency_s: float,
                        now: float) -> str | None:
        """Feed one successful sub-request; returns a transition event
        (``EVENT_HEALED``/``EVENT_EJECTED``) when one fired."""
        state = self._state(instance)
        alpha = self.policy.ewma_alpha
        state.error_ewma *= (1.0 - alpha)
        state.latency_ewma_s = (
            latency_s if state.latency_ewma_s is None
            else alpha * latency_s + (1.0 - alpha) * state.latency_ewma_s
        )
        state.samples += 1
        if state.ejected:
            state.probe_successes += 1
            if state.probe_successes >= self.policy.probe_successes_to_heal:
                self._heal(instance, state, now)
                return EVENT_HEALED
            return None
        return self._maybe_eject(instance, state, now)

    def observe_failure(self, instance: str, now: float) -> str | None:
        """Feed one failed/timed-out sub-request."""
        state = self._state(instance)
        alpha = self.policy.ewma_alpha
        state.error_ewma = alpha + (1.0 - alpha) * state.error_ewma
        state.samples += 1
        if state.ejected:
            # A failed probe: start the consecutive count over and
            # re-arm the cadence timer from the failure, not the
            # dispatch, so a sick server is retried at full spacing.
            state.probe_successes = 0
            state.last_probe_at = now
            self.counters["probe_failures"] += 1
            return None
        return self._maybe_eject(instance, state, now)

    # -- internals ---------------------------------------------------------

    def _state(self, instance: str) -> _ServerHealth:
        if instance not in self._servers:
            self._servers[instance] = _ServerHealth()
        return self._servers[instance]

    def _maybe_eject(self, instance: str, state: _ServerHealth,
                     now: float) -> str | None:
        if state.samples < self.policy.min_samples:
            return None
        reason = None
        if state.error_ewma >= self.policy.error_threshold:
            reason = (f"error ewma {state.error_ewma:.2f} >= "
                      f"{self.policy.error_threshold}")
        else:
            outlier = self._latency_outlier(instance, state)
            if outlier is not None:
                reason = outlier
        if reason is None:
            return None
        # Fleet-fraction guard: a broker that would eject more than
        # max_ejected_fraction of the servers it knows is more likely
        # sick itself (or the network is) — keep routing.
        known = len(self._servers)
        if (len(self._ejected) + 1) > self.policy.max_ejected_fraction * known:
            return None
        state.ejected = True
        state.ejected_at = now
        state.eject_reason = reason
        state.probe_successes = 0
        state.last_probe_at = None  # first probe may go immediately
        self._ejected.add(instance)
        self.counters["ejections"] += 1
        self.events.append((now, instance, EVENT_EJECTED))
        return EVENT_EJECTED

    def _latency_outlier(self, instance: str,
                         state: _ServerHealth) -> str | None:
        mine = state.latency_ewma_s
        if mine is None or mine < self.policy.latency_floor_s:
            return None
        peers = [
            s.latency_ewma_s for name, s in self._servers.items()
            if name != instance and not s.ejected
            and s.latency_ewma_s is not None
            and s.samples >= self.policy.min_samples
        ]
        if not peers:
            return None
        median = statistics.median(peers)
        if mine > self.policy.latency_multiplier * max(median, 1e-9):
            return (f"latency ewma {mine * 1e3:.1f}ms > "
                    f"{self.policy.latency_multiplier}x peer median "
                    f"{median * 1e3:.1f}ms")
        return None

    def _heal(self, instance: str, state: _ServerHealth,
              now: float) -> None:
        # Fresh start: the pre-ejection score must not linger, or the
        # first post-heal hiccup would re-eject below min_samples.
        self._servers[instance] = _ServerHealth()
        self._ejected.discard(instance)
        self.counters["heals"] += 1
        self.events.append((now, instance, EVENT_HEALED))


class QueuePressure:
    """EWMA of observed server inbound-queue utilization, 0..1.

    The broker feeds it one sample per sub-request: the call's observed
    queue depth over the endpoint's capacity (1.0 when the queue
    rejected the request outright). Admission control reads
    :attr:`value` to decide when to start shedding low-priority
    tenants; the EWMA smooths per-call noise into a load signal.
    """

    def __init__(self, alpha: float = 0.2):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self._alpha = alpha
        self.value = 0.0
        self.samples = 0

    def observe(self, utilization: float) -> None:
        utilization = min(1.0, max(0.0, utilization))
        self.value = (self._alpha * utilization
                      + (1.0 - self._alpha) * self.value)
        self.samples += 1

"""Table configuration (§3.1-3.3).

Pinot tables come in two types — OFFLINE (segments pushed from Hadoop)
and REALTIME (segments consumed from Kafka) — and a *hybrid* table is
simply an offline and a realtime table sharing the same logical name
and time column; the broker rewrites queries across the time boundary
(§3.3.3). Physical table names carry the type suffix, e.g.
``events_OFFLINE`` / ``events_REALTIME``, as in production Pinot.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.common.schema import Schema
from repro.common.timeutils import TimeGranularity, TimeUnit
from repro.errors import ClusterError
from repro.segment.builder import SegmentConfig
from repro.upsert.config import UpsertConfig


class TableType(enum.Enum):
    OFFLINE = "OFFLINE"
    REALTIME = "REALTIME"


@dataclass
class StreamConfig:
    """Realtime consumption settings (§3.3.6)."""

    topic: str
    #: Flush (complete) a consuming segment after this many rows.
    flush_threshold_rows: int = 5000
    #: ... or after this many consumption ticks (simulated time), so
    #: segments on quiet partitions still complete (§3.3.6: "after a
    #: configurable number of records and after a configurable amount
    #: of time").
    flush_threshold_ticks: int | None = None
    #: Records consumed per poll per tick (consumption speed knob).
    records_per_poll: int = 500


@dataclass
class PartitionConfig:
    """Partitioned-table settings for partition-aware routing (§4.4)."""

    column: str
    num_partitions: int


@dataclass
class TableConfig:
    """Configuration for one physical (typed) table."""

    logical_name: str
    table_type: TableType
    schema: Schema
    replication: int = 1
    #: Retention window in time-column units; None keeps data forever.
    retention: int | None = None
    retention_granularity: TimeGranularity = field(
        default_factory=lambda: TimeGranularity(TimeUnit.DAYS)
    )
    #: Storage quota in bytes; uploads beyond it are rejected (§3.3.5).
    quota_bytes: int | None = None
    #: Segments whose max_time is older than this (time-column units)
    #: are tiered to remote-only: still queryable, but never held
    #: resident in server memory between queries (docs/STORAGE.md).
    #: None disables tiering.
    tier_to_remote_after: int | None = None
    segment_config: SegmentConfig = field(default_factory=SegmentConfig)
    #: "balanced" | "large_cluster" | "partition_aware"
    routing_strategy: str = "balanced"
    routing_options: dict[str, Any] = field(default_factory=dict)
    partition: PartitionConfig | None = None
    stream: StreamConfig | None = None
    tenant: str = "DefaultTenant"
    #: Primary-key upsert/dedup semantics (realtime tables only).
    upsert: UpsertConfig | None = None

    def __post_init__(self) -> None:
        if self.replication < 1:
            raise ClusterError("replication must be >= 1")
        if self.table_type is TableType.REALTIME and self.stream is None:
            raise ClusterError("realtime tables need a stream config")
        if self.table_type is TableType.OFFLINE and self.stream is not None:
            raise ClusterError("offline tables cannot have a stream config")
        if self.routing_strategy == "partition_aware" and self.partition is None:
            raise ClusterError(
                "partition_aware routing requires a partition config"
            )
        if self.partition is not None:
            spec = self.schema.field(self.partition.column)
            if spec.multi_value:
                raise ClusterError("partition column cannot be multi-value")
            # Segment builds must agree with the table's partitioning.
            self.segment_config.partition_column = self.partition.column
            self.segment_config.num_partitions = (
                self.partition.num_partitions
            )
        if self.upsert is not None:
            self._validate_upsert()

    def _validate_upsert(self) -> None:
        assert self.upsert is not None
        if self.table_type is not TableType.REALTIME:
            raise ClusterError("upsert/dedup requires a realtime table")
        columns = list(self.upsert.key_columns)
        if self.upsert.comparison_column is not None:
            columns.append(self.upsert.comparison_column)
        for column in columns:
            spec = self.schema.field(column)
            if spec.multi_value:
                raise ClusterError(
                    f"upsert column {column!r} cannot be multi-value"
                )
        # Valid-docId bitmaps address rows by docId, so the sealed
        # segment must preserve the mutable segment's insertion order:
        # no sort-on-seal, no star-tree pre-aggregation.
        if self.segment_config.sorted_column is not None:
            raise ClusterError(
                "upsert/dedup tables cannot use a sorted_column "
                "(seal would reorder docIds under the bitmaps)"
            )
        if self.segment_config.star_tree is not None:
            raise ClusterError(
                "upsert/dedup tables cannot use a star-tree index "
                "(pre-aggregation ignores valid-docId masks)"
            )
        if self.segment_config.timestamp_index:
            raise ClusterError(
                "upsert/dedup tables cannot use a timestamp index "
                "(rollups pre-aggregate rows the valid-docId mask hides)"
            )

    @property
    def name(self) -> str:
        """The physical table name, e.g. ``events_OFFLINE``."""
        return f"{self.logical_name}_{self.table_type.value}"

    @property
    def time_column(self) -> str | None:
        return self.schema.time_column

    # -- convenience constructors -------------------------------------------

    @classmethod
    def offline(cls, logical_name: str, schema: Schema,
                **kwargs: Any) -> "TableConfig":
        return cls(logical_name, TableType.OFFLINE, schema, **kwargs)

    @classmethod
    def realtime(cls, logical_name: str, schema: Schema,
                 stream: StreamConfig, **kwargs: Any) -> "TableConfig":
        return cls(logical_name, TableType.REALTIME, schema, stream=stream,
                   **kwargs)

    # -- serialization (for the source-controlled config story of §5.2) ------

    def to_dict(self) -> dict[str, Any]:
        return {
            "logical_name": self.logical_name,
            "table_type": self.table_type.value,
            "schema": self.schema.to_dict(),
            "replication": self.replication,
            "retention": self.retention,
            "retention_granularity": {
                "unit": self.retention_granularity.unit.name,
                "size": self.retention_granularity.size,
            },
            "quota_bytes": self.quota_bytes,
            "tier_to_remote_after": self.tier_to_remote_after,
            "routing_strategy": self.routing_strategy,
            "tenant": self.tenant,
            "sorted_column": self.segment_config.sorted_column,
            "inverted_columns": list(self.segment_config.inverted_columns),
            "bloom_columns": list(self.segment_config.bloom_columns),
            "timestamp_index": list(self.segment_config.timestamp_index),
            "partition": (
                {"column": self.partition.column,
                 "num_partitions": self.partition.num_partitions}
                if self.partition else None
            ),
            "stream": (
                {"topic": self.stream.topic,
                 "flush_threshold_rows": self.stream.flush_threshold_rows,
                 "flush_threshold_ticks": self.stream.flush_threshold_ticks,
                 "records_per_poll": self.stream.records_per_poll}
                if self.stream else None
            ),
            "upsert": self.upsert.to_dict() if self.upsert else None,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TableConfig":
        partition = None
        if payload.get("partition"):
            partition = PartitionConfig(**payload["partition"])
        stream = None
        if payload.get("stream"):
            stream = StreamConfig(**payload["stream"])
        # Older persisted configs predate the granularity field; they
        # were all written with the (DAYS, 1) default.
        granularity = payload.get("retention_granularity")
        retention_granularity = (
            TimeGranularity(TimeUnit[granularity["unit"]],
                            granularity["size"])
            if granularity else TimeGranularity(TimeUnit.DAYS)
        )
        return cls(
            logical_name=payload["logical_name"],
            table_type=TableType(payload["table_type"]),
            schema=Schema.from_dict(payload["schema"]),
            replication=payload.get("replication", 1),
            retention=payload.get("retention"),
            retention_granularity=retention_granularity,
            quota_bytes=payload.get("quota_bytes"),
            tier_to_remote_after=payload.get("tier_to_remote_after"),
            routing_strategy=payload.get("routing_strategy", "balanced"),
            tenant=payload.get("tenant", "DefaultTenant"),
            segment_config=SegmentConfig(
                sorted_column=payload.get("sorted_column"),
                inverted_columns=tuple(payload.get("inverted_columns", ())),
                bloom_columns=tuple(payload.get("bloom_columns", ())),
                timestamp_index=tuple(payload.get("timestamp_index", ())),
            ),
            partition=partition,
            stream=stream,
            upsert=(UpsertConfig.from_dict(payload["upsert"])
                    if payload.get("upsert") else None),
        )

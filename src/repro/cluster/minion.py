"""Minions: compute-intensive maintenance tasks (§3.2).

Minions execute tasks assigned by the controller's job scheduling
system. The flagship example from the paper is *data purging* for legal
compliance: since segment data is immutable, a purge downloads each
segment, expunges the unwanted records, rewrites and reindexes the
segment, and uploads it back, replacing the previous version.

The task framework is extensible (``register_task_type``); built in are:

* ``purge`` — delete records matching ``column IN values``;
* ``add_inverted_index`` — backfill an inverted index on a column
  (what LinkedIn's query-log mining schedules automatically, §5.2).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.cluster.controller import Controller
from repro.cluster.objectstore import ObjectStore
from repro.errors import ClusterError
from repro.segment.builder import SegmentBuilder
from repro.segment.segment import ImmutableSegment

TaskHandler = Callable[["MinionInstance", dict[str, Any]], None]


class MinionInstance:
    """One minion worker."""

    def __init__(self, instance_id: str, controller: Controller,
                 object_store: ObjectStore):
        self.instance_id = instance_id
        self._controller = controller
        self._store = object_store
        self._handlers: dict[str, TaskHandler] = {
            "purge": MinionInstance._run_purge,
            "add_inverted_index": MinionInstance._run_add_inverted_index,
            "merge_rollup": MinionInstance._run_merge_rollup,
        }
        self.tasks_completed = 0

    def register_task_type(self, task_type: str,
                           handler: TaskHandler) -> None:
        """Extend the task framework with a new job type (§3.2)."""
        self._handlers[task_type] = handler

    # -- execution loop ------------------------------------------------------

    def run_pending(self) -> int:
        """Claim and execute all pending tasks; returns how many ran."""
        ran = 0
        for task in self._controller.pending_tasks():
            task["status"] = "RUNNING"
            task["owner"] = self.instance_id
            self._controller.update_task(task)
            try:
                handler = self._handlers.get(task["type"])
                if handler is None:
                    raise ClusterError(
                        f"no handler for task type {task['type']!r}"
                    )
                handler(self, task)
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                task["status"] = "FAILED"
                task["error"] = str(exc)
            else:
                task["status"] = "COMPLETED"
                self.tasks_completed += 1
            self._controller.update_task(task)
            ran += 1
        return ran

    # -- built-in tasks ----------------------------------------------------------

    def _run_purge(self, task: dict[str, Any]) -> None:
        """Expunge records where ``column IN values`` from every segment."""
        table = task["table"]
        column = task["params"]["column"]
        values = set(task["params"]["values"])
        config = self._controller.table_config(table)
        for segment_name in self._controller.list_segments(table):
            segment = self._store.get(table, segment_name)
            kept = [
                record for record in segment.iter_records()
                if record[column] not in values
            ]
            if len(kept) == segment.num_docs:
                continue
            if not kept:
                self._controller.delete_segment(table, segment_name)
                continue
            rebuilt = self._rebuild(segment, config, kept)
            self._controller.replace_segment(table, rebuilt)

    def _run_add_inverted_index(self, task: dict[str, Any]) -> None:
        """Backfill a bitmap inverted index on one column."""
        table = task["table"]
        column = task["params"]["column"]
        for segment_name in self._controller.list_segments(table):
            segment = self._store.get(table, segment_name)
            if segment.column(column).inverted is not None:
                continue
            segment.ensure_inverted_index(column)
            self._controller.replace_segment(table, segment)

    def _run_merge_rollup(self, task: dict[str, Any]) -> None:
        """Merge small segments into larger ones, optionally rolling up
        rows with identical dimension values by summing their metrics
        (production Pinot's MergeRollupTask).

        Params: ``max_segments_per_merge`` (default: all), ``rollup``
        (default True).
        """
        table = task["table"]
        params = task["params"]
        batch = params.get("max_segments_per_merge")
        rollup = params.get("rollup", True)
        config = self._controller.table_config(table)

        segment_names = self._controller.list_segments(table)
        if len(segment_names) < 2:
            return
        batch = batch or len(segment_names)

        merged_index = 0
        for start in range(0, len(segment_names), batch):
            group = segment_names[start:start + batch]
            if len(group) < 2:
                continue
            records: list[dict[str, Any]] = []
            for name in group:
                records.extend(
                    self._store.get(table, name).iter_records()
                )
            if rollup:
                records = self._rollup(config.schema, records)
            builder = SegmentBuilder(
                f"{table}_merged_{task['id']}_{merged_index:04d}",
                table, config.schema, config.segment_config,
            )
            builder.add_all(records)
            self._controller.upload_segment(table, builder.build())
            for name in group:
                self._controller.delete_segment(table, name)
            merged_index += 1

    @staticmethod
    def _rollup(schema, records: list[dict[str, Any]]) -> list[dict[str, Any]]:
        """Collapse rows with identical dimension+time values, summing
        metric columns."""
        metric_names = list(schema.metric_names)
        key_names = [
            spec.name for spec in schema if not spec.is_metric
        ]
        buckets: dict[tuple, dict[str, Any]] = {}
        for record in records:
            key = tuple(
                tuple(record[name]) if isinstance(record[name], list)
                else record[name]
                for name in key_names
            )
            existing = buckets.get(key)
            if existing is None:
                buckets[key] = dict(record)
            else:
                for name in metric_names:
                    existing[name] += record[name]
        return list(buckets.values())

    def _rebuild(self, segment: ImmutableSegment, config,
                 records: list[dict[str, Any]]) -> ImmutableSegment:
        builder = SegmentBuilder(
            segment.name, segment.table_name, config.schema,
            config.segment_config,
        )
        builder.add_all(records)
        return builder.build()

"""Source-controlled table configuration sync (§5.2).

"Currently, our solution is to store table configurations in source
control and synchronize them with Pinot on an ongoing basis through
Pinot's REST API. This allows us to have an audit trail of changes and
leverage search, validation, and code review tooling."

This module implements that loop against a directory of JSON files
(standing in for the source-control checkout): export the live configs
to files, and sync files back into the cluster — creating missing
tables, applying changed configs, and (optionally) deleting tables
whose files were removed. Every sync returns a change report, the
audit trail.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.cluster.controller import Controller
from repro.cluster.table import TableConfig
from repro.errors import ClusterError


@dataclass
class SyncReport:
    """What a sync run changed."""

    created: list[str] = field(default_factory=list)
    updated: list[str] = field(default_factory=list)
    deleted: list[str] = field(default_factory=list)
    unchanged: list[str] = field(default_factory=list)
    errors: dict[str, str] = field(default_factory=dict)

    @property
    def changed(self) -> bool:
        return bool(self.created or self.updated or self.deleted)


def export_configs(controller: Controller, directory: str | Path) -> int:
    """Write every table's config as ``<table>.json``; returns count."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    count = 0
    for table in controller.list_tables():
        config = controller.table_config(table)
        (path / f"{table}.json").write_text(
            json.dumps(config.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        count += 1
    return count


def sync_configs(controller: Controller, directory: str | Path,
                 delete_missing: bool = False) -> SyncReport:
    """Apply the directory's configs to the cluster.

    * a file without a live table creates the table;
    * a file differing from the live config updates it (config only —
      existing segments are untouched; new settings apply to future
      segment builds, like the paper's on-the-fly changes);
    * with ``delete_missing``, live tables without a file are dropped.
    """
    path = Path(directory)
    report = SyncReport()
    desired: dict[str, TableConfig] = {}
    for file in sorted(path.glob("*.json")):
        try:
            payload = json.loads(file.read_text())
            config = TableConfig.from_dict(payload)
        except (json.JSONDecodeError, KeyError, TypeError,
                ClusterError) as exc:
            report.errors[file.name] = str(exc)
            continue
        if config.name != file.stem:
            report.errors[file.name] = (
                f"file name does not match table name {config.name!r}"
            )
            continue
        desired[config.name] = config

    live = set(controller.list_tables())
    for name, config in desired.items():
        if name not in live:
            controller.create_table(config)
            report.created.append(name)
            continue
        current = controller.table_config(name).to_dict()
        if current == config.to_dict():
            report.unchanged.append(name)
            continue
        controller._helix.set_property(  # noqa: SLF001 - config write
            f"tableconfigs/{name}", config.to_dict()
        )
        report.updated.append(name)

    if delete_missing:
        for name in sorted(live - set(desired)):
            controller.delete_table(name)
            report.deleted.append(name)
    return report

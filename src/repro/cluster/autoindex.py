"""Automatic inverted-index addition from query-log mining (§5.2).

"We also parse the query logs and execution statistics on an ongoing
basis in order to automatically add inverted indexes on columns where
they would prove beneficial." This module implements that self-service
loop: brokers record each query's filter columns and scan footprint,
the analyzer aggregates them, picks columns that are (a) filtered
often, (b) paying for scans, and (c) not already indexed or sorted,
and schedules ``add_inverted_index`` minion tasks — also updating the
table config so future segment builds index the column up front.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.cluster.broker import BrokerInstance
from repro.cluster.controller import Controller
from repro.errors import ClusterError
from repro.obs.metrics import runtime_metrics


@dataclass
class IndexRecommendation:
    """One column the analyzer wants indexed, with its evidence."""

    table: str
    column: str
    queries_filtering: int
    entries_scanned: int
    reasons: list[str] = field(default_factory=list)


class AutoIndexAnalyzer:
    """Mines broker query logs and schedules index-backfill tasks."""

    def __init__(self, controller: Controller,
                 min_queries: int = 20,
                 min_entries_scanned: int = 10_000):
        self._controller = controller
        self.min_queries = min_queries
        self.min_entries_scanned = min_entries_scanned

    def recommend(
        self, brokers: Iterable[BrokerInstance]
    ) -> list[IndexRecommendation]:
        """Aggregate query logs into per-column recommendations."""
        usage: dict[tuple[str, str], IndexRecommendation] = {}
        for broker in brokers:
            for entry in broker.query_log:
                for column in entry.filter_columns:
                    key = (entry.table, column)
                    rec = usage.get(key)
                    if rec is None:
                        rec = IndexRecommendation(entry.table, column, 0, 0)
                        usage[key] = rec
                    rec.queries_filtering += 1
                    rec.entries_scanned += entry.entries_scanned_in_filter

        out = []
        for rec in usage.values():
            if rec.queries_filtering < self.min_queries:
                continue
            if rec.entries_scanned < self.min_entries_scanned:
                continue
            if not self._is_candidate(rec):
                continue
            rec.reasons.append(
                f"filtered by {rec.queries_filtering} queries scanning "
                f"{rec.entries_scanned} entries"
            )
            out.append(rec)
        out.sort(key=lambda r: -r.entries_scanned)
        return out

    def _is_candidate(self, rec: IndexRecommendation) -> bool:
        try:
            config = self._controller.table_config(rec.table)
        except ClusterError:
            # The table was dropped between the query log and this
            # analysis pass — expected during retention; anything else
            # (a genuine bug in config decoding) must propagate.
            runtime_metrics.incr("autoindex_missing_table")
            return False
        if rec.column not in config.schema:
            return False
        segment_config = config.segment_config
        if rec.column == segment_config.sorted_column:
            return False  # already better than an inverted index
        if rec.column in segment_config.inverted_columns:
            return False
        return True

    def apply(self, brokers: Iterable[BrokerInstance]) -> list[str]:
        """Schedule backfill tasks for every recommendation; returns the
        task ids. Also updates the table configs so future segments are
        built with the index."""
        task_ids = []
        for rec in self.recommend(brokers):
            config = self._controller.table_config(rec.table)
            config.segment_config.inverted_columns = (
                *config.segment_config.inverted_columns, rec.column
            )
            self._controller._helix.set_property(  # noqa: SLF001
                f"tableconfigs/{rec.table}", config.to_dict()
            )
            task_ids.append(self._controller.schedule_task(
                "add_inverted_index", rec.table, {"column": rec.column}
            ))
        return task_ids

"""Multitenancy via per-tenant token buckets (§4.5).

LinkedIn colocates >50 tenants on shared hardware. To prevent one
tenant from starving the others, each tenant has a token bucket: every
query deducts tokens proportional to its execution time; an empty
bucket enqueues (or, here, rejects with a retry-after) further queries
until the bucket refills. The bucket refills slowly over time, so short
bursts pass but sustained abuse is throttled.

Adaptive admission (the failure-detector follow-up): each tenant also
carries a ``priority`` in [0, 1]. When the broker observes server
inbound queues building (a :class:`repro.cluster.health.QueuePressure`
signal in [0, 1]), :meth:`TenantQuotaManager.admit` starts shedding
the lowest-priority tenants first — pressure at ``shed_start`` sheds
nobody, pressure 1.0 sheds everyone below priority 1.0. Shedding is
upstream of the token bucket: a shed query is rejected without
consuming tokens, so the tenant's burst budget survives the overload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ThrottledError


@dataclass
class TokenBucket:
    """A classic token bucket over an externally supplied clock.

    Time is injected (``now`` arguments) so the simulation's virtual
    clock — not the wall clock — drives refill, keeping tests
    deterministic.
    """

    capacity: float
    refill_rate: float  # tokens per second
    tokens: float | None = None
    last_refill: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity <= 0 or self.refill_rate <= 0:
            raise ValueError("capacity and refill_rate must be positive")
        if self.tokens is None:
            self.tokens = self.capacity

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.last_refill)
        self.tokens = min(self.capacity,
                          self.tokens + elapsed * self.refill_rate)
        self.last_refill = now

    def try_consume(self, amount: float, now: float) -> bool:
        """Take ``amount`` tokens; False when insufficient.

        The bucket may go negative through :meth:`consume_debt` (queries
        are charged by *actual* execution time, known only afterwards),
        in which case new queries are refused until it recovers.
        """
        self._refill(now)
        if self.tokens < amount:
            return False
        self.tokens -= amount
        return True

    def consume_debt(self, amount: float, now: float) -> None:
        """Charge actual cost after execution; may push tokens negative."""
        self._refill(now)
        self.tokens -= amount

    def seconds_until(self, amount: float, now: float) -> float:
        """Virtual seconds until ``amount`` tokens will be available.

        The advertised wait is an *underestimate-free* bound for any
        ``amount <= capacity``: a retry at exactly
        ``now + seconds_until(...)`` is guaranteed to find the tokens
        there (absent further consumption). The naive
        ``deficit / refill_rate`` can round **down** in floating point,
        and the caller's own arithmetic rounds again — the retry
        arrives at ``now + wait`` and the refill sees
        ``(now + wait) - now`` elapsed seconds, which can land short of
        ``wait`` itself — so the quotient is nudged up until a replay
        of exactly that arithmetic clears the bar. Stepping by the
        larger of the two ulps keeps the loop to a handful of
        iterations even when ``now`` dwarfs ``wait``.
        """
        self._refill(now)
        deficit = amount - self.tokens
        if deficit <= 0:
            return 0.0
        wait = deficit / self.refill_rate
        while (self.tokens + ((now + wait) - now) * self.refill_rate
               < amount):
            wait += max(math.ulp(wait), math.ulp(now))
        return wait


@dataclass(frozen=True)
class TenantClass:
    """One tenant's quota configuration."""

    capacity: float
    refill_rate: float
    #: Shedding priority in [0, 1]: higher survives overload longer.
    priority: float = 0.5


class TenantQuotaManager:
    """Admission control for queries, one bucket per tenant.

    ``shed_start`` is the queue-pressure level where load shedding
    begins; between ``shed_start`` and 1.0 the shed bar rises linearly
    from priority 0 to priority 1, so the lowest-priority tenants are
    rejected first and the highest-priority tenants are only refused
    when the cluster is fully saturated.
    """

    def __init__(self, default_capacity: float = 100.0,
                 default_refill_rate: float = 50.0,
                 default_priority: float = 0.5,
                 shed_start: float = 0.5):
        if not 0.0 <= shed_start < 1.0:
            raise ValueError("shed_start must be in [0, 1)")
        self._buckets: dict[str, TokenBucket] = {}
        self._priorities: dict[str, float] = {}
        self._default_capacity = default_capacity
        self._default_refill_rate = default_refill_rate
        self._default_priority = default_priority
        self.shed_start = shed_start
        #: Monotone counters: admitted / throttled / shed per tenant.
        self.shed_counts: dict[str, int] = {}

    def configure(self, tenant: str, capacity: float,
                  refill_rate: float, priority: float | None = None) -> None:
        self._buckets[tenant] = TokenBucket(capacity, refill_rate)
        if priority is not None:
            if not 0.0 <= priority <= 1.0:
                raise ValueError("priority must be in [0, 1]")
            self._priorities[tenant] = priority

    def bucket(self, tenant: str) -> TokenBucket:
        if tenant not in self._buckets:
            self._buckets[tenant] = TokenBucket(
                self._default_capacity, self._default_refill_rate
            )
        return self._buckets[tenant]

    def priority(self, tenant: str) -> float:
        return self._priorities.get(tenant, self._default_priority)

    def shed_bar(self, pressure: float) -> float:
        """The priority below which tenants are shed at ``pressure``."""
        if pressure <= self.shed_start:
            return 0.0
        span = 1.0 - self.shed_start
        return min(1.0, (pressure - self.shed_start) / span)

    def admit(self, tenant: str, now: float,
              admission_cost: float = 1.0,
              pressure: float = 0.0) -> None:
        """Gate a query; raises :class:`ThrottledError` when refused.

        Two independent gates: queue-pressure shedding (overload — the
        caller should back off for roughly a refill period) and the
        tenant's own token bucket (quota exhaustion with an exact
        retry-after).
        """
        bucket = self.bucket(tenant)
        bar = self.shed_bar(pressure)
        if bar > 0.0 and self.priority(tenant) < bar:
            self.shed_counts[tenant] = self.shed_counts.get(tenant, 0) + 1
            raise ThrottledError(
                tenant, bucket.seconds_until(admission_cost, now),
                reason="overload",
            )
        if not bucket.try_consume(admission_cost, now):
            raise ThrottledError(
                tenant, bucket.seconds_until(admission_cost, now)
            )

    def charge(self, tenant: str, execution_seconds: float, now: float,
               tokens_per_second: float = 10.0) -> None:
        """Deduct tokens proportional to query execution time (§4.5)."""
        self.bucket(tenant).consume_debt(
            execution_seconds * tokens_per_second, now
        )

"""Multitenancy via per-tenant token buckets (§4.5).

LinkedIn colocates >50 tenants on shared hardware. To prevent one
tenant from starving the others, each tenant has a token bucket: every
query deducts tokens proportional to its execution time; an empty
bucket enqueues (or, here, rejects with a retry-after) further queries
until the bucket refills. The bucket refills slowly over time, so short
bursts pass but sustained abuse is throttled.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ThrottledError


@dataclass
class TokenBucket:
    """A classic token bucket over an externally supplied clock.

    Time is injected (``now`` arguments) so the simulation's virtual
    clock — not the wall clock — drives refill, keeping tests
    deterministic.
    """

    capacity: float
    refill_rate: float  # tokens per second
    tokens: float | None = None
    last_refill: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity <= 0 or self.refill_rate <= 0:
            raise ValueError("capacity and refill_rate must be positive")
        if self.tokens is None:
            self.tokens = self.capacity

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.last_refill)
        self.tokens = min(self.capacity,
                          self.tokens + elapsed * self.refill_rate)
        self.last_refill = now

    def try_consume(self, amount: float, now: float) -> bool:
        """Take ``amount`` tokens; False when insufficient.

        The bucket may go negative through :meth:`consume_debt` (queries
        are charged by *actual* execution time, known only afterwards),
        in which case new queries are refused until it recovers.
        """
        self._refill(now)
        if self.tokens < amount:
            return False
        self.tokens -= amount
        return True

    def consume_debt(self, amount: float, now: float) -> None:
        """Charge actual cost after execution; may push tokens negative."""
        self._refill(now)
        self.tokens -= amount

    def seconds_until(self, amount: float, now: float) -> float:
        """Virtual seconds until ``amount`` tokens will be available."""
        self._refill(now)
        deficit = amount - self.tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.refill_rate


class TenantQuotaManager:
    """Admission control for queries, one bucket per tenant."""

    def __init__(self, default_capacity: float = 100.0,
                 default_refill_rate: float = 50.0):
        self._buckets: dict[str, TokenBucket] = {}
        self._default_capacity = default_capacity
        self._default_refill_rate = default_refill_rate

    def configure(self, tenant: str, capacity: float,
                  refill_rate: float) -> None:
        self._buckets[tenant] = TokenBucket(capacity, refill_rate)

    def bucket(self, tenant: str) -> TokenBucket:
        if tenant not in self._buckets:
            self._buckets[tenant] = TokenBucket(
                self._default_capacity, self._default_refill_rate
            )
        return self._buckets[tenant]

    def admit(self, tenant: str, now: float,
              admission_cost: float = 1.0) -> None:
        """Gate a query; raises :class:`ThrottledError` when exhausted."""
        bucket = self.bucket(tenant)
        if not bucket.try_consume(admission_cost, now):
            raise ThrottledError(
                tenant, bucket.seconds_until(admission_cost, now)
            )

    def charge(self, tenant: str, execution_seconds: float, now: float,
               tokens_per_second: float = 10.0) -> None:
        """Deduct tokens proportional to query execution time (§4.5)."""
        self.bucket(tenant).consume_debt(
            execution_seconds * tokens_per_second, now
        )

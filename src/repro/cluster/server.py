"""Pinot servers (§3.2): segment hosting, state transitions, realtime
consumption, and per-server query execution.

Servers are Helix participants. They execute the segment state machine
(Fig 3): fetching segments from the object store on OFFLINE→ONLINE
(Fig 4), creating Kafka consumers on OFFLINE→CONSUMING, and promoting or
replacing local data on CONSUMING→ONLINE according to the completion
protocol's verdict. Local storage is a cache — a blank server can
always rebuild itself from the object store and Kafka (§3.4).
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.cache.hot import HotStructureCache
from repro.cache.pruner import prune_reason
from repro.cluster.completion import Instruction
from repro.cluster.metrics import ServerMetrics
from repro.cluster.objectstore import ObjectStore
from repro.cluster.table import TableConfig
from repro.engine.executor import execute_segment, prune_result
from repro.engine.merge import combine_segment_results
from repro.engine.results import SegmentResult, ServerResult
from repro.errors import ClusterError, PinotError
from repro.faults import FaultInjector, run_with_faults
from repro.helix.manager import HelixManager
from repro.helix.statemachine import SegmentState
from repro.kafka.broker import KafkaConsumer, SimKafka
from repro.obs import propagation
from repro.obs.trace import STATUS_ERROR, STATUS_OK
from repro.pql.ast_nodes import Query
from repro.segment.mutable import MutableSegment
from repro.segment.segment import ImmutableSegment
from repro.store import DEEPSTORE_ADDRESS, SegmentCache
from repro.upsert.index import TableUpsertManager

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.controller import Controller


@dataclass
class _ConsumingSegment:
    """One replica of a realtime segment in the CONSUMING state."""

    table: str
    name: str
    partition: int
    mutable: MutableSegment
    consumer: KafkaConsumer
    config: TableConfig
    ticks: int = 0
    reached_end_criteria: bool = False
    sealed: ImmutableSegment | None = None
    sealed_offset: int | None = None

    @property
    def offset(self) -> int:
        return self.consumer.position


class ServerInstance:
    """One Pinot server."""

    def __init__(self, instance_id: str, helix: HelixManager,
                 object_store: ObjectStore, kafka: SimKafka | None = None,
                 controller_resolver: Callable[[], "Controller"] | None = None,
                 default_vectorized: bool = True,
                 store_budget_bytes: int | None = None,
                 store_policy: str = "lru"):
        self.instance_id = instance_id
        #: Engine default for queries that carry no
        #: ``OPTION(vectorized=...)``: batch kernels (True) or the
        #: row-at-a-time scalar oracle (False) — docs/ENGINE.md.
        self.default_vectorized = default_vectorized
        self._helix = helix
        self._store = object_store
        self._kafka = kafka
        self._controller_resolver = controller_resolver
        #: (table, segment) -> consuming replica state.
        self._consuming: dict[tuple[str, str], _ConsumingSegment] = {}
        #: Fault-injection hooks (crash / error / slow / flaky), seeded
        #: per-instance so fault schedules are deterministic.
        self.faults = FaultInjector(seed=zlib.crc32(instance_id.encode()))
        self.queries_executed = 0
        #: Per-server counters (segments_pruned, segments_scanned,
        #: hot_hits, hot_misses, store_*).
        self.metrics = ServerMetrics()
        #: Hosted committed segments: sized refs over the deep store,
        #: loaded lazily and evicted under the byte budget
        #: (repro.store, docs/STORAGE.md). ``None`` budget keeps every
        #: hosted segment resident — the pre-tiering behavior.
        self.segment_cache = SegmentCache(
            budget_bytes=store_budget_bytes,
            policy=store_policy,
            on_evict=self._on_store_evict,
            metrics=self.metrics,
        )
        #: LRU of decoded column structures for the hottest columns
        #: (layer 3 of the cache subsystem, repro.cache).
        self.hot_cache = HotStructureCache()
        #: table -> primary-key upsert/dedup index (repro.upsert);
        #: created lazily from the table config on first contact.
        self._upsert: dict[str, TableUpsertManager] = {}
        #: Tables known to have no upsert config (lookup cache — a
        #: table's upsert setting is immutable once created).
        self._no_upsert: set[str] = set()

    # -- introspection ------------------------------------------------------

    def hosted_segments(self, table: str) -> list[str]:
        online = self.segment_cache.names(table)
        consuming = [s for (t, s) in self._consuming if t == table]
        return sorted(online + consuming)

    def num_docs(self, table: str) -> int:
        # Doc counts come from the sized refs, so the answer is exact
        # whether or not the segments are resident.
        total = self.segment_cache.num_docs(table)
        total += sum(
            consuming.mutable.num_docs
            for (t, __), consuming in self._consuming.items() if t == table
        )
        return total

    def segment(self, table: str, name: str) -> ImmutableSegment:
        """The hosted segment's loaded form (cold-loading if needed)."""
        if (table, name) not in self.segment_cache:
            raise ClusterError(
                f"server {self.instance_id!r} does not host "
                f"{table}/{name}"
            )
        loaded = self.segment_cache.pin(table, name, self._fetch_segment)
        self.segment_cache.unpin(table, name)
        return loaded

    def stream_progress(self) -> int:
        """Total stream offset consumed across this server's consuming
        segments — a progress signal that advances even when every
        polled row is dropped (dedup), unlike stored doc counts."""
        return sum(consuming.offset
                   for consuming in self._consuming.values())

    def consuming_offset(self, table: str, segment: str) -> int | None:
        """The stream offset this replica has consumed up to, or None
        when unknown (not consuming here, or the server is down).
        Brokers fingerprint these offsets into result-cache keys; an
        unknown offset makes the broker bypass caching entirely."""
        if self.faults.crashed:
            return None
        consuming = self._consuming.get((table, segment))
        return consuming.offset if consuming is not None else None

    # -- Helix participant interface ----------------------------------------

    def process_transition(self, resource: str, segment: str,
                           from_state: SegmentState,
                           to_state: SegmentState) -> None:
        key = (resource, segment)
        if to_state is SegmentState.ONLINE:
            if from_state is SegmentState.CONSUMING:
                self._promote_consuming(resource, segment)
            else:
                self._load_from_store(resource, segment)
        elif to_state is SegmentState.CONSUMING:
            self._start_consuming(resource, segment)
        elif to_state in (SegmentState.OFFLINE, SegmentState.DROPPED):
            self.segment_cache.drop(resource, segment)
            self._consuming.pop(key, None)
            self.hot_cache.invalidate_segment(resource, segment)
            self._on_segment_removed(resource)
        else:
            raise ClusterError(f"unsupported target state {to_state}")

    def _on_store_evict(self, table: str, segment: str) -> None:
        """A resident segment was evicted under memory pressure (or
        tiered off): no derived structure may outlive its backing
        segment, so the hot-structure cache drops the segment's decoded
        columns and the eviction is published on the invalidation bus
        (broker result-cache keys for the table rotate)."""
        self.hot_cache.invalidate_segment(table, segment)
        self._helix.invalidation_bus.publish(table, "segment_evicted",
                                             segment=segment)

    def _on_segment_removed(self, table: str) -> None:
        # Un-applying one segment's rows from a PK index is not possible
        # (a removed winner must resurrect the runner-up, which the
        # winner map no longer knows) — rebuild from what remains.
        if table in self._upsert:
            self._rebuild_upsert_index(table)

    def _load_from_store(self, table: str, segment: str) -> None:
        """OFFLINE -> ONLINE: start hosting a committed segment.

        Plain tables with published routing metadata register a lazy
        sized ref — the payload stays in the deep store until the first
        query pins it (tiered storage). Upsert/dedup tables and
        segments without metadata load eagerly: the PK index needs the
        rows now, and an unsized ref cannot be budget-accounted."""
        manager = self.upsert_manager(table)
        ref = self._segment_ref(table, segment)
        if manager is None and ref is not None:
            size_bytes, num_docs = ref
            self.segment_cache.register(table, segment,
                                        size_bytes=size_bytes,
                                        num_docs=num_docs)
            return
        loaded = self._fetch_segment(table, segment)
        self.segment_cache.register(
            table, segment, size_bytes=loaded.estimated_size_bytes(),
            num_docs=loaded.num_docs, segment=loaded,
        )
        if manager is None:
            return
        if manager.bitmap_length(segment) > loaded.num_docs:
            # Local consumption ran past the authoritative copy before a
            # DISCARD verdict: the index attributes rows to docIds this
            # segment does not contain. Replay everything hosted.
            self._rebuild_upsert_index(table)
            return
        if manager.apply_segment(loaded):
            self._publish_upsert_state(table, segment)

    def _segment_ref(self, table: str, segment: str) -> tuple[int, int] | None:
        """(size_bytes, num_docs) from published segment metadata, or
        None when the controller never published any (bare unit-test
        setups, pre-commit realtime segments)."""
        meta = (self._helix.get_property(f"segments/{table}/{segment}")
                or self._helix.get_property(f"realtime/{table}/{segment}"))
        if not meta:
            return None
        size_bytes = meta.get("size_bytes")
        num_docs = meta.get("num_docs")
        if size_bytes is None or num_docs is None:
            return None
        return int(size_bytes), int(num_docs)

    def _fetch_segment(self, table: str, segment: str) -> ImmutableSegment:
        """Download one segment from the deep store.

        When the cluster transport exposes a ``deepstore`` endpoint the
        download is a real nested RPC: link latency/bandwidth/drop
        models apply on the virtual timeline and the fetch extends the
        enclosing handler's service time (a cold replica is visibly
        slow to the broker — exactly what hedging exists for). The call
        is traced as a ``segment_load`` span when a sampled trace
        context is active. Bare setups without the endpoint read the
        object store directly."""
        transport = self._helix.transport
        if transport.endpoint(DEEPSTORE_ADDRESS) is None:
            loaded = self._store.get(table, segment)
            self._reconcile_schema(table, loaded)
            return loaded
        recorder = propagation.current()
        span = (recorder.start("segment_load", segment=segment)
                if recorder is not None else None)
        result = transport.subcall(self.instance_id, DEEPSTORE_ADDRESS,
                                   "fetch", table, segment)
        self.metrics.incr("store_cold_fetches")
        self.metrics.record_stage("segment_load",
                                  result.duration_s * 1000.0)
        if span is not None and recorder is not None:
            if result.error is not None:
                span.attributes["error"] = str(result.error)
            recorder.end(span,
                         STATUS_OK if result.error is None else STATUS_ERROR)
            # Place the span on the fetch's virtual interval: the RPC's
            # modelled latencies, not the negligible real time spent
            # issuing it.
            span.start_s = result.departed
            span.end_s = result.completed
        loaded = result.unwrap()
        if span is not None:
            span.attributes["bytes"] = loaded.estimated_size_bytes()
        self._reconcile_schema(table, loaded)
        return loaded

    def _reconcile_schema(self, table: str, segment: ImmutableSegment) -> None:
        """Re-apply schema evolution to a freshly downloaded segment:
        columns added after the segment was built (§5.2) exist only as
        virtual columns on loaded copies, so a cold reload must recreate
        them or queries on the new column would fail after an evict."""
        payload = self._helix.get_property(f"tableconfigs/{table}")
        if payload is None:
            return
        schema = TableConfig.from_dict(payload).schema
        for name in schema.column_names:
            if not segment.has_column(name):
                self._add_virtual_column(segment, schema.field(name))

    def _promote_consuming(self, table: str, segment: str) -> None:
        """CONSUMING → ONLINE: keep local sealed data when it matches the
        committed copy (KEEP/COMMIT), otherwise download (DISCARD)."""
        key = (table, segment)
        consuming = self._consuming.pop(key, None)
        committed_offset = self._helix.get_property(
            f"realtime/{table}/{segment}", {}
        ).get("end_offset")
        if (
            consuming is not None
            and consuming.sealed is not None
            and consuming.sealed_offset == committed_offset
        ):
            # Seal handoff: local rows == authoritative rows, and seal
            # preserves docId order, so the upsert bitmaps keyed by this
            # segment name stay valid verbatim — the atomic handoff.
            self.segment_cache.register(
                table, segment,
                size_bytes=consuming.sealed.estimated_size_bytes(),
                num_docs=consuming.sealed.num_docs,
                segment=consuming.sealed,
            )
            return
        overran = (
            consuming is not None
            and committed_offset is not None
            and consuming.offset > committed_offset
        )
        self._load_from_store(table, segment)
        if overran:
            # DISCARD after consuming past the committed end: the PK
            # index saw rows the authoritative copy does not contain
            # (they re-arrive in the next sequence). Replay from storage.
            self._rebuild_upsert_index(table)

    def _start_consuming(self, table: str, segment: str) -> None:
        if self._kafka is None:
            raise ClusterError(
                f"server {self.instance_id!r} has no Kafka connection"
            )
        meta = self._helix.get_property(f"realtime/{table}/{segment}")
        if meta is None:
            raise ClusterError(
                f"no realtime metadata for {table}/{segment}"
            )
        config = self._table_config(table)
        assert config.stream is not None
        partition = meta["partition"]
        start_offset = meta["start_offset"]
        consumer = KafkaConsumer(self._kafka, config.stream.topic,
                                 partition, start_offset)
        mutable = MutableSegment(segment, table, config.schema,
                                 config.segment_config)
        mutable.start_offset = start_offset
        previous = self._consuming.get((table, segment))
        self._consuming[(table, segment)] = _ConsumingSegment(
            table=table, name=segment, partition=partition,
            mutable=mutable, consumer=consumer, config=config,
        )
        manager = self.upsert_manager(table)
        if manager is not None and (previous is not None
                                    or manager.tracks(segment)):
            # Re-seated on a segment a prior incarnation already fed
            # into the PK index: drop that stale state and replay.
            self._rebuild_upsert_index(table)

    def _table_config(self, table: str) -> TableConfig:
        payload = self._helix.get_property(f"tableconfigs/{table}")
        if payload is None:
            raise ClusterError(f"no table config for {table!r}")
        return TableConfig.from_dict(payload)

    # -- upsert/dedup index lifecycle ----------------------------------------

    def upsert_manager(self, table: str) -> TableUpsertManager | None:
        """This server's PK index for ``table``, or None for plain
        tables (and tables whose config is not registered, e.g. bare
        unit-test setups)."""
        manager = self._upsert.get(table)
        if manager is not None:
            return manager
        if table in self._no_upsert:
            return None
        payload = self._helix.get_property(f"tableconfigs/{table}")
        upsert = None
        if payload is not None:
            upsert = TableConfig.from_dict(payload).upsert
        if upsert is None:
            self._no_upsert.add(table)
            return None
        manager = TableUpsertManager(table, upsert, metrics=self.metrics)

        def sum_keys_gauge() -> None:
            # One gauge per server: sum over every upsert table hosted
            # here, so two managers sharing the metrics object don't
            # clobber each other's value.
            self.metrics.gauge(
                "upsert_keys_tracked",
                sum(m.keys_tracked for m in self._upsert.values()),
            )

        manager.gauge_hook = sum_keys_gauge
        self._upsert[table] = manager
        return manager

    def _rebuild_upsert_index(self, table: str) -> None:
        """Rebuild the PK index from everything this server hosts —
        restart/failover/rebalance recovery. Pure replay of stored rows,
        so every replica's rebuild converges to the same state."""
        manager = self._upsert.get(table)
        if manager is None:
            return
        # Pin everything hosted for the replay (cold segments load);
        # the list keeps the references alive past the unpins.
        names = self.segment_cache.names(table)
        segments = [self.segment_cache.pin(table, name, self._fetch_segment)
                    for name in names]
        try:
            consuming = [
                (c.name, c.mutable.records())
                for (t, __), c in self._consuming.items() if t == table
            ]
            manager.rebuild(segments, consuming)
        finally:
            for name in names:
                self.segment_cache.unpin(table, name)
        self._publish_upsert_state(table, None)

    def _publish_upsert_state(self, table: str,
                              segment: str | None) -> None:
        """Bump the table's upsert-state epoch on the invalidation bus:
        a valid-docId bitmap over already-committed data changed, so
        broker result-cache entries for this table must never be served
        again."""
        self.metrics.incr("upsert_invalidations")
        self._helix.invalidation_bus.publish(table, "upsert_state",
                                             segment=segment)

    # -- realtime consumption loop --------------------------------------------

    def consume_tick(self) -> None:
        """Advance every consuming segment by one poll, and run the
        completion protocol for replicas that reached end criteria."""
        if self.faults.crashed:
            return  # a crashed server stops consuming and polling
        for consuming in list(self._consuming.values()):
            if not consuming.reached_end_criteria:
                self._poll_once(consuming)
            if consuming.reached_end_criteria:
                self._run_completion_step(consuming)

    def _index_messages(self, consuming: _ConsumingSegment,
                        messages) -> None:
        """Index polled messages into the consuming mutable segment,
        applying the table's upsert/dedup semantics row by row."""
        manager = self.upsert_manager(consuming.table)
        if manager is None:
            for message in messages:
                consuming.mutable.index(message.value)
            return
        invalidated = False
        for message in messages:
            record = consuming.config.schema.normalize(message.value)
            if manager.config.is_dedup:
                if not manager.admit(consuming.partition, record):
                    self.metrics.incr("dedup_rows_dropped")
                    continue
                consuming.mutable.index(record)
                continue
            doc_id = consuming.mutable.num_docs
            consuming.mutable.index(record)
            if manager.apply(consuming.name, doc_id, record):
                invalidated = True
        if invalidated:
            # A row in this consuming segment superseded one inside an
            # already-committed segment: cached results over committed
            # data just went stale.
            self._publish_upsert_state(consuming.table, consuming.name)

    def _poll_once(self, consuming: _ConsumingSegment) -> None:
        stream = consuming.config.stream
        assert stream is not None
        messages = consuming.consumer.poll(stream.records_per_poll)
        self._index_messages(consuming, messages)
        consuming.ticks += 1
        if consuming.mutable.num_docs >= stream.flush_threshold_rows:
            consuming.reached_end_criteria = True
        elif (stream.flush_threshold_ticks is not None
              and consuming.ticks >= stream.flush_threshold_ticks
              and consuming.mutable.num_docs > 0):
            consuming.reached_end_criteria = True

    def _run_completion_step(self, consuming: _ConsumingSegment) -> None:
        if self._controller_resolver is None:
            return
        controller = self._controller_resolver()
        try:
            response = self._helix.transport.call(
                self.instance_id, controller.instance_id,
                "segment_consumed", consuming.table, consuming.name,
                self.instance_id, consuming.offset,
            )
        except ClusterError:
            return  # controller unreachable: poll again next tick
        if response.instruction is Instruction.HOLD:
            return
        if response.instruction is Instruction.NOTLEADER:
            return  # resolver returns the current leader next tick
        if response.instruction is Instruction.CATCHUP:
            assert response.offset is not None
            from repro.errors import IngestionError

            while consuming.offset < response.offset:
                try:
                    messages = consuming.consumer.poll_until(
                        response.offset
                    )
                except IngestionError:
                    # Kafka retention already expired this range; keep
                    # polling the controller — once another replica has
                    # committed we will be told to DISCARD and fetch the
                    # authoritative copy instead (§3.3.6).
                    return
                if not messages:
                    break
                self._index_messages(consuming, messages)
            return
        if response.instruction is Instruction.KEEP:
            self._seal(consuming)
            return
        if response.instruction is Instruction.DISCARD:
            consuming.sealed = None
            consuming.sealed_offset = None
            return
        if response.instruction is Instruction.COMMIT:
            if self.faults.before_commit():
                # Died mid-commit: the controller never hears from this
                # replica again. Recovery runs when the death is
                # observed (Controller.handle_server_death) and a new
                # committer is elected among the survivors (§3.3.6).
                return
            self._seal(consuming)
            assert consuming.sealed is not None
            try:
                # The sealed segment rides the transport's blob side
                # channel — the simulated form of the committer's
                # segment upload (§3.3.6, Fig 8).
                self._helix.transport.call(
                    self.instance_id, controller.instance_id,
                    "commit_segment", consuming.table, consuming.name,
                    self.instance_id, consuming.offset, consuming.sealed,
                )
            except ClusterError:
                return  # commit lost in transit: re-poll next tick
            return
        raise ClusterError(f"unknown instruction {response.instruction}")

    def _seal(self, consuming: _ConsumingSegment) -> None:
        if consuming.sealed is None or (
            consuming.sealed_offset != consuming.offset
        ):
            consuming.sealed = consuming.mutable.seal()
            consuming.sealed_offset = consuming.offset
            consuming.mutable.end_offset = consuming.offset

    # -- schema evolution (§5.2) ---------------------------------------------

    def apply_new_column(self, table: str, spec) -> None:
        """Expose a newly added column on already-loaded segments as a
        default-valued virtual column, without reloading anything.
        Non-resident (evicted / never-loaded) segments are reconciled
        against the table schema when they are next fetched."""
        for entry in self.segment_cache.entries(table):
            if entry.segment is not None:
                self._add_virtual_column(entry.segment, spec)
        for (t, __), consuming in self._consuming.items():
            if t == table and spec.name not in consuming.mutable.schema:
                consuming.mutable.schema = (
                    consuming.mutable.schema.with_column(spec)
                )
                consuming.mutable.invalidate_snapshot()

    @staticmethod
    def _add_virtual_column(segment: ImmutableSegment, spec) -> None:
        import numpy as np

        from repro.segment.bitpack import bits_required
        from repro.segment.dictionary import Dictionary
        from repro.segment.forward import SingleValueForwardIndex
        from repro.segment.metadata import ColumnMetadata
        from repro.segment.segment import Column

        if segment.has_column(spec.name):
            return
        default = spec.default
        dictionary = Dictionary(spec.dtype, [default])
        forward = SingleValueForwardIndex.from_dict_ids(
            np.zeros(segment.num_docs, dtype=np.uint32)
        )
        meta = ColumnMetadata(
            name=spec.name, dtype=spec.dtype, role=spec.role,
            cardinality=1, min_value=default, max_value=default,
            total_docs=segment.num_docs, total_entries=segment.num_docs,
            bit_width=bits_required(0),
        )
        segment.add_virtual_column(Column(spec, dictionary, forward,
                                          meta))
        segment.schema = segment.schema.with_column(spec)

    # -- retention tiering (docs/STORAGE.md) -----------------------------------

    def apply_tiering(self, table: str, segment: str) -> None:
        """Controller RPC: the segment aged past the table's tiering
        threshold and is now remote-only — drop any resident payload and
        never keep it resident beyond individual query pins."""
        if (table, segment) in self.segment_cache:
            self.segment_cache.set_remote_only(table, segment)

    # -- query execution (§3.3.4) -----------------------------------------------

    def execute(self, query: Query, table: str,
                segment_names: list[str]) -> ServerResult:
        """Execute ``query`` on the given subset of hosted segments.

        Fault-injection decisions and the per-query timeout
        (PQL ``OPTION(timeoutMs=...)``) are applied by
        :func:`run_with_faults`: the timeout is honored against measured
        execution time plus injected latency, and a mid-execution
        deadline check stops scanning further segments once the budget
        is spent (§3.3.3 step 7 — the broker treats the timed-out
        sub-request like any other failed one).
        """
        self.queries_executed += 1
        return run_with_faults(
            self.faults, self.instance_id, query,
            lambda deadline: self._execute_segments(query, table,
                                                    segment_names, deadline),
        )

    def _execute_segments(self, query: Query, table: str,
                          segment_names: list[str],
                          deadline: float | None) -> ServerResult:
        skip_cache = bool(query.options.get("skipCache"))
        skip_prune = skip_cache or bool(query.options.get("skipPrune"))
        vectorized = bool(
            query.options.get("vectorized", self.default_vectorized)
        )
        #: Ambient span recorder, present when the broker propagated a
        #: sampled trace context with this sub-request (repro.obs).
        recorder = propagation.current()
        upsert = self.upsert_manager(table)
        results: list[SegmentResult] = []
        span = None
        #: Segments pinned resident for the duration of this query —
        #: eviction under pressure must never pull a segment out from
        #: under an executing scan.
        pinned: list[tuple[str, str]] = []
        try:
            for name in segment_names:
                if (deadline is not None
                        and time.perf_counter() > deadline):
                    break  # run_with_faults turns this into a timeout
                segment = self._resolve_for_query(table, name, pinned)
                if recorder is not None:
                    span = recorder.start("segment", segment=name)
                if segment is None:
                    # Empty consuming segment: nothing consumed yet.
                    if span is not None:
                        span.attributes["empty"] = True
                        recorder.end(span)
                        span = None
                    continue
                # Pre-execution pruning applies only to immutable
                # segments: consuming snapshots lack settled metadata.
                immutable = (table, name) in self.segment_cache
                reason = (
                    prune_reason(segment.metadata, query)
                    if not skip_prune and immutable else None
                )
                if reason is not None:
                    self.metrics.incr("segments_pruned")
                    results.append(prune_result(segment, query))
                    if span is not None:
                        span.attributes["pruned"] = True
                        span.attributes["prune_reason"] = reason
                        recorder.end(span)
                        span = None
                    continue
                self.metrics.incr("segments_scanned")
                if not skip_cache and immutable:
                    hits, misses = self._warm_hot_columns(table, segment,
                                                          query)
                    if span is not None:
                        span.attributes["hot_hits"] = hits
                        span.attributes["hot_misses"] = misses
                valid_docs = (
                    upsert.selection_for(name, segment.num_docs)
                    if upsert is not None else None
                )
                if span is not None and valid_docs is not None:
                    span.attributes["valid_docs"] = valid_docs.count
                segment_result = execute_segment(segment, query,
                                                 vectorized=vectorized,
                                                 valid_docs=valid_docs)
                results.append(segment_result)
                if span is not None:
                    span.attributes["docs_scanned"] = (
                        segment_result.stats.num_docs_scanned
                    )
                    span.attributes["total_docs"] = (
                        segment_result.stats.total_docs
                    )
                    recorder.end(span)
                    span = None
        except PinotError as exc:
            if recorder is not None and span is not None:
                span.attributes["error"] = str(exc)
                recorder.end(span, STATUS_ERROR)
            return ServerResult(server=self.instance_id, error=str(exc))
        finally:
            for t, n in pinned:
                self.segment_cache.unpin(t, n)
        return combine_segment_results(query, results, self.instance_id)

    def _warm_hot_columns(self, table: str, segment: ImmutableSegment,
                          query: Query) -> tuple[int, int]:
        """Pull the query's columns through the hot-structure cache so
        their decoded arrays stay resident across queries (and cold
        columns get evicted to honor the byte budget). Returns the
        (hits, misses) of this warm-up's probes."""
        if query.select_star:
            names = segment.schema.column_names
        else:
            names = tuple(sorted(query.referenced_columns()))
        hits = misses = 0
        for name in names:
            if not segment.has_column(name):
                continue
            column = segment.column(name)
            if column.is_multi_value:
                continue  # decoded arrays exist for single-value only
            __, hit = self.hot_cache.values(table, segment, column)
            if hit:
                hits += 1
            else:
                misses += 1
            self.metrics.incr("hot_hits" if hit else "hot_misses")
        return hits, misses

    def explain(self, query: Query, table: str,
                segment_names: list[str]) -> dict[str, str]:
        """Describe the physical plan per segment (plans differ segment
        to segment by index availability, §3.3.4)."""
        from repro.engine.planner import plan_segment

        plans = {}
        for name in segment_names:
            segment = self._resolve_for_query(table, name)
            if segment is None:
                plans[name] = "EMPTY (no rows consumed yet)"
                continue
            plans[name] = plan_segment(segment, query).describe()
        return plans

    def _resolve_for_query(
        self, table: str, name: str,
        pinned: list[tuple[str, str]] | None = None,
    ) -> ImmutableSegment | None:
        """The loaded form of one queried segment, cold-fetching lazy
        refs. With ``pinned``, hosted segments stay pinned (caller
        unpins after the query); without it the pin is released
        immediately (explain/introspection paths)."""
        key = (table, name)
        if key in self.segment_cache:
            segment = self.segment_cache.pin(table, name,
                                             self._fetch_segment)
            if pinned is None:
                self.segment_cache.unpin(table, name)
            else:
                pinned.append(key)
            return segment
        if key in self._consuming:
            return self._consuming[key].mutable.snapshot()
        raise ClusterError(
            f"server {self.instance_id!r} asked for unknown segment "
            f"{table}/{name}"
        )


def is_realtime_segment_name(name: str) -> bool:
    return name.count("__") >= 2


def realtime_segment_name(table: str, partition: int, sequence: int) -> str:
    return f"{table}__{partition}__{sequence}"


def parse_realtime_segment_name(name: str) -> tuple[str, int, int]:
    table, partition, sequence = name.rsplit("__", 2)
    return table, int(partition), int(sequence)

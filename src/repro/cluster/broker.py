"""Pinot brokers (§3.2, §3.3.2-3.3.3).

Brokers parse and optimize queries, pick a routing table, scatter the
query to servers, gather the per-server partial results, and merge them
into the final response. They listen to external-view changes and
rebuild routing tables as replicas come and go. For hybrid tables the
broker transparently rewrites one logical query into an offline and a
realtime query split at the time boundary (Fig 6).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field, replace

from repro.cache.bus import TableEpochs
from repro.cache.pruner import equality_constraints as _equality_constraints
from repro.cache.result_cache import BrokerResultCache, CachedResult
from repro.cluster.health import (
    EVENT_EJECTED,
    EVENT_HEALED,
    FailureDetector,
    HealthPolicy,
    QueuePressure,
)
from repro.cluster.metrics import BrokerMetrics
from repro.cluster.table import TableConfig, TableType
from repro.cluster.tenant import TenantQuotaManager
from repro.common.timeutils import time_boundary
from repro.engine.merge import reduce_server_results
from repro.engine.results import BrokerResponse, ServerResult
from repro.errors import (
    ClusterError,
    RoutingError,
    ServerBusyError,
    ThrottledError,
)
from repro.helix.manager import HelixManager
from repro.helix.statemachine import SegmentState
from repro.net import CallResult, HedgePolicy, LatencyTracker, SimClock
from repro.obs.trace import (
    STATUS_CANCELLED,
    STATUS_ERROR,
    STATUS_OK,
    Span,
    SpanContext,
    Trace,
    Tracer,
)
from repro.pql.ast_nodes import (
    AggFunc,
    Aggregation,
    HavingCondition,
    OrderBy,
    Query,
)
from repro.pql.parser import parse
from repro.pql.rewriter import optimize, split_hybrid
from repro.routing.balanced import BalancedRouting
from repro.routing.base import RoutingStrategy, TableRoutingSnapshot
from repro.routing.large_cluster import LargeClusterRouting
from repro.routing.partition_aware import PartitionAwareRouting

_QUERYABLE_STATES = frozenset(
    {SegmentState.ONLINE.value, SegmentState.CONSUMING.value}
)

#: Smart-approximation rewrites (§4.3 follow-up work): exact functions
#: whose partial state grows with the data, and the bounded-state sketch
#: function the broker swaps in when the estimated input size crosses
#: the configured threshold.
_APPROX_REWRITES = {
    AggFunc.DISTINCTCOUNT: AggFunc.DISTINCTCOUNTHLL,
    AggFunc.PERCENTILE50: AggFunc.PERCENTILEEST50,
    AggFunc.PERCENTILE90: AggFunc.PERCENTILEEST90,
    AggFunc.PERCENTILE95: AggFunc.PERCENTILEEST95,
    AggFunc.PERCENTILE99: AggFunc.PERCENTILEEST99,
}

#: Rewrites gated on the target column's distinct-value count (the
#: exact state is a value set); the rest gate on total row count (the
#: exact state is the raw sample).
_CARDINALITY_GATED = frozenset({AggFunc.DISTINCTCOUNT})


def _make_strategy(config: TableConfig,
                   rng: random.Random) -> RoutingStrategy:
    name = config.routing_strategy
    options = dict(config.routing_options)
    if name == "balanced":
        return BalancedRouting(rng=rng, **options)
    if name == "large_cluster":
        return LargeClusterRouting(rng=rng, **options)
    if name == "partition_aware":
        return PartitionAwareRouting(rng=rng, **options)
    raise ClusterError(f"unknown routing strategy {name!r}")


@dataclass(frozen=True)
class QueryLogEntry:
    """One executed query's footprint, mined for auto-indexing (§5.2)."""

    table: str
    filter_columns: frozenset[str]
    entries_scanned_in_filter: int
    docs_scanned: int


@dataclass
class _FailedSubRequest:
    """One failed scatter sub-request awaiting failover."""

    instance: str
    segments: list[str]
    result: ServerResult
    tried: set[str]


@dataclass
class _ScatterOutcome:
    """Everything one physical query's scatter/gather produced."""

    results: list[ServerResult] = field(default_factory=list)
    recovered_errors: list[str] = field(default_factory=list)
    pruned: int = 0
    contacted: set[str] = field(default_factory=set)
    responded: set[str] = field(default_factory=set)
    retries: int = 0
    segments_failed_over: int = 0
    #: True when any sub-request ran out of deadline budget; such a
    #: response must never be cached even if it merged cleanly.
    deadline_exhausted: bool = False
    #: Virtual instant the broker finished waiting on sub-requests (the
    #: gather barrier) — the query's own wall, independent of whatever
    #: the shared clock has reached serving other traffic.
    finished_at: float = 0.0
    #: Hedged duplicates issued for this physical query.
    hedges: int = 0
    #: Accumulated link + queue time across all sub-requests (the
    #: per-query "network" stage).
    network_ms: float = 0.0


class BrokerInstance:
    """One Pinot broker."""

    #: Bound on the retained query log (oldest entries are dropped).
    QUERY_LOG_LIMIT = 10_000
    #: Per sub-request attempt bound: the primary dispatch plus up to
    #: two failovers to other replicas.
    MAX_SUBREQUEST_ATTEMPTS = 3
    #: Base of the exponential backoff charged against the query's
    #: deadline before each retry (simulated — no real sleep).
    RETRY_BACKOFF_BASE_MS = 25.0

    def __init__(self, instance_id: str, helix: HelixManager,
                 quotas: TenantQuotaManager | None = None,
                 seed: int = 0, clock: SimClock | None = None,
                 hedging: HedgePolicy | None = None,
                 tracer: Tracer | None = None,
                 health: HealthPolicy | FailureDetector | None = None,
                 use_approximate_function: bool = False,
                 approx_threshold: int = 10_000):
        self.instance_id = instance_id
        self._helix = helix
        #: Smart approximations (off by default): when enabled — per
        #: cluster here, or per query via
        #: ``OPTION(useApproximateFunction=...)`` — the broker rewrites
        #: exact DISTINCTCOUNT/PERCENTILE aggregations to their
        #: bounded-state sketch variants once the estimated input
        #: (distinct values / total rows) reaches ``approx_threshold``.
        self.use_approximate_function = use_approximate_function
        self.approx_threshold = approx_threshold
        #: All sub-requests travel over the cluster transport; deadline
        #: math, backoff accounting, and quota refill read its clock.
        self._transport = helix.transport
        self._clock = clock if clock is not None else helix.transport.clock
        #: Hedged sub-requests (off unless a policy is supplied): track
        #: per-table sub-request latencies and re-issue stragglers.
        self._hedging = hedging if hedging is not None and hedging.enabled \
            else None
        self._latency = (LatencyTracker(self._hedging)
                         if self._hedging is not None else None)
        #: Failure detector (off unless configured, matching real
        #: Pinot's opt-in broker module): scores every sub-request
        #: outcome, ejects sick servers from routing, probes them back.
        if isinstance(health, FailureDetector):
            self.health: FailureDetector | None = health
        elif isinstance(health, HealthPolicy):
            self.health = FailureDetector(health)
        else:
            self.health = None
        #: Smoothed inbound-queue utilization across contacted servers;
        #: drives adaptive admission (tenant-priority load shedding).
        self.pressure = QueuePressure()
        self._quotas = quotas
        self._rng = random.Random(seed)
        self._strategies: dict[str, RoutingStrategy] = {}
        self._dirty: set[str] = set()
        self.queries_served = 0
        self.query_log: list[QueryLogEntry] = []
        self.metrics = BrokerMetrics()
        #: Distributed tracing (repro.obs): sampling off by default,
        #: per-query opt-in via ``OPTION(trace=true)``.
        self.tracer = tracer if tracer is not None else Tracer(
            clock=self._clock, component=instance_id, seed=seed,
        )
        #: Result cache + the per-table epochs its keys embed; epochs
        #: bump on every invalidation-bus event for the table.
        self.result_cache = BrokerResultCache(clock=self._clock)
        self._epochs = TableEpochs(bus=helix.invalidation_bus)
        self._routing_versions: dict[str, int] = {}
        helix.watch_external_view(self._on_view_change)

    # -- routing-table maintenance (§3.3.2) -----------------------------------

    def _on_view_change(self, event: str, path: str) -> None:
        table = path.rsplit("/", 1)[-1]
        self._dirty.add(table)

    def _strategy_for(self, table: str) -> RoutingStrategy:
        if table not in self._strategies:
            config = self._table_config(table)
            self._strategies[table] = _make_strategy(config, self._rng)
            self._dirty.add(table)
        if table in self._dirty:
            self._rebuild(table)
            self._dirty.discard(table)
        return self._strategies[table]

    def _rebuild(self, table: str) -> None:
        self._routing_versions[table] = (
            self._routing_versions.get(table, 0) + 1
        )
        config = self._table_config(table)
        view = self._helix.external_view(table)
        live = set(self._helix.live_instances())
        segment_to_instances: dict[str, list[str]] = {}
        for segment, replica_states in view.items():
            replicas = [
                instance for instance, state in replica_states.items()
                if state in _QUERYABLE_STATES and instance in live
            ]
            if replicas:
                segment_to_instances[segment] = sorted(replicas)
        snapshot = TableRoutingSnapshot(
            segment_to_instances=segment_to_instances,
            segment_partitions=self._segment_partitions(
                table, config, segment_to_instances
            ),
            partition_column=(config.partition.column
                              if config.partition else None),
            num_partitions=(config.partition.num_partitions
                            if config.partition else None),
        )
        self._strategies[table].rebuild(snapshot)

    def _segment_partitions(self, table: str, config: TableConfig,
                            segments: dict[str, list[str]]) -> dict[str, int]:
        if config.partition is None:
            return {}
        partitions: dict[str, int] = {}
        for segment in segments:
            meta = (
                self._helix.get_property(f"segments/{table}/{segment}")
                or self._helix.get_property(f"realtime/{table}/{segment}")
                or {}
            )
            partition = meta.get("partition_id", meta.get("partition"))
            if partition is not None:
                partitions[segment] = partition
        return partitions

    def _table_config(self, table: str) -> TableConfig:
        payload = self._helix.get_property(f"tableconfigs/{table}")
        if payload is None:
            raise ClusterError(f"no such table: {table!r}")
        return TableConfig.from_dict(payload)

    # -- query execution (§3.3.3) ------------------------------------------------

    def execute(self, pql: str | Query, tenant: str | None = None,
                now: float | None = None,
                at: float | None = None) -> BrokerResponse:
        """Run one query end to end and return the broker response.

        The scatter/gather is failure-hardened (§3.3.3 step 7 and the
        resilience follow-up work): failed sub-requests are retried on
        different replicas within the query's ``OPTION(timeoutMs=...)``
        deadline, and when no replica can serve some segments the
        merged response is returned with ``partial=True`` and per-server
        error detail instead of failing the whole query.

        ``at`` pins the query's virtual start (and scatter departure)
        time, letting callers model concurrent load: several queries
        issued ``at`` the same instant contend for the same server
        queues even though this process runs them sequentially.
        """
        started = at if at is not None else self._clock.now()
        query = parse(pql) if isinstance(pql, str) else pql
        query = optimize(query)

        physical = self._resolve_physical_queries(query)
        query, physical, rewrites = self._maybe_rewrite_approx(query,
                                                               physical)
        first_config = self._table_config(physical[0].table)
        tenant = tenant or first_config.tenant
        if self._quotas is not None:
            clock = now if now is not None else self._clock.now()
            try:
                self._quotas.admit(tenant, clock,
                                   pressure=self.pressure.value)
            except ThrottledError as exc:
                self.metrics.incr("admission_shed"
                                  if exc.reason == "overload"
                                  else "throttled")
                raise

        self.metrics.incr("queries")
        timeout_ms = query.options.get("timeoutMs")
        deadline = (started + timeout_ms / 1e3
                    if timeout_ms is not None else None)
        stage_times: dict[str, float] = {}

        #: Per-query trace (repro.obs): None unless sampled in or
        #: forced with OPTION(trace=true) — the untraced path pays only
        #: this call and a few None checks.
        trace = self.tracer.start_trace(
            "query", at=started, force=bool(query.options.get("trace")),
            table=query.table, pql=str(query),
        )
        if trace is not None:
            self.metrics.incr("traces")

        cache_key = None
        if query.options.get("skipCache"):
            self.metrics.incr("cache_bypass")
        else:
            cache_started = self._clock.now()
            cache_key = self._cache_key(physical)
            cached = (self.result_cache.get(cache_key)
                      if cache_key is not None else None)
            self._record_stage(
                "cache", (self._clock.now() - cache_started) * 1e3,
                stage_times)
            if trace is not None:
                outcome_label = ("bypass" if cache_key is None
                                 else "hit" if cached is not None
                                 else "miss")
                trace.add_span(
                    "cache", trace.root, cache_started, self._clock.now(),
                    component=self.instance_id, outcome=outcome_label,
                )
            if cache_key is None:
                # Consuming offsets unknown (e.g. a replica died
                # mid-query): bypass rather than risk a stale hit.
                self.metrics.incr("cache_bypass")
            elif cached is not None:
                return self._serve_from_cache(cached, tenant, now,
                                              started, stage_times, trace)
            else:
                self.metrics.incr("cache_misses")

        server_results: list[ServerResult] = []
        recovered: list[str] = []
        log_entries: list[QueryLogEntry] = []
        contacted: set[str] = set()
        responded: set[str] = set()
        pruned_total = 0
        retries = 0
        failed_over = 0
        deadline_exhausted = False
        finished = started
        for physical_query in physical:
            outcome = self._scatter_gather(physical_query, deadline,
                                           stage_times, depart_at=at,
                                           trace=trace)
            at = None  # only the first physical query departs at `at`
            finished = max(finished, outcome.finished_at)
            server_results.extend(outcome.results)
            recovered.extend(outcome.recovered_errors)
            pruned_total += outcome.pruned
            contacted |= outcome.contacted
            responded |= outcome.responded
            retries += outcome.retries
            failed_over += outcome.segments_failed_over
            deadline_exhausted |= outcome.deadline_exhausted
            entry = self._record_query_log(physical_query, outcome.results)
            if entry is not None:
                log_entries.append(entry)

        elapsed_ms = (max(started, finished) - started) * 1e3
        if self._quotas is not None:
            clock = now if now is not None else self._clock.now()
            self._quotas.charge(tenant, elapsed_ms / 1e3, clock)
        self.queries_served += 1
        merge_started = self._clock.now()
        response = reduce_server_results(query, server_results, elapsed_ms,
                                         recovered_exceptions=recovered)
        merge_ended = self._clock.now()
        self._record_stage("merge", (merge_ended - merge_started) * 1e3,
                           stage_times)
        if trace is not None:
            trace.add_span("merge", trace.root, merge_started, merge_ended,
                           component=self.instance_id,
                           rows=len(response.table))
        response.num_servers_queried = len(contacted)
        response.num_servers_responded = len(responded)
        response.num_segments_pruned_by_broker = pruned_total
        response.num_retries = retries
        response.num_segments_failed_over = failed_over
        response.stage_times_ms = stage_times
        response.rewrites = rewrites
        if response.is_partial:
            # Partial answers must never be cached: a retry after the
            # failure heals would keep returning the degraded result.
            self.metrics.incr("partial_responses")
        elif cache_key is not None and not deadline_exhausted:
            self.result_cache.put(cache_key, response, log_entries)
        if trace is not None:
            # Attach via replace() AFTER the cache put: the cache stores
            # the response by reference, and cached entries must stay
            # trace-free (a later hit is its own, much shorter, trace).
            trace.root.attributes.update(
                partial=response.is_partial,
                servers_queried=len(contacted),
                servers_responded=len(responded),
                retries=retries,
                rows=len(response.table),
            )
            self.tracer.finish_trace(
                trace,
                status=STATUS_ERROR if response.is_partial else STATUS_OK,
            )
            response = replace(response, trace=trace.to_dict())
        return response

    # -- result cache (repro.cache) -----------------------------------------

    def _cache_key(self, physical: list[Query]) -> tuple | None:
        """The result-cache key for one logical query's physical plan.

        Per physical query: normalized plan text, the table's segment
        epoch, the routing-table version, and the consuming-segment
        offsets. Returns None (bypass caching) when any consuming
        replica's offset cannot be determined — a key that cannot prove
        freshness must not be cached under.
        """
        parts = []
        for physical_query in physical:
            table = physical_query.table
            self._strategy_for(table)  # refresh routing if dirty
            fingerprint = self._consuming_fingerprint(table)
            if fingerprint is None:
                return None
            parts.append((
                table,
                str(physical_query),
                bool(physical_query.options.get("skipPrune")),
                self._epochs.epoch(table),
                self._routing_versions.get(table, 0),
                fingerprint,
            ))
        return tuple(parts)

    def _consuming_fingerprint(self, table: str) -> tuple | None:
        """The (segment, instance, offset) triples of every CONSUMING
        replica — offline tables return (). Embedding live offsets in
        the key gives realtime/hybrid caching zero staleness by
        construction: any newly consumed event changes the key."""
        view = self._helix.external_view(table)
        entries = []
        for segment, replica_states in view.items():
            for instance, state in replica_states.items():
                if state != SegmentState.CONSUMING.value:
                    continue
                participant = self._helix.participant(instance)
                if participant is None or not hasattr(
                        participant, "consuming_offset"):
                    return None
                try:
                    offset = self._transport.call(
                        self.instance_id, instance,
                        "consuming_offset", table, segment,
                    )
                except ClusterError:
                    offset = None
                if offset is None:
                    return None
                entries.append((segment, instance, offset))
        return tuple(sorted(entries))

    def _serve_from_cache(self, cached: CachedResult, tenant: str | None,
                          now: float | None, started: float,
                          stage_times: dict[str, float],
                          trace: Trace | None = None) -> BrokerResponse:
        """Answer from the result cache, keeping every side effect a
        real execution would have had: quota charging, the query log
        (auto-index mining, §5.2), and query counters."""
        self.metrics.incr("cache_hits")
        self.query_log.extend(cached.log_entries)
        if len(self.query_log) > self.QUERY_LOG_LIMIT:
            del self.query_log[:len(self.query_log) // 2]
        elapsed_ms = max(0.0, self._clock.now() - started) * 1e3
        if self._quotas is not None:
            clock = now if now is not None else self._clock.now()
            self._quotas.charge(tenant, elapsed_ms / 1e3, clock)
        self.queries_served += 1
        trace_dict = None
        if trace is not None:
            # A cache hit's trace is just root + the cache span: no
            # route/scatter/rpc spans because no server was contacted.
            trace.root.attributes["cache_hit"] = True
            self.tracer.finish_trace(trace)
            trace_dict = trace.to_dict()
        return replace(
            cached.response,
            cache_hit=True,
            time_used_ms=elapsed_ms,
            stage_times_ms=dict(stage_times),
            trace=trace_dict,
        )

    # -- smart approximations ------------------------------------------------

    def _maybe_rewrite_approx(
        self, query: Query, physical: list[Query],
    ) -> tuple[Query, list[Query], tuple[str, ...]]:
        """Swap exact DISTINCTCOUNT/PERCENTILE for sketch variants when
        enabled and the estimated input crosses the threshold.

        Runs *before* the cache key is computed, and the rewritten
        select list is part of the physical plan text the key embeds —
        so exact and approximate answers can never collide in the
        result cache.
        """
        option = query.options.get("useApproximateFunction")
        enabled = (bool(option) if option is not None
                   else self.use_approximate_function)
        if not enabled:
            return query, physical, ()
        targets = [a for a in query.aggregations
                   if a.func in _APPROX_REWRITES]
        if not targets:
            return query, physical, ()
        total_docs, cardinalities = self._approx_estimates(
            physical, {a.column for a in targets
                       if a.func in _CARDINALITY_GATED})
        mapping: dict[Aggregation, Aggregation] = {}
        rewrites: list[str] = []
        for aggregation in targets:
            if aggregation.func in _CARDINALITY_GATED:
                estimate = cardinalities.get(aggregation.column, 0)
            else:
                estimate = total_docs
            if estimate < self.approx_threshold:
                continue
            rewritten = Aggregation(_APPROX_REWRITES[aggregation.func],
                                    aggregation.column)
            mapping[aggregation] = rewritten
            rewrites.append(f"{aggregation} -> {rewritten}")
        if not mapping:
            return query, physical, ()
        query = self._apply_rewrites(query, mapping)
        self.metrics.incr("approx_rewrites")
        return query, self._resolve_physical_queries(query), tuple(rewrites)

    def _approx_estimates(
        self, physical: list[Query], columns: set[str],
    ) -> tuple[int, dict[str, int]]:
        """Summed segment-metadata estimates across every physical
        table: total stored docs, and per-column distinct-value counts
        (falling back to the segment's doc count when a segment predates
        cardinality publishing)."""
        total_docs = 0
        cardinalities: dict[str, int] = {}
        for physical_query in physical:
            table = physical_query.table
            for segment in self._helix.external_view(table):
                meta = (
                    self._helix.get_property(f"segments/{table}/{segment}")
                    or self._helix.get_property(f"realtime/{table}/{segment}")
                    or {}
                )
                num_docs = meta.get("num_docs") or 0
                total_docs += num_docs
                cards = meta.get("cardinalities") or {}
                for column in columns:
                    cardinalities[column] = (
                        cardinalities.get(column, 0)
                        + cards.get(column, num_docs)
                    )
        return total_docs, cardinalities

    @staticmethod
    def _apply_rewrites(query: Query,
                        mapping: dict[Aggregation, Aggregation]) -> Query:
        """Rebuild the query with every mapped aggregation replaced —
        consistently across select, ORDER BY and HAVING, which all
        reference aggregations by value."""
        select = tuple(
            mapping.get(item, item) if isinstance(item, Aggregation)
            else item
            for item in query.select
        )
        order_by = tuple(
            OrderBy(mapping[o.expression], o.descending)
            if isinstance(o.expression, Aggregation)
            and o.expression in mapping else o
            for o in query.order_by
        )
        having = tuple(
            HavingCondition(mapping.get(h.aggregation, h.aggregation),
                            h.op, h.value)
            for h in query.having
        )
        return Query(
            table=query.table, select=select, where=query.where,
            group_by=query.group_by, having=having, order_by=order_by,
            limit=query.limit, offset=query.offset,
            select_star=query.select_star, options=dict(query.options),
        )

    def _record_stage(self, stage: str, elapsed_ms: float,
                      stage_times: dict[str, float]) -> None:
        self.metrics.record_stage(stage, elapsed_ms)
        stage_times[stage] = stage_times.get(stage, 0.0) + elapsed_ms

    def _resolve_physical_queries(self, query: Query) -> list[Query]:
        """Map the logical table to physical queries, splitting hybrid
        tables at the time boundary (§3.3.3, Fig 6)."""
        logical = query.table
        offline = f"{logical}_{TableType.OFFLINE.value}"
        realtime = f"{logical}_{TableType.REALTIME.value}"
        has_offline = self._helix.get_property(
            f"tableconfigs/{offline}") is not None
        has_realtime = self._helix.get_property(
            f"tableconfigs/{realtime}") is not None
        if not has_offline and not has_realtime:
            # Allow physical names directly (e.g. "events_OFFLINE").
            if self._helix.get_property(f"tableconfigs/{logical}") is not None:
                return [query]
            raise ClusterError(f"no such table: {logical!r}")
        if has_offline and not has_realtime:
            return [query.with_table(offline)]
        if has_realtime and not has_offline:
            return [query.with_table(realtime)]

        config = self._table_config(offline)
        time_column = config.time_column
        if time_column is None:
            raise ClusterError(
                f"hybrid table {logical!r} requires a time column"
            )
        boundary = self._time_boundary(offline, config)
        if boundary is None:
            # No offline data yet; serve everything from realtime.
            return [query.with_table(realtime)]
        offline_query, realtime_query = split_hybrid(
            query, time_column, boundary, offline, realtime
        )
        return [offline_query, realtime_query]

    def _time_boundary(self, offline_table: str,
                       config: TableConfig) -> int | None:
        max_time: int | None = None
        for segment in self._helix.list_properties(
            f"segments/{offline_table}"
        ):
            meta = self._helix.get_property(
                f"segments/{offline_table}/{segment}"
            ) or {}
            segment_max = meta.get("max_time")
            if segment_max is not None:
                max_time = (segment_max if max_time is None
                            else max(max_time, segment_max))
        if max_time is None:
            return None
        # Use the table's configured granularity *including its size*:
        # with e.g. (DAYS, 7) buckets, a boundary of max_time - 1 would
        # let the offline side serve a partially-pushed trailing bucket
        # and drop the realtime rows that complete it. max - size is
        # always <= the last fully-covered bucket's end, so offline
        # (time <= boundary) and realtime (time > boundary) partition
        # the axis with no gap and no overlap.
        return time_boundary(max_time, config.retention_granularity)

    def _scatter_gather(self, query: Query, deadline: float | None,
                        stage_times: dict[str, float],
                        depart_at: float | None = None,
                        trace: Trace | None = None) -> _ScatterOutcome:
        """Route, scatter, and gather one physical query with replica
        failover, hedging, and graceful degradation."""
        outcome = _ScatterOutcome()

        route_started = self._clock.now()
        strategy = self._strategy_for(query.table)
        try:
            routing_table = strategy.route(query)
        except RoutingError as exc:
            route_ended = self._clock.now()
            self._record_stage(
                "route", (route_ended - route_started) * 1e3, stage_times)
            if trace is not None:
                span = trace.add_span(
                    "route", trace.root, route_started, route_ended,
                    component=self.instance_id, table=query.table,
                )
                span.set_error(str(exc), error_type="RoutingError")
            outcome.results.append(
                ServerResult(server=self.instance_id, error=str(exc))
            )
            outcome.finished_at = self._clock.now()
            return outcome
        routing_table, pruned = self._prune_by_time(query, routing_table)
        routing_table, bloom_pruned = self._prune_by_bloom(query,
                                                           routing_table)
        outcome.pruned = pruned + bloom_pruned
        #: Instances whose dispatch this query is probe traffic (the
        #: capped trickle sent to ejected servers).
        probes: set[str] = set()
        routing_table = self._apply_health(strategy, routing_table, probes)
        route_ended = self._clock.now()
        self._record_stage(
            "route", (route_ended - route_started) * 1e3, stage_times)
        if trace is not None:
            trace.add_span(
                "route", trace.root, route_started, route_ended,
                component=self.instance_id, table=query.table,
                servers=len(routing_table),
                segments_pruned=outcome.pruned,
            )

        # Scatter: the primary fan-out over the chosen routing table.
        # Every sub-request departs at the same virtual instant — the
        # broker sends them concurrently, even though this process
        # executes the handlers one after another.
        scatter_started = self._clock.now()
        t0 = depart_at if depart_at is not None else scatter_started
        scatter_span = None
        if trace is not None:
            scatter_span = trace.add_span(
                "scatter", trace.root, t0, None,
                component=self.instance_id, table=query.table,
                fanout=len(routing_table),
            )
        failures: deque[_FailedSubRequest] = deque()
        in_flight: list[tuple[str, list[str], ServerResult,
                              CallResult | None, Span | None]] = []
        for instance, segments in routing_table.items():
            result, call, span = self._dispatch(
                instance, query, segments, deadline, outcome,
                depart_at=t0, trace=trace, parent=scatter_span,
                probe=instance in probes,
            )
            in_flight.append((instance, segments, result, call, span))

        barrier = t0
        for instance, segments, result, call, span in in_flight:
            winner_call = call
            #: Every replica this sub-request touched (primary plus any
            #: hedge) — a failure is enqueued with ALL of them so the
            #: gather reselect can never re-pick a replica that just
            #: failed (hedge losers included).
            attempted = {instance}
            if call is not None:
                result, winner_call = self._maybe_hedge(
                    strategy, query, instance, segments, result, call,
                    t0, deadline, outcome, attempted, probes,
                    trace=trace, parent=scatter_span, primary_span=span,
                )
            if winner_call is not None:
                barrier = max(barrier, winner_call.completed)
                if self._latency is not None and result.error is None:
                    # Only the winner's own flight time (departure to
                    # completion) feeds the percentile window. Counting
                    # from t0 would fold the budget wait into every
                    # hedged sample, compounding the budget by the
                    # multiplier each query until hedging disabled
                    # itself; counting stragglers would do the same.
                    self._latency.observe(query.table,
                                          winner_call.duration_s)
            if result.error is None:
                outcome.results.append(result)
                outcome.responded.add(result.server)
            else:
                failures.append(_FailedSubRequest(
                    instance, segments, result, tried=attempted
                ))
        # The broker's gather barrier: it has now waited for every
        # primary (and winning hedge) response on the virtual timeline.
        self._clock.advance_to(barrier)
        finished = barrier
        if scatter_span is not None:
            scatter_span.end_s = self._clock.now()
        self._record_stage(
            "scatter", (self._clock.now() - scatter_started) * 1e3,
            stage_times)

        # Gather: fail sub-requests over to other replicas, bounded by
        # MAX_SUBREQUEST_ATTEMPTS and the remaining deadline budget.
        gather_started = self._clock.now()
        gather_span = None
        if trace is not None and failures:
            gather_span = trace.add_span(
                "gather", trace.root, gather_started, None,
                component=self.instance_id, table=query.table,
                failed_subrequests=len(failures),
            )
        while failures:
            failed = failures.popleft()
            attempt = len(failed.tried)
            backoff_ms = self.RETRY_BACKOFF_BASE_MS * (2 ** (attempt - 1))
            within_deadline = (
                deadline is None
                or self._clock.now() + backoff_ms / 1e3 < deadline
            )
            if attempt >= self.MAX_SUBREQUEST_ATTEMPTS or not within_deadline:
                if not within_deadline:
                    self.metrics.incr("deadline_exhausted")
                    outcome.deadline_exhausted = True
                    reason = "deadline exhausted"
                else:
                    reason = f"retry attempts exhausted ({attempt})"
                # Attribute the give-up to the server that actually
                # produced the last error (failed.result.server), with
                # the replicas already tried spelled out.
                outcome.results.append(replace(
                    failed.result,
                    error=(f"{failed.result.error} [gave up: {reason}; "
                           f"tried {sorted(failed.tried)}]"),
                ))
                continue
            reroute, unroutable = self._reselect(
                strategy, failed.segments, failed.tried, probes)
            if unroutable:
                # No replica left for *these* segments: report exactly
                # which segments are stuck and which replicas failed,
                # attributed to the server of the last real error —
                # not blanket-blamed on the primary when only a subset
                # of its segments is unroutable.
                self.metrics.incr("segments_unroutable", len(unroutable))
                outcome.results.append(ServerResult(
                    server=failed.result.server,
                    error=(f"segments {sorted(unroutable)} have no "
                           f"untried replica (tried "
                           f"{sorted(failed.tried)}); last error: "
                           f"{failed.result.error}"),
                ))
            for instance, segments in reroute.items():
                self.metrics.incr("retries")
                self.metrics.incr("retry_backoff_ms", backoff_ms)
                outcome.retries += 1
                result, call, retry_span = self._dispatch(
                    instance, query, segments, deadline, outcome,
                    trace=trace, parent=gather_span,
                    probe=instance in probes,
                )
                if retry_span is not None:
                    retry_span.attributes["retry_attempt"] = attempt
                if call is not None:
                    self._clock.advance_to(call.completed)
                    finished = max(finished, call.completed)
                if result.error is None:
                    outcome.results.append(result)
                    outcome.responded.add(instance)
                    outcome.segments_failed_over += len(segments)
                    self.metrics.incr("failovers")
                    self.metrics.incr("segments_failed_over",
                                      len(segments))
                    outcome.recovered_errors.append(
                        f"{failed.instance}: {failed.result.error} "
                        f"(recovered on {instance})"
                    )
                else:
                    failures.append(_FailedSubRequest(
                        instance, segments, result,
                        tried=failed.tried | {instance},
                    ))
        if gather_span is not None:
            gather_span.end_s = self._clock.now()
        self._record_stage(
            "gather", (self._clock.now() - gather_started) * 1e3,
            stage_times)
        self._record_stage("network", outcome.network_ms, stage_times)
        outcome.finished_at = finished
        return outcome

    def _maybe_hedge(self, strategy: RoutingStrategy, query: Query,
                     instance: str, segments: list[str],
                     result: ServerResult, call: CallResult, t0: float,
                     deadline: float | None, outcome: _ScatterOutcome,
                     attempted: set[str], probes: set[str],
                     trace: Trace | None = None,
                     parent: Span | None = None,
                     primary_span: Span | None = None,
                     ) -> tuple[ServerResult, CallResult]:
        """Re-issue a straggling sub-request to another replica once its
        latency exceeds the percentile budget; first response wins. A
        sub-request that *failed* outright is the ultimate straggler:
        it is hedged immediately (departing when the failure is known)
        instead of waiting for the gather loop's backoff.

        Returns the winning (result, call) pair. The loser is cancelled:
        its response is discarded and it never reaches the merge. In a
        trace, the hedge appears as a sibling rpc span of the primary,
        and the loser's span is marked ``cancelled``.

        Every replica contacted here is added to ``attempted`` so that
        when the sub-request still ends up failing, the gather loop's
        reselect excludes the losing hedge replica too — without this,
        reselect could immediately re-pick the very server whose hedge
        just failed.
        """
        if self._latency is None:
            return result, call
        assert self._hedging is not None
        failed_primary = result.error is not None
        budget = self._latency.budget_s(query.table)
        if not failed_primary and call.completed - t0 <= budget:
            return result, call
        if outcome.hedges >= self._hedging.max_hedges_per_query:
            return result, call
        reroute, unroutable = self._reselect(strategy, segments,
                                             set(attempted), probes)
        if unroutable or len(reroute) != 1:
            # No single alternate replica hosts the whole segment set;
            # hedging a split would multiply fan-out, so don't.
            return result, call
        (alternate, alt_segments), = reroute.items()
        outcome.hedges += 1
        attempted.add(alternate)
        self.metrics.incr("hedges")
        depart = call.completed if failed_primary else t0 + budget
        hedge_result, hedge_call, hedge_span = self._dispatch(
            alternate, query, alt_segments, deadline, outcome,
            depart_at=depart, hedge=True, trace=trace, parent=parent,
            probe=alternate in probes,
        )
        if failed_primary:
            if hedge_call is not None and hedge_result.error is None:
                # The hedge repaired the failure before the gather loop
                # ever saw it.
                self.metrics.incr("hedge_wins")
                self.metrics.incr("segments_failed_over",
                                  len(alt_segments))
                outcome.segments_failed_over += len(alt_segments)
                outcome.recovered_errors.append(
                    f"{instance}: {result.error} "
                    f"(recovered on {alternate} via hedge)"
                )
                if primary_span is not None:
                    primary_span.attributes["hedge_loser"] = True
                if hedge_span is not None:
                    hedge_span.attributes["hedge_winner"] = True
                return hedge_result, hedge_call
            # Hedge failed too: keep the primary's error; ``attempted``
            # now carries both replicas for the gather reselect.
            return result, call
        if (hedge_call is not None and hedge_result.error is None
                and hedge_call.completed < call.completed):
            # The hedge beat the straggler: first response wins, the
            # original sub-request is cancelled unread.
            self.metrics.incr("hedge_wins")
            self.metrics.incr("hedges_cancelled")
            if primary_span is not None:
                primary_span.status = STATUS_CANCELLED
                primary_span.attributes["hedge_loser"] = True
            if hedge_span is not None:
                hedge_span.attributes["hedge_winner"] = True
            return hedge_result, hedge_call
        self.metrics.incr("hedges_cancelled")
        if hedge_span is not None:
            hedge_span.status = STATUS_CANCELLED
            hedge_span.attributes["hedge_loser"] = True
        return result, call

    def _dispatch(self, instance: str, query: Query, segments: list[str],
                  deadline: float | None, outcome: _ScatterOutcome,
                  depart_at: float | None = None, hedge: bool = False,
                  trace: Trace | None = None, parent: Span | None = None,
                  probe: bool = False,
                  ) -> tuple[ServerResult, CallResult | None, Span | None]:
        """Send one sub-request over the transport, mapping transport
        failures (unreachable, overloaded) and an exhausted deadline
        onto error results the merge can degrade around.

        When the query is traced, the sub-request's span context crosses
        the codec boundary with the call (like an HTTP trace header) and
        the server's spans come back attached to the response; this
        method grafts them under an ``rpc`` span with ``network`` /
        ``queue`` / ``execute`` children.
        """
        outcome.contacted.add(instance)
        self.metrics.incr("hedge_requests" if hedge else "scatter_requests")
        depart = depart_at if depart_at is not None else self._clock.now()
        if deadline is not None and depart > deadline:
            self.metrics.incr("deadline_exhausted")
            outcome.deadline_exhausted = True
            if trace is not None:
                span = trace.add_span(
                    "rpc", parent or trace.root, depart, depart,
                    component=self.instance_id, server=instance,
                    hedge=hedge,
                )
                span.set_error("broker deadline exceeded",
                               error_type="DeadlineExceeded")
            return ServerResult(server=instance,
                                error="broker deadline exceeded"), None, None
        if self.health is not None:
            self.health.record_dispatch(instance, now=depart, probe=probe)
        ctx = None
        execute_span_id = None
        if trace is not None:
            # Reserve the server-side execute span's id up front so the
            # server parents its own spans under it while the broker is
            # still waiting for the response.
            execute_span_id = trace.allocate_id()
            ctx = SpanContext(trace_id=trace.trace_id,
                              span_id=execute_span_id, sampled=True)
        call = self._transport.request(
            self.instance_id, instance, "execute",
            query, query.table, segments, depart_at=depart,
            trace_ctx=ctx,
        )
        self.metrics.incr("network_link_ms", call.link_s * 1e3)
        self.metrics.incr("queue_wait_ms", call.queue_s * 1e3)
        if call.queue_depth > self.metrics.count("max_queue_depth"):
            self.metrics.counters["max_queue_depth"] = call.queue_depth
        outcome.network_ms += (call.link_s + call.queue_s) * 1e3
        span = None
        if trace is not None:
            span = trace.add_span(
                "rpc", parent or trace.root, call.departed, call.completed,
                component=self.instance_id, server=instance,
                segments=len(segments), hedge=hedge,
            )
            trace.add_span(
                "network", span, call.departed, call.arrived,
                component=self.instance_id, server=instance,
                link_ms=call.link_s * 1e3,
                request_bytes=call.request_bytes,
                response_bytes=call.response_bytes,
            )
            if call.handled:
                trace.add_span(
                    "queue", span, call.arrived, call.started,
                    component=instance, queue_depth=call.queue_depth,
                )
                trace.add_span(
                    "execute", span, call.started,
                    call.started + call.service_s,
                    span_id=execute_span_id, component=instance,
                )
                trace.extend(call.remote_spans)
            elif call.rejected:
                rejection = trace.add_span(
                    "queue", span, call.arrived, call.arrived,
                    component=instance, queue_depth=call.queue_depth,
                    rejected=True,
                )
                rejection.status = STATUS_ERROR
        self._observe_pressure(instance, call)
        if call.error is not None:
            if isinstance(call.error, ServerBusyError):
                self.metrics.incr("server_busy_rejections")
                # A full queue is overload, not sickness: it feeds the
                # admission pressure signal, never the health score.
            else:
                self.metrics.incr("servers_unreachable")
                self._observe_health(instance, failure=True,
                                     now=call.completed)
            if span is not None:
                span.set_error(str(call.error),
                               error_type=type(call.error).__name__,
                               rejected=call.rejected)
            return ServerResult(server=instance,
                                error=str(call.error)), call, span
        result = call.value
        if result.error is not None:
            self.metrics.incr("server_errors")
            self._observe_health(instance, failure=True,
                                 now=call.completed)
            if span is not None:
                span.set_error(result.error, error_type="ServerError")
        else:
            # Injected/simulated latency lives in elapsed_ms, not the
            # transport timing, so score the larger of the two.
            self._observe_health(
                instance, failure=False,
                latency_s=max(call.duration_s, result.elapsed_ms / 1e3),
                now=call.completed,
            )
        return result, call, span

    def _observe_pressure(self, instance: str, call: CallResult) -> None:
        """Feed the admission-control pressure signal from this call's
        observed inbound-queue utilization (1.0 on outright rejection)."""
        endpoint = self._transport.endpoint(instance)
        if endpoint is None or endpoint.queue_capacity <= 0:
            return
        utilization = (1.0 if call.rejected
                       else call.queue_depth / endpoint.queue_capacity)
        self.pressure.observe(utilization)

    def _observe_health(self, instance: str, failure: bool,
                        latency_s: float = 0.0,
                        now: float | None = None) -> None:
        """Feed the failure detector; mirror transitions into metrics."""
        if self.health is None:
            return
        at = now if now is not None else self._clock.now()
        if failure:
            event = self.health.observe_failure(instance, at)
        else:
            event = self.health.observe_success(instance, latency_s, at)
        if event == EVENT_EJECTED:
            self.metrics.incr("health_ejections")
        elif event == EVENT_HEALED:
            self.metrics.incr("health_heals")

    def _apply_health(self, strategy: RoutingStrategy, routing_table,
                      probes: set[str]):
        """Route-time health filter: segments routed to ejected servers
        move to healthy replicas; each ejected server instead receives
        its segments as a cadence-capped probe when the trickle budget
        allows, and as a *forced* probe when it is the last replica
        standing (correctness beats ejection hygiene)."""
        detector = self.health
        if detector is None:
            return routing_table
        ejected = detector.ejected_set()
        if not ejected:
            return routing_table
        now = self._clock.now()
        healthy: dict[str, list[str]] = {}
        for instance, segments in routing_table.items():
            if instance not in ejected:
                healthy.setdefault(instance, []).extend(segments)
                continue
            if detector.try_probe(instance, now):
                probes.add(instance)
                self.metrics.incr("health_probes")
                healthy.setdefault(instance, []).extend(segments)
                continue
            reroute, unroutable = strategy.reselect(segments, ejected)
            if reroute:
                self.metrics.incr(
                    "health_reroutes",
                    sum(len(s) for s in reroute.values()))
            for alt, alt_segments in reroute.items():
                healthy.setdefault(alt, []).extend(alt_segments)
            if unroutable:
                # Only ejected replicas host these segments: probe the
                # original holder out of cadence rather than return an
                # unroutable partial answer.
                detector.try_probe(instance, now, force=True)
                probes.add(instance)
                self.metrics.incr("health_probes")
                healthy.setdefault(instance, []).extend(unroutable)
        return healthy

    def _reselect(self, strategy: RoutingStrategy, segments: list[str],
                  tried: set[str], probes: set[str]
                  ) -> tuple[dict[str, list[str]], list[str]]:
        """``strategy.reselect`` that also avoids ejected servers,
        falling back to them (as forced probes) when they hold the only
        remaining replica for some segments."""
        if self.health is None:
            return strategy.reselect(segments, tried)
        ejected = self.health.ejected_set()
        if not ejected:
            return strategy.reselect(segments, tried)
        reroute, unroutable = strategy.reselect(segments, tried | ejected)
        if unroutable:
            fallback, unroutable = strategy.reselect(unroutable, tried)
            now = self._clock.now()
            for instance, fsegs in fallback.items():
                if self.health.is_ejected(instance):
                    self.health.try_probe(instance, now, force=True)
                    probes.add(instance)
                    self.metrics.incr("health_probes")
                reroute.setdefault(instance, []).extend(fsegs)
        return reroute, unroutable

    def _prune_by_time(self, query: Query, routing_table):
        """Drop segments whose time range cannot match the query before
        contacting any server — servers left with no segments are not
        contacted at all (reduces fan-out for time-scoped queries)."""
        if query.where is None:
            return routing_table, 0
        config = self._table_config(query.table)
        time_column = config.time_column
        if time_column is None:
            return routing_table, 0
        from repro.engine.planner import time_bounds

        low, high = time_bounds(query.where, time_column)
        if low is None and high is None:
            return routing_table, 0

        pruned = 0
        out: dict[str, list[str]] = {}
        for instance, segments in routing_table.items():
            kept = []
            for segment in segments:
                meta = (
                    self._helix.get_property(
                        f"segments/{query.table}/{segment}")
                    or self._helix.get_property(
                        f"realtime/{query.table}/{segment}")
                    or {}
                )
                min_time = meta.get("min_time")
                max_time = meta.get("max_time")
                if (min_time is not None and high is not None
                        and min_time > high):
                    pruned += 1
                    continue
                if (max_time is not None and low is not None
                        and max_time < low):
                    pruned += 1
                    continue
                kept.append(segment)
            if kept:
                out[instance] = kept
        return out, pruned

    def _prune_by_bloom(self, query: Query, routing_table):
        """Bloom-filter pruning: drop segments whose distinct-value
        bloom filter proves an EQ/IN value cannot occur (never a false
        negative, so pruning is always safe)."""
        if query.where is None:
            return routing_table, 0
        constraints = _equality_constraints(query.where)
        if not constraints:
            return routing_table, 0
        from repro.segment.bloom import BloomFilter

        bloom_cache: dict[tuple[str, str], BloomFilter | None] = {}

        def bloom_for(segment: str, column: str):
            key = (segment, column)
            if key not in bloom_cache:
                meta = self._helix.get_property(
                    f"segments/{query.table}/{segment}") or {}
                payload = (meta.get("blooms") or {}).get(column)
                bloom_cache[key] = (
                    BloomFilter.from_payload(payload) if payload else None
                )
            return bloom_cache[key]

        pruned = 0
        out: dict[str, list[str]] = {}
        for instance, segments in routing_table.items():
            kept = []
            for segment in segments:
                skip = False
                for column, values in constraints.items():
                    bloom = bloom_for(segment, column)
                    if bloom is None:
                        continue
                    if not any(bloom.might_contain(v) for v in values):
                        skip = True
                        break
                if skip:
                    pruned += 1
                else:
                    kept.append(segment)
            if kept:
                out[instance] = kept
        return out, pruned

    def _record_query_log(self, query: Query,
                          results: list[ServerResult]
                          ) -> QueryLogEntry | None:
        """Record the query's filter footprint; the controller's
        auto-index analysis mines this log (§5.2). Returns the entry so
        the result cache can replay it on hits."""
        from repro.pql.ast_nodes import predicate_columns

        if query.where is None:
            return None
        entries = sum(r.stats.num_entries_scanned_in_filter
                      for r in results if r.error is None)
        docs = sum(r.stats.num_docs_scanned
                   for r in results if r.error is None)
        entry = QueryLogEntry(
            table=query.table,
            filter_columns=frozenset(predicate_columns(query.where)),
            entries_scanned_in_filter=entries,
            docs_scanned=docs,
        )
        self.query_log.append(entry)
        if len(self.query_log) > self.QUERY_LOG_LIMIT:
            del self.query_log[:len(self.query_log) // 2]
        return entry

    def explain(self, pql: str | Query) -> dict[str, dict[str, str]]:
        """Per-server, per-segment physical plan descriptions for a
        query, without executing it."""
        query = optimize(parse(pql) if isinstance(pql, str) else pql)
        out: dict[str, dict[str, str]] = {}
        for physical_query in self._resolve_physical_queries(query):
            strategy = self._strategy_for(physical_query.table)
            try:
                routing_table = strategy.route(physical_query)
            except RoutingError:
                continue
            for instance, segments in routing_table.items():
                server = self._helix.participant(instance)
                if server is None or not hasattr(server, "explain"):
                    continue
                try:
                    plans = self._transport.call(
                        self.instance_id, instance, "explain",
                        physical_query, physical_query.table, segments,
                    )
                except ClusterError:
                    continue
                out.setdefault(instance, {}).update(plans)
        return out

    def slow_queries(self, k: int | None = None) -> list[dict]:
        """Top-K traced queries by duration (the broker's slow-query
        log), newest window first. Only traced queries appear: turn up
        the tracer's sample rate or use ``OPTION(trace=true)``."""
        return self.tracer.slow_log.summaries(k)

    def fanout_for(self, pql: str | Query) -> int:
        """Number of servers one execution of this query would contact
        (instrumentation for the Fig 16 routing comparison)."""
        query = optimize(parse(pql) if isinstance(pql, str) else pql)
        physical = self._resolve_physical_queries(query)
        servers: set[str] = set()
        for physical_query in physical:
            strategy = self._strategy_for(physical_query.table)
            servers.update(strategy.route(physical_query))
        return len(servers)

"""Pinot controllers (§3.2, §3.3.5, §3.3.6, Fig 8).

Controllers own the authoritative segment-to-server mapping, handle
administrative operations (tables, uploads, retention), and run the
realtime segment-completion state machines. Three controller instances
run per datacenter with a single Helix-elected leader; non-leader
controllers answer completion polls with NOTLEADER.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.cluster.completion import (
    CompletionResponse,
    Instruction,
    SegmentCompletionManager,
)
from repro.cluster.objectstore import ObjectStore
from repro.cluster.server import (
    parse_realtime_segment_name,
    realtime_segment_name,
)
from repro.cluster.table import TableConfig, TableType
from repro.common.types import FieldSpec
from repro.errors import ClusterError, NotLeaderError, QuotaExceededError
from repro.helix.manager import HelixManager
from repro.helix.statemachine import SegmentState
from repro.kafka.broker import SimKafka
from repro.segment.segment import ImmutableSegment
from repro.zk.store import ZkError, ZkSession

SERVER_TAG = "server"


class Controller:
    """One controller instance."""

    def __init__(self, instance_id: str, helix: HelixManager,
                 object_store: ObjectStore, kafka: SimKafka | None = None):
        self.instance_id = instance_id
        self._helix = helix
        self._store = object_store
        self._kafka = kafka
        self._session: ZkSession | None = None
        self._completion: dict[str, SegmentCompletionManager] = {}
        self._task_ids = itertools.count(1)

    # -- leadership -----------------------------------------------------------

    @property
    def _leader_path(self) -> str:
        return self._helix._path("controllers/leader")  # noqa: SLF001

    def start(self) -> None:
        """Join the controller pool and try to acquire leadership."""
        if self._session is None:
            self._session = self._helix.zk.connect()
        if self._helix.transport.endpoint(self.instance_id) is None:
            # Make this controller addressable so servers can poll the
            # completion protocol and upload commits over the transport.
            self._helix.transport.register(self.instance_id, self)
        self.try_acquire_leadership()

    def stop(self) -> None:
        """Shut down (releases leadership if held; ephemerals expire)."""
        if self._session is not None:
            self._session.close()
            self._session = None
        self._helix.transport.deregister(self.instance_id)
        self._completion.clear()  # a new leader starts blank FSMs

    def try_acquire_leadership(self) -> bool:
        if self._session is None or self._session.closed:
            return False
        zk = self._helix.zk
        if zk.exists(self._leader_path):
            return zk.get(self._leader_path) == self.instance_id
        try:
            zk.create(self._leader_path, self.instance_id,
                      session=self._session, ephemeral=True)
            return True
        except ZkError:  # lost the race: another controller created it
            return False

    @property
    def is_leader(self) -> bool:
        zk = self._helix.zk
        return (
            zk.exists(self._leader_path)
            and zk.get(self._leader_path) == self.instance_id
        )

    def _require_leader(self) -> None:
        if not self.is_leader:
            raise NotLeaderError(
                f"controller {self.instance_id!r} is not the leader"
            )

    # -- table management -----------------------------------------------------

    def create_table(self, config: TableConfig) -> None:
        self._require_leader()
        table = config.name
        if self._helix.get_property(f"tableconfigs/{table}") is not None:
            raise ClusterError(f"table {table!r} already exists")
        if config.table_type is TableType.REALTIME:
            # Validate the stream up front so a failed create leaves no
            # half-registered table behind.
            assert config.stream is not None
            if self._kafka is None or not self._kafka.has_topic(
                config.stream.topic
            ):
                from repro.errors import IngestionError

                raise IngestionError(
                    f"stream topic {config.stream.topic!r} does not exist"
                )
        self._helix.set_property(f"tableconfigs/{table}", config.to_dict())
        self._helix.set_ideal_state(table, {})
        if config.table_type is TableType.REALTIME:
            self._bootstrap_realtime(config)

    def delete_table(self, table: str) -> None:
        self._require_leader()
        for segment in self._store.list_segments(table):
            self._store.delete(table, segment)
        self._helix.drop_resource(table)
        self._helix.delete_property(f"tableconfigs/{table}")
        for kind in ("segments", "realtime"):
            self._helix.delete_property(f"{kind}/{table}")
        self._completion.pop(table, None)

    def table_config(self, table: str) -> TableConfig:
        payload = self._helix.get_property(f"tableconfigs/{table}")
        if payload is None:
            raise ClusterError(f"no such table: {table!r}")
        return TableConfig.from_dict(payload)

    def list_tables(self) -> list[str]:
        return self._helix.list_properties("tableconfigs")

    def list_segments(self, table: str) -> list[str]:
        return sorted(self._helix.ideal_state(table))

    # -- schema evolution (§5.2) ------------------------------------------------

    def add_column(self, table: str, spec: FieldSpec) -> None:
        """Add a column with a default value, without downtime: old
        segments expose it as a default-valued virtual column."""
        self._require_leader()
        config = self.table_config(table)
        new_schema = config.schema.with_column(spec)
        config.schema = new_schema
        self._helix.set_property(f"tableconfigs/{table}", config.to_dict())
        for instance in self._helix.live_instances():
            participant = self._helix.participant(instance)
            if participant is not None and hasattr(participant,
                                                   "apply_new_column"):
                self._helix.transport.call(self.instance_id, instance,
                                           "apply_new_column", table, spec)

    # -- offline segment upload (§3.3.5, Fig 8) -----------------------------------

    def upload_segment(self, table: str, segment: ImmutableSegment,
                       push_time_ms: int = 0) -> None:
        """Receive a segment over (simulated) HTTP POST: verify it,
        check the table quota, write metadata, and assign replicas."""
        self._require_leader()
        config = self.table_config(table)
        self._verify_segment(config, segment)
        self._check_quota(config, table, segment)

        segment.metadata.push_time_ms = push_time_ms
        self._store.put(table, segment)
        self._write_segment_property(table, segment, push_time_ms)

        replicas = self._pick_servers(table, config.replication)
        mapping = self._helix.ideal_state(table)
        mapping[segment.name] = {
            server: SegmentState.ONLINE.value for server in replicas
        }
        self._helix.set_ideal_state(table, mapping)
        self._helix.invalidation_bus.publish(
            table, "segment_uploaded", segment=segment.name
        )

    def _write_segment_property(self, table: str,
                                segment: ImmutableSegment,
                                push_time_ms: int) -> None:
        """Publish the segment metadata brokers route and prune by
        (time range, blooms, partition). Must be rewritten whenever the
        segment's *data* changes, or pruning and the hybrid time
        boundary silently go stale."""
        blooms = {
            name: meta.bloom
            for name, meta in segment.metadata.columns.items()
            if meta.bloom is not None
        }
        self._helix.set_property(
            f"segments/{table}/{segment.name}",
            {
                "num_docs": segment.num_docs,
                "size_bytes": segment.estimated_size_bytes(),
                "min_time": segment.metadata.min_time,
                "max_time": segment.metadata.max_time,
                "push_time_ms": push_time_ms,
                "partition_id": segment.metadata.partition_id,
                "blooms": blooms,
                # Per-column cardinalities: the broker's smart-
                # approximation rewrite sums these to decide whether an
                # exact DISTINCTCOUNT/PERCENTILE is worth sketching.
                "cardinalities": {
                    name: meta.cardinality
                    for name, meta in segment.metadata.columns.items()
                },
            },
        )

    def _verify_segment(self, config: TableConfig,
                        segment: ImmutableSegment) -> None:
        if segment.num_docs <= 0:
            raise ClusterError(f"segment {segment.name!r} is empty")
        missing = set(config.schema.column_names) - set(segment.column_names)
        if missing:
            raise ClusterError(
                f"segment {segment.name!r} is missing columns "
                f"{sorted(missing)}"
            )

    def _check_quota(self, config: TableConfig, table: str,
                     segment: ImmutableSegment) -> None:
        if config.quota_bytes is None:
            return
        projected = self._store.size_bytes(table) + (
            segment.estimated_size_bytes()
        )
        if projected > config.quota_bytes:
            raise QuotaExceededError(
                f"uploading {segment.name!r} would put table {table!r} at "
                f"{projected} bytes, over its {config.quota_bytes} quota"
            )

    def _pick_servers(self, table: str, replication: int) -> list[str]:
        """Least-loaded assignment over live tagged servers."""
        servers = [
            instance for instance in self._helix.live_instances()
            if SERVER_TAG in self._helix.instance_tags(instance)
        ]
        if len(servers) < replication:
            raise ClusterError(
                f"need {replication} servers, only {len(servers)} live"
            )
        load: dict[str, int] = {server: 0 for server in servers}
        for __, replica_states in self._helix.ideal_state(table).items():
            for server in replica_states:
                if server in load:
                    load[server] += 1
        servers.sort(key=lambda s: (load[s], s))
        return servers[:replication]

    def replace_segment(self, table: str, segment: ImmutableSegment) -> None:
        """Atomically replace an existing segment with a new version
        (how updates/corrections work on immutable data, §3.1)."""
        self._require_leader()
        if not self._store.exists(table, segment.name):
            raise ClusterError(
                f"segment {segment.name!r} does not exist in {table!r}"
            )
        config = self.table_config(table)
        self._verify_segment(config, segment)
        self._store.put(table, segment)
        # Refresh the routing metadata: the new copy's time range,
        # blooms and doc count replace the original's. Skipping this
        # leaves brokers pruning (and placing the hybrid time boundary)
        # against the *old* copy's min/max_time.
        previous = self._helix.get_property(
            f"segments/{table}/{segment.name}") or {}
        segment.metadata.push_time_ms = previous.get("push_time_ms", 0)
        self._write_segment_property(table, segment,
                                     segment.metadata.push_time_ms)
        # Bounce replicas OFFLINE -> ONLINE so they reload the new copy.
        mapping = self._helix.ideal_state(table)
        replicas = mapping.get(segment.name, {})
        mapping[segment.name] = {
            server: SegmentState.OFFLINE.value for server in replicas
        }
        self._helix.set_ideal_state(table, mapping)
        mapping[segment.name] = {
            server: SegmentState.ONLINE.value for server in replicas
        }
        self._helix.set_ideal_state(table, mapping)
        self._helix.invalidation_bus.publish(
            table, "segment_replaced", segment=segment.name
        )

    def delete_segment(self, table: str, segment_name: str) -> None:
        self._require_leader()
        mapping = self._helix.ideal_state(table)
        mapping.pop(segment_name, None)
        self._helix.set_ideal_state(table, mapping)
        self._store.delete(table, segment_name)
        self._helix.delete_property(f"segments/{table}/{segment_name}")
        self._helix.invalidation_bus.publish(
            table, "segment_deleted", segment=segment_name
        )

    def rebalance_table(self, table: str) -> dict[str, list[str]]:
        """Recompute a balanced segment assignment over the currently
        live servers (the operator-triggered mapping change of §3.2 —
        e.g. after scaling out with blank nodes).

        Returns the new server -> segments mapping. Replicas move by
        ordinary Helix transitions: added replicas come ONLINE from the
        object store before removed ones are dropped, so the table
        stays fully queryable throughout.
        """
        self._require_leader()
        config = self.table_config(table)
        servers = [
            instance for instance in self._helix.live_instances()
            if SERVER_TAG in self._helix.instance_tags(instance)
        ]
        if len(servers) < config.replication:
            raise ClusterError(
                f"need {config.replication} servers, only "
                f"{len(servers)} live"
            )
        current = self._helix.ideal_state(table)
        if config.upsert is not None:
            return self._rebalance_upsert(config, servers, current)
        load: dict[str, int] = {server: 0 for server in servers}
        new_mapping: dict[str, dict[str, str]] = {}
        for segment in sorted(current):
            state = next(iter(current[segment].values()), None)
            if state is None:
                # Every replica died before this rebalance (e.g. all
                # CONSUMING holders were killed and re-seating was
                # deferred to the next mapping change). Recover from
                # the segment metadata: only committed segments exist
                # in the deep store and can come back ONLINE; an
                # uncommitted one must re-consume from its start
                # offset.
                meta = self._helix.get_property(
                    f"realtime/{table}/{segment}") or {}
                committed = (config.table_type is TableType.OFFLINE
                             or meta.get("status") == "DONE")
                state = (SegmentState.ONLINE.value if committed
                         else SegmentState.CONSUMING.value)
            # Least-loaded first for balance; among equally loaded
            # servers prefer existing replicas (no data movement).
            existing = set(current[segment])
            candidates = sorted(
                servers,
                key=lambda s: (load[s], s not in existing, s),
            )
            chosen = candidates[:config.replication]
            for server in chosen:
                load[server] += 1
            new_mapping[segment] = {server: state for server in chosen}

        # Two-phase apply: grow replicas first, then shrink — but only
        # shrink a segment once its *new* replicas actually reached the
        # target state in the external view. A crashed or slow server
        # leaves its transition in ERROR; dropping the old replicas at
        # that point would leave the segment served by nobody (and a
        # query would silently skip it). Segments whose new replicas
        # did not converge keep their old replicas until the next
        # rebalance.
        grown = {
            segment: {**current.get(segment, {}), **replicas}
            for segment, replicas in new_mapping.items()
        }
        self._helix.set_ideal_state(table, grown)
        view = self._helix.external_view(table)
        final_mapping: dict[str, dict[str, str]] = {}
        for segment, replicas in new_mapping.items():
            converged = all(
                view.get(segment, {}).get(server) == state
                for server, state in replicas.items()
            )
            final_mapping[segment] = (dict(replicas) if converged
                                      else dict(grown[segment]))
        self._helix.set_ideal_state(table, final_mapping)
        # Replicas moved off a server will never poll the completion
        # protocol again; purge them so an in-flight commit is not
        # orphaned waiting on a committer that left.
        if table in self._completion:
            manager = self._completion[table]
            for segment, replicas in final_mapping.items():
                for server, state in current.get(segment, {}).items():
                    if (server not in replicas
                            and state == SegmentState.CONSUMING.value):
                        manager.replica_removed(segment, server)
        new_mapping = final_mapping
        out: dict[str, list[str]] = {}
        for segment, replicas in new_mapping.items():
            for server in replicas:
                out.setdefault(server, []).append(segment)
        return out

    def _rebalance_upsert(self, config: TableConfig, servers: list[str],
                          current: dict[str, dict[str, str]],
                          ) -> dict[str, list[str]]:
        """Rebalance an upsert/dedup table at *partition* granularity.

        Segments of one partition move as a unit so the complete-replica
        invariant holds: every chosen server receives the partition's
        whole chain (grow), and the shrink is all-or-nothing per
        partition — if any segment failed to reach its new replicas, the
        entire partition rolls back to its old placement rather than
        leaving a server with a partial chain (whose PK index would miss
        updates and serve superseded rows)."""
        table = config.name
        partitions: dict[int, list[str]] = {}
        for segment in sorted(current):
            partition = parse_realtime_segment_name(segment)[1]
            partitions.setdefault(partition, []).append(segment)
        load: dict[str, int] = {server: 0 for server in servers}
        targets: dict[int, list[str]] = {}
        for partition in sorted(partitions):
            holders = {
                server for segment in partitions[partition]
                for server in current[segment]
            }
            # Least-loaded for balance; among equals keep existing
            # holders (no data movement, no index rebuild).
            candidates = sorted(
                servers, key=lambda s: (load[s], s not in holders, s)
            )
            chosen = candidates[:config.replication]
            for server in chosen:
                load[server] += len(partitions[partition])
            targets[partition] = chosen

        new_mapping: dict[str, dict[str, str]] = {}
        for partition, segments in partitions.items():
            for segment in segments:
                state = next(iter(current[segment].values()),
                             SegmentState.ONLINE.value)
                new_mapping[segment] = {
                    server: state for server in targets[partition]
                }
        grown = {
            segment: {**current.get(segment, {}), **replicas}
            for segment, replicas in new_mapping.items()
        }
        self._helix.set_ideal_state(table, grown)
        view = self._helix.external_view(table)
        final_mapping: dict[str, dict[str, str]] = {}
        for partition, segments in partitions.items():
            converged = all(
                view.get(segment, {}).get(server) == state
                for segment in segments
                for server, state in new_mapping[segment].items()
            )
            for segment in segments:
                final_mapping[segment] = (
                    dict(new_mapping[segment]) if converged
                    else dict(current[segment])
                )
        self._helix.set_ideal_state(table, final_mapping)
        if table in self._completion:
            manager = self._completion[table]
            for segment, replicas in final_mapping.items():
                for server, state in current.get(segment, {}).items():
                    if (server not in replicas
                            and state == SegmentState.CONSUMING.value):
                        manager.replica_removed(segment, server)
        out: dict[str, list[str]] = {}
        for segment, replicas in final_mapping.items():
            for server in replicas:
                out.setdefault(server, []).append(segment)
        return out

    # -- retention GC (§3.2) -----------------------------------------------------

    def run_retention(self, now: int) -> list[str]:
        """Garbage-collect segments past their table's retention window;
        returns the deleted segment names."""
        self._require_leader()
        deleted = []
        for table in self.list_tables():
            config = self.table_config(table)
            if config.retention is None:
                continue
            cutoff = now - config.retention
            for segment_name in self.list_segments(table):
                meta = self._helix.get_property(
                    f"segments/{table}/{segment_name}"
                ) or self._helix.get_property(
                    f"realtime/{table}/{segment_name}"
                )
                if meta is None:
                    continue
                max_time = meta.get("max_time")
                if max_time is not None and max_time < cutoff:
                    self.delete_segment(table, segment_name)
                    deleted.append(segment_name)
        return deleted

    # -- retention tiering (docs/STORAGE.md) ------------------------------------

    def run_tiering(self, now: int) -> list[str]:
        """Move segments past their table's ``tier_to_remote_after``
        window to remote-only: the authoritative copy stays in the deep
        store, hosting servers drop any resident payload, and future
        queries cold-fetch under a per-query pin. A cheaper sibling of
        retention GC — the data stays queryable, it just stops occupying
        server memory. Returns the newly tiered segment names."""
        self._require_leader()
        tiered = []
        for table in self.list_tables():
            config = self.table_config(table)
            if config.tier_to_remote_after is None:
                continue
            cutoff = now - config.tier_to_remote_after
            for segment_name in self.list_segments(table):
                for kind in ("segments", "realtime"):
                    path = f"{kind}/{table}/{segment_name}"
                    meta = self._helix.get_property(path)
                    if meta is not None:
                        break
                if meta is None or meta.get("tier") == "remote":
                    continue
                max_time = meta.get("max_time")
                if max_time is None or max_time >= cutoff:
                    continue
                meta["tier"] = "remote"
                self._helix.set_property(path, meta)
                for instance in self._helix.external_view(table).get(
                        segment_name, {}):
                    participant = self._helix.participant(instance)
                    if participant is None or not hasattr(
                            participant, "apply_tiering"):
                        continue
                    try:
                        self._helix.transport.call(
                            self.instance_id, instance,
                            "apply_tiering", table, segment_name,
                        )
                    except ClusterError:
                        continue  # dead replica rebuilds lazily anyway
                self._helix.invalidation_bus.publish(
                    table, "segment_tiered", segment=segment_name
                )
                tiered.append(segment_name)
        return tiered

    # -- realtime segment management (§3.3.6) ---------------------------------------

    def _bootstrap_realtime(self, config: TableConfig) -> None:
        assert config.stream is not None and self._kafka is not None
        table = config.name
        for partition in range(self._kafka.num_partitions(config.stream.topic)):
            start = self._kafka.earliest_offset(config.stream.topic,
                                                partition)
            self._create_consuming_segment(config, partition, 0, start)

    def _create_consuming_segment(self, config: TableConfig, partition: int,
                                  sequence: int, start_offset: int) -> str:
        table = config.name
        name = realtime_segment_name(table, partition, sequence)
        self._helix.set_property(
            f"realtime/{table}/{name}",
            {
                "partition": partition,
                "sequence": sequence,
                "start_offset": start_offset,
                "status": "IN_PROGRESS",
                "end_offset": None,
                "min_time": None,
                "max_time": None,
            },
        )
        mapping = self._helix.ideal_state(table)
        if config.upsert is not None:
            replicas = self._assign_upsert_partition(config, partition,
                                                     mapping)
        else:
            replicas = self._pick_servers(table, config.replication)
        mapping[name] = {
            server: SegmentState.CONSUMING.value for server in replicas
        }
        self._helix.set_ideal_state(table, mapping)
        return name

    def _assign_upsert_partition(self, config: TableConfig, partition: int,
                                 mapping: dict[str, dict[str, str]],
                                 ) -> list[str]:
        """Replica placement for an upsert/dedup table's next consuming
        segment — and the *complete-replica invariant* that makes
        per-segment routing safe under upsert: every server hosting any
        of a partition's segments hosts ALL of them, so its PK index
        sees every version of every key and its valid-docId bitmaps are
        complete. Existing holders of the partition are preferred; a
        fill-in server (healing after a death) receives the partition's
        whole committed chain in the same ideal-state update, so its
        index is rebuilt before it consumes or serves anything."""
        table = config.name
        servers = [
            instance for instance in self._helix.live_instances()
            if SERVER_TAG in self._helix.instance_tags(instance)
        ]
        if len(servers) < config.replication:
            raise ClusterError(
                f"need {config.replication} servers, only "
                f"{len(servers)} live"
            )
        partition_segments = [
            segment for segment in mapping
            if parse_realtime_segment_name(segment)[1] == partition
        ]
        holders = {
            server for segment in partition_segments
            for server in mapping[segment]
        }
        load = {server: 0 for server in servers}
        for replica_states in mapping.values():
            for server in replica_states:
                if server in load:
                    load[server] += 1
        candidates = sorted(
            servers, key=lambda s: (s not in holders, load[s], s)
        )
        chosen = candidates[:config.replication]
        for segment in partition_segments:
            # All prior segments of the partition are committed here
            # (the previous sequence is promoted before rollover).
            states = mapping[segment]
            for server in chosen:
                if server not in states:
                    states[server] = SegmentState.ONLINE.value
        return chosen

    def _completion_manager(self, table: str) -> SegmentCompletionManager:
        if table not in self._completion:
            config = self.table_config(table)
            self._completion[table] = SegmentCompletionManager(
                expected_replicas=config.replication
            )
        return self._completion[table]

    def handle_server_death(self, instance_id: str) -> None:
        """Purge a dead server from every in-flight completion protocol
        so a surviving replica can be elected committer (§3.3.6).

        The ideal state says which consuming segments the dead server
        was a replica of, so the expected-replica count is corrected
        even for segments the server never got to poll for — otherwise
        the survivors are held for the full poll budget before they can
        elect a committer."""
        if not self.is_leader:
            return
        for table in self.list_tables():
            if self.table_config(table).table_type is not (
                    TableType.REALTIME):
                continue
            mapping = self._helix.ideal_state(table)
            consuming = [
                segment for segment, replicas in mapping.items()
                if replicas.get(instance_id) == SegmentState.CONSUMING.value
            ]
            if not consuming and table not in self._completion:
                continue
            # Instantiate the manager if needed: the death may land
            # before any replica's first poll, and the correction must
            # survive until those polls arrive.
            manager = self._completion_manager(table)
            for segment in consuming:
                manager.replica_removed(segment, instance_id)
            # Catch-all for stale offset reports from replicas no
            # longer in the ideal state (already re-elects a dead
            # committer; no-op for servers it never saw).
            manager.fail_server(instance_id)
        self._reassign_dead_replicas(instance_id)

    def _reassign_dead_replicas(self, instance_id: str) -> None:
        """Move a dead server's replicas to surviving servers.

        Committed and offline segments live in the object store, so a
        replacement replica loads instantly — leaving the dead instance
        in the ideal state instead means a second death can strand a
        segment with *no* live replica, which brokers silently skip (a
        non-partial but wrong answer). CONSUMING replicas are *not*
        re-seated: a replacement would re-consume from the segment's
        start offset and serve a stale prefix to queries while catching
        up; the partition instead runs at reduced replication until the
        next rollover, where the new consuming segment is placed on
        live servers.

        Upsert/dedup tables re-seat nothing at all: a replacement
        hosting one committed segment without the rest of its partition
        would serve rows its PK index never masked (the complete-replica
        invariant). The partition runs at reduced replication and heals
        wholesale at the next rollover, where
        :meth:`_assign_upsert_partition` hands a fill-in server the
        entire chain."""
        for table in self.list_tables():
            mapping = self._helix.ideal_state(table)
            if not any(instance_id in replicas
                       for replicas in mapping.values()):
                continue
            upsert = self.table_config(table).upsert is not None
            servers = [
                server for server in self._helix.live_instances()
                if SERVER_TAG in self._helix.instance_tags(server)
            ]
            load = {server: 0 for server in servers}
            for replicas in mapping.values():
                for server in replicas:
                    if server in load:
                        load[server] += 1
            new_mapping: dict[str, dict[str, str]] = {}
            for segment, replicas in mapping.items():
                replicas = dict(replicas)
                state = replicas.pop(instance_id, None)
                if (state is not None and not upsert
                        and state != SegmentState.CONSUMING.value):
                    candidates = sorted(
                        (server for server in servers
                         if server not in replicas),
                        key=lambda server: (load[server], server),
                    )
                    if candidates:
                        replacement = candidates[0]
                        replicas[replacement] = state
                        load[replacement] += 1
                new_mapping[segment] = replicas
            self._helix.set_ideal_state(table, new_mapping)

    def segment_consumed(self, table: str, segment: str, server: str,
                         offset: int) -> CompletionResponse:
        """A server's completion-protocol poll (§3.3.6)."""
        if not self.is_leader:
            return CompletionResponse(Instruction.NOTLEADER)
        return self._completion_manager(table).segment_consumed(
            segment, server, offset
        )

    def commit_segment(self, table: str, segment: str, server: str,
                       offset: int, sealed: ImmutableSegment) -> bool:
        """The committer uploads its sealed copy (COMMIT instruction)."""
        if not self.is_leader:
            return False
        manager = self._completion_manager(table)
        if not manager.segment_commit(segment, server, offset):
            return False

        config = self.table_config(table)
        self._store.put(table, sealed)
        meta = self._helix.get_property(f"realtime/{table}/{segment}") or {}
        meta.update(
            status="DONE",
            end_offset=offset,
            min_time=sealed.metadata.min_time,
            max_time=sealed.metadata.max_time,
            num_docs=sealed.num_docs,
            size_bytes=sealed.estimated_size_bytes(),
            cardinalities={
                name: meta.cardinality
                for name, meta in sealed.metadata.columns.items()
            },
        )
        self._helix.set_property(f"realtime/{table}/{segment}", meta)

        # Promote all replicas; non-committers KEEP or DISCARD via the
        # CONSUMING -> ONLINE transition.
        mapping = self._helix.ideal_state(table)
        for replica in mapping.get(segment, {}):
            mapping[segment][replica] = SegmentState.ONLINE.value
        self._helix.set_ideal_state(table, mapping)

        # Open the next consuming segment where the last one ended.
        partition = meta["partition"]
        self._create_consuming_segment(config, partition,
                                       meta["sequence"] + 1, offset)
        self._helix.invalidation_bus.publish(
            table, "segment_completed", segment=segment
        )
        return True

    # -- minion task scheduling (§3.2) ------------------------------------------------

    def schedule_task(self, task_type: str, table: str,
                      params: dict[str, Any] | None = None) -> str:
        """Enqueue a maintenance task for the minions."""
        self._require_leader()
        task_id = f"task-{next(self._task_ids):06d}"
        self._helix.set_property(
            f"tasks/{task_id}",
            {
                "id": task_id,
                "type": task_type,
                "table": table,
                "params": params or {},
                "status": "PENDING",
                "owner": None,
            },
        )
        return task_id

    def pending_tasks(self) -> list[dict[str, Any]]:
        tasks = []
        for task_id in self._helix.list_properties("tasks"):
            task = self._helix.get_property(f"tasks/{task_id}")
            if task and task["status"] == "PENDING":
                tasks.append(task)
        return tasks

    def task_status(self, task_id: str) -> str:
        task = self._helix.get_property(f"tasks/{task_id}")
        if task is None:
            raise ClusterError(f"no such task: {task_id!r}")
        return task["status"]

    def update_task(self, task: dict[str, Any]) -> None:
        self._helix.set_property(f"tasks/{task['id']}", task)

"""Broker-side metrics: counters and query-stage timings.

Production Pinot brokers export per-stage latencies and fan-out /
failure counters; the resilience work (retries, failovers, partial
responses) is only operable when those are observable. This is a
lightweight in-process registry with the same shape: monotonically
increasing counters plus per-stage timing accumulators for the four
broker stages — route, scatter, gather, merge.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class StageTiming:
    """Accumulated timings for one broker stage."""

    count: int = 0
    total_ms: float = 0.0
    max_ms: float = 0.0

    def record(self, elapsed_ms: float) -> None:
        self.count += 1
        self.total_ms += elapsed_ms
        self.max_ms = max(self.max_ms, elapsed_ms)

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0


@dataclass
class BrokerMetrics:
    """Counter + stage-timing registry for one broker instance."""

    #: Counter name -> accumulated value. Well-known names:
    #: queries, scatter_requests, server_errors, servers_unreachable,
    #: retries, failovers, segments_failed_over, segments_unroutable,
    #: partial_responses, deadline_exhausted, retry_backoff_ms,
    #: cache_hits, cache_misses, cache_bypass.
    counters: dict[str, float] = field(default_factory=dict)
    stages: dict[str, StageTiming] = field(default_factory=dict)

    def incr(self, name: str, amount: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def count(self, name: str) -> float:
        return self.counters.get(name, 0)

    def record_stage(self, stage: str, elapsed_ms: float) -> None:
        if stage not in self.stages:
            self.stages[stage] = StageTiming()
        self.stages[stage].record(elapsed_ms)

    @contextmanager
    def stage(self, name: str):
        """Time a ``with``-block as one occurrence of a stage."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.record_stage(name, (time.perf_counter() - started) * 1e3)

    def snapshot(self) -> dict:
        """A plain-dict view (what an HTTP /metrics endpoint would serve)."""
        return {
            "counters": dict(self.counters),
            "stages": {
                name: {
                    "count": timing.count,
                    "total_ms": timing.total_ms,
                    "mean_ms": timing.mean_ms,
                    "max_ms": timing.max_ms,
                }
                for name, timing in self.stages.items()
            },
        }


@dataclass
class ServerMetrics(BrokerMetrics):
    """Counter registry for one server instance.

    Same registry shape as :class:`BrokerMetrics` (counters + stage
    timings) so tooling can scrape either uniformly. Well-known server
    counter names: segments_pruned, segments_scanned, hot_hits,
    hot_misses.
    """

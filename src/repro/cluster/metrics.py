"""Broker/server metrics — now backed by the unified ``repro.obs``
metrics layer.

This module remains the historical import location;
:class:`~repro.obs.metrics.MetricsRegistry` is the aggregation surface
(labeled text/JSON export across every component of a cluster).
"""

from __future__ import annotations

from repro.obs.metrics import (  # noqa: F401
    BrokerMetrics,
    Metrics,
    MetricsRegistry,
    ServerMetrics,
    StageTiming,
)

"""The managed cluster: controllers, servers, brokers, minions,
multitenancy, the completion protocol, and the PinotCluster facade."""

from repro.cluster.autoindex import AutoIndexAnalyzer, IndexRecommendation
from repro.cluster.broker import BrokerInstance, QueryLogEntry
from repro.cluster.configsync import (
    SyncReport,
    export_configs,
    sync_configs,
)
from repro.cluster.completion import (
    CompletionResponse,
    Instruction,
    SegmentCompletionManager,
)
from repro.cluster.controller import Controller
from repro.cluster.health import (
    FailureDetector,
    HealthPolicy,
    QueuePressure,
)
from repro.cluster.metrics import BrokerMetrics, StageTiming
from repro.cluster.minion import MinionInstance
from repro.cluster.objectstore import (
    FileObjectStore,
    MemoryObjectStore,
    ObjectStore,
)
from repro.cluster.pinot import PinotCluster
from repro.cluster.server import ServerInstance
from repro.cluster.table import (
    PartitionConfig,
    StreamConfig,
    TableConfig,
    TableType,
)
from repro.cluster.tenant import (
    TenantClass,
    TenantQuotaManager,
    TokenBucket,
)

__all__ = [
    "AutoIndexAnalyzer",
    "BrokerInstance",
    "BrokerMetrics",
    "IndexRecommendation",
    "QueryLogEntry",
    "CompletionResponse",
    "StageTiming",
    "Controller",
    "FailureDetector",
    "FileObjectStore",
    "HealthPolicy",
    "QueuePressure",
    "TenantClass",
    "Instruction",
    "MemoryObjectStore",
    "MinionInstance",
    "ObjectStore",
    "PartitionConfig",
    "PinotCluster",
    "SegmentCompletionManager",
    "ServerInstance",
    "StreamConfig",
    "SyncReport",
    "TableConfig",
    "TableType",
    "TenantQuotaManager",
    "TokenBucket",
    "export_configs",
    "sync_configs",
]

"""The realtime segment-completion protocol (§3.3.6).

Independent replicas consume the same Kafka partition from the same
start offset. Counting-based end criteria keep replicas identical, but
time-based criteria make them diverge, so Pinot runs a consensus
protocol: when a replica finishes consuming it polls the *leader
controller* with its current offset, and the controller's per-segment
state machine answers with one of:

``HOLD``      do nothing, poll again later;
``CATCHUP``   consume up to a given offset, then poll again;
``COMMIT``    flush and attempt to commit (this replica is the
              committer);
``KEEP``      flush and load the local data — it already matches the
              committed copy exactly;
``DISCARD``   drop local data and fetch the committed copy;
``NOTLEADER`` re-resolve the leader and poll again.

The state machine waits until all expected replicas have polled (or a
poll budget expires), targets the *largest* offset any replica reached,
and picks one replica at that offset as the committer — minimizing
network transfer since every caught-up replica can KEEP its local data.
A controller failover simply starts a new blank state machine on the
new leader; this delays the commit but does not affect correctness.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Instruction(enum.Enum):
    HOLD = "HOLD"
    DISCARD = "DISCARD"
    CATCHUP = "CATCHUP"
    KEEP = "KEEP"
    COMMIT = "COMMIT"
    NOTLEADER = "NOTLEADER"


@dataclass(frozen=True)
class CompletionResponse:
    instruction: Instruction
    #: Target offset for CATCHUP; committed offset for KEEP/DISCARD
    #: decisions; the offset being committed for COMMIT.
    offset: int | None = None


class _State(enum.Enum):
    COLLECTING = "COLLECTING"
    COMMITTING = "COMMITTING"
    COMMITTED = "COMMITTED"


@dataclass
class _SegmentFsm:
    expected_replicas: int
    max_hold_polls: int
    state: _State = _State.COLLECTING
    offsets: dict[str, int] = field(default_factory=dict)
    polls: int = 0
    committer: str | None = None
    target_offset: int | None = None
    committed_offset: int | None = None
    #: Polls answered with HOLD while waiting for the elected committer
    #: to come back with its COMMIT. If this exceeds the poll budget the
    #: committer is presumed lost and a new one is elected.
    commit_wait_polls: int = 0
    #: Replicas already accounted for by :meth:`replica_removed`, so a
    #: death followed by a rebalance cannot double-decrement.
    removed: set[str] = field(default_factory=set)


class SegmentCompletionManager:
    """Controller-side state machines, one per completing segment."""

    def __init__(self, expected_replicas: int, max_hold_polls: int = 3):
        self._expected_replicas = expected_replicas
        self._max_hold_polls = max_hold_polls
        self._fsms: dict[str, _SegmentFsm] = {}

    def _fsm(self, segment: str) -> _SegmentFsm:
        if segment not in self._fsms:
            self._fsms[segment] = _SegmentFsm(self._expected_replicas,
                                              self._max_hold_polls)
        return self._fsms[segment]

    # -- server -> controller messages -------------------------------------

    def segment_consumed(self, segment: str, server: str,
                         offset: int) -> CompletionResponse:
        """A replica reports it reached its end criteria at ``offset``."""
        fsm = self._fsm(segment)
        fsm.offsets[server] = offset
        fsm.polls += 1

        if fsm.state is _State.COMMITTED:
            return self._respond_committed(fsm, server, offset)

        if fsm.state is _State.COLLECTING:
            have_all = len(fsm.offsets) >= fsm.expected_replicas
            waited_enough = fsm.polls >= (
                fsm.max_hold_polls * fsm.expected_replicas
            )
            if not have_all and not waited_enough:
                return CompletionResponse(Instruction.HOLD)
            self._decide_committer(fsm)

        assert fsm.state is _State.COMMITTING
        assert fsm.target_offset is not None
        if server == fsm.committer and offset < fsm.target_offset:
            # The chosen committer regressed below the target (e.g. its
            # catch-up failed because Kafka expired the range). Commit
            # would deadlock; re-elect using current offsets, exactly as
            # a failed commit "resumes polling" in the paper.
            self._decide_committer(fsm)
        if offset < fsm.target_offset:
            return CompletionResponse(Instruction.CATCHUP, fsm.target_offset)
        if server == fsm.committer:
            fsm.commit_wait_polls = 0
            return CompletionResponse(Instruction.COMMIT, fsm.target_offset)
        fsm.commit_wait_polls += 1
        if fsm.commit_wait_polls > fsm.max_hold_polls * fsm.expected_replicas:
            # The elected committer has gone silent — crashed without a
            # death notification, or the replica was moved to another
            # server (e.g. by a rebalance) and will never poll again.
            # Without this deadline every surviving replica HOLDs
            # forever and the partition stops committing. Re-elect among
            # the replicas still polling; a late COMMIT from the old
            # committer is rejected by segment_commit's committer check.
            fsm.offsets.pop(fsm.committer, None)
            self._decide_committer(fsm)
            if server == fsm.committer:
                return CompletionResponse(Instruction.COMMIT,
                                          fsm.target_offset)
        return CompletionResponse(Instruction.HOLD)

    def _decide_committer(self, fsm: _SegmentFsm) -> None:
        fsm.target_offset = max(fsm.offsets.values())
        # Deterministic pick among replicas at the largest offset.
        at_target = sorted(
            server for server, offset in fsm.offsets.items()
            if offset == fsm.target_offset
        )
        fsm.committer = at_target[0]
        fsm.state = _State.COMMITTING
        fsm.commit_wait_polls = 0

    def _respond_committed(self, fsm: _SegmentFsm, server: str,
                           offset: int) -> CompletionResponse:
        assert fsm.committed_offset is not None
        if offset == fsm.committed_offset:
            return CompletionResponse(Instruction.KEEP, fsm.committed_offset)
        return CompletionResponse(Instruction.DISCARD, fsm.committed_offset)

    def segment_commit(self, segment: str, server: str,
                       offset: int) -> bool:
        """The committer attempts the commit; True on success."""
        fsm = self._fsm(segment)
        if fsm.state is _State.COMMITTED:
            return False
        if fsm.state is not _State.COMMITTING or server != fsm.committer:
            return False
        if offset != fsm.target_offset:
            return False
        fsm.state = _State.COMMITTED
        fsm.committed_offset = offset
        return True

    def fail_server(self, server: str) -> None:
        """A replica died: purge it from every in-flight state machine.

        For segments where the dead replica was the elected committer,
        a new committer is chosen among the survivors
        (:meth:`committer_failed`). For segments still collecting, the
        dead replica's offset report is dropped and one fewer replica
        is expected, so the survivors are not held until the poll
        budget expires waiting for a server that will never call.
        """
        for segment, fsm in list(self._fsms.items()):
            if fsm.state is _State.COMMITTED:
                continue
            if server in fsm.offsets:
                fsm.expected_replicas = max(1, fsm.expected_replicas - 1)
            if fsm.state is _State.COMMITTING and fsm.committer == server:
                self.committer_failed(segment, server)
            else:
                fsm.offsets.pop(server, None)

    def replica_removed(self, segment: str, server: str) -> None:
        """``server`` is known (from the ideal state) to have been a
        replica of ``segment`` and will never poll for it again — it
        died, or a rebalance moved the replica elsewhere.

        Unlike :meth:`fail_server`, which can only reason from the
        offset reports it has seen, the caller here asserts membership,
        so the expected-replica count is decremented even if the replica
        never polled. Otherwise the survivors are held for the full poll
        budget waiting on a server that will never call."""
        fsm = self._fsm(segment)
        if fsm.state is _State.COMMITTED or server in fsm.removed:
            return
        fsm.removed.add(server)
        fsm.expected_replicas = max(1, fsm.expected_replicas - 1)
        if fsm.state is _State.COMMITTING and fsm.committer == server:
            self.committer_failed(segment, server)
        else:
            fsm.offsets.pop(server, None)

    def committer_failed(self, segment: str, server: str) -> None:
        """The chosen committer died mid-commit; pick a new one among the
        remaining replicas (resume the protocol)."""
        fsm = self._fsm(segment)
        if fsm.state is not _State.COMMITTING or fsm.committer != server:
            return
        fsm.offsets.pop(server, None)
        if fsm.offsets:
            self._decide_committer(fsm)
        else:
            fsm.state = _State.COLLECTING
            fsm.committer = None
            fsm.target_offset = None
            fsm.polls = 0

    # -- introspection ------------------------------------------------------

    def is_committed(self, segment: str) -> bool:
        fsm = self._fsms.get(segment)
        return fsm is not None and fsm.state is _State.COMMITTED

    def committed_offset(self, segment: str) -> int | None:
        fsm = self._fsms.get(segment)
        return fsm.committed_offset if fsm else None

    def forget(self, segment: str) -> None:
        """Drop the state machine (controller failover starts blank)."""
        self._fsms.pop(segment, None)
